//! Operator-view capacity planning (the paper's §5.4): how many
//! subscribers can N=200 dedicated channel pairs carry under each
//! browser, at a given session-dropping budget?
//!
//! ```text
//! cargo run --example capacity_planning --release
//! ```

use ewb_core::capacity::{erlang_b, simulate, supported_users, CapacityConfig, ServiceTimes};
use ewb_core::experiments::loadtime;
use ewb_core::webpage::{benchmark_corpus, OriginServer, PageVersion};
use ewb_core::CoreConfig;

fn main() {
    let corpus = benchmark_corpus(11);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();

    // Measure per-page channel-holding times with the real pipelines.
    println!("measuring data-transmission times over the full benchmark...");
    let rows = loadtime::benchmark_load_times(&corpus, &server, &cfg, PageVersion::Full);
    let orig: Vec<f64> = rows.iter().map(|r| r.orig_load_s).collect();
    let ea: Vec<f64> = rows.iter().map(|r| r.ea_tx_s).collect();
    println!(
        "  mean holding time: original {:.1} s, energy-aware {:.1} s\n",
        orig.iter().sum::<f64>() / orig.len() as f64,
        ea.iter().sum::<f64>() / ea.len() as f64
    );

    let orig_service = ServiceTimes::empirical(orig).expect("positive");
    let ea_service = ServiceTimes::empirical(ea).expect("positive");
    let base = CapacityConfig {
        horizon_s: 40_000.0,
        ..CapacityConfig::paper()
    };

    println!("dropping probability vs subscribers (N=200, 25 s think time):");
    println!("{:>8} {:>12} {:>14}", "users", "original", "energy-aware");
    for users in (200..=360).step_by(40) {
        let o = simulate(&CapacityConfig { users, ..base }, &orig_service);
        let e = simulate(&CapacityConfig { users, ..base }, &ea_service);
        println!(
            "{users:>8} {:>11.2}% {:>13.2}%",
            o.drop_probability() * 100.0,
            e.drop_probability() * 100.0
        );
    }

    for budget in [0.01, 0.02, 0.05] {
        let o = supported_users(&base, &orig_service, budget, 50, 1200);
        let e = supported_users(&base, &ea_service, budget, 50, 1200);
        println!(
            "\nat a {:.0}% dropping budget: original {o} users, energy-aware {e} users ({:+.1}%)",
            budget * 100.0,
            (e as f64 / o as f64 - 1.0) * 100.0
        );
    }

    // Closed-form cross-check.
    let a = 300.0 * 20.0 / 25.0;
    println!(
        "\nErlang-B cross-check: B(200, {a:.0} erlang) = {:.2}%",
        erlang_b(200, a) * 100.0
    );
}
