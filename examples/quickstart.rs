//! Quickstart: load one page both ways and see where the 30 % goes.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ewb_core::cases::Case;
use ewb_core::session::{simulate_session, Visit};
use ewb_core::webpage::{benchmark_corpus, OriginServer, PageVersion};
use ewb_core::CoreConfig;

fn main() {
    // The synthetic Table 3 corpus and an origin server holding it.
    let corpus = benchmark_corpus(42);
    let server = OriginServer::from_corpus(&corpus);
    let espn = corpus
        .page("espn", PageVersion::Full)
        .expect("espn is part of the benchmark");
    println!(
        "page: {} ({:.0} KB, {} objects)\n",
        espn.root_url(),
        espn.total_bytes() as f64 / 1024.0,
        espn.object_count()
    );

    // One visit: open the page, read for 20 seconds.
    let cfg = CoreConfig::paper();
    let visits = [Visit {
        page: espn,
        reading_s: 20.0,
        features: None,
    }];

    let original = simulate_session(&server, &visits, Case::Original, &cfg, None);
    let ours = simulate_session(&server, &visits, Case::Accurate9, &cfg, None);

    let op = &original.pages[0];
    let ep = &ours.pages[0];
    println!("                      original    energy-aware");
    println!(
        "data transmission   {:>8.1} s   {:>8.1} s",
        op.tx_time_s(),
        ep.tx_time_s()
    );
    println!(
        "page load           {:>8.1} s   {:>8.1} s",
        op.load_time_s(),
        ep.load_time_s()
    );
    println!(
        "energy (open)       {:>8.1} J   {:>8.1} J",
        op.load_joules, ep.load_joules
    );
    println!(
        "energy (reading)    {:>8.1} J   {:>8.1} J",
        op.reading_joules, ep.reading_joules
    );
    println!(
        "energy (total)      {:>8.1} J   {:>8.1} J",
        original.total_joules, ours.total_joules
    );
    println!(
        "\nsaving: {:.1}% of the handset energy (the paper reports >30%)",
        (1.0 - ours.total_joules / original.total_joules) * 100.0
    );
    if let Some(at) = ep.released_at {
        println!(
            "the energy-aware browser released the radio to IDLE at {:.1} s",
            at.as_secs_f64()
        );
    }
}
