//! Train, evaluate, serialize, and reload the reading-time predictor —
//! the paper's offline-train / on-phone-deploy cycle (§4.3.3).
//!
//! ```text
//! cargo run --example train_predictor --release
//! ```

use ewb_core::gbrt::feature_importance;
use ewb_core::traces::{
    accuracy_with_threshold, accuracy_without_threshold, reading_time_params, ReadingTimePredictor,
    TraceConfig, TraceDataset, FEATURE_NAMES,
};

fn main() {
    // The 40-user trace (§5.1.3).
    let trace = TraceDataset::generate(&TraceConfig::paper());
    println!("trace: {} visits from {} users", trace.len(), trace.users());
    let cdf = trace.reading_time_cdf();
    println!(
        "dwell CDF anchors: {:.0}% < 2 s, {:.0}% < 9 s, {:.0}% < 20 s\n",
        cdf.fraction_at_or_below(2.0) * 100.0,
        cdf.fraction_at_or_below(9.0) * 100.0,
        cdf.fraction_at_or_below(20.0) * 100.0
    );

    // Table 4: no linear signal anywhere...
    println!("Pearson correlation with reading time (Table 4):");
    for (name, r) in trace.pearson_table() {
        println!("  {name:<28} {r:>7.4}");
    }

    // ...yet the GBRT finds the structure (Fig. 15).
    println!("\nthreshold accuracy (Fig. 15):");
    for t in [9.0, 20.0] {
        let without = accuracy_without_threshold(&trace, t, 1);
        let with = accuracy_with_threshold(&trace, 2.0, t, 1);
        println!(
            "  T={t:>4.0}s: {:.1}% raw, {:.1}% with the 2 s interest threshold",
            without.accuracy * 100.0,
            with.accuracy * 100.0
        );
    }

    // Deploy cycle: train -> serialize -> reload -> predict.
    let predictor =
        ReadingTimePredictor::train_with_interest_threshold(&trace, 2.0, &reading_time_params());
    let json = predictor.to_json();
    println!(
        "\nserialized model: {:.1} KB, {} trees",
        json.len() as f64 / 1024.0,
        predictor.model().n_trees()
    );
    let deployed = ReadingTimePredictor::from_json(&json).expect("round trip");

    println!("\nwhich features does the model actually use?");
    let importance = feature_importance(deployed.model());
    let mut ranked: Vec<_> = FEATURE_NAMES.iter().zip(importance).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (name, imp) in ranked.iter().take(5) {
        println!("  {name:<28} {:>5.1}%", imp * 100.0);
    }

    let sample = &trace.visits()[0];
    println!(
        "\nsample prediction: {:.1} s (actual {:.1} s)",
        deployed.predict_seconds(&sample.features),
        sample.reading_time_s
    );
}
