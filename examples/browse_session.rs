//! A realistic browsing session under Algorithm 2 (Predict-20): several
//! pages, mixed dwell times, radio state carried across clicks, and the
//! GBRT predictor deciding each release.
//!
//! ```text
//! cargo run --example browse_session --release
//! ```

use ewb_core::cases::Case;
use ewb_core::session::{simulate_session, Visit};
use ewb_core::traces::{reading_time_params, ReadingTimePredictor, TraceConfig, TraceDataset};
use ewb_core::webpage::{benchmark_corpus, OriginServer, PageVersion};
use ewb_core::CoreConfig;

fn main() {
    let corpus = benchmark_corpus(7);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();

    // Train the reading-time predictor on a generated user trace, with
    // the paper's 2 s interest-threshold filtering (§4.3.4).
    println!("training the GBRT reading-time predictor...");
    let trace = TraceDataset::generate(&TraceConfig::paper());
    let predictor =
        ReadingTimePredictor::train_with_interest_threshold(&trace, 2.0, &reading_time_params());
    println!(
        "  trained on {} engaged visits\n",
        trace.engaged_only(2.0).len()
    );

    // A session: skim two pages, settle into a long article, skim again.
    let plan: [(&str, PageVersion, f64); 5] = [
        ("cnn", PageVersion::Mobile, 4.0),
        ("bbc", PageVersion::Mobile, 1.5),
        ("espn", PageVersion::Full, 45.0),
        ("amazon", PageVersion::Mobile, 8.0),
        ("nytime", PageVersion::Full, 30.0),
    ];
    let visits: Vec<Visit<'_>> = plan
        .iter()
        .map(|&(key, version, reading_s)| Visit {
            page: corpus.page(key, version).expect("benchmark site"),
            reading_s,
            features: None,
        })
        .collect();

    for case in [Case::Original, Case::Predict20] {
        let out = simulate_session(&server, &visits, case, &cfg, Some(&predictor));
        println!("--- {case} ---");
        for p in &out.pages {
            let decision = match (p.predicted_s, p.released_at) {
                (Some(tr), Some(_)) => format!("Tr={tr:.1}s > Td -> released"),
                (Some(tr), None) => format!("Tr={tr:.1}s <= Td -> stay connected"),
                (None, Some(_)) => "released".to_string(),
                (None, None) => "timers only".to_string(),
            };
            println!(
                "  {:<38} load {:>5.1}s read {:>5.1}s  {:>6.1} J  [{decision}]",
                p.url,
                p.load_time_s(),
                p.reading_s,
                p.total_joules()
            );
        }
        println!(
            "  session: {:.1} J over {:.0} s, {} cold promotions, {} releases\n",
            out.total_joules,
            out.duration.as_secs_f64(),
            out.counters.idle_to_dch,
            out.counters.fast_dormancy_releases
        );
    }
}
