//! Ablations of the design choices DESIGN.md calls out.

use crate::{header, pct, Context};
use ewb_core::cases::Case;
use ewb_core::experiments::{energy, single_visit};
use ewb_core::gbrt::GbrtParams;
use ewb_core::rrc::{intuitive, PowerModel, RrcConfig};
use ewb_core::simcore::SimDuration;
use ewb_core::traces::{
    accuracy_grid, reading_time_params, EvalCell, ReadingTimePredictor, TraceConfig, TraceDataset,
};
use ewb_core::webpage::PageVersion;
use ewb_core::CoreConfig;
use std::fmt::Write as _;

/// Ablation 1 — sweep the calibrated promotion energy and watch the
/// Fig. 3 break-even move through the paper's 9 s.
pub fn promotion_energy() -> String {
    let mut out = header(
        "Ablation — IDLE->DCH promotion energy vs Fig. 3 break-even",
        "DESIGN.md: default 7.0 J calibrated to the 9 s break-even",
    );
    let _ = writeln!(out, "{:>14} {:>14}", "promotion J", "break-even s");
    // The calibrated promotion draw spreads the aggregate energy over
    // the 1.75 s IDLE->DCH promotion latency (see `PowerModel::paper`).
    let promotion_latency_s = 1.75;
    for promo_j in [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
        let cfg = RrcConfig {
            power: PowerModel {
                promotion_w: promo_j / promotion_latency_s,
                ..PowerModel::paper()
            },
            ..RrcConfig::paper()
        };
        let be = intuitive::break_even(&cfg, SimDuration::from_millis(500));
        let _ = writeln!(out, "{promo_j:>14.1} {be:>14.2}");
    }
    out
}

/// Ablation 2 — the interest threshold α vs prediction accuracy.
pub fn interest_threshold() -> String {
    let mut out = header(
        "Ablation — interest threshold α vs prediction accuracy (Tp=9)",
        "the paper sets α = 2 s from the 30% quick-bounce knee",
    );
    let trace = TraceDataset::generate(&TraceConfig::paper());
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12}",
        "alpha s", "accuracy", "train frac"
    );
    let alphas = [0.0, 0.5, 1.0, 2.0, 3.0, 5.0];
    // Six independent α cells, each training its own model — one scoped
    // worker per cell.
    let cells: Vec<EvalCell> = alphas
        .iter()
        .map(|&alpha| EvalCell {
            alpha_s: (alpha > 0.0).then_some(alpha),
            decision_threshold_s: 9.0,
            seed: crate::REPORT_SEED,
        })
        .collect();
    for (alpha, report) in alphas.iter().zip(accuracy_grid(&trace, &cells)) {
        let frac = report.train_size + report.test_size;
        let _ = writeln!(
            out,
            "{alpha:>8.1} {:>11.1}% {:>11.1}%",
            report.accuracy * 100.0,
            frac as f64 / trace.len() as f64 * 100.0
        );
    }
    out
}

/// Train/test split seed for the GBRT-size ablation. Fixed and named so
/// its provenance is documented: the ablation table is a standalone
/// artifact, deliberately detached from the sweep's root seed (changing
/// the root must not re-roll this split), which is exactly the situation
/// the seed-provenance rule wants recorded in a named binding.
const GBRT_SPLIT_SEED: u64 = 3;

/// Ablation 3 — GBRT forest size: accuracy vs prediction cost frontier.
pub fn gbrt_size() -> String {
    let mut out = header(
        "Ablation — GBRT size (trees x leaves) vs accuracy at Tp=9",
        "the paper runs 8-node trees; Table 7 prices 1k-20k of them",
    );
    let trace = TraceDataset::generate(&TraceConfig::paper()).engaged_only(2.0);
    let data = trace.to_gbrt_dataset();
    let mut rng = ewb_core::simcore::Xoshiro256::seed_from_u64(GBRT_SPLIT_SEED);
    let (train, test) = data.split(0.7, &mut rng);
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>12} {:>14}",
        "trees", "leaves", "accuracy", "predict µs"
    );
    let grid = [(25, 8), (50, 8), (150, 8), (400, 8), (150, 4), (150, 16)];
    // Training the six forests is the expensive part and every cell is
    // independent — fan it out; the timing measurements stay serial so
    // the workers don't contend for cores while the clock runs.
    let predictors: Vec<ReadingTimePredictor> = crossbeam::thread::scope(|scope| {
        let train = &train;
        let handles: Vec<_> = grid
            .iter()
            .map(|&(n_trees, leaves)| {
                scope.spawn(move |_| {
                    let params = GbrtParams {
                        n_trees,
                        max_leaves: leaves,
                        ..reading_time_params()
                    };
                    ReadingTimePredictor::train_dataset(train, &params)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("training worker panicked"))
            .collect()
    })
    .expect("thread scope");
    for ((n_trees, leaves), p) in grid.iter().zip(&predictors) {
        let start = std::time::Instant::now();
        let preds: Vec<f64> = (0..test.len())
            .map(|i| p.predict_row(test.row(i)))
            .collect();
        let us = start.elapsed().as_secs_f64() / test.len() as f64 * 1e6;
        let acc = ewb_core::gbrt::threshold_accuracy(&preds, test.targets(), 9.0);
        let _ = writeln!(
            out,
            "{n_trees:>8} {leaves:>8} {:>11.1}% {us:>14.2}",
            acc * 100.0
        );
    }
    out
}

/// Ablation 4 — the timers T1/T2 vs whole-session energy.
pub fn timers() -> String {
    let mut out = header(
        "Ablation — inactivity timers T1/T2 vs energy (espn + 20 s read)",
        "longer tails inflate the original's cost; the energy-aware\n  approach is insensitive because it releases early",
    );
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>12} {:>12} {:>10}",
        "T1 s", "T2 s", "orig J", "ea J", "saving"
    );
    for (t1, t2) in [(2u64, 8u64), (4, 15), (6, 20), (8, 30)] {
        let mut cfg = CoreConfig::paper();
        cfg.rrc.t1 = SimDuration::from_secs(t1);
        cfg.rrc.t2 = SimDuration::from_secs(t2);
        cfg.alg.td_s = (t1 + t2 + 1) as f64;
        let ctx = Context::new();
        let espn = ctx.corpus.page("espn", PageVersion::Full).expect("espn");
        let orig = single_visit(&ctx.server, espn, Case::Original, &cfg, 20.0);
        let ea = single_visit(&ctx.server, espn, Case::Accurate9, &cfg, 20.0);
        let _ = writeln!(
            out,
            "{t1:>6} {t2:>6} {:>12.1} {:>12.1} {:>10}",
            orig.total_joules,
            ea.total_joules,
            pct(1.0 - ea.total_joules / orig.total_joules)
        );
    }
    out
}

/// Ablation 5 — energy split: where does the saving come from?
/// (reading-period release vs transmission shortening), per version.
pub fn saving_breakdown(ctx: &Context) -> String {
    let mut out = header(
        "Ablation — saving decomposition (load-side vs reading-side)",
        "paper: mobile saving mostly from reading IDLE; full mostly from tx",
    );
    for version in [PageVersion::Mobile, PageVersion::Full] {
        let rows = energy::benchmark_energy(&ctx.corpus, &ctx.server, &ctx.cfg, version);
        let open: f64 = rows.iter().map(|r| r.orig_open_j - r.ea_open_j).sum();
        let read: f64 = rows.iter().map(|r| r.orig_reading_j - r.ea_reading_j).sum();
        let _ = writeln!(
            out,
            "{version}: open-side saving {open:.1} J, reading-side saving {read:.1} J"
        );
    }
    out
}

/// Related-work baseline — a transcoding proxy (Opera Mini-style, §6 of
/// the paper): fast and light on bytes, but requires server
/// infrastructure and loses content fidelity, which is exactly why the
/// paper pursues an on-device technique instead.
pub fn proxy_baseline(ctx: &Context) -> String {
    use ewb_core::net::proxy::{proxy_load, ProxyConfig};
    use ewb_core::simcore::SimTime;
    let mut out = header(
        "Baseline — remote transcoding proxy vs on-device approaches",
        "§6: proxies cut load time but 'need additional remote devices'",
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "site", "orig load", "ea load", "proxy load", "ea J", "proxy J"
    );
    for site in ctx.corpus.sites() {
        let page = &site.full;
        let orig = single_visit(&ctx.server, page, Case::Original, &ctx.cfg, 0.0);
        let ea = single_visit(&ctx.server, page, Case::EnergyAwareAlwaysOff, &ctx.cfg, 0.0);
        let proxy = proxy_load(
            &ctx.cfg.net,
            &ctx.cfg.rrc,
            &ProxyConfig::paper_era(),
            page,
            SimTime::ZERO,
        );
        let _ = writeln!(
            out,
            "{:<10} {:>11.1}s {:>11.1}s {:>11.1}s {:>11.1} {:>11.1}",
            site.key,
            orig.pages[0].load_time_s(),
            ea.pages[0].load_time_s(),
            proxy.load_time.as_secs_f64(),
            ea.pages[0].load_joules,
            proxy.energy_j,
        );
    }
    let _ = writeln!(
        out,
        "\nThe proxy wins on wall-clock (it ships ~45% of the bytes after a\n\
         server-side render) — and still loses the *architecture* argument:\n\
         it needs deployed infrastructure, breaks end-to-end content, and\n\
         its savings vanish when the bundle is large. The paper's approach\n\
         needs only a browser change."
    );
    out
}

/// Extension — layout caching (Zhang et al., §6): repeat-visit loading
/// time with and without the cache, stacked on the energy-aware pipeline.
pub fn layout_cache(ctx: &Context) -> String {
    use ewb_core::browser::cache::LayoutCache;
    use ewb_core::browser::pipeline::{load_page_cached, PipelineConfig, PipelineMode};
    use ewb_core::net::ThreeGFetcher;
    use ewb_core::simcore::SimTime;
    let mut out = header(
        "Extension — layout caching on repeat visits (Zhang et al.)",
        "cached revisits skip rule extraction, style, and layout",
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>12}",
        "site", "cold load s", "cached load s", "saving"
    );
    for site in ctx.corpus.sites() {
        let page = &site.full;
        let mut cache = LayoutCache::new();
        let run = |cache: &mut LayoutCache| {
            let mut fetcher =
                ThreeGFetcher::new(ctx.cfg.net, ctx.cfg.rrc, &ctx.server, SimTime::ZERO);
            load_page_cached(
                &mut fetcher,
                page.root_url(),
                SimTime::ZERO,
                &PipelineConfig::new(PipelineMode::EnergyAware),
                &ctx.cfg.cost,
                cache,
            )
        };
        let cold = run(&mut cache).load_time().as_secs_f64();
        let warm = run(&mut cache).load_time().as_secs_f64();
        let _ = writeln!(
            out,
            "{:<10} {:>13.1} {:>14.1} {:>12}",
            site.key,
            cold,
            warm,
            pct(1.0 - warm / cold)
        );
    }
    let _ = writeln!(
        out,
        "\n(transfers are not cached — only the layout computation; an HTTP\n\
         cache would compound with this, but is outside the paper's scope)"
    );
    out
}

/// Ablation — the energy-aware browser's connection-pool depth, the
/// mechanism behind "group all data transmissions together" (§3.1). Too
/// shallow and the cheap scan-phase still starves the link; deeper pools
/// approach the socket profile of Fig. 4.
pub fn connection_pool(ctx: &Context) -> String {
    use ewb_core::browser::pipeline::{load_page, PipelineConfig, PipelineMode};
    use ewb_core::net::ThreeGFetcher;
    use ewb_core::simcore::SimTime;
    let mut out = header(
        "Ablation — energy-aware connection pool vs transmission time",
        "default 3 connections; the original browser keeps the era-typical 2",
    );
    let espn = ctx
        .corpus
        .page("espn", ewb_core::webpage::PageVersion::Full)
        .expect("espn");
    let _ = writeln!(out, "{:>8} {:>14} {:>12}", "pool", "ea tx s", "ea load s");
    for pool in [1usize, 2, 3, 4, 6, 8] {
        let mut cfg = PipelineConfig::new(PipelineMode::EnergyAware);
        cfg.max_parallel = pool;
        let mut fetcher = ThreeGFetcher::new(ctx.cfg.net, ctx.cfg.rrc, &ctx.server, SimTime::ZERO);
        let m = load_page(
            &mut fetcher,
            espn.root_url(),
            SimTime::ZERO,
            &cfg,
            &ctx.cfg.cost,
        );
        let _ = writeln!(
            out,
            "{pool:>8} {:>14.1} {:>12.1}",
            m.transmission_time().as_secs_f64(),
            m.load_time().as_secs_f64()
        );
    }
    out
}
