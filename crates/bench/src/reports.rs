//! The per-figure/table report generators.

use crate::{header, pct, Context, REPORT_SEED};
use ewb_core::browser::pipeline::{load_page, PipelineConfig, PipelineMode};
use ewb_core::capacity::erlang_b;
use ewb_core::cases::Case;
use ewb_core::experiments::{
    capacity_exp, cases16, display, energy, loadtime, power_trace, robustness, traffic,
};
use ewb_core::gbrt::GbrtParams;
use ewb_core::net::ThreeGFetcher;
use ewb_core::rrc::{intuitive, scenario};
use ewb_core::simcore::{SimDuration, SimTime};
use ewb_core::traces::{
    accuracy_grid, reading_time_params, EvalCell, ReadingTimePredictor, TraceConfig, TraceDataset,
};
use ewb_core::webpage::PageVersion;
use std::fmt::Write as _;

/// Fig. 1 — the power level of the radio across its states.
pub fn fig01(ctx: &Context) -> String {
    let mut out = header(
        "Fig. 1 — power level of the 3G radio interface per RRC state",
        "IDLE ≈0.15 W, DCH ≈1.25 W burst, FACH ≈0.63 W plateau, back to IDLE",
    );
    let (trace, transitions) = scenario::state_tour(
        &ctx.cfg.rrc,
        SimDuration::from_secs(5),
        SimDuration::from_secs(3),
        SimDuration::from_secs(5),
    );
    let _ = writeln!(out, "state transitions:");
    for t in &transitions {
        let _ = writeln!(
            out,
            "  {:>9.2} s  {} -> {}",
            t.at.as_secs_f64(),
            t.from,
            t.to
        );
    }
    let _ = writeln!(out, "\n4 Hz power samples (t, W):");
    for (i, w) in trace.samples().iter().enumerate() {
        if i % 4 == 0 {
            let _ = write!(out, "\n  {:>5.2}s:", i as f64 * 0.25);
        }
        let _ = write!(out, " {w:.2}");
    }
    let _ = writeln!(out, "\n\nmean power: {:.3} W", trace.mean_watts());
    out
}

/// Fig. 3 — power vs transmission interval for the intuitive approach.
pub fn fig03(ctx: &Context) -> String {
    let mut out = header(
        "Fig. 3 — original vs intuitive (always-release) per-cycle energy",
        "break-even at 9 s; intuitive loses below, wins above",
    );
    let transfer = SimDuration::from_millis(500);
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "interval", "original J", "intuitive J", "saving J", "extra delay"
    );
    for p in intuitive::sweep(&ctx.cfg.rrc, transfer) {
        let _ = writeln!(
            out,
            "{:>9.0}s {:>12.2} {:>12.2} {:>12.2} {:>11.2}s",
            p.interval_s, p.original_j, p.intuitive_j, p.saving_j, p.extra_delay_s
        );
    }
    let be = intuitive::break_even(&ctx.cfg.rrc, transfer);
    let _ = writeln!(out, "\nbreak-even interval: {be:.2} s (paper: 9 s)");
    out
}

/// Fig. 4 — browser-paced vs socket-paced traffic.
pub fn fig04(ctx: &Context) -> String {
    let mut out = header(
        "Fig. 4 — traffic of opening espn.go.com/sports vs bulk download",
        "browser: 760 KB spread over 47 s; socket: same bytes in 8 s",
    );
    let c = traffic::compare(&ctx.corpus, &ctx.server, &ctx.cfg, "espn");
    let _ = writeln!(out, "total bytes: {:.0} KB", c.total_bytes as f64 / 1024.0);
    let _ = writeln!(
        out,
        "browser transmission time: {:.1} s  (paper 47 s)",
        c.browser_duration_s
    );
    let _ = writeln!(
        out,
        "bulk socket download:      {:.1} s  (paper 8 s)",
        c.bulk_duration_s
    );
    let _ = writeln!(
        out,
        "slowdown factor: {:.1}x (paper ≈5.9x)\n",
        c.browser_duration_s / c.bulk_duration_s
    );
    let dump = |name: &str, buckets: &[f64], out: &mut String| {
        let _ = writeln!(out, "{name} traffic per 0.5 s bucket (KB):");
        for (i, b) in buckets.iter().enumerate() {
            if i % 10 == 0 {
                let _ = write!(out, "\n  {:>5.1}s:", i as f64 * 0.5);
            }
            let _ = write!(out, " {:>5.1}", b / 1024.0);
        }
        let _ = writeln!(out);
    };
    dump("browser", &c.browser_buckets, &mut out);
    dump("socket", &c.bulk_buckets, &mut out);
    out
}

/// Fig. 5 — the computation sequence: objects into the DOM per time slot.
pub fn fig05(ctx: &Context) -> String {
    let mut out = header(
        "Fig. 5 — object completion schedule, original vs reorganized",
        "the reorganized browser retrieves all objects before any layout",
    );
    let espn = ctx.corpus.page("espn", PageVersion::Full).expect("espn");
    for mode in [PipelineMode::Original, PipelineMode::EnergyAware] {
        let mut fetcher = ThreeGFetcher::new(ctx.cfg.net, ctx.cfg.rrc, &ctx.server, SimTime::ZERO);
        let m = load_page(
            &mut fetcher,
            espn.root_url(),
            SimTime::ZERO,
            &PipelineConfig::new(mode),
            &ctx.cfg.cost,
        );
        let _ = writeln!(out, "\n{mode:?}:");
        let slot = SimDuration::from_secs(2);
        let counts: Vec<usize> = {
            let mut v = Vec::new();
            let mut cum = 0usize;
            let buckets = m.traffic.bucket_sums(slot);
            for (i, b) in buckets.iter().enumerate() {
                // bucket_sums returns bytes; count objects by re-walking
                // points per bucket.
                let lo = i as u64 * slot.as_micros();
                let hi = lo + slot.as_micros();
                cum += m
                    .traffic
                    .points()
                    .iter()
                    .filter(|(t, _)| t.as_micros() >= lo && t.as_micros() < hi)
                    .count();
                let _ = b;
                v.push(cum);
            }
            v
        };
        let _ = write!(out, "  cumulative objects per 2 s slot:");
        for (i, c) in counts.iter().enumerate() {
            if i % 10 == 0 {
                let _ = write!(out, "\n   {:>4}s:", i * 2);
            }
            let _ = write!(out, " {c:>3}");
        }
        let _ = writeln!(
            out,
            "\n  transmissions end: {:.1} s; final display: {:.1} s",
            m.data_transmission_end.as_secs_f64(),
            m.final_display_at.as_secs_f64()
        );
    }
    out
}

/// Fig. 7 — the reading-time CDF.
pub fn fig07() -> String {
    let mut out = header(
        "Fig. 7 — cumulative distribution of reading time (40-user trace)",
        "30% < 2 s (α), 53% < 9 s (Tp), 68% < 20 s (Td)",
    );
    let trace = TraceDataset::generate(&TraceConfig::paper());
    let cdf = trace.reading_time_cdf();
    let _ = writeln!(out, "visits: {}", trace.len());
    for x in [
        1.0, 2.0, 4.0, 6.0, 9.0, 12.0, 16.0, 20.0, 30.0, 60.0, 120.0, 300.0,
    ] {
        let _ = writeln!(
            out,
            "  P(reading <= {x:>5.0} s) = {:>5.1}%",
            cdf.fraction_at_or_below(x) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nanchors: {:.1}% < 2 s (paper 30%), {:.1}% < 9 s (paper 53%), {:.1}% < 20 s (paper 68%)",
        cdf.fraction_at_or_below(2.0) * 100.0,
        cdf.fraction_at_or_below(9.0) * 100.0,
        cdf.fraction_at_or_below(20.0) * 100.0
    );
    out
}

/// Fig. 8 — data-transmission and loading times over both benchmarks.
pub fn fig08(ctx: &Context) -> String {
    let mut out = header(
        "Fig. 8 — data transmission time (original vs energy-aware)",
        "full: -27% tx / -17% total; mobile: -15% tx / -2.5% total",
    );
    for version in [PageVersion::Mobile, PageVersion::Full] {
        let rows = loadtime::benchmark_load_times(&ctx.corpus, &ctx.server, &ctx.cfg, version);
        let s = loadtime::summarize(&rows);
        let _ = writeln!(out, "\n{version} benchmark:");
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "site", "orig load", "ea tx", "ea layout", "ea load", "tx sav", "tot sav"
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "  {:<10} {:>9.1}s {:>9.1}s {:>9.1}s {:>9.1}s {:>9} {:>9}",
                r.key,
                r.orig_load_s,
                r.ea_tx_s,
                r.ea_layout_s,
                r.ea_load_s,
                pct(r.tx_saving()),
                pct(r.total_saving())
            );
        }
        let paper = match version {
            PageVersion::Mobile => "(paper: -15% tx, -2.5% total)",
            PageVersion::Full => "(paper: -27% tx, -17% total)",
        };
        let _ = writeln!(
            out,
            "  mean: orig {:.1} s -> ea tx {:.1} s / load {:.1} s  = {} tx, {} total {paper}",
            s.orig_load_s,
            s.ea_tx_s,
            s.ea_load_s,
            pct(s.tx_saving),
            pct(s.total_saving)
        );
    }
    // Fig. 8(b)'s two named pages.
    let _ = writeln!(out, "\nFig. 8(b) detail:");
    let mobile =
        loadtime::benchmark_load_times(&ctx.corpus, &ctx.server, &ctx.cfg, PageVersion::Mobile);
    let full =
        loadtime::benchmark_load_times(&ctx.corpus, &ctx.server, &ctx.cfg, PageVersion::Full);
    let cnn = mobile.iter().find(|r| r.key == "cnn").expect("cnn row");
    let ebay = full.iter().find(|r| r.key == "ebay").expect("ebay row");
    let _ = writeln!(
        out,
        "  m.cnn.com:           {} tx, {} total (paper: -15%, -2.2%)",
        pct(cnn.tx_saving()),
        pct(cnn.total_saving())
    );
    let _ = writeln!(
        out,
        "  www.motors.ebay.com: {} tx, {} total (paper: -31%, -20%)",
        pct(ebay.tx_saving()),
        pct(ebay.total_saving())
    );
    out
}

/// Fig. 9 — the 4 Hz power trace of loading espn full.
pub fn fig09(ctx: &Context) -> String {
    let mut out = header(
        "Fig. 9 — power trace loading espn.go.com/sports (+25 s reading)",
        "energy-aware finishes earlier and drops to IDLE during reading",
    );
    let t = power_trace::espn_power_traces(&ctx.corpus, &ctx.server, &ctx.cfg, 25.0);
    let dump = |name: &str, tr: &ewb_core::simcore::PowerTrace, opened: f64, out: &mut String| {
        let _ = writeln!(
            out,
            "\n{name} (page opened at {opened:.1} s, {:.1} J total):",
            tr.estimated_joules()
        );
        for (i, w) in tr.samples().iter().enumerate() {
            if i % 8 == 0 {
                let _ = write!(out, "\n  {:>5.1}s:", i as f64 * 0.25);
            }
            let _ = write!(out, " {w:.2}");
        }
        let _ = writeln!(out);
    };
    dump("original", &t.original, t.original_opened_s, &mut out);
    dump(
        "energy-aware",
        &t.energy_aware,
        t.energy_aware_opened_s,
        &mut out,
    );
    out
}

/// Fig. 10 — energy for opening + 20 s reading.
pub fn fig10(ctx: &Context) -> String {
    let mut out = header(
        "Fig. 10 — energy of page open + 20 s reading",
        "mobile: -35.7%; full: -30.8%; m.cnn -35.5%; espn -43.6%",
    );
    for version in [PageVersion::Mobile, PageVersion::Full] {
        let rows = energy::benchmark_energy(&ctx.corpus, &ctx.server, &ctx.cfg, version);
        let _ = writeln!(out, "\n{version} benchmark:");
        let _ = writeln!(
            out,
            "  {:<10} {:>11} {:>11} {:>11} {:>11} {:>9}",
            "site", "orig open", "orig read", "ea open", "ea read", "saving"
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "  {:<10} {:>10.1}J {:>10.1}J {:>10.1}J {:>10.1}J {:>9}",
                r.key,
                r.orig_open_j,
                r.orig_reading_j,
                r.ea_open_j,
                r.ea_reading_j,
                pct(r.saving())
            );
        }
        let paper = match version {
            PageVersion::Mobile => "(paper -35.7%)",
            PageVersion::Full => "(paper -30.8%)",
        };
        let _ = writeln!(
            out,
            "  mean saving: {} {paper}",
            pct(energy::mean_saving(&rows))
        );
    }
    let mobile = energy::benchmark_energy(&ctx.corpus, &ctx.server, &ctx.cfg, PageVersion::Mobile);
    let full = energy::benchmark_energy(&ctx.corpus, &ctx.server, &ctx.cfg, PageVersion::Full);
    let cnn = mobile.iter().find(|r| r.key == "cnn").expect("cnn");
    let espn = full.iter().find(|r| r.key == "espn").expect("espn");
    let _ = writeln!(
        out,
        "\nFig. 10(b): m.cnn.com {} (paper -35.5%), espn.go.com/sports {} (paper -43.6%)",
        pct(cnn.saving()),
        pct(espn.saving())
    );
    out
}

/// Fig. 11 — capacity curves. `horizon_s` trades precision for runtime.
pub fn fig11(ctx: &Context, horizon_s: f64) -> String {
    let mut out = header(
        "Fig. 11 — session dropping probability vs number of users",
        "capacity gain: mobile +14.3%, full +19.6% at equal drop rate",
    );
    let grids: [(PageVersion, Vec<usize>); 2] = [
        (
            PageVersion::Mobile,
            (300..=700).step_by(50).collect::<Vec<_>>(),
        ),
        (
            PageVersion::Full,
            (200..=360).step_by(20).collect::<Vec<_>>(),
        ),
    ];
    for (version, grid) in grids {
        let cmp = capacity_exp::compare_capacity(
            &ctx.corpus,
            &ctx.server,
            &ctx.cfg,
            version,
            &grid,
            0.02,
            horizon_s,
        );
        let _ = writeln!(
            out,
            "\n{version} benchmark (N=200 channels, 25 s think time):"
        );
        let _ = writeln!(
            out,
            "  {:>7} {:>12} {:>14}",
            "users", "orig drop%", "ea drop%"
        );
        for ((u, o), e) in cmp
            .original
            .users
            .iter()
            .zip(&cmp.original.drop_probability)
            .zip(&cmp.energy_aware.drop_probability)
        {
            let _ = writeln!(out, "  {u:>7} {:>11.2}% {:>13.2}%", o * 100.0, e * 100.0);
        }
        let paper = match version {
            PageVersion::Mobile => "(paper +14.3%)",
            PageVersion::Full => "(paper +19.6%)",
        };
        let _ = writeln!(
            out,
            "  capacity at 2% drop: original {} users, energy-aware {} users = {} {paper}",
            cmp.original_capacity,
            cmp.energy_aware_capacity,
            pct(cmp.capacity_gain())
        );
    }
    let _ = writeln!(
        out,
        "\nsanity: Erlang-B closed form B(200, 180 erlang) = {:.3}%",
        erlang_b(200, 180.0) * 100.0
    );
    out
}

/// Figs. 12/13 — the espn display timeline.
pub fn fig1213(ctx: &Context) -> String {
    let mut out = header(
        "Figs. 12/13 — intermediate & final display of espn.go.com/sports",
        "intermediate 17.6 s -> 7 s; final 34.5 s -> 28.6 s",
    );
    let rows =
        display::benchmark_display_times(&ctx.corpus, &ctx.server, &ctx.cfg, PageVersion::Full);
    let espn = rows.iter().find(|r| r.key == "espn").expect("espn");
    let _ = writeln!(
        out,
        "intermediate display: original {:.1} s (paper 17.6), energy-aware {:.1} s (paper 7)",
        espn.orig_first_s.unwrap_or(f64::NAN),
        espn.ea_first_s.unwrap_or(f64::NAN)
    );
    let _ = writeln!(
        out,
        "final display:        original {:.1} s (paper 34.5), energy-aware {:.1} s (paper 28.6)",
        espn.orig_final_s, espn.ea_final_s
    );
    out
}

/// Fig. 14 — average display times over both benchmarks.
pub fn fig14(ctx: &Context) -> String {
    let mut out = header(
        "Fig. 14 — average screen display times",
        "full benchmark: first display -45.5%, final display -16.8%",
    );
    for version in [PageVersion::Mobile, PageVersion::Full] {
        let rows = display::benchmark_display_times(&ctx.corpus, &ctx.server, &ctx.cfg, version);
        let _ = writeln!(out, "\n{version} benchmark:");
        let _ = writeln!(
            out,
            "  {:<10} {:>11} {:>11} {:>11} {:>11}",
            "site", "orig first", "orig final", "ea first", "ea final"
        );
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:>10.1}s"),
            None => format!("{:>11}", "-"),
        };
        for r in &rows {
            let _ = writeln!(
                out,
                "  {:<10} {} {:>10.1}s {} {:>10.1}s",
                r.key,
                fmt_opt(r.orig_first_s),
                r.orig_final_s,
                fmt_opt(r.ea_first_s),
                r.ea_final_s
            );
        }
        let (first, final_) = display::fig14_savings(&rows);
        if version == PageVersion::Full {
            let _ = writeln!(
                out,
                "  savings: first {} (paper -45.5%), final {} (paper -16.8%)",
                pct(-first),
                pct(-final_)
            );
        } else {
            let _ = writeln!(
                out,
                "  savings: final {} (mobile draws no EA intermediate display)",
                pct(-final_)
            );
        }
    }
    out
}

/// Fig. 15 — prediction accuracy with and without the interest threshold.
pub fn fig15() -> String {
    let mut out = header(
        "Fig. 15 — GBRT prediction accuracy, ±interest threshold",
        "threshold adds ≥10 points at both Tp=9 and Td=20",
    );
    let trace = TraceDataset::generate(&TraceConfig::paper());
    // The four (α, T) cells each train their own model — evaluate them
    // in parallel and print in grid order.
    let cells: Vec<EvalCell> = [9.0, 20.0]
        .iter()
        .flat_map(|&t| {
            [None, Some(2.0)].map(|alpha_s| EvalCell {
                alpha_s,
                decision_threshold_s: t,
                seed: REPORT_SEED,
            })
        })
        .collect();
    let reports = accuracy_grid(&trace, &cells);
    for pair in reports.chunks(2) {
        let (without, with) = (&pair[0], &pair[1]);
        let _ = writeln!(
            out,
            "T = {:>4.0} s: without threshold {:>5.1}%, with threshold {:>5.1}% (gap {:+.1} pts)",
            without.decision_threshold_s,
            without.accuracy * 100.0,
            with.accuracy * 100.0,
            (with.accuracy - without.accuracy) * 100.0
        );
    }
    let _ = writeln!(out, "(paper: gap of at least 10 points at both thresholds)");
    // Cross-user generalization: the deploy-once argument of §4.3.3.
    let across = ewb_core::traces::cross_user_accuracy(&trace, 2.0, 9.0, 30);
    let _ = writeln!(
        out,
        "cross-user check: trained on 30 users, tested on the other 10 -> {:.1}% at Tp=9 \
         (deploy-once holds)",
        across.accuracy * 100.0
    );
    out
}

/// Fig. 16 — the six Table 6 cases over trace-driven sessions.
pub fn fig16(ctx: &Context, n_users: u32, max_sessions: u32) -> String {
    let mut out = header(
        "Fig. 16 — power & delay savings of the six policy cases",
        "Accurate-9 power-max 26.1%; Accurate-20 delay-max 13.6%; Original Always-off delay -1.47%",
    );
    let trace = TraceDataset::generate(&TraceConfig::paper());
    let predictor =
        ReadingTimePredictor::train_with_interest_threshold(&trace, 2.0, &reading_time_params());
    // The seven cases are independent: fan them out over scoped threads.
    let sessions = cases16::select_sessions(&trace, n_users, max_sessions);
    assert!(!sessions.is_empty(), "no sessions selected");
    let all_cases: Vec<Case> = std::iter::once(Case::Original)
        .chain(Case::TABLE6)
        .collect();
    let totals: Vec<(Case, f64, f64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = all_cases
            .iter()
            .map(|&case| {
                let sessions = &sessions;
                let predictor = &predictor;
                scope.spawn(move |_| {
                    let (j, s) = cases16::run_case(
                        &ctx.corpus,
                        &ctx.server,
                        &ctx.cfg,
                        sessions,
                        case,
                        predictor,
                    );
                    (case, j, s)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("case worker panicked"))
            .collect()
    })
    .expect("thread scope");
    let rows = cases16::to_outcomes(&totals);
    let _ = writeln!(
        out,
        "sessions from {n_users} users (≤{max_sessions} sessions each)\n"
    );
    let _ = writeln!(
        out,
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "case", "energy J", "load time s", "power sav", "delay sav"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<26} {:>12.1} {:>12.1} {:>12} {:>12}",
            r.case,
            r.joules,
            r.load_time_s,
            pct(r.power_saving),
            pct(r.delay_saving)
        );
    }
    let _ = writeln!(
        out,
        "\n(paper: Accurate-9 +26.1% power; Accurate-20 +13.6% delay; \
         Original Always-off -1.47% delay, Energy-aware Always-off +9.2% delay)"
    );
    out
}

/// Table 3 — the benchmark inventory.
pub fn table3(ctx: &Context) -> String {
    let mut out = header(
        "Table 3 — benchmark webpages",
        "ten sites, mobile + full versions (espn full = 760 KB)",
    );
    let _ = writeln!(
        out,
        "{:<10} {:<22} {:>9} {:>8} | {:<28} {:>9} {:>8}",
        "key", "mobile label", "KB", "objects", "full label", "KB", "objects"
    );
    for site in ctx.corpus.sites() {
        let _ = writeln!(
            out,
            "{:<10} {:<22} {:>9.0} {:>8} | {:<28} {:>9.0} {:>8}",
            site.key,
            site.mobile_label,
            site.mobile.total_bytes() as f64 / 1024.0,
            site.mobile.object_count(),
            site.full_label,
            site.full.total_bytes() as f64 / 1024.0,
            site.full.object_count(),
        );
    }
    out
}

/// Table 4 — Pearson correlation between reading time and the features.
pub fn table4() -> String {
    let mut out = header(
        "Table 4 — Pearson correlation: reading time vs each feature",
        "all coefficients ≈0 — no linear predictor works",
    );
    let trace = TraceDataset::generate(&TraceConfig::paper());
    for (name, r) in trace.pearson_table() {
        let _ = writeln!(out, "  {name:<28} {r:>7.4}");
    }
    out
}

/// Table 5 — power per state, re-measured from the simulated radio.
pub fn table5(ctx: &Context) -> String {
    let mut out = header(
        "Table 5 — handset power per state (measured from the model)",
        "IDLE 0.15 / FACH 0.63 / DCH 1.15 / DCH+tx 1.25 / full CPU 0.60 W",
    );
    for (name, watts) in scenario::measured_state_powers(&ctx.cfg.rrc) {
        let _ = writeln!(out, "  {name:<36} {watts:>6.3} W");
    }
    out
}

/// Table 7 — prediction cost vs forest size (wall-clock on this host,
/// energy scaled at the paper's 0.6 W fully-busy-CPU figure).
pub fn table7() -> String {
    let mut out = header(
        "Table 7 — prediction cost vs number of decision trees",
        "paper (smartphone): 10000 trees -> 0.295 s / 0.177 J",
    );
    // A small training set is enough: prediction cost depends only on the
    // forest size.
    let trace = TraceDataset::generate(&TraceConfig {
        users: 4,
        visits_per_user: 150,
        ..TraceConfig::paper()
    });
    let engaged = trace.engaged_only(2.0);
    let rows: Vec<&ewb_core::traces::PageVisit> = engaged.visits().iter().take(200).collect();
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>14} {:>16} {:>14}",
        "trees", "flat ms", "enum ms", "batch(200) ms", "energy J*"
    );
    for n_trees in [1000usize, 10_000, 20_000] {
        let predictor = ReadingTimePredictor::train(
            &engaged,
            &GbrtParams {
                n_trees,
                max_leaves: 8,
                learning_rate: 0.05,
                min_samples_leaf: 8,
                ..GbrtParams::default()
            },
        );
        // Deployed path: the flattened SoA forest.
        let start = std::time::Instant::now();
        let mut sink = 0.0;
        for v in &rows {
            sink += predictor.predict_seconds(&v.features);
        }
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        let per = elapsed / rows.len() as f64;
        // Same forest, walked through the enum node representation.
        let start = std::time::Instant::now();
        let mut sink = 0.0;
        for v in &rows {
            sink += predictor.model().predict(&v.features.to_vec());
        }
        let enum_per = start.elapsed().as_secs_f64() / rows.len() as f64;
        std::hint::black_box(sink);
        // The paper's phone runs one prediction through 10 000 trees in
        // 0.295 s at 0.6 W; energy here = host-time × 0.6 W equivalent.
        let _ = writeln!(
            out,
            "{:>8} {:>14.3} {:>14.3} {:>16.1} {:>14.4}",
            n_trees,
            per * 1000.0,
            enum_per * 1000.0,
            elapsed * 1000.0,
            per * 0.6
        );
    }
    let _ = writeln!(
        out,
        "\n*energy at the paper's 0.6 W busy-CPU draw; the host CPU is far\n\
         faster than the 2009 handset, so compare scaling (linear in trees),\n\
         not absolute times"
    );
    out
}

/// Robustness — the loss sweep: fault profile × loss rate, both browsers.
pub fn robustness_report(ctx: &Context) -> String {
    let mut out = header(
        "Robustness — energy-aware browsing on a faulty 3G link",
        "not in the paper: fault-injection extension (loss sweep, fixed seed)",
    );
    let rows = robustness::sweep(&ctx.corpus, &ctx.server, &ctx.cfg, REPORT_SEED);
    let _ = writeln!(
        out,
        "mobile benchmark, 20 s reading, seed {REPORT_SEED}; means across sites\n"
    );
    let _ = writeln!(
        out,
        "  {:<8} {:>5} {:>11} {:>11} {:>11} {:>11} {:>9} {:>9} {:>9}",
        "profile", "loss", "orig load", "orig J", "ea load", "ea J", "saving", "degraded", "failed"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "  {:<8} {:>4.0}% {:>10.2}s {:>10.1}J {:>10.2}s {:>10.1}J {:>9} {:>9} {:>9}",
            r.profile.name(),
            r.loss * 100.0,
            r.orig_load_s,
            r.orig_energy_j,
            r.ea_load_s,
            r.ea_energy_j,
            pct(r.saving()),
            r.orig_degraded + r.ea_degraded,
            r.orig_failed_objects + r.ea_failed_objects,
        );
    }
    out
}
