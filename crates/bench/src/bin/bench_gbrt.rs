//! GBRT engine micro-benchmark: training throughput of the pre-sorted
//! trainer vs the original per-node re-sorting trainer, and prediction
//! latency of the flattened SoA forest vs the enum-node walk, at Table 7
//! scale (20 000 trees of 8 leaves). Prints a summary and writes
//! `BENCH_gbrt.json` for tracking.

use ewb_core::gbrt::{FlatForest, Gbrt, GbrtModel, GbrtParams};
use ewb_core::traces::{TraceConfig, TraceDataset};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Minimum of `reps` timed runs, seconds.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // Training throughput on the paper-scale trace (40 users × 240
    // visits) — the dataset the Fig. 15 model actually trains on.
    let trace = TraceDataset::generate(&TraceConfig::paper());
    let data = trace.to_gbrt_dataset();
    let n_rows = data.len();

    // -- Training: 100 trees of 8 leaves, the Fig. 15 model shape. -----
    let train_params = GbrtParams {
        n_trees: 100,
        max_leaves: 8,
        min_samples_leaf: 8,
        ..GbrtParams::default()
    };
    // Warm up once, then take the best of three.
    let _ = Gbrt::fit(&data, &train_params);
    let fast_s = time_min(3, || Gbrt::fit(&data, &train_params));
    let reference_s = time_min(3, || Gbrt::fit_reference(&data, &train_params));
    let effective_rows = n_rows * train_params.n_trees;
    let train_speedup = reference_s / fast_s;

    // -- Prediction: one row through a 20 000-tree forest (Table 7). ---
    // Prediction cost depends only on forest size, so a small training
    // set keeps the 20 000-tree fit quick.
    let small = TraceDataset::generate(&TraceConfig {
        users: 4,
        visits_per_user: 150,
        ..TraceConfig::paper()
    });
    let data = small.to_gbrt_dataset();
    let forest_params = GbrtParams {
        n_trees: 20_000,
        max_leaves: 8,
        learning_rate: 0.05,
        min_samples_leaf: 8,
        ..GbrtParams::default()
    };
    let model: GbrtModel = Gbrt::fit(&data, &forest_params);
    let flat = FlatForest::from_model(&model);
    let row = data.row(0).to_vec();
    assert_eq!(flat.predict(&row).to_bits(), model.predict(&row).to_bits());
    // Each measured run performs `calls` predictions to swamp timer noise.
    let calls = 200;
    let enum_s = time_min(5, || {
        let mut acc = 0.0;
        for _ in 0..calls {
            acc += model.predict(black_box(&row));
        }
        acc
    }) / calls as f64;
    let flat_s = time_min(5, || {
        let mut acc = 0.0;
        for _ in 0..calls {
            acc += flat.predict(black_box(&row));
        }
        acc
    }) / calls as f64;
    let ns_per_tree = |s: f64| s * 1e9 / forest_params.n_trees as f64;
    let predict_speedup = enum_s / flat_s;

    // -- Batched prediction: the fleet simulator's entry point. --------
    // predict_batch walks all rows level-synchronously through each
    // tree (SoA, blocked), bit-identical to the per-row walk.
    let n_batch = 512;
    let n_features = data.row(0).len();
    let rows: Vec<f64> = (0..n_batch)
        .flat_map(|i| data.row(i % data.len()).to_vec())
        .collect();
    let mut batch_out = vec![0.0; n_batch];
    flat.predict_batch(&rows, &mut batch_out);
    for (i, &y) in batch_out.iter().enumerate() {
        let single = flat.predict(&rows[i * n_features..(i + 1) * n_features]);
        assert_eq!(y.to_bits(), single.to_bits(), "batch row {i}");
    }
    let single_rows_s = time_min(5, || {
        let mut acc = 0.0;
        for i in 0..n_batch {
            acc += flat.predict(black_box(&rows[i * n_features..(i + 1) * n_features]));
        }
        acc
    });
    let batch_rows_s = time_min(5, || {
        flat.predict_batch(black_box(&rows), &mut batch_out);
        batch_out[0]
    });
    let single_rows_per_s = n_batch as f64 / single_rows_s;
    let batch_rows_per_s = n_batch as f64 / batch_rows_s;
    let batch_speedup = single_rows_s / batch_rows_s;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"train\": {{");
    let _ = writeln!(json, "    \"n_rows\": {n_rows},");
    let _ = writeln!(json, "    \"n_trees\": {},", train_params.n_trees);
    let _ = writeln!(json, "    \"reference_s\": {reference_s:.4},");
    let _ = writeln!(json, "    \"fast_s\": {fast_s:.4},");
    let _ = writeln!(
        json,
        "    \"reference_rows_per_s\": {:.0},",
        effective_rows as f64 / reference_s
    );
    let _ = writeln!(
        json,
        "    \"fast_rows_per_s\": {:.0},",
        effective_rows as f64 / fast_s
    );
    let _ = writeln!(json, "    \"speedup\": {train_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"predict\": {{");
    let _ = writeln!(json, "    \"n_trees\": {},", forest_params.n_trees);
    let _ = writeln!(
        json,
        "    \"enum_ns_per_tree\": {:.2},",
        ns_per_tree(enum_s)
    );
    let _ = writeln!(
        json,
        "    \"flat_ns_per_tree\": {:.2},",
        ns_per_tree(flat_s)
    );
    let _ = writeln!(json, "    \"speedup\": {predict_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"predict_batch\": {{");
    let _ = writeln!(json, "    \"rows\": {n_batch},");
    let _ = writeln!(json, "    \"n_trees\": {},", forest_params.n_trees);
    let _ = writeln!(json, "    \"single_rows_per_s\": {single_rows_per_s:.0},");
    let _ = writeln!(json, "    \"batch_rows_per_s\": {batch_rows_per_s:.0},");
    let _ = writeln!(json, "    \"speedup\": {batch_speedup:.2}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    println!(
        "train  ({} rows x {} trees): reference {reference_s:.3} s, fast {fast_s:.3} s  \
         = {train_speedup:.2}x",
        n_rows, train_params.n_trees
    );
    println!(
        "predict ({} trees, one row): enum {:.1} ns/tree, flat {:.1} ns/tree  = {predict_speedup:.2}x",
        forest_params.n_trees,
        ns_per_tree(enum_s),
        ns_per_tree(flat_s)
    );
    println!(
        "batch   ({} trees, {n_batch} rows): {single_rows_per_s:.0} rows/s per-row, \
         {batch_rows_per_s:.0} rows/s batched  = {batch_speedup:.2}x",
        forest_params.n_trees
    );
    ewb_bench::write_atomic("BENCH_gbrt.json", &json);
    println!("wrote BENCH_gbrt.json");
}
