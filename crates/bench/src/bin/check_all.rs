//! `check_all` — the full `ewb-check` verification gauntlet in one run.
//!
//! Stages, in order:
//!
//! 1. **Exhaustive sweep** — every schedule over the default alphabet up
//!    to `--depth` (default 6, ~137 k runs) against the real machine.
//!    Must be violation-free.
//! 2. **Harness teeth** — every seeded mutant must be caught by a
//!    depth-3 exhaustive sweep with a shrunk counterexample of ≤8 steps.
//!    A harness that cannot kill its mutants proves nothing.
//! 3. **Fuzz campaign** — `--seeds` (default 256) coverage-guided random
//!    schedules with continuous durations. Must be violation-free.
//! 4. **Corpus replay** — every scenario under `--corpus` (default: the
//!    built-in `crates/check/corpus/`) must replay green, and the corpus
//!    itself must kill the swapped-timers mutant.
//! 5. **Pipeline oracles** — mode agreement and zero-fault identity over
//!    the full benchmark corpus, both page versions.
//!
//! On any failure the counterexample (when one exists) is written as a
//! replayable artifact under `target/check_artifacts/` and the process
//! exits non-zero.

use ewb_check::corpus;
use ewb_check::pipeline::check_all_sites;
use ewb_check::{default_alphabet, exhaustive, fuzz, Counterexample, Mutant};
use ewb_rrc::RrcConfig;
use std::path::PathBuf;
use std::process::ExitCode;

/// Seed for the pipeline oracles and the page corpus.
const PIPELINE_SEED: u64 = 7;

/// Maximum steps per fuzzed scenario.
const FUZZ_MAX_STEPS: usize = 12;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn artifacts_dir() -> PathBuf {
    let dir = PathBuf::from("target/check_artifacts");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

fn write_artifact(stage: &str, cex: &Counterexample) {
    let path = artifacts_dir().join(format!("{stage}.txt"));
    let jsonl = path.with_extension("jsonl");
    std::fs::write(&path, format!("{cex}\n")).expect("write counterexample");
    std::fs::write(&jsonl, format!("{}\n", cex.scenario.to_json_line()))
        .expect("write replayable scenario");
    eprintln!(
        "  counterexample written to {} and {}",
        path.display(),
        jsonl.display()
    );
}

fn main() -> ExitCode {
    let depth: usize = flag_value("--depth")
        .map(|v| v.parse().expect("--depth takes an integer"))
        .unwrap_or(6);
    let seeds: u64 = flag_value("--seeds")
        .map(|v| v.parse().expect("--seeds takes an integer"))
        .unwrap_or(256);
    let corpus_dir = flag_value("--corpus")
        .map(PathBuf::from)
        .unwrap_or_else(corpus::builtin_corpus_dir);

    let cfg = RrcConfig::paper();
    let mut failed = false;

    // Stage 1: exhaustive sweep on the real machine.
    let sweep = exhaustive(&cfg, &default_alphabet(), depth, Mutant::None);
    println!(
        "exhaustive: depth {depth}, {} runs, {} failing, {} coverage keys",
        sweep.runs,
        sweep.failing_runs,
        sweep.coverage.len()
    );
    if let Some(cex) = &sweep.counterexample {
        eprintln!("exhaustive sweep FAILED:\n{cex}");
        write_artifact("exhaustive", cex);
        failed = true;
    }

    // Stage 2: harness teeth — every mutant must die, quickly.
    for m in Mutant::ALL_FAULTY {
        let r = exhaustive(&cfg, &default_alphabet(), 3, m);
        match r.counterexample {
            Some(cex) if cex.scenario.steps.len() <= 8 => {
                println!(
                    "teeth: {} caught in {} step(s) ({} failing run(s))",
                    m.label(),
                    cex.scenario.steps.len(),
                    r.failing_runs
                );
            }
            Some(cex) => {
                eprintln!(
                    "teeth FAILED: {} counterexample did not shrink to ≤8 steps:\n{cex}",
                    m.label()
                );
                write_artifact(&format!("teeth-{}", m.label()), &cex);
                failed = true;
            }
            None => {
                eprintln!("teeth FAILED: mutant {} survived the sweep", m.label());
                failed = true;
            }
        }
    }

    // Stage 3: fuzz campaign.
    let fz = fuzz(&cfg, seeds, FUZZ_MAX_STEPS, Mutant::None);
    println!(
        "fuzz: {} seeds, {} failing, {} coverage keys, {} retained",
        fz.seeds_run,
        fz.failing_seeds,
        fz.coverage.len(),
        fz.corpus.len()
    );
    if let Some(cex) = &fz.counterexample {
        eprintln!("fuzz campaign FAILED:\n{cex}");
        write_artifact("fuzz", cex);
        failed = true;
    }

    // Stage 4: corpus replay — green against the real machine, lethal
    // against the swapped-timers mutant.
    match corpus::load_dir(&corpus_dir) {
        Ok(scenarios) => {
            if scenarios.len() < 10 {
                eprintln!(
                    "corpus FAILED: only {} scenario(s) under {} (need ≥10)",
                    scenarios.len(),
                    corpus_dir.display()
                );
                failed = true;
            }
            let mut green = 0usize;
            for report in corpus::replay(&cfg, &scenarios, Mutant::None) {
                if report.ok() {
                    green += 1;
                } else {
                    eprintln!("corpus scenario FAILED: {}", report.scenario);
                    for v in &report.violations {
                        eprintln!("  {v}");
                    }
                    failed = true;
                }
            }
            println!(
                "corpus: {green}/{} scenarios green ({})",
                scenarios.len(),
                corpus_dir.display()
            );
            let kills = corpus::replay(&cfg, &scenarios, Mutant::SwappedTimers)
                .iter()
                .filter(|r| !r.ok())
                .count();
            if kills == 0 {
                eprintln!("corpus FAILED: no scenario kills the swapped-timers mutant");
                failed = true;
            } else {
                println!("corpus teeth: {kills} scenario(s) kill swapped-timers");
            }
        }
        Err(e) => {
            eprintln!("corpus FAILED: {e}");
            failed = true;
        }
    }

    // Stage 5: pipeline oracles over the full page corpus.
    let violations = check_all_sites(PIPELINE_SEED);
    if violations.is_empty() {
        println!("pipeline: mode agreement + zero-fault identity clean on all sites");
    } else {
        eprintln!(
            "pipeline oracles FAILED ({} violation(s)):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        failed = true;
    }

    if failed {
        eprintln!("check_all: FAILED");
        ExitCode::FAILURE
    } else {
        println!("check_all: all stages clean");
        ExitCode::SUCCESS
    }
}
