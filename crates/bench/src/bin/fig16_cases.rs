//! Fig. 16 — the six policy cases. Pass `--quick` for a small slice;
//! `--timeline PATH` additionally exports the reference session's
//! observability timeline as JSON lines to PATH.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (users, sessions) = if quick { (2, 4) } else { (6, 10) };
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig16(&ctx, users, sessions));
    if let Some(path) = ewb_bench::timeline_arg() {
        ewb_bench::write_timeline(&ctx, &path);
    }
}
