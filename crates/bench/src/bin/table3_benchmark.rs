//! Table 3 — benchmark inventory.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::table3(&ctx));
}
