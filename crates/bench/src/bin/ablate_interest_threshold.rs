//! Ablation — interest threshold vs accuracy.
fn main() {
    print!("{}", ewb_bench::ablations::interest_threshold());
}
