//! Fig. 3 — the intuitive approach break-even.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig03(&ctx));
}
