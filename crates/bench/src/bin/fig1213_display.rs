//! Figs. 12/13 — espn display times.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig1213(&ctx));
}
