//! Related-work baseline — remote transcoding proxy.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::ablations::proxy_baseline(&ctx));
}
