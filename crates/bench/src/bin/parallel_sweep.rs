//! Intra-page parallelism sweep: per-plan latency/energy over the
//! image-heavy full benchmark pages, plus the learned controller row.
//!
//! Usage: `parallel_sweep [--smoke] [--write-golden]`
//!
//! Before printing anything the binary runs the parallel differential
//! oracle (`ewb_check::parallel::check_parallel_all`): host-parallel vs
//! host-sequential execution of every grid plan must be bit-identical
//! per page and per session, under clean and lossy-10% streams, on all
//! four radio backends. A red differential bit can never ship inside a
//! green sweep.
//!
//! `--smoke` is what the parallel CI job runs (identical work — the
//! corpus is already CI-sized). `--write-golden` refreshes
//! `crates/core/tests/golden/parallel.json`, the summary the
//! `golden_parallel` test pins byte-for-byte.

use ewb_core::experiments::parallel::{self, PlanRow};
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        assert!(
            a == "--smoke" || a == "--write-golden",
            "unknown argument {a:?} (try --smoke / --write-golden)"
        );
    }
    let ctx = ewb_bench::Context::new();

    // -- Differential oracle before any reporting. -----------------------
    let violations = ewb_check::parallel::check_parallel_all(ewb_bench::REPORT_SEED);
    assert!(
        violations.is_empty(),
        "parallel differential oracle found {} violations, first: {:?}",
        violations.len(),
        violations.first()
    );
    println!(
        "differential: host-parallel == host-sequential to the bit across \
         plans {{1,2,4,8}}t x {{clean,lossy10}} x {{3g,lte,wifi,5g}}"
    );

    // -- The sweep. ------------------------------------------------------
    let rows = parallel::sweep(&ctx.corpus, &ctx.server, &ctx.cfg);
    let table = parallel::plan_table(&ctx.corpus, &ctx.server, &ctx.cfg);

    print!(
        "{}",
        ewb_bench::header(
            "Intra-page parallelism (plan sweep + learned controller)",
            "full-page benchmark, energy-aware pipeline",
        )
    );
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "plan", "energy (J)", "load (s)", "speedup", "power", "delay"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>8.2}x {:>9} {:>9}",
            r.plan,
            r.joules,
            r.load_time_s,
            r.pipeline_speedup,
            ewb_bench::pct(r.energy_saving),
            ewb_bench::pct(r.delay_saving),
        );
    }

    let find = |id: &str| {
        rows.iter()
            .find(|r| r.plan == id)
            .unwrap_or_else(|| panic!("missing {id} row"))
    };
    let d4 = find("d4s4o1");
    assert!(
        d4.pipeline_speedup >= 1.5,
        "acceptance: 4-thread pipeline speedup must reach 1.5x, got {:.3}",
        d4.pipeline_speedup
    );
    let learned = find("learned");
    assert!(
        learned.energy_saving >= 0.0,
        "acceptance: the learned controller must never lose energy vs \
         always-sequential, got {:.6}",
        learned.energy_saving
    );
    let parallel_pages = table.iter().filter(|c| c.plan != "seq").count();
    println!(
        "\n4-thread pipeline speedup {:.2}x; learned controller saves {} \
         (never loses), parallelizing {}/{} pages.",
        d4.pipeline_speedup,
        ewb_bench::pct(learned.energy_saving),
        parallel_pages,
        table.len(),
    );

    // -- Artifacts. ------------------------------------------------------
    let json = bench_json(&rows, d4.pipeline_speedup, learned.energy_saving);
    ewb_bench::write_atomic("BENCH_parallel.json", &json);
    println!("wrote BENCH_parallel.json");

    if args.iter().any(|a| a == "--write-golden") {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../core/tests/golden/parallel.json"
        );
        ewb_bench::write_atomic(path, parallel::summary_json(&rows, &table));
        eprintln!("wrote {path}");
    }
}

/// The tracked benchmark artifact: oracle verdict, headline numbers,
/// and every sweep cell.
fn bench_json(rows: &[PlanRow], speedup_4t: f64, learned_saving: f64) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"differential_grid_ok\": true,");
    let _ = writeln!(json, "  \"plans\": {},", rows.len());
    let _ = writeln!(json, "  \"speedup_4t\": {speedup_4t:.6},");
    let _ = writeln!(json, "  \"learned_energy_saving\": {learned_saving:.6},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"plan\": \"{}\",", r.plan);
        let _ = writeln!(json, "      \"joules\": {:.6},", r.joules);
        let _ = writeln!(json, "      \"load_time_s\": {:.6},", r.load_time_s);
        let _ = writeln!(
            json,
            "      \"pipeline_speedup\": {:.6},",
            r.pipeline_speedup
        );
        let _ = writeln!(json, "      \"energy_saving\": {:.6},", r.energy_saving);
        let _ = writeln!(json, "      \"delay_saving\": {:.6}", r.delay_saving);
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}
