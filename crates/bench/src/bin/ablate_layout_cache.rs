//! Extension — layout caching on repeat visits.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::ablations::layout_cache(&ctx));
}
