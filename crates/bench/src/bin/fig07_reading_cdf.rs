//! Fig. 7 — reading-time CDF.
fn main() {
    print!("{}", ewb_bench::reports::fig07());
}
