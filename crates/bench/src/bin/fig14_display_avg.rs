//! Fig. 14 — average display times.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig14(&ctx));
}
