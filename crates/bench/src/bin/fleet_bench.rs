//! Fleet-scale population benchmark: throughput and scaling of the
//! sharded work-stealing simulator in `ewb-fleet`, plus the population
//! distributions it produces. Prints a summary and writes
//! `BENCH_fleet.json` for tracking.
//!
//! Usage: `fleet_bench [--smoke] [--users N] [--shards N]`
//!
//! `--smoke` selects the CI population (2 000 users × 4 shards) and is
//! what the fleet-smoke CI job runs; the default is a 100 000-user
//! population with 64 shards. Either way the binary asserts the
//! scheduling-invariance grid (shards {1, 2, 7, 64} × threads {1, 8})
//! before timing anything, so a red determinism bit can never ship
//! inside a green benchmark.
//!
//! Crash-safety flags (any of them switches to a single supervised run
//! instead of the benchmark grid, printing a `summary_fingerprint:` line
//! the CI chaos job compares across clean, killed, and resumed runs):
//!
//! * `--supervised` — run under the supervisor with no other chaos.
//! * `--checkpoint PATH` — commit per-shard progress to PATH (atomic
//!   tmp+rename) as the run proceeds.
//! * `--resume` — start from the checkpoint instead of from scratch.
//! * `--kill-after N` — stop (exit code 3) once N users are committed:
//!   the deterministic stand-in for `kill -9`.
//! * `--chaos-panic SHARD:USER` — inject a worker panic when SHARD
//!   reaches USER on its first attempt (repeatable); the supervisor must
//!   absorb it.

use ewb_fleet::{
    run_fleet, run_fleet_supervised, summary_fingerprint, ChaosConfig, FleetConfig, FleetEnv,
    FleetError, FleetSummary, PanicPoint, SupervisorOptions,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Minimum of `reps` timed runs, seconds.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct Args {
    users: u64,
    shards: usize,
    smoke: bool,
    supervised: bool,
    checkpoint: Option<PathBuf>,
    resume: bool,
    kill_after: Option<u64>,
    chaos_panics: Vec<PanicPoint>,
}

impl Args {
    /// Any crash-safety flag selects the single supervised run.
    fn wants_supervised(&self) -> bool {
        self.supervised
            || self.checkpoint.is_some()
            || self.resume
            || self.kill_after.is_some()
            || !self.chaos_panics.is_empty()
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        users: 100_000,
        shards: 64,
        smoke: false,
        supervised: false,
        checkpoint: None,
        resume: false,
        kill_after: None,
        chaos_panics: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.users = 2_000;
                args.shards = 4;
            }
            "--users" => {
                let v = it.next().expect("--users needs a value");
                args.users = v.parse().expect("--users must be an integer");
            }
            "--shards" => {
                let v = it.next().expect("--shards needs a value");
                args.shards = v.parse().expect("--shards must be an integer");
            }
            "--supervised" => args.supervised = true,
            "--checkpoint" => {
                let v = it.next().expect("--checkpoint needs a path");
                args.checkpoint = Some(PathBuf::from(v));
            }
            "--resume" => args.resume = true,
            "--kill-after" => {
                let v = it.next().expect("--kill-after needs a user count");
                args.kill_after = Some(v.parse().expect("--kill-after must be an integer"));
            }
            "--chaos-panic" => {
                let v = it.next().expect("--chaos-panic needs SHARD:USER");
                let (shard, user) = v
                    .split_once(':')
                    .expect("--chaos-panic takes SHARD:USER (e.g. 2:117)");
                args.chaos_panics.push(PanicPoint {
                    shard: shard
                        .parse()
                        .expect("--chaos-panic shard must be an integer"),
                    user_id: user.parse().expect("--chaos-panic user must be an integer"),
                    on_attempt: 0,
                });
            }
            other => panic!(
                "unknown argument {other:?} (try --smoke / --users N / --shards N / \
                 --supervised / --checkpoint PATH / --resume / --kill-after N / \
                 --chaos-panic SHARD:USER)"
            ),
        }
    }
    args
}

/// The supervised path: one run under the crash-safe runner, a
/// `summary_fingerprint:` line for the CI chaos job to diff, exit code 3
/// when the deterministic kill switch trips.
fn run_supervised(args: &Args) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let prep_start = Instant::now();
    let env = FleetEnv::prepare();
    println!(
        "prepared fleet environment in {:.2} s",
        prep_start.elapsed().as_secs_f64()
    );
    let cfg = FleetConfig {
        shards: args.shards,
        threads: cores.min(8),
        ..FleetConfig::paper(args.users)
    };
    let chaos = ChaosConfig {
        panics: args.chaos_panics.clone(),
        ..ChaosConfig::none()
    };
    let options = SupervisorOptions {
        checkpoint_path: args.checkpoint.clone(),
        resume: args.resume,
        commit_every_users: (args.users / 64).max(1),
        kill_after_users: args.kill_after,
    };
    match run_fleet_supervised(&env, &cfg, &chaos, &options) {
        Ok(report) => {
            println!(
                "supervised run complete: {} users ({} resumed from checkpoint), \
                 {} panic(s) absorbed, {} shard(s) reclaimed, {} checkpoint commit(s)",
                report.summary.users,
                report.users_resumed,
                report.worker_panics,
                report.shards_reclaimed,
                report.checkpoint_commits,
            );
            println!(
                "population: saved {:.1} J/user/day mean, optimized p95 load {:.2} s",
                report.summary.saved_mean_j(),
                report.summary.load_quantile_s(true, 0.95),
            );
            println!(
                "summary_fingerprint: {:#010x}",
                summary_fingerprint(&report.summary)
            );
        }
        Err(e @ FleetError::Interrupted { .. }) => {
            println!("{e}");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.wants_supervised() {
        run_supervised(&args);
        return;
    }
    let threads_grid = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let prep_start = Instant::now();
    let env = FleetEnv::prepare();
    let prepare_s = prep_start.elapsed().as_secs_f64();
    println!(
        "prepared fleet environment ({} load profiles) in {prepare_s:.2} s",
        120
    );

    // -- Determinism grid (the ISSUE acceptance grid). -----------------
    // A small population keeps the 8 extra runs cheap; scheduling
    // invariance does not depend on the population size (the proptest
    // suite covers random shapes).
    let grid_users = args.users.min(2_000);
    let reference = run_fleet(
        &env,
        &FleetConfig {
            shards: 1,
            threads: 1,
            ..FleetConfig::paper(grid_users)
        },
    );
    for shards in [1usize, 2, 7, 64] {
        for threads in [1usize, 8] {
            let summary = run_fleet(
                &env,
                &FleetConfig {
                    shards,
                    threads,
                    ..FleetConfig::paper(grid_users)
                },
            );
            assert_eq!(
                summary, reference,
                "merged summary must be bit-identical (shards {shards}, threads {threads})"
            );
        }
    }
    println!(
        "determinism: merged summary bit-identical across shards {{1,2,7,64}} x threads {{1,8}} \
         ({grid_users} users)"
    );

    // -- Throughput scaling at 1/2/4/8 threads. ------------------------
    let reps = if args.smoke { 3 } else { 1 };
    let mut walls = Vec::new();
    let mut summary: Option<FleetSummary> = None;
    for &threads in &threads_grid {
        let cfg = FleetConfig {
            shards: args.shards,
            threads,
            ..FleetConfig::paper(args.users)
        };
        let wall_s = time_min(reps, || {
            let s = run_fleet(&env, &cfg);
            if summary.is_none() {
                summary = Some(s.clone());
            }
            s.sessions
        });
        walls.push(wall_s);
        let sessions = 2 * args.users;
        println!(
            "threads {threads}: {wall_s:.3} s, {:.0} sessions/s, {:.0} users/core-s",
            sessions as f64 / wall_s,
            args.users as f64 / (wall_s * threads.min(cores) as f64),
        );
    }
    let summary = summary.expect("at least one timed run");
    let t1 = walls[0];

    // The container may expose fewer cores than the 8-thread grid point;
    // `efficiency` divides by the thread count (the classical figure),
    // `efficiency_vs_cores` divides by the cores the threads can actually
    // occupy, which is the honest ceiling on this machine.
    let efficiency = |i: usize| (t1 / walls[i]) / threads_grid[i] as f64;
    let efficiency_vs_cores = |i: usize| (t1 / walls[i]) / threads_grid[i].min(cores) as f64;

    // -- Population distributions (from the timed summary). ------------
    let saved_mean = summary.saved_mean_j();
    let saved_p50 = summary.saved_quantile_j(0.5);
    let res_base = summary.residency_fractions(false);
    let res_opt = summary.residency_fractions(true);
    println!(
        "population: saved {saved_mean:.1} J/user/day mean ({:.1}% of baseline), p50 {saved_p50:.1} J",
        100.0 * summary.saved_fraction()
    );
    println!(
        "load time p50/p95/p99: baseline {:.2}/{:.2}/{:.2} s, optimized {:.2}/{:.2}/{:.2} s",
        summary.load_quantile_s(false, 0.50),
        summary.load_quantile_s(false, 0.95),
        summary.load_quantile_s(false, 0.99),
        summary.load_quantile_s(true, 0.50),
        summary.load_quantile_s(true, 0.95),
        summary.load_quantile_s(true, 0.99),
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"users\": {},", args.users);
    let _ = writeln!(json, "  \"sessions\": {},", summary.sessions);
    let _ = writeln!(json, "  \"visits\": {},", summary.visits);
    let _ = writeln!(json, "  \"shards\": {},", args.shards);
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"prepare_s\": {prepare_s:.3},");
    let _ = writeln!(json, "  \"determinism_grid_ok\": true,");
    let _ = writeln!(json, "  \"scaling\": [");
    for (i, &threads) in threads_grid.iter().enumerate() {
        let sessions_per_s = 2.0 * args.users as f64 / walls[i];
        let users_per_core_s = args.users as f64 / (walls[i] * threads.min(cores) as f64);
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"threads\": {threads},");
        let _ = writeln!(json, "      \"wall_s\": {:.4},", walls[i]);
        let _ = writeln!(json, "      \"sessions_per_s\": {sessions_per_s:.0},");
        let _ = writeln!(json, "      \"users_per_core_s\": {users_per_core_s:.0},");
        let _ = writeln!(json, "      \"efficiency\": {:.3},", efficiency(i));
        let _ = writeln!(
            json,
            "      \"efficiency_vs_cores\": {:.3}",
            efficiency_vs_cores(i)
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < threads_grid.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"population\": {{");
    let _ = writeln!(json, "    \"saved_mean_j\": {saved_mean:.3},");
    let _ = writeln!(json, "    \"saved_p50_j\": {saved_p50:.3},");
    let _ = writeln!(
        json,
        "    \"saved_fraction\": {:.4},",
        summary.saved_fraction()
    );
    let _ = writeln!(json, "    \"releases\": {},", summary.releases);
    for (label, optimized) in [("baseline", false), ("optimized", true)] {
        let _ = writeln!(json, "    \"{label}_load_s\": {{");
        let _ = writeln!(
            json,
            "      \"mean\": {:.4},",
            summary.load_mean_s(optimized)
        );
        let _ = writeln!(
            json,
            "      \"p50\": {:.4},",
            summary.load_quantile_s(optimized, 0.50)
        );
        let _ = writeln!(
            json,
            "      \"p95\": {:.4},",
            summary.load_quantile_s(optimized, 0.95)
        );
        let _ = writeln!(
            json,
            "      \"p99\": {:.4}",
            summary.load_quantile_s(optimized, 0.99)
        );
        let _ = writeln!(json, "    }},");
    }
    for (label, res) in [("baseline", res_base), ("optimized", res_opt)] {
        let _ = writeln!(json, "    \"{label}_residency\": {{");
        let _ = writeln!(json, "      \"idle\": {:.4},", res[0]);
        let _ = writeln!(json, "      \"promoting\": {:.4},", res[1]);
        let _ = writeln!(json, "      \"fach\": {:.4},", res[2]);
        let _ = writeln!(json, "      \"dch\": {:.4}", res[3]);
        let _ = writeln!(json, "    }}{}", if label == "baseline" { "," } else { "" });
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    println!(
        "summary_fingerprint: {:#010x}",
        summary_fingerprint(&summary)
    );
    ewb_bench::write_atomic("BENCH_fleet.json", &json);
    println!("wrote BENCH_fleet.json");
}
