//! Cross-backend policy sweep: re-runs the paper's headline cases on
//! every radio backend (3G RRC, LTE DRX, WiFi PSM, 5G cDRX) and
//! tabulates per-backend power/delay savings — does computation
//! reorganization still pay off when promotions are cheap?
//!
//! Usage: `backend_sweep [--smoke] [--write-golden]`
//!
//! Before printing anything the binary asserts the per-backend fleet
//! determinism grid: the per-site energy totals of the Accurate-9 case
//! are sharded over {1, 2, 7} shards × {1, 8} worker threads and the
//! merged integer-microjoule totals must be identical on every grid
//! point, for every backend. A red determinism bit can never ship
//! inside a green sweep.
//!
//! `--smoke` is what the backends CI job runs (identical work, the
//! corpus is already CI-sized; the flag only relaxes the artifact
//! destination to the working directory). `--write-golden` refreshes
//! `crates/core/tests/golden/backends.json`, the summary the
//! `golden_backends` test pins byte-for-byte.

use ewb_core::cases::Case;
use ewb_core::experiments::backends::{self, BackendCaseRow, CASES};
use ewb_core::rrc::{
    FiveGConfig, FiveGMachine, LteConfig, LteMachine, RadioBackend, RrcMachine, WifiConfig,
    WifiMachine,
};
use std::fmt::Write as _;

/// Integer microjoules of one per-site total — the associative merge
/// unit of the determinism grid (f64 summation is not associative;
/// integer addition is, so shard merges cannot depend on the split).
fn micro_j(joules: f64) -> u64 {
    let uj = (joules * 1e6).round();
    assert!(
        uj.is_finite() && (0.0..=u64::MAX as f64).contains(&uj),
        "energy {joules} J out of microjoule range"
    );
    uj as u64
}

/// Shards `per_site_uj` round-robin over `shards` shards, sums each
/// shard on its own scoped worker (up to `threads` running at once),
/// then merges shard subtotals in shard order.
fn sharded_total(per_site_uj: &[u64], shards: usize, threads: usize) -> u64 {
    let mut shard_totals = vec![0u64; shards];
    std::thread::scope(|scope| {
        for chunk in shard_totals.chunks_mut(threads).zip(0usize..) {
            let (chunk, chunk_idx) = chunk;
            let base = chunk_idx * threads;
            let mut workers = Vec::new();
            for (k, slot) in chunk.iter_mut().enumerate() {
                let shard = base + k;
                workers.push((
                    slot,
                    scope.spawn(move || {
                        per_site_uj
                            .iter()
                            .enumerate()
                            .filter(|(site, _)| site % shards == shard)
                            .map(|(_, &uj)| uj)
                            .sum::<u64>()
                    }),
                ));
            }
            for (slot, worker) in workers {
                *slot = worker.join().expect("shard worker panicked");
            }
        }
    });
    shard_totals.iter().sum()
}

/// Asserts the determinism grid for one backend's per-site totals.
fn assert_determinism_grid(backend: RadioBackend, per_site: &[(f64, f64)]) {
    let per_site_uj: Vec<u64> = per_site.iter().map(|&(j, _)| micro_j(j)).collect();
    let reference = sharded_total(&per_site_uj, 1, 1);
    for shards in [1usize, 2, 7] {
        for threads in [1usize, 8] {
            let total = sharded_total(&per_site_uj, shards, threads);
            assert_eq!(
                total, reference,
                "{backend}: merged µJ total differs at shards {shards}, threads {threads}"
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        assert!(
            a == "--smoke" || a == "--write-golden",
            "unknown argument {a:?} (try --smoke / --write-golden)"
        );
    }
    let ctx = ewb_bench::Context::new();

    // -- Determinism grid, per backend, before any reporting. -----------
    let grids = [
        (
            RadioBackend::ThreeG,
            backends::per_site_totals::<RrcMachine>(
                &ctx.corpus,
                &ctx.server,
                &ctx.cfg,
                ctx.cfg.rrc,
                Case::Accurate9,
            ),
        ),
        (
            RadioBackend::Lte,
            backends::per_site_totals::<LteMachine>(
                &ctx.corpus,
                &ctx.server,
                &ctx.cfg,
                LteConfig::calibrated(),
                Case::Accurate9,
            ),
        ),
        (
            RadioBackend::Wifi,
            backends::per_site_totals::<WifiMachine>(
                &ctx.corpus,
                &ctx.server,
                &ctx.cfg,
                WifiConfig::calibrated(),
                Case::Accurate9,
            ),
        ),
        (
            RadioBackend::FiveG,
            backends::per_site_totals::<FiveGMachine>(
                &ctx.corpus,
                &ctx.server,
                &ctx.cfg,
                FiveGConfig::calibrated(),
                Case::Accurate9,
            ),
        ),
    ];
    for (backend, per_site) in &grids {
        assert_determinism_grid(*backend, per_site);
    }
    println!(
        "determinism: merged µJ totals identical across shards {{1,2,7}} x threads {{1,8}} \
         on all {} backends",
        grids.len()
    );

    // -- The sweep. ------------------------------------------------------
    let rows = backends::sweep(&ctx.corpus, &ctx.server, &ctx.cfg);

    print!(
        "{}",
        ewb_bench::header(
            "Cross-backend policy savings (radio generalization)",
            "Table 6 cases re-run per radio backend; 3G = paper",
        )
    );
    println!(
        "{:<6} {:>24} {:>12} {:>12} {:>9} {:>9}",
        "radio", "case", "energy (J)", "load (s)", "power", "delay"
    );
    for r in &rows {
        println!(
            "{:<6} {:>24} {:>12.2} {:>12.2} {:>9} {:>9}",
            r.backend,
            r.case,
            r.joules,
            r.load_time_s,
            ewb_bench::pct(r.power_saving),
            ewb_bench::pct(r.delay_saving),
        );
    }
    let acc9 = |b: RadioBackend| backends::saving_of(&rows, b, Case::Accurate9);
    println!(
        "\nAccurate-9 power saving by backend: 3G {} > LTE {} / WiFi {} / 5G {} — \
         reorganization still pays everywhere, but the release win shrinks \
         with the tail.",
        ewb_bench::pct(acc9(RadioBackend::ThreeG)),
        ewb_bench::pct(acc9(RadioBackend::Lte)),
        ewb_bench::pct(acc9(RadioBackend::Wifi)),
        ewb_bench::pct(acc9(RadioBackend::FiveG)),
    );

    // -- Artifacts. ------------------------------------------------------
    let json = bench_json(&rows);
    ewb_bench::write_atomic("BENCH_backends.json", &json);
    println!("wrote BENCH_backends.json");

    if args.iter().any(|a| a == "--write-golden") {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../core/tests/golden/backends.json"
        );
        ewb_bench::write_atomic(path, backends::summary_json(&rows));
        eprintln!("wrote {path}");
    }
}

/// The tracked benchmark artifact: grid verdict plus every sweep cell.
fn bench_json(rows: &[BackendCaseRow]) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"determinism_grid_ok\": true,");
    let _ = writeln!(json, "  \"backends\": {},", RadioBackend::ALL.len());
    let _ = writeln!(json, "  \"cases\": {},", CASES.len());
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"backend\": \"{}\",", r.backend);
        let _ = writeln!(json, "      \"case\": \"{}\",", r.case);
        let _ = writeln!(json, "      \"joules\": {:.6},", r.joules);
        let _ = writeln!(json, "      \"load_time_s\": {:.6},", r.load_time_s);
        let _ = writeln!(json, "      \"power_saving\": {:.6},", r.power_saving);
        let _ = writeln!(json, "      \"delay_saving\": {:.6}", r.delay_saving);
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}
