//! Fig. 10 — open + reading energy.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig10(&ctx));
}
