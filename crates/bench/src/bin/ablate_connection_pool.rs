//! Ablation — EA connection-pool depth.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::ablations::connection_pool(&ctx));
}
