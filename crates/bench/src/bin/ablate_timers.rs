//! Ablation — T1/T2 sensitivity.
fn main() {
    print!("{}", ewb_bench::ablations::timers());
}
