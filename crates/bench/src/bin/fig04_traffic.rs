//! Fig. 4 — browser vs socket traffic.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig04(&ctx));
}
