//! Ablation — saving decomposition.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::ablations::saving_breakdown(&ctx));
}
