//! Fig. 11 — network capacity. Pass `--quick` for a short horizon.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let horizon = if quick { 20_000.0 } else { 4.0 * 3600.0 };
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig11(&ctx, horizon));
}
