//! Runs every report in sequence (the EXPERIMENTS.md generator).
//! Pass `--quick` to shrink the slow experiments.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ctx = ewb_bench::Context::new();
    use ewb_bench::{ablations, reports};
    print!("{}", reports::fig01(&ctx));
    print!("{}", reports::fig03(&ctx));
    print!("{}", reports::fig04(&ctx));
    print!("{}", reports::fig05(&ctx));
    print!("{}", reports::fig07());
    print!("{}", reports::fig08(&ctx));
    print!("{}", reports::fig09(&ctx));
    print!("{}", reports::fig10(&ctx));
    let horizon = if quick { 20_000.0 } else { 4.0 * 3600.0 };
    print!("{}", reports::fig11(&ctx, horizon));
    print!("{}", reports::fig1213(&ctx));
    print!("{}", reports::fig14(&ctx));
    print!("{}", reports::fig15());
    let (users, sessions) = if quick { (2, 4) } else { (6, 10) };
    print!("{}", reports::fig16(&ctx, users, sessions));
    print!("{}", reports::table3(&ctx));
    print!("{}", reports::table4());
    print!("{}", reports::table5(&ctx));
    print!("{}", reports::table7());
    print!("{}", ablations::promotion_energy());
    print!("{}", ablations::interest_threshold());
    print!("{}", ablations::gbrt_size());
    print!("{}", ablations::timers());
    print!("{}", ablations::saving_breakdown(&ctx));
    print!("{}", ablations::proxy_baseline(&ctx));
    print!("{}", ablations::layout_cache(&ctx));
    print!("{}", ablations::connection_pool(&ctx));
}
