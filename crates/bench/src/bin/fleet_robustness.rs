//! Fleet robustness sweep: what energy-aware browsing saves a population
//! when the network and the predictor both misbehave.
//!
//! Two sweeps, both over the same deterministic 5 000-user fleet
//! (`--smoke` drops to 500 users for CI):
//!
//! 1. **Fault tier × policy** — every user's sessions run on a degraded
//!    link (loss, jitter) for each captured [`FaultTier`]; the paper's
//!    policies are compared against the Original browser on the same
//!    tier.
//! 2. **Predictor outage** — a fraction of users lose the predictor
//!    mid-session and fall back to the intuitive always-off policy;
//!    savings degrade gracefully toward the intuitive line.
//!
//! The printed tables are the basis of the EXPERIMENTS.md "population
//! robustness" section.

use ewb_core::cases::Case;
use ewb_core::profile::FaultTier;
use ewb_fleet::{run_fleet, FleetConfig, FleetEnv};
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let users: u64 = if smoke { 500 } else { 5_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let prep_start = Instant::now();
    let env = FleetEnv::prepare_tiered(&FaultTier::ALL);
    println!(
        "prepared {} fault tiers in {:.2} s ({users} users per cell, seed 2013)",
        FaultTier::ALL.len(),
        prep_start.elapsed().as_secs_f64()
    );

    let base = FleetConfig {
        threads: cores.min(8),
        ..FleetConfig::paper(users)
    };

    // -- Sweep 1: fault tier × policy. ---------------------------------
    let policies: [(Case, &str); 3] = [
        (Case::EnergyAwareAlwaysOff, "Intuitive"),
        (Case::Accurate9, "Accurate-9"),
        (Case::Predict9, "Predict-9"),
    ];
    println!();
    println!("population robustness: fault tier x policy (baseline Original, same tier)");
    println!(
        "{:<12} {:<12} {:>12} {:>10} {:>14} {:>14}",
        "tier", "policy", "saved J/user", "saved %", "base p95 [s]", "opt p95 [s]"
    );
    for tier in FaultTier::ALL {
        for (case, name) in policies {
            let summary = run_fleet(
                &env,
                &FleetConfig {
                    tier,
                    optimized: case,
                    ..base
                },
            );
            println!(
                "{:<12} {:<12} {:>12.1} {:>9.1}% {:>14.2} {:>14.2}",
                tier.name(),
                name,
                summary.saved_mean_j(),
                100.0 * summary.saved_fraction(),
                summary.load_quantile_s(false, 0.95),
                summary.load_quantile_s(true, 0.95),
            );
        }
    }

    // -- Sweep 2: predictor outage (Predict-9, clean link). ------------
    println!();
    println!("predictor outage: Predict-9 users falling back to the intuitive policy");
    println!(
        "{:<14} {:>12} {:>10} {:>18} {:>16}",
        "outage prob", "saved J/user", "saved %", "degraded visits", "degraded share"
    );
    for outage in [0.0f64, 0.1, 0.3, 0.5, 1.0] {
        let summary = run_fleet(
            &env,
            &FleetConfig {
                predictor_outage_prob: outage,
                ..base
            },
        );
        println!(
            "{:<14.2} {:>12.1} {:>9.1}% {:>18} {:>15.1}%",
            outage,
            summary.saved_mean_j(),
            100.0 * summary.saved_fraction(),
            summary.degraded_policy_visits,
            100.0 * summary.degraded_policy_visits as f64 / summary.visits as f64,
        );
    }
}
