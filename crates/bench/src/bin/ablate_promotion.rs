//! Ablation — promotion energy vs Fig. 3 break-even.
fn main() {
    print!("{}", ewb_bench::ablations::promotion_energy());
}
