//! Fig. 8 — transmission/load times.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig08(&ctx));
}
