//! Fig. 1 — RRC state power levels.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig01(&ctx));
}
