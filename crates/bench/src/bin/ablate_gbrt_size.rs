//! Ablation — GBRT size frontier.
fn main() {
    print!("{}", ewb_bench::ablations::gbrt_size());
}
