//! Fig. 9 — espn power traces.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig09(&ctx));
}
