//! Robustness loss sweep (fault profile × loss rate, both browsers).
//! `--write-golden` refreshes the golden artifacts the CI jobs pin
//! (`crates/core/tests/golden/robustness.json` and the observability
//! timeline `crates/core/tests/golden/timeline.jsonl`);
//! `--timeline PATH` exports the reference session's event timeline as
//! JSON lines to PATH.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::robustness_report(&ctx));
    if let Some(path) = ewb_bench::timeline_arg() {
        ewb_bench::write_timeline(&ctx, &path);
    }
    if std::env::args().any(|a| a == "--write-golden") {
        let rows = ewb_core::experiments::robustness::sweep(
            &ctx.corpus,
            &ctx.server,
            &ctx.cfg,
            ewb_bench::REPORT_SEED,
        );
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../core/tests/golden/robustness.json"
        );
        ewb_bench::write_atomic(path, ewb_core::experiments::robustness::summary_json(&rows));
        eprintln!("wrote {path}");
        let timeline_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../core/tests/golden/timeline.jsonl"
        );
        ewb_bench::write_timeline(&ctx, timeline_path);
    }
}
