//! Robustness loss sweep (fault profile × loss rate, both browsers).
//! `--write-golden` refreshes the golden summary the CI robustness job
//! pins (`crates/core/tests/golden/robustness.json`).
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::robustness_report(&ctx));
    if std::env::args().any(|a| a == "--write-golden") {
        let rows = ewb_core::experiments::robustness::sweep(
            &ctx.corpus,
            &ctx.server,
            &ctx.cfg,
            ewb_bench::REPORT_SEED,
        );
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../core/tests/golden/robustness.json"
        );
        std::fs::write(path, ewb_core::experiments::robustness::summary_json(&rows))
            .expect("write golden summary");
        eprintln!("wrote {path}");
    }
}
