//! Table 5 — per-state power.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::table5(&ctx));
}
