//! Fig. 5 — computation sequence schedules.
fn main() {
    let ctx = ewb_bench::Context::new();
    print!("{}", ewb_bench::reports::fig05(&ctx));
}
