//! Table 7 — prediction cost vs forest size.
fn main() {
    print!("{}", ewb_bench::reports::table7());
}
