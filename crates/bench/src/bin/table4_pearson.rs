//! Table 4 — Pearson correlations.
fn main() {
    print!("{}", ewb_bench::reports::table4());
}
