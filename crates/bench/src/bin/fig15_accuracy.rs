//! Fig. 15 — prediction accuracy.
fn main() {
    print!("{}", ewb_bench::reports::fig15());
}
