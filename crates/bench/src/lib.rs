//! # ewb-bench — the evaluation harness
//!
//! One reporting function per paper figure/table, each returning the
//! formatted report its binary prints. `cargo run -p ewb-bench --bin
//! <name> --release` regenerates any single artifact;
//! `--bin all_figures` runs the lot (that output is the basis of
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod reports;

use ewb_core::webpage::{benchmark_corpus, Corpus, OriginServer};
use ewb_core::CoreConfig;

/// The seed every report uses, so EXPERIMENTS.md is reproducible.
pub const REPORT_SEED: u64 = 2013;

/// Shared experiment context.
pub struct Context {
    /// The Table 3 corpus.
    pub corpus: Corpus,
    /// The origin server holding it.
    pub server: OriginServer,
    /// The paper configuration.
    pub cfg: CoreConfig,
}

impl Context {
    /// Builds the standard context.
    pub fn new() -> Self {
        let corpus = benchmark_corpus(REPORT_SEED);
        let server = OriginServer::from_corpus(&corpus);
        Context {
            corpus,
            server,
            cfg: CoreConfig::paper(),
        }
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

/// Returns the path following a `--timeline` flag on the command line,
/// if present.
///
/// # Panics
///
/// Panics if `--timeline` is passed without a path.
pub fn timeline_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--timeline" {
            return Some(args.next().expect("--timeline needs a path"));
        }
    }
    None
}

/// Writes `contents` to `path` atomically: stages into `<path>.tmp`, then
/// renames over `path`. A crash (or a concurrent reader) never observes a
/// torn artifact — the same discipline the fleet checkpoint uses.
///
/// # Panics
///
/// Panics if the staging write or the rename fails.
pub fn write_atomic(path: &str, contents: impl AsRef<[u8]>) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {tmp}: {e}"));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {tmp} -> {path}: {e}"));
}

/// Records the reference observability timeline
/// ([`ewb_core::experiments::timeline`]) at [`REPORT_SEED`] and writes it
/// as JSON lines to `path` (atomically, via [`write_atomic`]).
///
/// # Panics
///
/// Panics if `path` is not writable.
pub fn write_timeline(ctx: &Context, path: &str) {
    let (events, outcome) = ewb_core::experiments::timeline::record_session_timeline(
        &ctx.corpus,
        &ctx.server,
        &ctx.cfg,
        REPORT_SEED,
    );
    write_atomic(
        path,
        ewb_core::experiments::timeline::timeline_jsonl(&events),
    );
    eprintln!(
        "wrote {path} ({} events, {:.2} J)",
        events.len(),
        outcome.total_joules
    );
}

/// Formats a fraction as a signed percentage.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Report header with the paper reference.
pub fn header(title: &str, paper: &str) -> String {
    format!(
        "================================================================\n\
         {title}\n  paper reference: {paper}\n\
         ================================================================\n"
    )
}
