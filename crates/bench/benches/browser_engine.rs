//! Host-side throughput of the browser engine's real work: HTML parsing,
//! CSS parsing vs scanning (the §4.1 asymmetry), JS execution, and a full
//! page-load pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ewb_core::browser::fetch::FixedRateFetcher;
use ewb_core::browser::pipeline::{load_page, PipelineConfig, PipelineMode};
use ewb_core::browser::{css, html, js, CpuCostModel};
use ewb_core::simcore::SimTime;
use ewb_core::webpage::{benchmark_corpus, ObjectKind, OriginServer, PageVersion};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let corpus = benchmark_corpus(1);
    let espn = corpus.page("espn", PageVersion::Full).unwrap();
    let html_body = &espn.object(espn.root_url()).unwrap().body;
    let css_body = &espn
        .objects()
        .find(|o| o.kind == ObjectKind::Css)
        .unwrap()
        .body;
    let js_body = &espn
        .objects()
        .find(|o| o.kind == ObjectKind::Js)
        .unwrap()
        .body;

    c.bench_function("html_parse_espn_root", |b| {
        b.iter(|| black_box(html::parse(black_box(html_body))))
    });
    c.bench_function("css_full_parse", |b| {
        b.iter(|| black_box(css::parse(black_box(css_body))))
    });
    c.bench_function("css_url_scan", |b| {
        b.iter(|| black_box(css::scan_urls(black_box(css_body))))
    });
    c.bench_function("js_execute", |b| {
        b.iter(|| black_box(js::execute(black_box(js_body), None)))
    });

    let server = OriginServer::from_corpus(&corpus);
    let mut group = c.benchmark_group("full_page_load");
    group.sample_size(20);
    for (name, mode) in [
        ("original", PipelineMode::Original),
        ("energy_aware", PipelineMode::EnergyAware),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut fetcher = FixedRateFetcher::paper_3g(server.clone());
                black_box(load_page(
                    &mut fetcher,
                    espn.root_url(),
                    SimTime::ZERO,
                    &PipelineConfig::new(mode),
                    &CpuCostModel::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
