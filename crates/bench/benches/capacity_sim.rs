//! Throughput of the M/G/N/N loss simulator (Fig. 11 runs hundreds of
//! thousands of sessions per point).

use criterion::{criterion_group, criterion_main, Criterion};
use ewb_core::capacity::{simulate, CapacityConfig, ServiceTimes};
use std::hint::black_box;

fn bench_capacity(c: &mut Criterion) {
    let service = ServiceTimes::empirical(vec![8.0, 10.0, 12.0, 15.0, 20.0, 25.0]).unwrap();
    let mut group = c.benchmark_group("capacity_sim");
    group.sample_size(10);
    group.bench_function("mgnn_450users_1h", |b| {
        b.iter(|| {
            let cfg = CapacityConfig {
                users: 450,
                horizon_s: 3600.0,
                ..CapacityConfig::paper()
            };
            black_box(simulate(&cfg, &service))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_capacity);
criterion_main!(benches);
