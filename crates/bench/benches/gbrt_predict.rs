//! Table 7's measurement: prediction latency vs forest size
//! (1 000 / 10 000 / 20 000 trees of 8 terminal nodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ewb_core::gbrt::GbrtParams;
use ewb_core::traces::{ReadingTimePredictor, TraceConfig, TraceDataset};
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let trace = TraceDataset::generate(&TraceConfig {
        users: 4,
        visits_per_user: 150,
        ..TraceConfig::paper()
    });
    let engaged = trace.engaged_only(2.0);
    let row = engaged.visits()[0].features;

    let mut group = c.benchmark_group("gbrt_predict_table7");
    for n_trees in [1_000usize, 10_000, 20_000] {
        let predictor = ReadingTimePredictor::train(
            &engaged,
            &GbrtParams {
                n_trees,
                max_leaves: 8,
                learning_rate: 0.05,
                min_samples_leaf: 8,
                ..GbrtParams::default()
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &predictor, |b, p| {
            b.iter(|| black_box(p.predict_seconds(black_box(&row))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
