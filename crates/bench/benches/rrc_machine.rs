//! Throughput of the RRC state machine: transfer cycles per second of
//! host time (the machine sits on every simulated network event).

use criterion::{criterion_group, criterion_main, Criterion};
use ewb_core::rrc::{RrcConfig, RrcMachine};
use ewb_core::simcore::{SimDuration, SimTime};
use std::hint::black_box;

fn bench_machine(c: &mut Criterion) {
    c.bench_function("rrc_transfer_cycle_with_tail", |b| {
        b.iter(|| {
            let mut m = RrcMachine::new(RrcConfig::paper(), SimTime::ZERO);
            let mut t = SimTime::ZERO;
            for _ in 0..100 {
                let ds = m.begin_transfer(t, true);
                let de = ds + SimDuration::from_millis(500);
                m.end_transfer(de);
                t = de + SimDuration::from_secs(25); // full tail to IDLE
                m.advance_to(t);
            }
            black_box(m.energy_j())
        })
    });

    c.bench_function("rrc_fast_dormancy_cycle", |b| {
        b.iter(|| {
            let mut m = RrcMachine::new(RrcConfig::paper(), SimTime::ZERO);
            let mut t = SimTime::ZERO;
            for _ in 0..100 {
                let ds = m.begin_transfer(t, true);
                let de = ds + SimDuration::from_millis(500);
                m.end_transfer(de);
                t = m.release_to_idle(de) + SimDuration::from_secs(10);
                m.advance_to(t);
            }
            black_box(m.energy_j())
        })
    });
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
