//! Training throughput of the GBRT implementation (the paper trains
//! offline "on a PC or on the smartphone when it is connected to a power
//! source", §4.3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ewb_core::gbrt::{Gbrt, GbrtParams};
use ewb_core::traces::{TraceConfig, TraceDataset};
use std::hint::black_box;

fn bench_train(c: &mut Criterion) {
    let trace = TraceDataset::generate(&TraceConfig {
        users: 6,
        visits_per_user: 120,
        ..TraceConfig::paper()
    });
    let data = trace.to_gbrt_dataset();

    let mut group = c.benchmark_group("gbrt_train");
    group.sample_size(10);
    for n_trees in [20usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &n_trees, |b, &n| {
            b.iter(|| {
                black_box(Gbrt::fit(
                    black_box(&data),
                    &GbrtParams {
                        n_trees: n,
                        max_leaves: 8,
                        min_samples_leaf: 8,
                        ..GbrtParams::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
