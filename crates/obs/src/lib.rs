//! # ewb-obs — sim-clock event tracing and energy-ledger audit
//!
//! A zero-overhead-when-disabled observability layer for the simulator.
//! Layers hold a cloneable [`Recorder`] and emit structured [`Event`]s
//! stamped with [`SimTime`](ewb_simcore::SimTime) only — no wall clock —
//! so a fixed-seed run always produces the identical stream.
//!
//! ## Event model
//!
//! - **RRC** ([`Layer::Rrc`]): state transitions, promotion windows,
//!   T1/T2 expiries, fast-dormancy releases, and [`Event::EnergySegment`]
//!   entries forming the **energy ledger**.
//! - **Net** ([`Layer::Net`]): transfer begin/end, injected faults,
//!   retry scheduling.
//! - **Browser** ([`Layer::Browser`]): per-stage computation [`Event::Span`]s
//!   for both pipeline orders, plus per-load [`Event::Counter`] samples.
//! - **Session** ([`Layer::Session`]): one [`Event::PageVisit`] per visit.
//!
//! ## Ledger reconciliation
//!
//! Each `EnergySegment` is emitted at the instant the RRC machine
//! advances its energy meter, computing `joules` with the same
//! arithmetic on the same operands as the meter itself. Folding the
//! ledger in emission order therefore reproduces the machine's reported
//! total energy **bit-for-bit** (exact f64 identity, not approximate) —
//! see [`ledger::total`] and [`ledger::audit`].
//!
//! ## Sinks
//!
//! [`Recorder::memory`] retains everything (tests, timeline export),
//! [`Recorder::ring`] keeps a bounded tail, [`Recorder::summarizing`]
//! folds a constant-memory [`Summary`], and [`Recorder::disabled`] is
//! free: a single branch per emit, with [`Recorder::emit_with`] skipping
//! event construction entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod ledger;
mod recorder;
mod summary;
pub mod timeline;

pub use event::{Event, FaultKind, Layer, RadioState, Timer};
pub use ledger::LedgerEntry;
pub use recorder::{MemorySink, Recorder, RingSink, Sink, SummarySink};
pub use summary::Summary;
