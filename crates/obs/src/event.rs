//! The structured event vocabulary shared by every instrumented layer.
//!
//! Events are stamped with [`SimTime`] only — no wall clock anywhere — so
//! a fixed-seed run always produces the identical stream. The vocabulary
//! deliberately avoids depending on the layer crates (which depend on
//! *this* crate): radio states, timers, and fault kinds are re-declared
//! here as plain enums and the emitting layer maps into them.

use ewb_simcore::SimTime;
use serde::Serialize;
use std::fmt;

/// Which subsystem emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Layer {
    /// The RRC state machine (`ewb-rrc`).
    Rrc,
    /// The 3G fetcher and fault injector (`ewb-net`).
    Net,
    /// The page-load pipelines (`ewb-browser`).
    Browser,
    /// Session orchestration (`ewb-core`).
    Session,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layer::Rrc => "rrc",
            Layer::Net => "net",
            Layer::Browser => "browser",
            Layer::Session => "session",
        })
    }
}

/// The radio state an event refers to (mirror of `ewb_rrc::RrcState`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RadioState {
    /// No signaling connection.
    Idle,
    /// Promotion window in progress.
    Promoting,
    /// Shared common channels.
    Fach,
    /// Dedicated channels held.
    Dch,
    /// Full-rate connected state of a non-3G backend (LTE CONNECTED
    /// continuous reception, WiFi active, 5G NR connected).
    Connected,
    /// LTE short-DRX: connected, receiver duty-cycled on a short cycle.
    ShortDrx,
    /// LTE long-DRX: connected, receiver duty-cycled on a long cycle.
    LongDrx,
    /// WiFi 802.11 power-save mode: asleep between beacon wakeups.
    PsmSleep,
    /// 5G NR connected-mode DRX: duty-cycled between data bursts.
    Cdrx,
}

impl fmt::Display for RadioState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RadioState::Idle => "IDLE",
            RadioState::Promoting => "PROMOTING",
            RadioState::Fach => "FACH",
            RadioState::Dch => "DCH",
            RadioState::Connected => "CONNECTED",
            RadioState::ShortDrx => "SHORT_DRX",
            RadioState::LongDrx => "LONG_DRX",
            RadioState::PsmSleep => "PSM",
            RadioState::Cdrx => "CDRX",
        })
    }
}

/// The network-armed inactivity timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Timer {
    /// DCH→FACH inactivity timer.
    T1,
    /// FACH→IDLE inactivity timer.
    T2,
    /// A ladder backend's per-level inactivity dwell timer (LTE DRX
    /// descent, WiFi PSM timeout, 5G cDRX tail). Firing demotes the radio
    /// one level toward its deepest sleep state.
    Dwell,
}

/// What went wrong with a transfer attempt (fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// The attempt stalled and was abandoned after the stall timeout.
    Lost,
    /// The response arrived truncated/corrupt; bytes and energy were
    /// spent, the payload is unusable.
    Truncated,
}

/// One structured, sim-clock-stamped event.
///
/// Every variant carries explicit instants; none reads a clock. The
/// stream is totally ordered by [`Event::at`] with emission order as the
/// tiebreak (what [`crate::timeline::sorted`] implements).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    /// The radio changed state (`ewb-rrc`).
    StateTransition {
        /// When the change took effect.
        at: SimTime,
        /// State before.
        from: RadioState,
        /// State after.
        to: RadioState,
    },
    /// A promotion window opened (`ewb-rrc`).
    PromotionStart {
        /// When the promotion was requested.
        at: SimTime,
        /// The power-relevant origin state.
        from: RadioState,
        /// The state being promoted to.
        target: RadioState,
        /// When the promotion will complete.
        done: SimTime,
        /// Failed signaling attempts charged to this window (fault
        /// injection); each one extends it by a full promotion latency.
        retries: u32,
    },
    /// An inactivity timer fired (`ewb-rrc`).
    TimerExpired {
        /// When the timer fired.
        at: SimTime,
        /// Which timer.
        timer: Timer,
    },
    /// Application-initiated fast-dormancy release (`ewb-rrc`).
    FastDormancy {
        /// When the release was requested.
        at: SimTime,
        /// When IDLE is reached (after the release signaling window).
        done: SimTime,
    },
    /// One constant-power span integrated by the radio's energy meter —
    /// an entry of the **energy ledger** (`ewb-rrc`). Summing `joules`
    /// over the stream, in emission order, reproduces the machine's
    /// reported total energy exactly (bit-identical f64), because both
    /// integrate the same piecewise-constant power with the same
    /// arithmetic.
    EnergySegment {
        /// Segment start.
        start: SimTime,
        /// Segment end (exclusive).
        end: SimTime,
        /// The radio state over the segment.
        state: RadioState,
        /// Constant power over the segment, watts.
        watts: f64,
        /// Energy of the segment, joules (`watts × duration`).
        joules: f64,
    },
    /// A transfer attempt started occupying the radio (`ewb-net`).
    TransferBegin {
        /// When the attempt began (radio activity starts here).
        at: SimTime,
        /// Request id, unique per fetcher.
        id: u64,
        /// The requested URL.
        url: String,
        /// Whether dedicated channels are needed.
        needs_dch: bool,
        /// 1-based attempt number under the retry policy.
        attempt: u32,
        /// Failed promotion attempts charged to this attempt's promotion.
        promotion_retries: u32,
        /// When response data can start flowing (after any promotion).
        data_start: SimTime,
    },
    /// A transfer attempt released the radio (`ewb-net`).
    TransferEnd {
        /// When the attempt finished (or was abandoned).
        at: SimTime,
        /// Request id, matching the begin event.
        id: u64,
        /// Bytes moved over the radio (0 for a stalled attempt).
        bytes: u64,
        /// Whether a usable payload was delivered.
        completed: bool,
    },
    /// A failed attempt will be retried after backoff (`ewb-net`).
    TransferRetry {
        /// When the failed attempt ended.
        at: SimTime,
        /// Request id.
        id: u64,
        /// The attempt number that just failed (1-based).
        attempt: u32,
        /// When the next attempt starts.
        retry_at: SimTime,
    },
    /// An injected fault hit a transfer attempt (`ewb-net`).
    TransferFault {
        /// When the fault materialized.
        at: SimTime,
        /// Request id.
        id: u64,
        /// What kind of fault.
        kind: FaultKind,
    },
    /// A named computation span (`ewb-browser` pipeline stages, phases).
    Span {
        /// Which layer ran the span.
        layer: Layer,
        /// Stage name (e.g. `html_parse`, `transmission_phase`).
        name: &'static str,
        /// Span start.
        start: SimTime,
        /// Span end.
        end: SimTime,
    },
    /// A named scalar sample (`ewb-browser` per-load totals, etc.).
    Counter {
        /// When the sample was taken.
        at: SimTime,
        /// Which layer sampled it.
        layer: Layer,
        /// Counter name.
        name: &'static str,
        /// The value.
        value: f64,
    },
    /// One visit of a browsing session (`ewb-core`).
    PageVisit {
        /// When the click happened.
        at: SimTime,
        /// Zero-based visit index within the session.
        index: u32,
        /// The page's root URL.
        url: String,
        /// When the page finished opening.
        opened: SimTime,
        /// When the visit ended (next click / session end).
        end: SimTime,
        /// When the radio was released to IDLE during reading, if it was.
        released_at: Option<SimTime>,
    },
}

impl Event {
    /// The event's primary instant — the sort key of a timeline. Spans
    /// and ledger segments sort by their start.
    pub fn at(&self) -> SimTime {
        match self {
            Event::StateTransition { at, .. }
            | Event::PromotionStart { at, .. }
            | Event::TimerExpired { at, .. }
            | Event::FastDormancy { at, .. }
            | Event::TransferBegin { at, .. }
            | Event::TransferEnd { at, .. }
            | Event::TransferRetry { at, .. }
            | Event::TransferFault { at, .. }
            | Event::Counter { at, .. }
            | Event::PageVisit { at, .. } => *at,
            Event::EnergySegment { start, .. } | Event::Span { start, .. } => *start,
        }
    }

    /// The layer that emitted the event.
    pub fn layer(&self) -> Layer {
        match self {
            Event::StateTransition { .. }
            | Event::PromotionStart { .. }
            | Event::TimerExpired { .. }
            | Event::FastDormancy { .. }
            | Event::EnergySegment { .. } => Layer::Rrc,
            Event::TransferBegin { .. }
            | Event::TransferEnd { .. }
            | Event::TransferRetry { .. }
            | Event::TransferFault { .. } => Layer::Net,
            Event::Span { layer, .. } | Event::Counter { layer, .. } => *layer,
            Event::PageVisit { .. } => Layer::Session,
        }
    }

    /// A short kind name, used by summaries and assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::StateTransition { .. } => "state_transition",
            Event::PromotionStart { .. } => "promotion_start",
            Event::TimerExpired { .. } => "timer_expired",
            Event::FastDormancy { .. } => "fast_dormancy",
            Event::EnergySegment { .. } => "energy_segment",
            Event::TransferBegin { .. } => "transfer_begin",
            Event::TransferEnd { .. } => "transfer_end",
            Event::TransferRetry { .. } => "transfer_retry",
            Event::TransferFault { .. } => "transfer_fault",
            Event::Span { .. } => "span",
            Event::Counter { .. } => "counter",
            Event::PageVisit { .. } => "page_visit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_returns_the_primary_instant() {
        let seg = Event::EnergySegment {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            state: RadioState::Dch,
            watts: 1.15,
            joules: 1.15,
        };
        assert_eq!(seg.at(), SimTime::from_secs(1));
        assert_eq!(seg.layer(), Layer::Rrc);
        assert_eq!(seg.kind(), "energy_segment");
        let t = Event::TimerExpired {
            at: SimTime::from_secs(9),
            timer: Timer::T1,
        };
        assert_eq!(t.at(), SimTime::from_secs(9));
    }

    #[test]
    fn events_serialize_as_single_entry_maps() {
        let e = Event::TimerExpired {
            at: SimTime::from_secs(4),
            timer: Timer::T2,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(json, r#"{"TimerExpired":{"at":4000000,"timer":"T2"}}"#);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(RadioState::Fach.to_string(), "FACH");
        assert_eq!(Layer::Browser.to_string(), "browser");
    }
}
