//! The energy ledger: auditing per-state energy attribution.
//!
//! Every time the instrumented `RrcMachine` advances its energy meter it
//! also emits an [`Event::EnergySegment`] computed with the *same*
//! arithmetic on the *same* operands (`watts × duration.as_secs_f64()`).
//! Folding those entries in emission order therefore reproduces the
//! machine's reported total energy bit-for-bit — a second, independent
//! path to every headline joule figure that tests can assert exactly.

use crate::event::{Event, RadioState};
use ewb_simcore::SimTime;
use std::collections::BTreeMap;

/// One ledger entry, extracted from an [`Event::EnergySegment`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// Segment start.
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// The radio state over the segment.
    pub state: RadioState,
    /// Constant power over the segment, watts.
    pub watts: f64,
    /// Energy of the segment, joules.
    pub joules: f64,
}

/// The ledger entries of an event stream, in emission order.
pub fn entries(events: &[Event]) -> Vec<LedgerEntry> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::EnergySegment {
                start,
                end,
                state,
                watts,
                joules,
            } => Some(LedgerEntry {
                start: *start,
                end: *end,
                state: *state,
                watts: *watts,
                joules: *joules,
            }),
            _ => None,
        })
        .collect()
}

/// Total ledger energy, folded in entry order. On a stream emitted by a
/// single machine this is bit-identical to the machine's
/// `energy().total_joules()`.
pub fn total(entries: &[LedgerEntry]) -> f64 {
    let mut joules = 0.0;
    for e in entries {
        joules += e.joules;
    }
    joules
}

/// Ledger energy attributed to each radio state, folded in entry order.
pub fn by_state(entries: &[LedgerEntry]) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for e in entries {
        *map.entry(e.state.to_string()).or_insert(0.0) += e.joules;
    }
    map
}

/// Ledger energy within `[from, to)`, splitting entries at the
/// boundaries — the ledger-side mirror of `EnergyMeter::joules_between`.
pub fn joules_between(entries: &[LedgerEntry], from: SimTime, to: SimTime) -> f64 {
    assert!(from <= to, "joules_between: from after to");
    let mut total = 0.0;
    for e in entries {
        let lo = e.start.max(from);
        let hi = e.end.min(to);
        if lo < hi {
            total += e.watts * (hi - lo).as_secs_f64();
        }
    }
    total
}

/// A defect found by [`audit`].
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// An entry's `joules` is not bit-identical to `watts × duration`.
    Inconsistent {
        /// Index of the offending entry.
        index: usize,
    },
    /// An entry has non-finite or negative power, or `end < start`.
    Malformed {
        /// Index of the offending entry.
        index: usize,
    },
    /// Consecutive entries are not contiguous in time (gap or overlap).
    Discontiguous {
        /// Index of the entry that does not start where its
        /// predecessor ended.
        index: usize,
    },
}

/// Check structural soundness of a ledger: every entry recomputes to its
/// own `joules` bit-for-bit, powers are finite and non-negative, time
/// never runs backwards, and consecutive entries tile the timeline with
/// no gap or overlap. Returns all defects found (empty = clean).
pub fn audit(entries: &[LedgerEntry]) -> Vec<AuditError> {
    let mut errors = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        if !e.watts.is_finite() || e.watts < 0.0 || e.end < e.start {
            errors.push(AuditError::Malformed { index: i });
            continue;
        }
        let recomputed = e.watts * (e.end - e.start).as_secs_f64();
        if recomputed.to_bits() != e.joules.to_bits() {
            errors.push(AuditError::Inconsistent { index: i });
        }
        if i > 0 && entries[i - 1].end != e.start {
            errors.push(AuditError::Discontiguous { index: i });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(s: u64, t: u64, state: RadioState, watts: f64) -> LedgerEntry {
        let start = SimTime::from_secs(s);
        let end = SimTime::from_secs(t);
        LedgerEntry {
            start,
            end,
            state,
            watts,
            joules: watts * (end - start).as_secs_f64(),
        }
    }

    #[test]
    fn total_and_by_state_fold_in_order() {
        let es = vec![
            entry(0, 2, RadioState::Promoting, 1.25),
            entry(2, 6, RadioState::Dch, 1.15),
            entry(6, 21, RadioState::Fach, 0.63),
        ];
        let expected = 2.0 * 1.25 + 4.0 * 1.15 + 15.0 * 0.63;
        assert!((total(&es) - expected).abs() < 1e-12);
        let by = by_state(&es);
        assert!((by["DCH"] - 4.6).abs() < 1e-12);
        assert!((by["FACH"] - 9.45).abs() < 1e-12);
        assert!(audit(&es).is_empty());
    }

    #[test]
    fn joules_between_splits_entries() {
        let es = vec![
            entry(0, 10, RadioState::Dch, 2.0),
            entry(10, 20, RadioState::Fach, 1.0),
        ];
        let j = joules_between(&es, SimTime::from_secs(5), SimTime::from_secs(15));
        assert!((j - 15.0).abs() < 1e-12);
    }

    #[test]
    fn audit_flags_inconsistent_joules() {
        let mut e = entry(0, 2, RadioState::Dch, 1.0);
        e.joules += 1e-9;
        assert_eq!(audit(&[e]), vec![AuditError::Inconsistent { index: 0 }]);
    }

    #[test]
    fn audit_flags_gaps() {
        let es = vec![
            entry(0, 2, RadioState::Dch, 1.0),
            entry(3, 4, RadioState::Fach, 1.0),
        ];
        assert_eq!(audit(&es), vec![AuditError::Discontiguous { index: 1 }]);
    }

    #[test]
    fn audit_flags_malformed_power() {
        let mut e = entry(0, 2, RadioState::Dch, 1.0);
        e.watts = f64::NAN;
        assert_eq!(audit(&[e]), vec![AuditError::Malformed { index: 0 }]);
    }

    #[test]
    fn entries_extracts_only_segments() {
        let evs = vec![
            Event::EnergySegment {
                start: SimTime::ZERO,
                end: SimTime::from_secs(1),
                state: RadioState::Idle,
                watts: 0.0,
                joules: 0.0,
            },
            Event::TimerExpired {
                at: SimTime::from_secs(1),
                timer: crate::event::Timer::T1,
            },
        ];
        assert_eq!(entries(&evs).len(), 1);
    }
}
