//! Constant-memory aggregation over an event stream.

use crate::event::{Event, RadioState};
use ewb_simcore::ExactSum;
use serde::Serialize;
use std::collections::BTreeMap;

/// Running aggregates folded from an event stream.
///
/// `ledger_joules` is folded in emission order, so on a stream produced
/// by one machine it equals the machine's reported energy bit-for-bit
/// (same addends, same order).
///
/// Summaries from independent shards combine with [`Summary::merge`]:
/// each shard's pinned-order fold enters the merged totals through an
/// exact accumulator ([`ExactSum`]), so the merged `f64` fields are
/// bit-identical for every merge order and shard count.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Summary {
    /// Total events folded in.
    pub events_total: u64,
    /// Events per kind name (see [`Event::kind`]).
    pub events_by_kind: BTreeMap<String, u64>,
    /// Sum of [`Event::EnergySegment`] joules, in emission order.
    pub ledger_joules: f64,
    /// Ledger joules attributed to each radio state.
    pub joules_by_state: BTreeMap<String, f64>,
    /// Total seconds spent in named spans, per span name.
    pub span_seconds: BTreeMap<String, f64>,
    /// Radio state transitions observed.
    pub transitions: u64,
    /// Transfer attempts begun.
    pub transfers_begun: u64,
    /// Transfer attempts that delivered a usable payload.
    pub transfers_completed: u64,
    /// Injected faults observed.
    pub faults: u64,
    /// Retries scheduled after failed attempts.
    pub retries: u64,
    /// Bytes delivered by completed attempts.
    pub bytes_completed: u64,
    /// Exact accumulators behind the `f64` fields, present once this
    /// summary has absorbed another via [`Summary::merge`]. Skipped in
    /// serialization (the visible fields already carry the correctly
    /// rounded totals) and in equality.
    #[serde(skip)]
    exact: Option<Box<ExactTotals>>,
}

/// Exact expansions of every `f64` total a merged summary carries.
#[derive(Debug, Clone, Default)]
struct ExactTotals {
    ledger: ExactSum,
    by_state: BTreeMap<String, ExactSum>,
    spans: BTreeMap<String, ExactSum>,
}

impl ExactTotals {
    /// Captures a summary's visible `f64` totals as single exact addends.
    fn of(s: &Summary) -> Box<ExactTotals> {
        Box::new(ExactTotals {
            ledger: ExactSum::from_value(s.ledger_joules),
            by_state: s
                .joules_by_state
                .iter()
                .map(|(k, &v)| (k.clone(), ExactSum::from_value(v)))
                .collect(),
            spans: s
                .span_seconds
                .iter()
                .map(|(k, &v)| (k.clone(), ExactSum::from_value(v)))
                .collect(),
        })
    }
}

impl PartialEq for Summary {
    fn eq(&self, other: &Self) -> bool {
        // The exact accumulators are a derivation of merge history; two
        // summaries are equal when every visible aggregate matches.
        self.events_total == other.events_total
            && self.events_by_kind == other.events_by_kind
            && self.ledger_joules == other.ledger_joules
            && self.joules_by_state == other.joules_by_state
            && self.span_seconds == other.span_seconds
            && self.transitions == other.transitions
            && self.transfers_begun == other.transfers_begun
            && self.transfers_completed == other.transfers_completed
            && self.faults == other.faults
            && self.retries == other.retries
            && self.bytes_completed == other.bytes_completed
    }
}

impl Summary {
    /// Fold one event into the aggregates.
    ///
    /// # Panics
    ///
    /// Panics if this summary has already merged another (a merged total
    /// is a rounding of an exact cross-shard sum; folding more events
    /// into it in emission order would silently mix the two regimes).
    pub fn fold(&mut self, event: &Event) {
        assert!(
            self.exact.is_none(),
            "cannot fold events into an already-merged Summary; fold per shard, then merge"
        );
        self.events_total += 1;
        *self
            .events_by_kind
            .entry(event.kind().to_string())
            .or_insert(0) += 1;
        match event {
            Event::EnergySegment {
                state, joules: j, ..
            } => {
                self.ledger_joules += j;
                *self
                    .joules_by_state
                    .entry(state_key(*state).to_string())
                    .or_insert(0.0) += j;
            }
            Event::StateTransition { .. } => self.transitions += 1,
            Event::TransferBegin { .. } => self.transfers_begun += 1,
            Event::TransferEnd {
                bytes,
                completed: true,
                ..
            } => {
                self.transfers_completed += 1;
                self.bytes_completed += bytes;
            }
            Event::TransferFault { .. } => self.faults += 1,
            Event::TransferRetry { .. } => self.retries += 1,
            Event::Span {
                name, start, end, ..
            } => {
                *self.span_seconds.entry((*name).to_string()).or_insert(0.0) +=
                    (*end - *start).as_secs_f64();
            }
            _ => {}
        }
    }

    /// Absorbs another shard's summary.
    ///
    /// Counters add; every `f64` total goes through an exact accumulator
    /// seeded with each shard's pinned-order fold, then the visible field
    /// is rewritten with the correctly rounded exact sum. The result is
    /// bit-identical for every merge order and grouping: `merge(a,
    /// merge(b, c)) == merge(merge(a, b), c)` down to the last bit.
    pub fn merge(&mut self, other: &Summary) {
        self.events_total += other.events_total;
        for (k, v) in &other.events_by_kind {
            *self.events_by_kind.entry(k.clone()).or_insert(0) += v;
        }
        self.transitions += other.transitions;
        self.transfers_begun += other.transfers_begun;
        self.transfers_completed += other.transfers_completed;
        self.faults += other.faults;
        self.retries += other.retries;
        self.bytes_completed += other.bytes_completed;

        let mut exact = match self.exact.take() {
            Some(e) => e,
            None => ExactTotals::of(self),
        };
        match &other.exact {
            Some(o) => {
                exact.ledger.absorb(&o.ledger);
                for (k, s) in &o.by_state {
                    exact.by_state.entry(k.clone()).or_default().absorb(s);
                }
                for (k, s) in &o.spans {
                    exact.spans.entry(k.clone()).or_default().absorb(s);
                }
            }
            None => {
                exact.ledger.add(other.ledger_joules);
                for (k, &v) in &other.joules_by_state {
                    exact.by_state.entry(k.clone()).or_default().add(v);
                }
                for (k, &v) in &other.span_seconds {
                    exact.spans.entry(k.clone()).or_default().add(v);
                }
            }
        }
        self.ledger_joules = exact.ledger.value();
        self.joules_by_state = exact
            .by_state
            .iter()
            .map(|(k, s)| (k.clone(), s.value()))
            .collect();
        self.span_seconds = exact
            .spans
            .iter()
            .map(|(k, s)| (k.clone(), s.value()))
            .collect();
        self.exact = Some(exact);
    }
}

fn state_key(state: RadioState) -> &'static str {
    match state {
        RadioState::Idle => "IDLE",
        RadioState::Promoting => "PROMOTING",
        RadioState::Fach => "FACH",
        RadioState::Dch => "DCH",
        RadioState::Connected => "CONNECTED",
        RadioState::ShortDrx => "SHORT_DRX",
        RadioState::LongDrx => "LONG_DRX",
        RadioState::PsmSleep => "PSM",
        RadioState::Cdrx => "CDRX",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Layer;
    use ewb_simcore::SimTime;

    #[test]
    fn fold_tracks_energy_transfers_and_spans() {
        let mut s = Summary::default();
        s.fold(&Event::EnergySegment {
            start: SimTime::ZERO,
            end: SimTime::from_secs(2),
            state: RadioState::Dch,
            watts: 1.0,
            joules: 2.0,
        });
        s.fold(&Event::TransferBegin {
            at: SimTime::ZERO,
            id: 1,
            url: "u".into(),
            needs_dch: true,
            attempt: 1,
            promotion_retries: 0,
            data_start: SimTime::ZERO,
        });
        s.fold(&Event::TransferEnd {
            at: SimTime::from_secs(1),
            id: 1,
            bytes: 100,
            completed: true,
        });
        s.fold(&Event::Span {
            layer: Layer::Browser,
            name: "html_parse",
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
        });
        assert_eq!(s.events_total, 4);
        assert_eq!(s.ledger_joules, 2.0);
        assert_eq!(s.joules_by_state["DCH"], 2.0);
        assert_eq!(s.transfers_begun, 1);
        assert_eq!(s.transfers_completed, 1);
        assert_eq!(s.bytes_completed, 100);
        assert_eq!(s.span_seconds["html_parse"], 1.0);
        assert_eq!(s.events_by_kind["energy_segment"], 1);
    }

    /// A shard summary with adversarial joules values: magnitudes spread
    /// enough that naive `+` folding is order-dependent.
    fn shard(seed: u64) -> Summary {
        let mut s = Summary::default();
        let states = [
            RadioState::Idle,
            RadioState::Fach,
            RadioState::Dch,
            RadioState::Promoting,
        ];
        for i in 0..40u64 {
            let x = ewb_simcore::SplitMix64::mix(seed.wrapping_mul(1_000_003) + i);
            // Joules spanning ~12 orders of magnitude, both signs of ulp
            // interaction (all positive, as real segments are).
            let j = (x % 1_000_000) as f64 * 1e-9 + ((x >> 20) % 1000) as f64 * 1e3;
            s.fold(&Event::EnergySegment {
                start: SimTime::from_micros(i),
                end: SimTime::from_micros(i + 1),
                state: states[(x % 4) as usize],
                watts: 1.0,
                joules: j,
            });
            s.fold(&Event::Span {
                layer: Layer::Browser,
                name: if x.is_multiple_of(2) {
                    "layout"
                } else {
                    "html_parse"
                },
                start: SimTime::from_micros(i),
                end: SimTime::from_micros(i + 1 + (x % 7)),
            });
        }
        s
    }

    #[test]
    fn merge_is_order_independent_to_the_bit() {
        let shards: Vec<Summary> = (0..7).map(shard).collect();
        let mut forward = Summary::default();
        for s in &shards {
            forward.merge(s);
        }
        let mut backward = Summary::default();
        for s in shards.iter().rev() {
            backward.merge(s);
        }
        // A lopsided merge tree: ((s3 + s1) + ((s6 + s0) + s4)) + (s2 + s5).
        let mut left = shards[3].clone();
        left.merge(&shards[1]);
        let mut mid = shards[6].clone();
        mid.merge(&shards[0]);
        mid.merge(&shards[4]);
        left.merge(&mid);
        let mut right = shards[2].clone();
        right.merge(&shards[5]);
        left.merge(&right);

        for m in [&backward, &left] {
            assert_eq!(
                forward.ledger_joules.to_bits(),
                m.ledger_joules.to_bits(),
                "merged ledger must not depend on merge order"
            );
            for (k, v) in &forward.joules_by_state {
                assert_eq!(v.to_bits(), m.joules_by_state[k].to_bits(), "state {k}");
            }
            for (k, v) in &forward.span_seconds {
                assert_eq!(v.to_bits(), m.span_seconds[k].to_bits(), "span {k}");
            }
            assert_eq!(forward.events_total, m.events_total);
            assert_eq!(forward.transitions, m.transitions);
            assert_eq!(forward.events_by_kind, m.events_by_kind);
        }
    }

    #[test]
    fn merge_into_empty_preserves_a_single_shard() {
        let s = shard(5);
        let mut m = Summary::default();
        m.merge(&s);
        // One shard through the exact path reproduces the pinned fold.
        assert_eq!(m.ledger_joules.to_bits(), s.ledger_joules.to_bits());
        assert_eq!(m.events_total, s.events_total);
        assert_eq!(m, s);
    }

    #[test]
    fn serialization_omits_the_exact_accumulators() {
        let mut m = shard(1);
        m.merge(&shard(2));
        let json = serde_json::to_string(&m).expect("serializable");
        assert!(!json.contains("exact"), "merge state must not leak: {json}");
        assert!(!json.contains("partials"));
    }

    #[test]
    #[should_panic(expected = "already-merged")]
    fn folding_after_merge_panics() {
        let mut m = shard(1);
        m.merge(&shard(2));
        m.fold(&Event::StateTransition {
            at: SimTime::ZERO,
            from: RadioState::Idle,
            to: RadioState::Dch,
        });
    }
}
