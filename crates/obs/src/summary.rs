//! Constant-memory aggregation over an event stream.

use crate::event::{Event, RadioState};
use serde::Serialize;
use std::collections::BTreeMap;

/// Running aggregates folded from an event stream.
///
/// `ledger_joules` is folded in emission order, so on a stream produced
/// by one machine it equals the machine's reported energy bit-for-bit
/// (same addends, same order).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Summary {
    /// Total events folded in.
    pub events_total: u64,
    /// Events per kind name (see [`Event::kind`]).
    pub events_by_kind: BTreeMap<String, u64>,
    /// Sum of [`Event::EnergySegment`] joules, in emission order.
    pub ledger_joules: f64,
    /// Ledger joules attributed to each radio state.
    pub joules_by_state: BTreeMap<String, f64>,
    /// Total seconds spent in named spans, per span name.
    pub span_seconds: BTreeMap<String, f64>,
    /// Radio state transitions observed.
    pub transitions: u64,
    /// Transfer attempts begun.
    pub transfers_begun: u64,
    /// Transfer attempts that delivered a usable payload.
    pub transfers_completed: u64,
    /// Injected faults observed.
    pub faults: u64,
    /// Retries scheduled after failed attempts.
    pub retries: u64,
    /// Bytes delivered by completed attempts.
    pub bytes_completed: u64,
}

impl Summary {
    /// Fold one event into the aggregates.
    pub fn fold(&mut self, event: &Event) {
        self.events_total += 1;
        *self
            .events_by_kind
            .entry(event.kind().to_string())
            .or_insert(0) += 1;
        match event {
            Event::EnergySegment {
                state, joules: j, ..
            } => {
                self.ledger_joules += j;
                *self
                    .joules_by_state
                    .entry(state_key(*state).to_string())
                    .or_insert(0.0) += j;
            }
            Event::StateTransition { .. } => self.transitions += 1,
            Event::TransferBegin { .. } => self.transfers_begun += 1,
            Event::TransferEnd {
                bytes,
                completed: true,
                ..
            } => {
                self.transfers_completed += 1;
                self.bytes_completed += bytes;
            }
            Event::TransferFault { .. } => self.faults += 1,
            Event::TransferRetry { .. } => self.retries += 1,
            Event::Span {
                name, start, end, ..
            } => {
                *self.span_seconds.entry((*name).to_string()).or_insert(0.0) +=
                    (*end - *start).as_secs_f64();
            }
            _ => {}
        }
    }
}

fn state_key(state: RadioState) -> &'static str {
    match state {
        RadioState::Idle => "IDLE",
        RadioState::Promoting => "PROMOTING",
        RadioState::Fach => "FACH",
        RadioState::Dch => "DCH",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Layer;
    use ewb_simcore::SimTime;

    #[test]
    fn fold_tracks_energy_transfers_and_spans() {
        let mut s = Summary::default();
        s.fold(&Event::EnergySegment {
            start: SimTime::ZERO,
            end: SimTime::from_secs(2),
            state: RadioState::Dch,
            watts: 1.0,
            joules: 2.0,
        });
        s.fold(&Event::TransferBegin {
            at: SimTime::ZERO,
            id: 1,
            url: "u".into(),
            needs_dch: true,
            attempt: 1,
            promotion_retries: 0,
            data_start: SimTime::ZERO,
        });
        s.fold(&Event::TransferEnd {
            at: SimTime::from_secs(1),
            id: 1,
            bytes: 100,
            completed: true,
        });
        s.fold(&Event::Span {
            layer: Layer::Browser,
            name: "html_parse",
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
        });
        assert_eq!(s.events_total, 4);
        assert_eq!(s.ledger_joules, 2.0);
        assert_eq!(s.joules_by_state["DCH"], 2.0);
        assert_eq!(s.transfers_begun, 1);
        assert_eq!(s.transfers_completed, 1);
        assert_eq!(s.bytes_completed, 100);
        assert_eq!(s.span_seconds["html_parse"], 1.0);
        assert_eq!(s.events_by_kind["energy_segment"], 1);
    }
}
