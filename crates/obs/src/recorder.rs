//! The recorder handle and its pluggable sinks.
//!
//! A [`Recorder`] is cheap to clone and thread through every layer. The
//! disabled recorder is a `None` — emitting through it is a single branch
//! and [`Recorder::emit_with`] never even constructs the event, so
//! instrumentation has zero overhead (and zero observable effect) when
//! tracing is off.

use crate::event::Event;
use crate::summary::Summary;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Where recorded events go. Sinks run under the recorder's lock, so a
/// sink only needs `&mut self`.
pub trait Sink {
    /// Accept one event.
    fn record(&mut self, event: &Event);
    /// The events the sink retained, oldest first. Sinks that only
    /// aggregate (e.g. [`SummarySink`]) return an empty vec.
    fn events(&self) -> Vec<Event>;
    /// The running summary, if this sink aggregates one.
    fn summary(&self) -> Option<Summary> {
        None
    }
}

/// Retains every event, unbounded. The right sink for tests and for
/// timeline export.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<Event>,
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn events(&self) -> Vec<Event> {
        self.events.clone()
    }
}

/// Retains only the most recent `capacity` events; older ones are
/// dropped (counted in `dropped`). The right sink for long sweeps where
/// only the tail matters.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }

    fn events(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }
}

/// Retains nothing; folds every event into a running [`Summary`]. The
/// right sink when only aggregates are wanted (constant memory).
#[derive(Debug, Default)]
pub struct SummarySink {
    summary: Summary,
}

impl Sink for SummarySink {
    fn record(&mut self, event: &Event) {
        self.summary.fold(event);
    }

    fn events(&self) -> Vec<Event> {
        Vec::new()
    }

    fn summary(&self) -> Option<Summary> {
        Some(self.summary.clone())
    }
}

type SinkBox = Box<dyn Sink + Send>;

/// A cloneable handle to an event sink — or to nothing at all.
///
/// Layers store one of these and call [`emit`](Recorder::emit) /
/// [`emit_with`](Recorder::emit_with) at interesting points. Clones
/// share the same sink, so a recorder can fan through fetchers,
/// machines, and pipelines and still collect one stream.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<SinkBox>>>,
}

impl Recorder {
    /// The no-op recorder: every emit is a single `None` check.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder retaining every event in memory.
    pub fn memory() -> Self {
        Recorder::custom(Box::new(MemorySink::default()))
    }

    /// A recorder retaining only the last `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Recorder::custom(Box::new(RingSink::new(capacity)))
    }

    /// A recorder folding events into a running [`Summary`] only.
    pub fn summarizing() -> Self {
        Recorder::custom(Box::new(SummarySink::default()))
    }

    /// A recorder backed by a caller-provided sink.
    pub fn custom(sink: SinkBox) -> Self {
        Recorder {
            inner: Some(Arc::new(Mutex::new(sink))),
        }
    }

    /// Whether emits reach a sink. Use to skip expensive event
    /// construction; [`emit_with`](Recorder::emit_with) does this for you.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event (no-op when disabled).
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.inner {
            sink.lock()
                .expect("recorder sink mutex poisoned")
                .record(&event);
        }
    }

    /// Record the event built by `f`, which runs only when enabled — the
    /// disabled path pays nothing for allocation-heavy events.
    pub fn emit_with<F: FnOnce() -> Event>(&self, f: F) {
        if let Some(sink) = &self.inner {
            sink.lock()
                .expect("recorder sink mutex poisoned")
                .record(&f());
        }
    }

    /// The events retained by the sink, in emission order. Empty when
    /// disabled or when the sink aggregates only.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(sink) => sink.lock().expect("recorder sink mutex poisoned").events(),
            None => Vec::new(),
        }
    }

    /// The sink's running summary: the one it keeps if it aggregates,
    /// otherwise one folded on the fly from its retained events.
    pub fn summary(&self) -> Summary {
        match &self.inner {
            Some(sink) => {
                let sink = sink.lock().expect("recorder sink mutex poisoned");
                sink.summary().unwrap_or_else(|| {
                    let mut s = Summary::default();
                    for e in sink.events() {
                        s.fold(&e);
                    }
                    s
                })
            }
            None => Summary::default(),
        }
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Timer;
    use ewb_simcore::SimTime;

    fn timer_event(secs: u64) -> Event {
        Event::TimerExpired {
            at: SimTime::from_secs(secs),
            timer: Timer::T1,
        }
    }

    #[test]
    fn disabled_recorder_never_runs_the_closure() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.emit_with(|| unreachable!("closure must not run when disabled"));
        assert!(r.events().is_empty());
    }

    #[test]
    fn memory_recorder_retains_in_emission_order() {
        let r = Recorder::memory();
        r.emit(timer_event(1));
        r.emit(timer_event(2));
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at(), SimTime::from_secs(1));
        assert_eq!(evs[1].at(), SimTime::from_secs(2));
    }

    #[test]
    fn clones_share_one_sink() {
        let r = Recorder::memory();
        let r2 = r.clone();
        r.emit(timer_event(1));
        r2.emit(timer_event(2));
        assert_eq!(r.events().len(), 2);
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let r = Recorder::ring(2);
        for s in 1..=5 {
            r.emit(timer_event(s));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at(), SimTime::from_secs(4));
        assert_eq!(evs[1].at(), SimTime::from_secs(5));
    }

    #[test]
    fn summarizing_recorder_counts_without_retaining() {
        let r = Recorder::summarizing();
        r.emit(timer_event(1));
        r.emit(timer_event(2));
        assert!(r.events().is_empty());
        assert_eq!(r.summary().events_total, 2);
    }
}
