//! Timeline ordering and JSON-lines export.

use crate::event::Event;

/// The events sorted by [`Event::at`], stably — ties keep emission
/// order, so the result is deterministic for a deterministic run.
pub fn sorted(events: &[Event]) -> Vec<Event> {
    let mut out = events.to_vec();
    out.sort_by_key(|e| e.at());
    out
}

/// Serialize a timeline as JSON lines: one event per line, sorted by
/// [`Event::at`], with a trailing newline. Deterministic for a
/// deterministic run — suitable for golden files and external tooling.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in sorted(events) {
        out.push_str(&serde_json::to_string(&e).expect("event serialization is infallible"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Timer;
    use ewb_simcore::SimTime;

    fn timer(secs: u64, timer: Timer) -> Event {
        Event::TimerExpired {
            at: SimTime::from_secs(secs),
            timer,
        }
    }

    #[test]
    fn sorted_orders_by_time_stably() {
        let evs = vec![
            timer(5, Timer::T2),
            timer(1, Timer::T1),
            timer(5, Timer::T1),
        ];
        let s = sorted(&evs);
        assert_eq!(s[0].at(), SimTime::from_secs(1));
        // Stable: the two t=5 events keep emission order (T2 then T1).
        assert!(matches!(
            s[1],
            Event::TimerExpired {
                timer: Timer::T2,
                ..
            }
        ));
        assert!(matches!(
            s[2],
            Event::TimerExpired {
                timer: Timer::T1,
                ..
            }
        ));
    }

    #[test]
    fn jsonl_is_one_line_per_event_with_trailing_newline() {
        let evs = vec![timer(2, Timer::T1), timer(1, Timer::T2)];
        let text = to_jsonl(&evs);
        assert!(text.ends_with('\n'));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"T2\""));
        assert!(lines[1].contains("\"T1\""));
    }
}
