//! End-to-end golden test: on the fixed-seed synthetic trace, the
//! refactored pre-sorted GBRT engine must train a model byte-identical
//! to the original per-node re-sorting trainer — same splits, same
//! thresholds, same serialized JSON — through the full reading-time
//! pipeline (feature extraction, log transform, subsampled boosting).

use ewb_gbrt::{Dataset, Gbrt};
use ewb_traces::{reading_time_params, ReadingTimePredictor, TraceConfig, TraceDataset};

#[test]
fn predictor_training_is_byte_identical_to_reference() {
    let trace = TraceDataset::generate(&TraceConfig::small());
    let predictor = ReadingTimePredictor::train(&trace, &reading_time_params());

    // Replicate the predictor's log transform, then train through the
    // retained reference implementation.
    let data = trace.to_gbrt_dataset();
    let log_targets: Vec<f64> = data.targets().iter().map(|&y| (1.0 + y).ln()).collect();
    let log_data = Dataset::new(data.rows().to_vec(), log_targets).unwrap();
    let reference = Gbrt::fit_reference(&log_data, &reading_time_params());

    assert_eq!(
        predictor.model(),
        &reference,
        "fast and reference trainers disagree on the trace model"
    );
    assert_eq!(
        predictor.model().to_json(),
        reference.to_json(),
        "serialized model bytes differ"
    );

    // And the deployed flat forest walks that exact model.
    for v in trace.visits().iter().take(50) {
        let row = v.features.to_vec();
        assert_eq!(
            predictor.flat().predict(&row).to_bits(),
            reference.predict(&row).to_bits()
        );
    }
}

#[test]
fn interest_threshold_training_is_byte_identical_to_reference() {
    let trace = TraceDataset::generate(&TraceConfig::small());
    let predictor =
        ReadingTimePredictor::train_with_interest_threshold(&trace, 2.0, &reading_time_params());

    let data = trace.engaged_only(2.0).to_gbrt_dataset();
    let log_targets: Vec<f64> = data.targets().iter().map(|&y| (1.0 + y).ln()).collect();
    let log_data = Dataset::new(data.rows().to_vec(), log_targets).unwrap();
    let reference = Gbrt::fit_reference(&log_data, &reading_time_params());

    assert_eq!(predictor.model().to_json(), reference.to_json());
}
