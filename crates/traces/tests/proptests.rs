//! Property-based tests for the trace generator and predictor plumbing.

use ewb_traces::{FeatureVector, TraceConfig, TraceDataset, N_FEATURES};
use proptest::prelude::*;

fn arbitrary_config() -> impl Strategy<Value = TraceConfig> {
    (1u32..6, 5u32..60, 2u32..10, any::<u64>()).prop_map(
        |(users, visits_per_user, session_length, seed)| TraceConfig {
            users,
            visits_per_user,
            session_length,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated trace is structurally sound: volumes, bounds,
    /// feature finiteness.
    #[test]
    fn traces_are_well_formed(cfg in arbitrary_config()) {
        let trace = TraceDataset::generate(&cfg);
        prop_assert_eq!(trace.len() as u32, cfg.users * cfg.visits_per_user);
        for v in trace.visits() {
            prop_assert!(v.user < cfg.users);
            prop_assert!((0.0..=600.0).contains(&v.reading_time_s));
            for x in v.features.to_vec() {
                prop_assert!(x.is_finite() && x >= 0.0);
            }
        }
    }

    /// Sessions are contiguous, per user, starting at 0.
    #[test]
    fn sessions_are_contiguous(cfg in arbitrary_config()) {
        let trace = TraceDataset::generate(&cfg);
        for user in 0..cfg.users {
            let sessions: Vec<u32> = trace
                .visits()
                .iter()
                .filter(|v| v.user == user)
                .map(|v| v.session)
                .collect();
            prop_assert_eq!(sessions[0], 0);
            for w in sessions.windows(2) {
                prop_assert!(w[1] == w[0] || w[1] == w[0] + 1);
            }
        }
    }

    /// The interest-threshold filter is exactly a target filter.
    #[test]
    fn engaged_filter_matches_manual(cfg in arbitrary_config(), alpha in 0.5f64..10.0) {
        let trace = TraceDataset::generate(&cfg);
        let engaged = trace.engaged_only(alpha);
        let manual = trace
            .visits()
            .iter()
            .filter(|v| v.reading_time_s > alpha)
            .count();
        prop_assert_eq!(engaged.len(), manual);
    }

    /// GBRT dataset conversion preserves everything.
    #[test]
    fn gbrt_conversion_is_lossless(cfg in arbitrary_config()) {
        let trace = TraceDataset::generate(&cfg);
        let data = trace.to_gbrt_dataset();
        prop_assert_eq!(data.len(), trace.len());
        prop_assert_eq!(data.n_features(), N_FEATURES);
        for (i, v) in trace.visits().iter().enumerate() {
            prop_assert_eq!(data.row(i), &v.features.to_vec()[..]);
            prop_assert_eq!(data.targets()[i], v.reading_time_s);
        }
    }

    /// FeatureVector round-trips through its slice form.
    #[test]
    fn feature_vector_roundtrip(values in proptest::collection::vec(0.0f64..1e6, N_FEATURES)) {
        let fv = FeatureVector::from_slice(&values);
        prop_assert_eq!(fv.to_vec(), values);
    }
}
