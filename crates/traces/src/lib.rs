//! # ewb-traces — the user-behavior substrate
//!
//! The paper collects browsing traces from 40 students (≥2 h each),
//! organized into sessions, and uses them to train and evaluate the
//! GBRT reading-time predictor. Those traces are long gone, so this crate
//! *generates* traces whose measurable properties match what the paper
//! reports:
//!
//! * **Fig. 7's dwell CDF** — 30 % of reading times under 2 s (the
//!   quick-bounce population behind the 2 s *interest threshold*), 53 %
//!   under Tp = 9 s, 68 % under Td = 20 s; dwells over 10 min discarded;
//! * **Table 4's Pearson row** — no *linear* correlation between reading
//!   time and any of the ten features (engaged dwell is driven by a
//!   three-way interaction of binarized features plus per-user interest,
//!   which is linearly invisible but tree-learnable — exactly why the
//!   paper reaches for GBRT over "simple linear models");
//! * **Fig. 15's learnability** — a GBRT trained on the trace reaches
//!   ≈70–80 % threshold accuracy on the raw data and ≥10 points more once
//!   the sub-α bounces are excluded.
//!
//! # Example
//!
//! ```
//! use ewb_traces::{TraceConfig, TraceDataset};
//!
//! let trace = TraceDataset::generate(&TraceConfig::paper());
//! assert_eq!(trace.users(), 40);
//! let cdf = trace.reading_time_cdf();
//! let under_2s = cdf.fraction_at_or_below(2.0);
//! assert!((0.25..0.36).contains(&under_2s), "{under_2s}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod eval;
mod features;
mod predictor;
mod synth;
mod user;

pub use dataset::{PageVisit, TraceConfig, TraceDataset};
pub use eval::{
    accuracy_grid, accuracy_with_threshold, accuracy_without_threshold, cross_user_accuracy,
    reading_time_params, AccuracyReport, EvalCell,
};
pub use features::{FeatureVector, FEATURE_NAMES, N_FEATURES};
pub use predictor::ReadingTimePredictor;
pub use synth::{VisitLatents, VisitSynthesizer};
pub use user::{DwellModel, UserProfile};
