//! The Table 1 feature vector.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of predictor features (Table 1 lists ten inputs; "Reading Time"
/// is the target).
pub const N_FEATURES: usize = 10;

/// Table 1 feature names, in order.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "Transmission Time",
    "Webpage Size",
    "Download Objects",
    "Download JavaScript files",
    "Download Figures",
    "Figure Size",
    "JavaScript Running Time",
    "Second URL",
    "Page Height",
    "Page Width",
];

/// One page visit's feature vector `x = {x1..x10}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector(pub [f64; N_FEATURES]);

impl FeatureVector {
    /// Data transmission time, seconds.
    pub fn transmission_time(&self) -> f64 {
        self.0[0]
    }
    /// Page size without figures, KB.
    pub fn page_size(&self) -> f64 {
        self.0[1]
    }
    /// Number of downloaded objects.
    pub fn objects(&self) -> f64 {
        self.0[2]
    }
    /// Number of downloaded JavaScript files.
    pub fn js_files(&self) -> f64 {
        self.0[3]
    }
    /// Number of downloaded figures.
    pub fn figures(&self) -> f64 {
        self.0[4]
    }
    /// Total figure size, KB.
    pub fn figure_size(&self) -> f64 {
        self.0[5]
    }
    /// JavaScript running time, seconds.
    pub fn js_time(&self) -> f64 {
        self.0[6]
    }
    /// Number of secondary URLs.
    pub fn second_urls(&self) -> f64 {
        self.0[7]
    }
    /// Page height, px.
    pub fn page_height(&self) -> f64 {
        self.0[8]
    }
    /// Page width, px.
    pub fn page_width(&self) -> f64 {
        self.0[9]
    }

    /// The vector as a GBRT input row.
    pub fn to_vec(&self) -> Vec<f64> {
        self.0.to_vec()
    }

    /// Builds from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have exactly [`N_FEATURES`] elements.
    pub fn from_slice(values: &[f64]) -> Self {
        assert_eq!(
            values.len(),
            N_FEATURES,
            "expected {N_FEATURES} features, got {}",
            values.len()
        );
        let mut arr = [0.0; N_FEATURES];
        arr.copy_from_slice(values);
        FeatureVector(arr)
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, v)) in FEATURE_NAMES.iter().zip(self.0.iter()).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={v:.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_positions() {
        let fv = FeatureVector([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(fv.transmission_time(), 1.0);
        assert_eq!(fv.page_size(), 2.0);
        assert_eq!(fv.objects(), 3.0);
        assert_eq!(fv.js_files(), 4.0);
        assert_eq!(fv.figures(), 5.0);
        assert_eq!(fv.figure_size(), 6.0);
        assert_eq!(fv.js_time(), 7.0);
        assert_eq!(fv.second_urls(), 8.0);
        assert_eq!(fv.page_height(), 9.0);
        assert_eq!(fv.page_width(), 10.0);
    }

    #[test]
    fn roundtrip_slice() {
        let fv = FeatureVector([0.5; N_FEATURES]);
        assert_eq!(FeatureVector::from_slice(&fv.to_vec()), fv);
    }

    #[test]
    #[should_panic(expected = "expected 10 features")]
    fn rejects_wrong_width() {
        FeatureVector::from_slice(&[1.0, 2.0]);
    }

    #[test]
    fn display_names_every_feature() {
        let fv = FeatureVector([1.0; N_FEATURES]);
        let s = fv.to_string();
        for name in FEATURE_NAMES {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
