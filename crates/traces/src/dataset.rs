//! Trace generation and the dataset container.

use crate::features::{FeatureVector, FEATURE_NAMES, N_FEATURES};
use crate::synth::VisitSynthesizer;
use crate::user::{DwellModel, UserProfile};
use ewb_gbrt::Dataset;
use ewb_simcore::stats::{pearson, Ecdf};
use ewb_simcore::Xoshiro256;
use ewb_webpage::{benchmark_corpus, PageVersion, BENCHMARK_SITES};
use serde::{Deserialize, Serialize};

/// One page visit in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageVisit {
    /// The visiting user.
    pub user: u32,
    /// Session index within the user's trace.
    pub session: u32,
    /// Site key.
    pub site: String,
    /// Mobile or full page.
    pub version: PageVersion,
    /// The Table 1 features of the loaded page.
    pub features: FeatureVector,
    /// Reading time, seconds (the prediction target).
    pub reading_time_s: f64,
}

/// Trace-generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of users (paper: 40 students).
    pub users: u32,
    /// Visits per user (≈2 h of browsing at ~30 s per page ⇒ ~240).
    pub visits_per_user: u32,
    /// Mean visits per session (sessions split the visit stream).
    pub session_length: u32,
    /// Corpus + behavior seed.
    pub seed: u64,
}

impl TraceConfig {
    /// The paper's collection: 40 users, ≥2 h each.
    pub fn paper() -> Self {
        TraceConfig {
            users: 40,
            visits_per_user: 240,
            session_length: 8,
            seed: 2013,
        }
    }

    /// A small config for fast tests.
    pub fn small() -> Self {
        TraceConfig {
            users: 8,
            visits_per_user: 60,
            session_length: 6,
            seed: 7,
        }
    }
}

/// A generated browsing trace: the reproduction of the paper's §5.1.3
/// data collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDataset {
    visits: Vec<PageVisit>,
    users: u32,
}

impl TraceDataset {
    /// Generates a trace.
    ///
    /// # Panics
    ///
    /// Panics if `config` has zero users or visits.
    pub fn generate(config: &TraceConfig) -> Self {
        assert!(config.users > 0, "need at least one user");
        assert!(config.visits_per_user > 0, "need at least one visit");
        let corpus = benchmark_corpus(config.seed);
        let synth = VisitSynthesizer::from_corpus(&corpus);
        let model = DwellModel;
        let site_keys: Vec<&str> = BENCHMARK_SITES.iter().map(|s| s.0).collect();
        let base_rng = Xoshiro256::seed_from_u64(config.seed);

        let mut visits = Vec::with_capacity((config.users * config.visits_per_user) as usize);
        for user_id in 0..config.users {
            let mut rng = base_rng.fork(u64::from(user_id) + 1);
            let profile = UserProfile::generate(user_id, &site_keys, &mut rng);
            let mut session = 0u32;
            let mut in_session = 0u32;
            for _ in 0..config.visits_per_user {
                if in_session >= config.session_length.max(1)
                    || (in_session > 0 && rng.chance(1.0 / f64::from(config.session_length.max(1))))
                {
                    session += 1;
                    in_session = 0;
                }
                let (site, version, features, latents) = synth.sample(&mut rng);
                let reading_time_s = model.sample(latents, profile.interest(&site), &mut rng);
                visits.push(PageVisit {
                    user: user_id,
                    session,
                    site,
                    version,
                    features,
                    reading_time_s,
                });
                in_session += 1;
            }
        }
        TraceDataset {
            visits,
            users: config.users,
        }
    }

    /// All visits.
    pub fn visits(&self) -> &[PageVisit] {
        &self.visits
    }

    /// Number of users.
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Number of visits.
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// Whether the trace is empty (never after generation).
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }

    /// All reading times, seconds.
    pub fn reading_times(&self) -> Vec<f64> {
        self.visits.iter().map(|v| v.reading_time_s).collect()
    }

    /// The Fig. 7 empirical CDF of reading time.
    pub fn reading_time_cdf(&self) -> Ecdf {
        Ecdf::from_samples(self.reading_times())
    }

    /// The Table 4 row: Pearson correlation between reading time and each
    /// of the ten features.
    pub fn pearson_table(&self) -> Vec<(&'static str, f64)> {
        let y = self.reading_times();
        (0..N_FEATURES)
            .map(|j| {
                let xj: Vec<f64> = self.visits.iter().map(|v| v.features.0[j]).collect();
                (FEATURE_NAMES[j], pearson(&xj, &y))
            })
            .collect()
    }

    /// Converts to a GBRT training dataset (features → reading time).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn to_gbrt_dataset(&self) -> Dataset {
        let rows = self.visits.iter().map(|v| v.features.to_vec()).collect();
        let ys = self.reading_times();
        Dataset::new(rows, ys).expect("generated traces are always valid")
    }

    /// Visits whose reading time exceeds the interest threshold α — the
    /// paper's §4.3.4 filtering ("we exclude them from the data set used
    /// for training the prediction model").
    pub fn engaged_only(&self, alpha_s: f64) -> TraceDataset {
        TraceDataset {
            visits: self
                .visits
                .iter()
                .filter(|v| v.reading_time_s > alpha_s)
                .cloned()
                .collect(),
            users: self.users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_trace() -> TraceDataset {
        TraceDataset::generate(&TraceConfig::paper())
    }

    #[test]
    fn generates_expected_volume() {
        let t = paper_trace();
        assert_eq!(t.users(), 40);
        assert_eq!(t.len(), 40 * 240);
        assert!(!t.is_empty());
    }

    #[test]
    fn cdf_matches_fig7_anchors() {
        let cdf = paper_trace().reading_time_cdf();
        let p2 = cdf.fraction_at_or_below(2.0);
        let p9 = cdf.fraction_at_or_below(9.0);
        let p20 = cdf.fraction_at_or_below(20.0);
        assert!((0.26..0.34).contains(&p2), "P(<2s) = {p2}, paper 0.30");
        assert!((0.48..0.58).contains(&p9), "P(<9s) = {p9}, paper 0.53");
        assert!((0.63..0.73).contains(&p20), "P(<20s) = {p20}, paper 0.68");
    }

    #[test]
    fn dwell_never_exceeds_ten_minutes() {
        let t = paper_trace();
        assert!(t.reading_times().iter().all(|&d| d <= 600.0));
    }

    #[test]
    fn pearson_table_is_flat_like_table4() {
        let table = paper_trace().pearson_table();
        assert_eq!(table.len(), 10);
        for (name, r) in table {
            assert!(
                r.abs() < 0.08,
                "feature {name} correlates linearly: r = {r} (Table 4 reports ≈0)"
            );
        }
    }

    #[test]
    fn engaged_filter_removes_bounces() {
        let t = paper_trace();
        let engaged = t.engaged_only(2.0);
        let frac = engaged.len() as f64 / t.len() as f64;
        assert!((0.64..0.76).contains(&frac), "engaged fraction {frac}");
        assert!(engaged.reading_times().iter().all(|&d| d > 2.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TraceDataset::generate(&TraceConfig::small());
        let b = TraceDataset::generate(&TraceConfig::small());
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_are_formed() {
        let t = TraceDataset::generate(&TraceConfig::small());
        let max_session = t.visits().iter().map(|v| v.session).max().unwrap();
        assert!(max_session >= 3, "visits should split into sessions");
    }

    #[test]
    fn gbrt_dataset_shape() {
        let t = TraceDataset::generate(&TraceConfig::small());
        let d = t.to_gbrt_dataset();
        assert_eq!(d.len(), t.len());
        assert_eq!(d.n_features(), 10);
    }
}
