//! Per-visit feature synthesis.
//!
//! Each visit's Table 1 features derive from the benchmark corpus shapes
//! (`ewb-webpage`) plus per-visit jitter: a user browsing espn does not
//! land on the identical page twice. Three of the jitters are deliberately
//! *independent* across features — they feed the binarized interaction
//! that drives engaged dwell (see [`crate::user`]), which is what keeps
//! Table 4's linear correlations at zero while staying tree-learnable.

use crate::features::FeatureVector;
use ewb_simcore::dist::{Distribution, LogNormal};
use ewb_simcore::Xoshiro256;
use ewb_webpage::{Corpus, PageVersion};
use serde::{Deserialize, Serialize};

/// The latent per-visit factors the dwell model consumes.
///
/// Each bit is an **outer-band** indicator of one feature: true when the
/// value is in the outer half of its (log-symmetric) distribution, i.e.
/// unusually small *or* unusually large. The symmetry is what keeps every
/// Pearson coefficient in Table 4 near zero — a banded effect has no
/// linear component — while a regression tree recovers each bit with two
/// splits (the band edges). The three carrier features
/// (`page_height`, `js_running_time`, `second_urls`) are drawn from
/// global (site-independent) log-normal distributions so the band edges
/// are global constants; this learnability-preserving simplification is
/// recorded as a substitution in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisitLatents {
    /// Page height in the outer band (unusually short or tall page).
    pub tall_page: bool,
    /// Secondary-URL count in the outer band.
    pub link_rich: bool,
    /// JS running time in the outer band.
    pub script_heavy: bool,
}

/// Global median of the page-height feature, px.
pub const HEIGHT_MEDIAN_PX: f64 = 2800.0;
/// Log-σ of the page-height feature.
pub const HEIGHT_SIGMA: f64 = 0.45;
/// Global median of the JS-running-time feature, seconds.
pub const JS_TIME_MEDIAN_S: f64 = 0.9;
/// Log-σ of the JS-time feature.
pub const JS_TIME_SIGMA: f64 = 0.5;
/// Global median of the secondary-URL count.
pub const LINKS_MEDIAN: f64 = 14.0;
/// Log-σ of the link-count feature.
pub const LINKS_SIGMA: f64 = 0.5;

/// |z| threshold putting exactly half the mass in the outer band
/// (Φ(0.674) = 0.75).
const OUTER_BAND_Z: f64 = 0.674;

/// Whether `value` lies in the outer band of a log-normal with the given
/// median and log-σ.
pub fn outer_band(value: f64, median: f64, sigma: f64) -> bool {
    (value / median).ln().abs() > OUTER_BAND_Z * sigma
}

/// Synthesizes visit features anchored to corpus page shapes.
#[derive(Debug, Clone)]
pub struct VisitSynthesizer {
    /// `(site_key, version, base)` rows derived from the corpus.
    bases: Vec<(String, PageVersion, FeatureVector)>,
}

impl VisitSynthesizer {
    /// Builds a synthesizer from the benchmark corpus.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let mut bases = Vec::new();
        for site in corpus.sites() {
            for version in [PageVersion::Mobile, PageVersion::Full] {
                let page = match version {
                    PageVersion::Mobile => &site.mobile,
                    PageVersion::Full => &site.full,
                };
                let spec = page.spec();
                let text_kb = spec.html_kb
                    + spec.n_css as f64 * spec.css_kb
                    + spec.n_scripts as f64 * spec.js_kb;
                let figures = (spec.n_images + spec.js_fetches + spec.css_image_refs) as f64;
                let figure_kb = figures * spec.image_kb;
                // Analytic load estimates (the full browser pipeline gives
                // the precise values; for trace generation these anchors
                // only need the right scale).
                let tx_time = 2.0 + (text_kb + figure_kb) / 95.0 + figures * 0.05;
                let js_time = spec.n_scripts as f64 * (0.1 + spec.js_work as f64 * 2e-4);
                let height = 900.0 + spec.text_paragraphs as f64 * 160.0 + figures * 120.0;
                let width = match version {
                    PageVersion::Mobile => 480.0,
                    PageVersion::Full => 980.0,
                };
                bases.push((
                    site.key.clone(),
                    version,
                    FeatureVector([
                        tx_time,
                        text_kb,
                        figures + 1.0 + spec.n_css as f64 + spec.n_scripts as f64,
                        spec.n_scripts as f64,
                        figures,
                        figure_kb,
                        js_time,
                        spec.n_links as f64,
                        height,
                        width,
                    ]),
                ));
            }
        }
        VisitSynthesizer { bases }
    }

    /// Number of distinct (site, version) bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether there are no bases (never true for the benchmark corpus).
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The `(site_key, version)` label of base `idx` (Table 3 order,
    /// mobile before full within a site).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn base(&self, idx: usize) -> (&str, PageVersion) {
        let (key, version, _) = &self.bases[idx];
        (key, *version)
    }

    /// Draws one visit: picks a (site, version), jitters its features,
    /// and returns the latent bits for the dwell model.
    pub fn sample(
        &self,
        rng: &mut Xoshiro256,
    ) -> (String, PageVersion, FeatureVector, VisitLatents) {
        let (idx, f, latents) = self.sample_indexed(rng);
        let (key, version, _) = &self.bases[idx];
        (key.clone(), *version, f, latents)
    }

    /// Like [`VisitSynthesizer::sample`], but returns the base index
    /// instead of cloning the site key — the allocation-free form the
    /// fleet simulator's per-visit hot loop uses. Draws the same RNG
    /// stream as `sample`, so the two are interchangeable mid-sequence.
    pub fn sample_indexed(&self, rng: &mut Xoshiro256) -> (usize, FeatureVector, VisitLatents) {
        let idx = rng.usize_below(self.bases.len());
        let (_, _, base) = &self.bases[idx];
        let mut f = *base;

        // Correlated bulk jitter: bigger variants of the same page.
        let bulk = LogNormal::new(0.0, 0.25).sample(rng);
        f.0[1] *= bulk; // page size
        f.0[2] = (f.0[2] * bulk).round().max(1.0); // objects
        f.0[3] = (f.0[3] * LogNormal::new(0.0, 0.3).sample(rng))
            .round()
            .max(0.0);
        f.0[4] = (f.0[4] * bulk).round().max(0.0); // figures
        f.0[5] = f.0[5] * bulk * LogNormal::new(0.0, 0.3).sample(rng); // figure KB

        // The three bit-carrying features come from global distributions,
        // so the outer-band edges are global constants and the bits are
        // balanced, independent, and recoverable with two splits each.
        let height = LogNormal::with_median(HEIGHT_MEDIAN_PX, HEIGHT_SIGMA).sample(rng);
        let js_time = LogNormal::with_median(JS_TIME_MEDIAN_S, JS_TIME_SIGMA).sample(rng);
        let links = LogNormal::with_median(LINKS_MEDIAN, LINKS_SIGMA).sample(rng);
        f.0[8] = height;
        f.0[6] = js_time;
        f.0[7] = links.round();

        // Transmission time follows the jittered payload plus its own
        // network noise.
        f.0[0] = f.0[0] * bulk * LogNormal::new(0.0, 0.2).sample(rng);

        let latents = VisitLatents {
            tall_page: outer_band(height, HEIGHT_MEDIAN_PX, HEIGHT_SIGMA),
            link_rich: outer_band(links, LINKS_MEDIAN, LINKS_SIGMA),
            script_heavy: outer_band(js_time, JS_TIME_MEDIAN_S, JS_TIME_SIGMA),
        };
        (idx, f, latents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    fn synth() -> VisitSynthesizer {
        VisitSynthesizer::from_corpus(&benchmark_corpus(1))
    }

    #[test]
    fn twenty_bases_from_ten_sites() {
        let s = synth();
        assert_eq!(s.len(), 20);
        assert!(!s.is_empty());
    }

    #[test]
    fn samples_are_plausible() {
        let s = synth();
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..200 {
            let (key, _, f, _) = s.sample(&mut rng);
            assert!(!key.is_empty());
            assert!(f.transmission_time() > 0.0);
            assert!(f.page_size() > 1.0);
            assert!(f.objects() >= 1.0);
            assert!(f.page_height() > 100.0);
            assert!(f.page_width() == 480.0 || f.page_width() == 980.0);
        }
    }

    #[test]
    fn latent_bits_are_roughly_balanced_and_independent() {
        let s = synth();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let n = 20_000;
        let mut counts = [0u32; 3];
        let mut pair = [[0u32; 2]; 3];
        for _ in 0..n {
            let (_, _, _, l) = s.sample(&mut rng);
            let bits = [l.tall_page, l.link_rich, l.script_heavy];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    counts[i] += 1;
                }
            }
            // Pairwise joint for independence spot-check (bit0 vs bit1 etc.)
            pair[0][usize::from(bits[0] == bits[1])] += 1;
            pair[1][usize::from(bits[1] == bits[2])] += 1;
            pair[2][usize::from(bits[0] == bits[2])] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((0.46..0.54).contains(&frac), "bit balance {frac}");
        }
        for p in pair {
            let agree = p[1] as f64 / n as f64;
            assert!((0.46..0.54).contains(&agree), "pair agreement {agree}");
        }
    }

    #[test]
    fn sample_indexed_matches_sample_stream() {
        let s = synth();
        let mut a = Xoshiro256::seed_from_u64(9);
        let mut b = a.clone();
        for _ in 0..200 {
            let (key, version, f, l) = s.sample(&mut a);
            let (idx, fi, li) = s.sample_indexed(&mut b);
            let (ikey, iversion) = s.base(idx);
            assert_eq!(key, ikey);
            assert_eq!(version, iversion);
            assert_eq!(f, fi);
            assert_eq!(l, li);
        }
    }

    #[test]
    fn mobile_and_full_differ_in_scale() {
        let s = synth();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut mobile = Vec::new();
        let mut full = Vec::new();
        for _ in 0..2000 {
            let (_, v, f, _) = s.sample(&mut rng);
            match v {
                PageVersion::Mobile => mobile.push(f.page_size()),
                PageVersion::Full => full.push(f.page_size()),
            }
        }
        let m = ewb_simcore::stats::mean(&mobile);
        let f = ewb_simcore::stats::mean(&full);
        assert!(f > 3.0 * m, "full {f} KB vs mobile {m} KB");
    }
}
