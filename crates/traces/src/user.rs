//! The dwell-time model: how long a user reads a page.
//!
//! Structure (calibrated to the paper's Fig. 7 anchors):
//!
//! * With probability ≈30 % the visit is a **quick bounce**: the user
//!   clicks through within the interest threshold (α = 2 s), independent
//!   of the page — this is the population the paper excludes from
//!   training (§4.3.4).
//! * Otherwise the visit is **engaged**: dwell is a Weibull quantile
//!   (Liu et al., the paper's \[12\], found web dwell is Weibull) whose
//!   quantile position depends on a *three-way interaction* of binarized
//!   page attributes plus the user's interest in the site's topic. The
//!   interaction is linearly invisible (Table 4) but an 8-leaf regression
//!   tree captures it exactly — the paper's design point.

use crate::synth::VisitLatents;
use ewb_simcore::Xoshiro256;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Weibull shape for engaged dwell, fitted to the paper's Fig. 7 anchors
/// (P(<9 s | engaged) = 0.33, P(<20 s | engaged) = 0.54).
pub const DWELL_SHAPE: f64 = 0.84;
/// Weibull scale for engaged dwell, seconds.
pub const DWELL_SCALE: f64 = 26.8;
/// Fraction of quick-bounce visits.
pub const BOUNCE_FRACTION: f64 = 0.30;
/// The paper discards dwells longer than 10 minutes.
pub const MAX_DWELL_S: f64 = 600.0;

/// One simulated user's interest profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// User id.
    pub id: u32,
    /// Interest per site key, in `[0, 1]`. Sorted so serializing a
    /// profile is byte-deterministic (hash order leaked before ewb-lint).
    interests: BTreeMap<String, f64>,
}

impl UserProfile {
    /// Creates a profile with a random interest per benchmark site.
    pub fn generate(id: u32, site_keys: &[&str], rng: &mut Xoshiro256) -> Self {
        let interests = site_keys
            .iter()
            .map(|&k| (k.to_string(), rng.f64_range(0.15, 0.85)))
            .collect();
        UserProfile { id, interests }
    }

    /// The user's interest in a site (0.5 for unknown sites).
    pub fn interest(&self, site: &str) -> f64 {
        self.interests.get(site).copied().unwrap_or(0.5)
    }
}

/// The engaged-dwell generator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DwellModel;

impl DwellModel {
    /// Draws a reading time for one visit.
    pub fn sample(&self, latents: VisitLatents, interest: f64, rng: &mut Xoshiro256) -> f64 {
        if rng.f64() < BOUNCE_FRACTION {
            // Quick bounce: feature-independent, below the α = 2 s
            // interest threshold.
            return rng.f64_range(0.2, 2.0);
        }
        // Majority of three outer-band bits: an "unusual page" signal.
        // Each carrier bit is a *symmetric* (banded) function of its
        // feature, so the linear correlations of Table 4 stay ≈0, yet the
        // majority has strong conditional effects a greedy tree climbs
        // (each bit shifts the majority probability by 0.5).
        let votes = u8::from(latents.tall_page)
            + u8::from(latents.link_rich)
            + u8::from(latents.script_heavy);
        let unusual = f64::from(votes >= 2);
        // Quantile position: mostly the interaction, shaded by interest,
        // plus irreducible noise. Coefficients are solved so the overall
        // dwell CDF passes through the paper's Fig. 7 anchors
        // (30 % < 2 s, 53 % < 9 s, 68 % < 20 s).
        let q = (0.127 + 0.438 * unusual + 0.16 * (interest - 0.5) + 0.28 * rng.f64())
            .clamp(1e-4, 1.0 - 1e-4);
        let dwell = DWELL_SCALE * (-(1.0 - q).ln()).powf(1.0 / DWELL_SHAPE);
        dwell.min(MAX_DWELL_S)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latents(a: bool, b: bool, c: bool) -> VisitLatents {
        VisitLatents {
            tall_page: a,
            link_rich: b,
            script_heavy: c,
        }
    }

    #[test]
    fn profiles_are_deterministic_per_seed() {
        let keys = ["espn", "cnn"];
        let a = UserProfile::generate(1, &keys, &mut Xoshiro256::seed_from_u64(9));
        let b = UserProfile::generate(1, &keys, &mut Xoshiro256::seed_from_u64(9));
        assert_eq!(a, b);
        assert!((0.15..0.85).contains(&a.interest("espn")));
        assert_eq!(a.interest("unknown"), 0.5);
    }

    #[test]
    fn bounce_fraction_is_about_thirty_percent() {
        let model = DwellModel;
        let mut rng = Xoshiro256::seed_from_u64(1);
        let n = 50_000;
        let bounces = (0..n)
            .filter(|_| model.sample(latents(true, false, false), 0.5, &mut rng) < 2.0)
            .count();
        let frac = bounces as f64 / n as f64;
        assert!((0.27..0.36).contains(&frac), "bounce fraction {frac}");
    }

    #[test]
    fn majority_signal_separates_dwell_populations() {
        let model = DwellModel;
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mean = |l: VisitLatents, rng: &mut Xoshiro256| {
            let xs: Vec<f64> = (0..20_000)
                .map(|_| model.sample(l, 0.5, rng))
                .filter(|&d| d >= 2.0)
                .collect();
            ewb_simcore::stats::mean(&xs)
        };
        let unusual = mean(latents(true, true, false), &mut rng);
        let typical = mean(latents(true, false, false), &mut rng);
        assert!(
            unusual > 2.0 * typical,
            "majority=1 dwell {unusual} should dwarf majority=0 dwell {typical}"
        );
    }

    #[test]
    fn interest_shifts_dwell() {
        let model = DwellModel;
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mean_for = |interest: f64, rng: &mut Xoshiro256| {
            let xs: Vec<f64> = (0..30_000)
                .map(|_| model.sample(latents(true, false, false), interest, rng))
                .filter(|&d| d >= 2.0)
                .collect();
            ewb_simcore::stats::mean(&xs)
        };
        let low = mean_for(0.2, &mut rng);
        let high = mean_for(0.8, &mut rng);
        assert!(
            high > low * 1.1,
            "interest should raise dwell: {low} vs {high}"
        );
    }

    #[test]
    fn dwell_is_bounded() {
        let model = DwellModel;
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..50_000 {
            let d = model.sample(latents(true, false, false), 0.9, &mut rng);
            assert!((0.0..=MAX_DWELL_S).contains(&d));
        }
    }
}
