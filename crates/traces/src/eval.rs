//! The Fig. 15 prediction-accuracy experiment.
//!
//! §5.6.1: "If the predicted reading time and the real reading time are
//! both larger or smaller than a given value (Td or Tp), the prediction is
//! correct." The experiment compares training/evaluating on the raw trace
//! against training/evaluating with the interest threshold applied (all
//! sub-α visits excluded, since the user navigates away before the
//! predictor would even run) — the paper reports the threshold is worth
//! at least +10 accuracy points.

use crate::dataset::TraceDataset;
use ewb_gbrt::{threshold_accuracy, GbrtParams};
use ewb_simcore::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Accuracy measurement output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Decision threshold used (Tp = 9 s or Td = 20 s).
    pub decision_threshold_s: f64,
    /// Fraction of test visits classified to the correct side.
    pub accuracy: f64,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
}

/// Default GBRT hyper-parameters for the reading-time model: forests of
/// 8-leaf trees, as the paper evaluates (Table 7).
pub fn reading_time_params() -> GbrtParams {
    GbrtParams {
        n_trees: 150,
        max_leaves: 8,
        learning_rate: 0.08,
        subsample: 0.8,
        min_samples_leaf: 8,
        ..GbrtParams::default()
    }
}

/// Trains on 70 % of the raw trace and evaluates threshold accuracy on
/// the rest — Fig. 15's "without interest threshold" bars.
pub fn accuracy_without_threshold(
    trace: &TraceDataset,
    decision_threshold_s: f64,
    seed: u64,
) -> AccuracyReport {
    evaluate(trace, decision_threshold_s, seed)
}

/// Excludes sub-α visits from both training and evaluation (the predictor
/// only runs after the user has stayed past α), then measures accuracy —
/// Fig. 15's "with interest threshold" bars.
///
/// # Panics
///
/// Panics if the threshold removes every visit.
pub fn accuracy_with_threshold(
    trace: &TraceDataset,
    alpha_s: f64,
    decision_threshold_s: f64,
    seed: u64,
) -> AccuracyReport {
    let engaged = trace.engaged_only(alpha_s);
    assert!(!engaged.is_empty(), "interest threshold removed all visits");
    evaluate(&engaged, decision_threshold_s, seed)
}

fn evaluate(trace: &TraceDataset, decision_threshold_s: f64, seed: u64) -> AccuracyReport {
    let data = trace.to_gbrt_dataset();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let (train, test) = data.split(0.7, &mut rng);
    let predictor =
        crate::predictor::ReadingTimePredictor::train_dataset(&train, &reading_time_params());
    let predictions: Vec<f64> = (0..test.len())
        .map(|i| predictor.predict_row(test.row(i)))
        .collect();
    let accuracy = threshold_accuracy(&predictions, test.targets(), decision_threshold_s);
    AccuracyReport {
        decision_threshold_s,
        accuracy,
        train_size: train.len(),
        test_size: test.len(),
    }
}

/// One cell of an accuracy-evaluation grid: an optional interest
/// threshold α, a decision threshold (Tp or Td), and a train/test split
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalCell {
    /// Interest threshold α in seconds; `None` evaluates the raw trace.
    pub alpha_s: Option<f64>,
    /// Decision threshold in seconds (Tp = 9 or Td = 20).
    pub decision_threshold_s: f64,
    /// Split seed.
    pub seed: u64,
}

/// Evaluates every cell of a grid, fanning the independent (α, T, seed)
/// cells out over scoped threads. Each cell trains its own model, so the
/// cells share nothing; results come back in `cells` order and are
/// identical to calling [`accuracy_without_threshold`] /
/// [`accuracy_with_threshold`] serially.
///
/// # Panics
///
/// Panics if any cell's interest threshold removes every visit, or a
/// worker panics.
pub fn accuracy_grid(trace: &TraceDataset, cells: &[EvalCell]) -> Vec<AccuracyReport> {
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|&cell| {
                scope.spawn(move |_| match cell.alpha_s {
                    None => accuracy_without_threshold(trace, cell.decision_threshold_s, cell.seed),
                    Some(alpha) => {
                        accuracy_with_threshold(trace, alpha, cell.decision_threshold_s, cell.seed)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("eval cell worker panicked"))
            .collect()
    })
    .expect("thread scope")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TraceConfig;

    fn trace() -> TraceDataset {
        TraceDataset::generate(&TraceConfig::paper())
    }

    #[test]
    fn grid_matches_serial_evaluation() {
        let t = TraceDataset::generate(&TraceConfig::small());
        let cells = [
            EvalCell {
                alpha_s: None,
                decision_threshold_s: 9.0,
                seed: 1,
            },
            EvalCell {
                alpha_s: Some(2.0),
                decision_threshold_s: 9.0,
                seed: 1,
            },
            EvalCell {
                alpha_s: Some(2.0),
                decision_threshold_s: 20.0,
                seed: 2,
            },
        ];
        let parallel = accuracy_grid(&t, &cells);
        let serial = [
            accuracy_without_threshold(&t, 9.0, 1),
            accuracy_with_threshold(&t, 2.0, 9.0, 1),
            accuracy_with_threshold(&t, 2.0, 20.0, 2),
        ];
        assert_eq!(parallel, serial);
    }

    #[test]
    fn threshold_improves_accuracy_by_ten_points() {
        let t = trace();
        for decision in [9.0, 20.0] {
            let without = accuracy_without_threshold(&t, decision, 1);
            let with = accuracy_with_threshold(&t, 2.0, decision, 1);
            println!(
                "T={decision}: without {:.3}, with {:.3}",
                without.accuracy, with.accuracy
            );
            assert!(
                with.accuracy >= without.accuracy + 0.08,
                "threshold should add ≈10 points at T={decision}: {} -> {}",
                without.accuracy,
                with.accuracy
            );
        }
    }

    #[test]
    fn with_threshold_accuracy_is_high() {
        let t = trace();
        let at9 = accuracy_with_threshold(&t, 2.0, 9.0, 2);
        let at20 = accuracy_with_threshold(&t, 2.0, 20.0, 2);
        assert!(at9.accuracy > 0.78, "Tp=9 accuracy {}", at9.accuracy);
        assert!(at20.accuracy > 0.78, "Td=20 accuracy {}", at20.accuracy);
    }

    #[test]
    fn report_sizes_are_consistent() {
        let t = TraceDataset::generate(&TraceConfig::small());
        let r = accuracy_without_threshold(&t, 9.0, 3);
        assert_eq!(r.train_size + r.test_size, t.len());
        assert!((0.0..=1.0).contains(&r.accuracy));
        assert_eq!(r.decision_threshold_s, 9.0);
    }
}

/// Cross-user generalization: train on the first `train_users` users,
/// evaluate on everyone else. The paper deploys one offline-trained model
/// and argues retraining should be rare ("the user behavior of web
/// browsing generally does not change too much", §4.3.3; §5.6.3 warns
/// that frequent retraining risks overfitting) — so a model trained on
/// *other* users' traces must hold up on unseen users.
///
/// # Panics
///
/// Panics if the split leaves either side empty.
pub fn cross_user_accuracy(
    trace: &TraceDataset,
    alpha_s: f64,
    decision_threshold_s: f64,
    train_users: u32,
) -> AccuracyReport {
    let engaged = trace.engaged_only(alpha_s);
    let train_visits: Vec<_> = engaged
        .visits()
        .iter()
        .filter(|v| v.user < train_users)
        .collect();
    let test_visits: Vec<_> = engaged
        .visits()
        .iter()
        .filter(|v| v.user >= train_users)
        .collect();
    assert!(
        !train_visits.is_empty() && !test_visits.is_empty(),
        "cross-user split must leave users on both sides"
    );
    let to_dataset = |visits: &[&crate::dataset::PageVisit]| {
        ewb_gbrt::Dataset::new(
            visits.iter().map(|v| v.features.to_vec()).collect(),
            visits.iter().map(|v| v.reading_time_s).collect(),
        )
        .expect("trace visits are valid")
    };
    let train = to_dataset(&train_visits);
    let test = to_dataset(&test_visits);
    let predictor =
        crate::predictor::ReadingTimePredictor::train_dataset(&train, &reading_time_params());
    let predictions: Vec<f64> = (0..test.len())
        .map(|i| predictor.predict_row(test.row(i)))
        .collect();
    AccuracyReport {
        decision_threshold_s,
        accuracy: threshold_accuracy(&predictions, test.targets(), decision_threshold_s),
        train_size: train.len(),
        test_size: test.len(),
    }
}

#[cfg(test)]
mod cross_user_tests {
    use super::*;
    use crate::dataset::TraceConfig;

    #[test]
    fn model_generalizes_to_unseen_users() {
        let trace = TraceDataset::generate(&TraceConfig::paper());
        let within = accuracy_with_threshold(&trace, 2.0, 9.0, 5);
        let across = cross_user_accuracy(&trace, 2.0, 9.0, 30);
        println!(
            "within-user {:.3}, cross-user {:.3}",
            within.accuracy, across.accuracy
        );
        // A model trained on 30 users must hold up on the other 10 —
        // within a few points of the mixed-split accuracy.
        assert!(
            across.accuracy > within.accuracy - 0.06,
            "cross-user {:.3} vs within {:.3}",
            across.accuracy,
            within.accuracy
        );
        assert!(across.accuracy > 0.72);
    }

    #[test]
    #[should_panic(expected = "both sides")]
    fn degenerate_split_panics() {
        let trace = TraceDataset::generate(&TraceConfig::small());
        cross_user_accuracy(&trace, 2.0, 9.0, 1000);
    }
}
