//! The deployable reading-time predictor.
//!
//! A GBRT over the Table 1 features, trained on `ln(1 + dwell)` — reading
//! times are heavy-tailed (a few multi-minute dwells dominate a squared
//! loss on raw seconds and drag every leaf mean upward), and the paper's
//! threshold decisions (`Tr > Tp`, `Tr > Td`) are invariant under the
//! monotone transform. Predictions are returned in seconds.

use crate::dataset::TraceDataset;
use crate::features::FeatureVector;
use ewb_gbrt::{Dataset, FlatForest, Gbrt, GbrtModel, GbrtParams};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A trained reading-time model (the artifact the paper "deploys to the
/// prediction program which is embedded in the web browser", §4.3.3).
///
/// Predictions run through a lazily compiled [`FlatForest`] — the
/// structure-of-arrays layout the deployed device-side predictor would
/// ship — which is bit-identical to evaluating the enum model directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadingTimePredictor {
    model: GbrtModel,
    /// Inference-compiled forest; rebuilt on demand after deserialization.
    #[serde(skip)]
    flat: OnceLock<FlatForest>,
}

impl PartialEq for ReadingTimePredictor {
    fn eq(&self, other: &Self) -> bool {
        // `flat` is a pure derivation of `model`.
        self.model == other.model
    }
}

impl ReadingTimePredictor {
    /// Trains on every visit of `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty or `params` are invalid.
    pub fn train(trace: &TraceDataset, params: &GbrtParams) -> Self {
        Self::train_dataset(&trace.to_gbrt_dataset(), params)
    }

    /// Trains with the paper's §4.3.4 interest-threshold filtering: visits
    /// shorter than `alpha_s` are excluded (the user leaves before the
    /// predictor would run).
    ///
    /// # Panics
    ///
    /// Panics if the filter removes every visit.
    pub fn train_with_interest_threshold(
        trace: &TraceDataset,
        alpha_s: f64,
        params: &GbrtParams,
    ) -> Self {
        let engaged = trace.engaged_only(alpha_s);
        assert!(!engaged.is_empty(), "interest threshold removed all visits");
        Self::train_dataset(&engaged.to_gbrt_dataset(), params)
    }

    /// Trains directly on a prepared GBRT dataset whose targets are raw
    /// reading times in seconds.
    pub fn train_dataset(data: &Dataset, params: &GbrtParams) -> Self {
        let log_targets: Vec<f64> = data.targets().iter().map(|&y| (1.0 + y).ln()).collect();
        let log_data = Dataset::new(data.rows().to_vec(), log_targets)
            .expect("log transform preserves validity");
        ReadingTimePredictor {
            model: Gbrt::fit(&log_data, params),
            flat: OnceLock::new(),
        }
    }

    /// Predicted reading time `Tr` in seconds.
    pub fn predict_seconds(&self, features: &FeatureVector) -> f64 {
        self.predict_row(&features.to_vec())
    }

    /// Predicted reading time from a raw feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong number of features.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        (self.flat().predict(row).exp() - 1.0).max(0.0)
    }

    /// Predicted reading times for a batch of row-major feature rows —
    /// the fleet simulator's hot-loop entry point. Runs the forest through
    /// [`FlatForest::predict_batch`] and applies the seconds transform in
    /// place; each result is bit-identical to
    /// [`ReadingTimePredictor::predict_row`] on the same row. No heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != out.len() * 10`.
    pub fn predict_rows(&self, rows: &[f64], out: &mut [f64]) {
        self.flat().predict_batch(rows, out);
        for y in out.iter_mut() {
            *y = (y.exp() - 1.0).max(0.0);
        }
    }

    /// The underlying forest.
    pub fn model(&self) -> &GbrtModel {
        &self.model
    }

    /// The inference-compiled forest, built on first use.
    pub fn flat(&self) -> &FlatForest {
        self.flat.get_or_init(|| self.model.flatten())
    }

    /// Serializes for deployment.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("predictor is always serializable")
    }

    /// Restores a deployed predictor.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TraceConfig;
    use crate::eval::reading_time_params;

    #[test]
    fn predicts_nonnegative_seconds() {
        let trace = TraceDataset::generate(&TraceConfig::small());
        let p = ReadingTimePredictor::train(&trace, &reading_time_params());
        for v in trace.visits().iter().take(50) {
            let pred = p.predict_seconds(&v.features);
            assert!((0.0..700.0).contains(&pred), "prediction {pred}");
        }
    }

    #[test]
    fn interest_threshold_training_raises_predictions() {
        let trace = TraceDataset::generate(&TraceConfig::small());
        let raw = ReadingTimePredictor::train(&trace, &reading_time_params());
        let engaged = ReadingTimePredictor::train_with_interest_threshold(
            &trace,
            2.0,
            &reading_time_params(),
        );
        // Bounces drag the raw model down; the filtered model predicts
        // longer dwell on average.
        let mean = |p: &ReadingTimePredictor| {
            let s: f64 = trace
                .visits()
                .iter()
                .take(200)
                .map(|v| p.predict_seconds(&v.features))
                .sum();
            s / 200.0
        };
        assert!(mean(&engaged) > mean(&raw));
    }

    #[test]
    fn flat_path_matches_enum_model() {
        let trace = TraceDataset::generate(&TraceConfig::small());
        let p = ReadingTimePredictor::train(&trace, &reading_time_params());
        for v in trace.visits().iter().take(100) {
            let row = v.features.to_vec();
            let via_flat = p.predict_row(&row);
            let via_model = (p.model().predict(&row).exp() - 1.0).max(0.0);
            assert_eq!(via_flat.to_bits(), via_model.to_bits());
        }
        assert_eq!(p.flat().n_trees(), p.model().n_trees());
    }

    #[test]
    fn batch_rows_match_single_rows_bitwise() {
        let trace = TraceDataset::generate(&TraceConfig::small());
        let p = ReadingTimePredictor::train(&trace, &reading_time_params());
        let visits: Vec<_> = trace.visits().iter().take(150).collect();
        let mut rows = Vec::new();
        for v in &visits {
            rows.extend_from_slice(&v.features.0);
        }
        let mut out = vec![0.0; visits.len()];
        p.predict_rows(&rows, &mut out);
        for (v, &y) in visits.iter().zip(&out) {
            assert_eq!(y.to_bits(), p.predict_seconds(&v.features).to_bits());
        }
    }

    #[test]
    fn json_roundtrip() {
        let trace = TraceDataset::generate(&TraceConfig::small());
        let p = ReadingTimePredictor::train(&trace, &reading_time_params());
        let restored = ReadingTimePredictor::from_json(&p.to_json()).unwrap();
        let v = &trace.visits()[0];
        assert_eq!(
            p.predict_seconds(&v.features),
            restored.predict_seconds(&v.features)
        );
    }
}
