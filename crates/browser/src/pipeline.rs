//! The two page-load pipelines — the heart of the paper's first technique.
//!
//! **Original** (§2.2, Fig. 2): data-transmission computation and layout
//! computation are mixed. Every arriving object is fully processed (CSS
//! parsed into rules, images decoded) before the next, and the browser
//! periodically redraws/reflows an intermediate display. Transmissions
//! therefore spread across the whole load (the paper's Fig. 4).
//!
//! **Energy-aware** (§4.1, Fig. 5): the browser first runs only the
//! computations that can *generate* transmissions — parse HTML, execute
//! JavaScript, *scan* (not parse) CSS — requesting everything it finds.
//! When the last byte is in, the transmission phase ends (the radio can
//! drop to IDLE), and only then run the layout computations once: parse
//! CSS, style, decode, lay out, paint. A cheap text-only intermediate
//! display (§4.2) is drawn right after the main document parses
//! (simplification: the paper draws it at 1/3 of the parse; we draw it at
//! the end of the root parse, a few hundred ms later on the model).
//!
//! The pipeline is network-agnostic: it drives any
//! [`ResourceFetcher`] and produces
//! [`LoadMetrics`] with the full timing/energy-relevant breakdown,
//! including the Table 1 feature vector used by the reading-time
//! predictor.

use crate::cache::{CachedLayout, LayoutCache};
use crate::cost::{CpuCostModel, CpuWork};
use crate::css;
use crate::dom::Document;
use crate::fetch::ResourceFetcher;
use crate::html;
use crate::js;
use crate::layout;
use crate::parallel::{self, ParallelismPlan};
use ewb_obs::{Event as ObsEvent, Layer as ObsLayer, Recorder};
use ewb_simcore::{SimDuration, SimTime, TimeSeries};
use ewb_webpage::ObjectKind;
use std::collections::HashSet;

/// Which computation schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineMode {
    /// The stock browser: interleaved processing, progressive display.
    Original,
    /// The paper's reorganized sequence: transmission phase, then layout.
    EnergyAware,
}

/// Pipeline knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// The schedule.
    pub mode: PipelineMode,
    /// Layout viewport in px (980 = the classic mobile "desktop viewport").
    pub viewport_px: f64,
    /// Original mode: redraw the intermediate display every this many
    /// processed objects.
    pub progressive_batch: usize,
    /// Energy-aware mode: draw the cheap text-only intermediate display.
    /// The paper disables it for mobile-version pages (§4.2).
    pub draw_intermediate: bool,
    /// Gas budget per script.
    pub js_gas: u64,
    /// Maximum concurrent requests (2009-era mobile browsers used two
    /// connections). This is what makes browser-paced downloads slow
    /// (Fig. 4): while the CPU processes an object, at most this many
    /// transfers can still be draining, so heavy per-object processing
    /// starves the link.
    pub max_parallel: usize,
    /// How independent pipeline stage units fan out over the simulated
    /// cores (see [`crate::parallel`]). [`ParallelismPlan::SEQUENTIAL`]
    /// reproduces the legacy single-core schedule bit-for-bit.
    pub plan: ParallelismPlan,
    /// Whether the *host* executor may actually use threads for the
    /// fanned-out engine work. Results are bit-identical either way
    /// (the differential oracle in `ewb-check` proves it); `false`
    /// forces the single-threaded reference execution.
    pub host_parallel: bool,
}

impl PipelineConfig {
    /// Defaults for the given mode.
    ///
    /// The original browser keeps the era-typical two connections and its
    /// heavy per-object processing starves them (Fig. 4's spread-out
    /// traffic). The energy-aware browser "groups all data transmissions
    /// together" (§3.1) — it requests aggressively with a deeper
    /// connection pool and defers all heavy processing, approaching the
    /// socket-download profile of Fig. 4.
    pub fn new(mode: PipelineMode) -> Self {
        PipelineConfig {
            mode,
            viewport_px: 980.0,
            progressive_batch: 3,
            draw_intermediate: true,
            js_gas: js::DEFAULT_GAS,
            max_parallel: match mode {
                PipelineMode::Original => 2,
                PipelineMode::EnergyAware => 3,
            },
            plan: ParallelismPlan::SEQUENTIAL,
            host_parallel: true,
        }
    }
}

/// The paper's Table 1 feature vector, extracted from a load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageFeatures {
    /// Data transmission time, seconds.
    pub transmission_time_s: f64,
    /// Page size without figures, KB.
    pub page_size_kb: f64,
    /// Number of downloaded objects.
    pub download_objects: f64,
    /// Number of downloaded JavaScript files.
    pub download_js: f64,
    /// Number of downloaded figures.
    pub download_figures: f64,
    /// Total size of downloaded figures, KB.
    pub figure_size_kb: f64,
    /// JavaScript running time, seconds.
    pub js_running_time_s: f64,
    /// Number of secondary URLs.
    pub second_urls: f64,
    /// Page height, px.
    pub page_height: f64,
    /// Page width, px.
    pub page_width: f64,
}

impl PageFeatures {
    /// The features as the 10-element input vector `x = {x1..x10}` the
    /// GBRT predictor consumes, in Table 1 order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.transmission_time_s,
            self.page_size_kb,
            self.download_objects,
            self.download_js,
            self.download_figures,
            self.figure_size_kb,
            self.js_running_time_s,
            self.second_urls,
            self.page_height,
            self.page_width,
        ]
    }
}

/// Everything measured during one page load.
#[derive(Debug, Clone)]
pub struct LoadMetrics {
    /// The schedule that produced this load.
    pub mode: PipelineMode,
    /// When the load began.
    pub start: SimTime,
    /// When the last transfer *and* the last transmission-generating
    /// computation finished — the instant the energy-aware browser can
    /// release the radio (§4.1).
    pub data_transmission_end: SimTime,
    /// When the first (intermediate) display appeared, if one was drawn.
    pub first_display_at: Option<SimTime>,
    /// When the final display appeared — the end of the page load.
    pub final_display_at: SimTime,
    /// CPU-busy intervals of the main core, for replaying CPU power onto
    /// the radio model. Always disjoint and ordered.
    pub cpu_busy: Vec<(SimTime, SimTime)>,
    /// Busy intervals of helper cores under a parallel
    /// [`ParallelismPlan`]: these run *concurrently* with `cpu_busy`
    /// (and each other) and add their own CPU power draw during replay
    /// (`ewb_net::replay::events_of_load_parallel`). Empty under the
    /// sequential plan.
    pub aux_busy: Vec<(SimTime, SimTime)>,
    /// CPU time by category.
    pub work: CpuWork,
    /// Total bytes fetched.
    pub bytes_fetched: u64,
    /// Bytes of textual objects (HTML/CSS/JS) — Table 1's "page size
    /// without considering the figures".
    pub text_bytes_fetched: u64,
    /// Objects fetched successfully.
    pub objects_fetched: usize,
    /// JavaScript files fetched.
    pub js_objects: usize,
    /// Images/flash fetched.
    pub image_objects: usize,
    /// Bytes of images/flash.
    pub image_bytes: u64,
    /// Requests that 404ed.
    pub fetch_failures: usize,
    /// Requests whose transfers errored out (retries/deadline exhausted on
    /// a faulty link) or were abandoned by the fetcher. The page still
    /// renders with whatever arrived.
    pub failed_objects: usize,
    /// `true` when at least one object failed: the displayed page is a
    /// partial (degraded) render, not the complete page.
    pub degraded: bool,
    /// Per-completion traffic: `(arrival, bytes)` — the Fig. 4 series.
    pub traffic: TimeSeries,
    /// `<a href>` count (Table 1's "Second URL").
    pub secondary_urls: usize,
    /// Final page height, px.
    pub page_height: f64,
    /// Final page width, px.
    pub page_width: f64,
    /// Final DOM size in nodes.
    pub dom_nodes: usize,
    /// Number of image-decode units executed.
    pub decode_jobs: usize,
    /// Bytes decoded across those units (equals `image_bytes` on a
    /// clean, fully decoded load).
    pub decoded_bytes: u64,
    /// Total CPU work of the plan-eligible stage units (deferred CSS
    /// parse, deferred image decode, final style resolution) — what a
    /// 1-core schedule spends on them.
    pub parallel_work: SimDuration,
    /// Critical-path time those units actually occupied under the plan
    /// (fork overhead included). Equals `parallel_work` when sequential.
    pub parallel_span: SimDuration,
}

impl LoadMetrics {
    /// Total load duration (start → final display).
    pub fn load_time(&self) -> SimDuration {
        self.final_display_at - self.start
    }

    /// Duration of the transmission phase (start → last byte + last
    /// transmission-generating computation).
    pub fn transmission_time(&self) -> SimDuration {
        self.data_transmission_end - self.start
    }

    /// Duration of the layout phase (energy-aware mode: after the radio
    /// could drop).
    pub fn layout_phase_time(&self) -> SimDuration {
        self.final_display_at - self.data_transmission_end
    }

    /// Speedup of the plan-eligible pipeline stages vs a 1-core
    /// schedule: `parallel_work / parallel_span` (1.0 when the page has
    /// no eligible work).
    pub fn pipeline_speedup(&self) -> f64 {
        if self.parallel_span.is_zero() {
            1.0
        } else {
            self.parallel_work.as_secs_f64() / self.parallel_span.as_secs_f64()
        }
    }

    /// The Table 1 feature vector.
    pub fn features(&self) -> PageFeatures {
        PageFeatures {
            transmission_time_s: self.transmission_time().as_secs_f64(),
            page_size_kb: self.text_bytes_fetched as f64 / 1024.0,
            download_objects: self.objects_fetched as f64,
            download_js: self.js_objects as f64,
            download_figures: self.image_objects as f64,
            figure_size_kb: self.image_bytes as f64 / 1024.0,
            js_running_time_s: self.work.js.as_secs_f64(),
            second_urls: self.secondary_urls as f64,
            page_height: self.page_height,
            page_width: self.page_width,
        }
    }
}

/// Loads `root_url` through `fetcher` starting at `start`, using the
/// schedule in `cfg` and pricing CPU work with `cost`.
///
/// A 404 on the root URL yields an empty page (all-zero metrics except
/// `fetch_failures`), mirroring a browser error page.
pub fn load_page<F: ResourceFetcher + ?Sized>(
    fetcher: &mut F,
    root_url: &str,
    start: SimTime,
    cfg: &PipelineConfig,
    cost: &CpuCostModel,
) -> LoadMetrics {
    load_page_inner(
        fetcher,
        root_url,
        start,
        cfg,
        cost,
        None,
        Recorder::disabled(),
    )
}

/// Like [`load_page`], but each computation stage emits a
/// [`Span`](ewb_obs::Event::Span) into `recorder`, plus phase spans
/// (`transmission_phase`, `layout_phase`) and per-load counters once the
/// load completes. The recorder only observes — the returned
/// [`LoadMetrics`] are identical with it enabled or disabled.
pub fn load_page_recorded<F: ResourceFetcher + ?Sized>(
    fetcher: &mut F,
    root_url: &str,
    start: SimTime,
    cfg: &PipelineConfig,
    cost: &CpuCostModel,
    recorder: Recorder,
) -> LoadMetrics {
    load_page_inner(fetcher, root_url, start, cfg, cost, None, recorder)
}

fn load_page_inner<F: ResourceFetcher + ?Sized>(
    fetcher: &mut F,
    root_url: &str,
    start: SimTime,
    cfg: &PipelineConfig,
    cost: &CpuCostModel,
    cache: Option<&mut LayoutCache>,
    recorder: Recorder,
) -> LoadMetrics {
    let mut loader = Loader {
        fetcher,
        cfg,
        cost,
        cache,
        root_url: root_url.to_string(),
        t: start,
        requested: HashSet::new(),
        queue: std::collections::VecDeque::new(),
        in_flight: 0,
        doc: None,
        sheets: Vec::new(),
        css_bodies: Vec::new(),
        undecoded_images: Vec::new(),
        css_discovered: 0,
        css_processed: 0,
        since_display: 0,
        side_end: start,
        m: LoadMetrics {
            mode: cfg.mode,
            start,
            data_transmission_end: start,
            first_display_at: None,
            final_display_at: start,
            cpu_busy: Vec::new(),
            aux_busy: Vec::new(),
            work: CpuWork::default(),
            bytes_fetched: 0,
            text_bytes_fetched: 0,
            objects_fetched: 0,
            js_objects: 0,
            image_objects: 0,
            image_bytes: 0,
            fetch_failures: 0,
            failed_objects: 0,
            degraded: false,
            traffic: TimeSeries::new(),
            secondary_urls: 0,
            page_height: 0.0,
            page_width: 0.0,
            dom_nodes: 0,
            decode_jobs: 0,
            decoded_bytes: 0,
            parallel_work: SimDuration::ZERO,
            parallel_span: SimDuration::ZERO,
        },
        recorder,
    };
    loader.run(root_url);
    let m = loader.m;
    let recorder = loader.recorder;
    recorder.emit_with(|| ObsEvent::Span {
        layer: ObsLayer::Browser,
        name: "transmission_phase",
        start: m.start,
        end: m.data_transmission_end,
    });
    recorder.emit_with(|| ObsEvent::Span {
        layer: ObsLayer::Browser,
        name: "layout_phase",
        start: m.data_transmission_end,
        end: m.final_display_at,
    });
    if recorder.is_enabled() {
        for (name, value) in [
            ("objects_fetched", m.objects_fetched as f64),
            ("bytes_fetched", m.bytes_fetched as f64),
            ("failed_objects", m.failed_objects as f64),
        ] {
            recorder.emit(ObsEvent::Counter {
                at: m.final_display_at,
                layer: ObsLayer::Browser,
                name,
                value,
            });
        }
    }
    m
}

/// Like [`load_page`], but consults (and fills) a [`LayoutCache`]: on a
/// repeat visit to an unchanged page, the layout phase skips CSS rule
/// extraction, style formatting, and layout calculation, paying only
/// image decoding and painting — the Zhang et al. layout-caching
/// extension discussed in the paper's §6.
pub fn load_page_cached<F: ResourceFetcher + ?Sized>(
    fetcher: &mut F,
    root_url: &str,
    start: SimTime,
    cfg: &PipelineConfig,
    cost: &CpuCostModel,
    cache: &mut LayoutCache,
) -> LoadMetrics {
    load_page_inner(
        fetcher,
        root_url,
        start,
        cfg,
        cost,
        Some(cache),
        Recorder::disabled(),
    )
}

/// Which CPU category a busy interval belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Cat {
    Dtc,
    Layout,
    RedrawReflow,
}

struct Loader<'a, F: ResourceFetcher + ?Sized> {
    fetcher: &'a mut F,
    cfg: &'a PipelineConfig,
    cost: &'a CpuCostModel,
    cache: Option<&'a mut LayoutCache>,
    root_url: String,
    t: SimTime,
    m: LoadMetrics,
    requested: HashSet<String>,
    /// Discovered-but-not-yet-issued requests (connection-limited).
    queue: std::collections::VecDeque<String>,
    in_flight: usize,
    doc: Option<Document>,
    sheets: Vec<css::Stylesheet>,
    css_bodies: Vec<String>,
    /// Per-object byte sizes of deferred (undecoded) images, in arrival
    /// order — the decode units a parallel plan fans out.
    undecoded_images: Vec<u64>,
    css_discovered: usize,
    css_processed: usize,
    since_display: usize,
    /// Latest finish time of helper-core work issued during the
    /// transmission phase (`overlap_css`); the phase cannot end before it.
    side_end: SimTime,
    recorder: Recorder,
}

impl<F: ResourceFetcher + ?Sized> Loader<'_, F> {
    fn run(&mut self, root_url: &str) {
        self.request(root_url);
        while self.in_flight > 0 {
            // A fetcher that loses track of outstanding requests would
            // wedge the load forever; degrade to a partial page instead.
            let Some(c) = self.fetcher.next_completion() else {
                self.m.failed_objects += self.in_flight + self.queue.len();
                self.in_flight = 0;
                self.queue.clear();
                break;
            };
            self.in_flight -= 1;
            self.t = self.t.max(c.at);
            let Some(obj) = c.object else {
                if c.failed {
                    self.m.failed_objects += 1;
                } else {
                    self.m.fetch_failures += 1;
                }
                self.pump();
                continue;
            };
            self.m.traffic.record(c.at, obj.bytes as f64);
            self.m.bytes_fetched += obj.bytes;
            self.m.objects_fetched += 1;
            match obj.kind {
                ObjectKind::Html => self.on_html(&obj.body, obj.bytes),
                ObjectKind::Css => self.on_css(&obj.body, obj.bytes),
                ObjectKind::Js => self.on_js(&obj.body, obj.bytes),
                ObjectKind::Image | ObjectKind::Flash => self.on_image(obj.bytes),
            }
            if self.cfg.mode == PipelineMode::Original {
                self.maybe_progressive_display();
            }
            // Processing done: the freed connections pick up queued work.
            self.pump();
        }
        // The transmission phase also covers any transmission-generating
        // scan still draining on a helper core (`overlap_css`).
        self.m.data_transmission_end = self.t.max(self.side_end);
        // Graceful degradation: a load with failed objects still renders
        // whatever arrived, but is flagged partial.
        self.m.degraded = self.m.failed_objects > 0;
        self.layout_phase();
    }

    /// CPU work: advance time, record the busy interval and category.
    fn busy(&mut self, d: SimDuration, cat: Cat, stage: &'static str) {
        if d.is_zero() {
            return;
        }
        self.m.cpu_busy.push((self.t, self.t + d));
        let start = self.t;
        self.recorder.emit_with(|| ObsEvent::Span {
            layer: ObsLayer::Browser,
            name: stage,
            start,
            end: start + d,
        });
        self.t += d;
        match cat {
            Cat::Dtc => self.m.work.dtc += d,
            Cat::Layout => self.m.work.layout += d,
            Cat::RedrawReflow => {
                self.m.work.layout += d;
                self.m.work.redraw_reflow += d;
            }
        }
    }

    fn request(&mut self, url: &str) {
        if self.requested.insert(url.to_string()) {
            self.queue.push_back(url.to_string());
            self.pump();
        }
    }

    /// Issues queued requests up to the connection limit.
    fn pump(&mut self) {
        while self.in_flight < self.cfg.max_parallel.max(1) {
            let Some(url) = self.queue.pop_front() else {
                break;
            };
            self.fetcher.request(&url, self.t);
            self.in_flight += 1;
        }
    }

    fn on_html(&mut self, body: &str, bytes: u64) {
        self.m.text_bytes_fetched += bytes;
        let parsed = html::parse(body);
        let d = self.cost.html_parse(parsed.bytes, parsed.document.len());
        self.busy(d, Cat::Dtc, "html_parse");
        self.m.secondary_urls += parsed.secondary_urls.len();
        for r in &parsed.resources {
            if r.kind == ObjectKind::Css {
                self.css_discovered += 1;
            }
            self.request(&r.url.clone());
        }
        let is_root = self.doc.is_none();
        if is_root {
            self.doc = Some(parsed.document);
        } else if let Some(doc) = &mut self.doc {
            let root = doc.root();
            doc.adopt(root, &parsed.document);
        }
        for style in &parsed.inline_styles {
            self.on_inline_style(style);
        }
        for script in &parsed.inline_scripts {
            self.run_script(script);
        }
        if is_root && self.cfg.mode == PipelineMode::EnergyAware && self.cfg.draw_intermediate {
            // §4.2: a simplified display with no CSS rules, styles, or
            // images — just the text content laid out with defaults.
            let doc = self.doc.as_ref().expect("root doc just set");
            let lr = layout::layout(doc, None, self.cfg.viewport_px);
            let d = self.cost.layout(lr.boxes) + self.cost.paint(lr.boxes);
            self.busy(d, Cat::Layout, "intermediate_display");
            self.m.first_display_at = Some(self.t);
        }
    }

    fn on_css(&mut self, body: &str, bytes: u64) {
        self.m.text_bytes_fetched += bytes;
        self.css_processed += 1;
        match self.cfg.mode {
            PipelineMode::Original => {
                // Full parse now (rule extraction on the critical path).
                let parsed = css::parse(body);
                let d = self.cost.css_parse(parsed.bytes, parsed.sheet.rules.len());
                self.busy(d, Cat::Layout, "css_parse");
                for u in parsed.urls.iter().chain(&parsed.sheet.imports) {
                    if u.ends_with(".css") {
                        self.css_discovered += 1;
                    }
                    self.request(&u.clone());
                }
                self.sheets.push(parsed.sheet);
            }
            PipelineMode::EnergyAware => {
                // Cheap scan only; parsing waits for the layout phase.
                self.ea_scan_css(body);
            }
        }
    }

    /// Energy-aware CSS handling: cheap URL scan now — on the main core,
    /// or concurrently on a helper core when the plan overlaps it with
    /// the HTML parsing and transfer wait — full parse deferred to the
    /// layout phase.
    fn ea_scan_css(&mut self, body: &str) {
        let scan = css::scan_urls(body);
        let d = self.cost.css_scan(scan.bytes);
        if self.cfg.plan.overlap_css {
            self.side_scan(d);
        } else {
            self.busy(d, Cat::Dtc, "css_scan");
        }
        for u in scan.urls.iter().chain(&scan.imports) {
            self.request(&u.clone());
        }
        self.css_bodies.push(body.to_string());
    }

    /// Runs a transmission-generating scan on a helper core, off the
    /// main core's critical path. The discovered requests are issued at
    /// the same loop point as in the sequential schedule (the scanner
    /// emits URLs as it finds them); the transmission phase is extended
    /// to cover the helper core's finish via `side_end`.
    fn side_scan(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        let fork = SimDuration::from_micros(parallel::FORK_US_PER_WORKER.round() as u64);
        let start = self.t;
        let end = start + fork + d;
        self.m.aux_busy.push((start, end));
        self.recorder.emit_with(|| ObsEvent::Span {
            layer: ObsLayer::Browser,
            name: "css_scan",
            start,
            end,
        });
        self.side_end = self.side_end.max(end);
        self.m.work.dtc += fork + d;
        self.m.parallel_work += d;
    }

    /// Inline `<style>` blocks follow the same §4.1 split as external
    /// stylesheets: the original browser extracts rules on the spot, the
    /// energy-aware browser scans for URLs now and parses in the layout
    /// phase. They are not fetched objects, so they touch no byte or
    /// progressive-display accounting.
    fn on_inline_style(&mut self, body: &str) {
        match self.cfg.mode {
            PipelineMode::Original => {
                let parsed = css::parse(body);
                let d = self.cost.css_parse(parsed.bytes, parsed.sheet.rules.len());
                self.busy(d, Cat::Layout, "css_parse");
                for u in parsed.urls.iter().chain(&parsed.sheet.imports) {
                    if u.ends_with(".css") {
                        self.css_discovered += 1;
                    }
                    self.request(&u.clone());
                }
                self.sheets.push(parsed.sheet);
            }
            PipelineMode::EnergyAware => {
                self.ea_scan_css(body);
            }
        }
    }

    fn on_js(&mut self, body: &str, bytes: u64) {
        self.m.text_bytes_fetched += bytes;
        self.m.js_objects += 1;
        self.run_script(body);
    }

    fn run_script(&mut self, source: &str) {
        let out = js::execute(source, Some(self.cfg.js_gas));
        let d = self.cost.js_run(out.bytes, out.ops);
        self.busy(d, Cat::Dtc, "js_run");
        self.m.work.js += d;
        for effect in out.effects {
            match effect {
                js::JsEffect::LoadImage(u) | js::JsEffect::LoadScript(u) => self.request(&u),
                js::JsEffect::DocumentWrite(fragment) => {
                    let parsed = html::parse(&fragment);
                    let d = self.cost.html_parse(parsed.bytes, parsed.document.len());
                    self.busy(d, Cat::Dtc, "html_parse");
                    self.m.secondary_urls += parsed.secondary_urls.len();
                    for r in &parsed.resources {
                        if r.kind == ObjectKind::Css {
                            self.css_discovered += 1;
                        }
                        self.request(&r.url.clone());
                    }
                    if let Some(doc) = &mut self.doc {
                        let root = doc.root();
                        doc.adopt(root, &parsed.document);
                    }
                    for style in &parsed.inline_styles {
                        self.on_inline_style(style);
                    }
                }
            }
        }
    }

    fn on_image(&mut self, bytes: u64) {
        self.m.image_objects += 1;
        self.m.image_bytes += bytes;
        match self.cfg.mode {
            PipelineMode::Original => {
                // Decode immediately — layout computation on the critical
                // path of the transmission schedule. Always one unit at a
                // time here, so no plan fan-out applies.
                let d = self.cost.image_decode(bytes);
                self.busy(d, Cat::Layout, "image_decode");
                self.m.decode_jobs += 1;
                self.m.decoded_bytes += bytes;
            }
            PipelineMode::EnergyAware => {
                // "Image files ... can be saved in memory instead of being
                // delivered to the web browser" (§4.1).
                self.undecoded_images.push(bytes);
            }
        }
    }

    /// The original browser's progressive intermediate display: once the
    /// stylesheets are in, redraw/reflow every `progressive_batch` objects
    /// (§4.2: "the browser wastes a lot of computation resource to
    /// frequently redraw and reflow the intermediate display").
    fn maybe_progressive_display(&mut self) {
        self.since_display += 1;
        let css_ready = self.css_processed >= self.css_discovered;
        if !css_ready || self.since_display < self.cfg.progressive_batch {
            return;
        }
        // The *first* intermediate display additionally waits for a
        // meaningful fraction of the page: the original browser "has to
        // wait before displaying the intermediate results ... to associate
        // DOM nodes and CSS style rules" (§4.2), and in practice paints
        // once a good chunk of content is in (the paper's espn snapshot
        // appears at ~half the load).
        if self.m.first_display_at.is_none()
            && self.m.objects_fetched * 5 < self.requested.len() * 2
        {
            return;
        }
        let Some(doc) = &self.doc else { return };
        let sheet_refs: Vec<&css::Stylesheet> = self.sheets.iter().collect();
        let styles = css::compute_styles(doc, &sheet_refs);
        let lr = layout::layout(doc, Some(&styles), self.cfg.viewport_px);
        let d = self
            .cost
            .style(styles.match_attempts, styles.declarations_applied)
            + self.cost.layout(lr.boxes)
            + self.cost.paint(lr.boxes);
        self.busy(d, Cat::RedrawReflow, "redraw_reflow");
        if self.m.first_display_at.is_none() {
            self.m.first_display_at = Some(self.t);
        }
        self.since_display = 0;
    }

    /// The final layout computation (both modes) — plus, in energy-aware
    /// mode, all the deferred CSS parsing and image decoding.
    fn layout_phase(&mut self) {
        // Layout cache (Zhang et al.): a fresh entry for this exact page
        // skips rule extraction, style, and layout; decoding and painting
        // still run. The cache-hit path always decodes sequentially —
        // its residual work is too small for a fan-out to pay the fork.
        let fingerprint = self.m.bytes_fetched;
        if let Some(cache) = self.cache.as_mut() {
            if let Some(hit) = cache.lookup(&self.root_url, fingerprint) {
                if self.cfg.mode == PipelineMode::EnergyAware {
                    let bytes: u64 = self.undecoded_images.iter().sum();
                    let d = self.cost.image_decode(bytes);
                    self.busy(d, Cat::Layout, "image_decode");
                    self.m.decode_jobs += self.undecoded_images.len();
                    self.m.decoded_bytes += bytes;
                }
                let d = self.cost.paint(hit.boxes);
                self.busy(d, Cat::Layout, "paint_cached");
                let doc = self.doc.take().unwrap_or_default();
                self.m.final_display_at = self.t;
                self.m.page_height = hit.page_height;
                self.m.page_width = hit.page_width;
                self.m.dom_nodes = doc.len();
                return;
            }
        }
        if self.cfg.plan.is_sequential() {
            self.layout_phase_sequential();
        } else {
            self.layout_phase_parallel();
        }
    }

    /// The exact legacy single-core schedule — every golden in the repo
    /// pins this path bit-for-bit (note the *summed* image decode: µs
    /// rounding makes it differ from a per-object sum, so the sequential
    /// plan must not be routed through the per-unit code).
    fn layout_phase_sequential(&mut self) {
        if self.cfg.mode == PipelineMode::EnergyAware {
            let bodies = std::mem::take(&mut self.css_bodies);
            for body in &bodies {
                let parsed = css::parse(body);
                let d = self.cost.css_parse(parsed.bytes, parsed.sheet.rules.len());
                self.busy(d, Cat::Layout, "css_parse");
                self.m.parallel_work += d;
                self.m.parallel_span += d;
                self.sheets.push(parsed.sheet);
            }
            let bytes: u64 = self.undecoded_images.iter().sum();
            let d = self.cost.image_decode(bytes);
            self.busy(d, Cat::Layout, "image_decode");
            self.m.decode_jobs += self.undecoded_images.len();
            self.m.decoded_bytes += bytes;
            self.m.parallel_work += d;
            self.m.parallel_span += d;
        }
        let doc = self.doc.take().unwrap_or_default();
        let sheet_refs: Vec<&css::Stylesheet> = self.sheets.iter().collect();
        let styles = css::compute_styles(&doc, &sheet_refs);
        let lr = layout::layout(&doc, Some(&styles), self.cfg.viewport_px);
        let d_style = self
            .cost
            .style(styles.match_attempts, styles.declarations_applied);
        let d = d_style + self.cost.layout(lr.boxes) + self.cost.paint(lr.boxes);
        self.busy(d, Cat::Layout, "style_layout_paint");
        self.m.parallel_work += d_style;
        self.m.parallel_span += d_style;
        self.finish_layout(&doc, lr);
    }

    /// The plan's multi-core layout phase: deferred CSS parses fan out
    /// over `style_threads`, per-object image decodes over
    /// `decode_threads`, and final style resolution is chunked over
    /// `style_threads`. Layout and paint remain sequential — a single
    /// dependent tail after the merged styles exist.
    fn layout_phase_parallel(&mut self) {
        let plan = self.cfg.plan;
        let hp = self.cfg.host_parallel;
        let cost = self.cost;
        if self.cfg.mode == PipelineMode::EnergyAware {
            let bodies = std::mem::take(&mut self.css_bodies);
            if !bodies.is_empty() {
                let parsed = parallel::run_jobs(bodies.len(), plan.style_threads, hp, |i| {
                    css::parse(&bodies[i])
                });
                let durs: Vec<SimDuration> = parsed
                    .iter()
                    .map(|p| cost.css_parse(p.bytes, p.sheet.rules.len()))
                    .collect();
                self.parallel_stage(&durs, plan.style_threads, "css_parse");
                self.sheets.extend(parsed.into_iter().map(|p| p.sheet));
            }
            let images = std::mem::take(&mut self.undecoded_images);
            if !images.is_empty() {
                let k = plan.decode_threads.min(images.len()).max(1);
                let durs = parallel::run_jobs(images.len(), plan.decode_threads, hp, |i| {
                    cost.image_decode(images[i])
                });
                self.m.decode_jobs += images.len();
                // Workers accumulate their own decoded-byte subtotals;
                // the merge is where the seeded racy-counter defect bites.
                self.m.decoded_bytes += if hp && k > 1 {
                    parallel::merge_worker_byte_counts(&parallel::worker_byte_counts(&images, k))
                } else {
                    images.iter().sum::<u64>()
                };
                self.parallel_stage(&durs, plan.decode_threads, "image_decode");
            }
        }
        let doc = self.doc.take().unwrap_or_default();
        let sheet_refs: Vec<&css::Stylesheet> = self.sheets.iter().collect();
        let ids = doc.descendants();
        let k = plan.style_threads.min(ids.len()).max(1);
        let chunks: Vec<_> = ids.chunks(ids.len().div_ceil(k).max(1)).collect();
        let partials = parallel::run_jobs(chunks.len(), k, hp, |i| {
            css::compute_styles_for(&doc, &sheet_refs, chunks[i])
        });
        let durs: Vec<SimDuration> = partials
            .iter()
            .map(|p| cost.style(p.match_attempts, p.declarations_applied))
            .collect();
        self.parallel_stage(&durs, plan.style_threads, "style");
        let mut styles = css::StyleResult {
            styles: Default::default(),
            match_attempts: 0,
            declarations_applied: 0,
        };
        for p in partials {
            styles.match_attempts += p.match_attempts;
            styles.declarations_applied += p.declarations_applied;
            styles.styles.extend(p.styles);
        }
        let lr = layout::layout(&doc, Some(&styles), self.cfg.viewport_px);
        let d = cost.layout(lr.boxes) + cost.paint(lr.boxes);
        self.busy(d, Cat::Layout, "layout_paint");
        self.finish_layout(&doc, lr);
    }

    /// Advances simulated time over one fanned-out stage: units are
    /// placed on `threads` cores by [`parallel::schedule_jobs`], the main
    /// core's share extends `cpu_busy`, helper cores' shares land in
    /// `aux_busy`, and the stage's total CPU work plus the per-worker
    /// fork overhead is charged to the layout category.
    fn parallel_stage(&mut self, durs: &[SimDuration], threads: usize, stage: &'static str) {
        let work = durs.iter().copied().fold(SimDuration::ZERO, |a, b| a + b);
        let k = threads.min(durs.len()).max(1);
        if k == 1 {
            for &d in durs {
                self.busy(d, Cat::Layout, stage);
            }
            self.m.parallel_work += work;
            self.m.parallel_span += work;
            return;
        }
        let fork =
            SimDuration::from_micros((parallel::FORK_US_PER_WORKER * k as f64).round() as u64);
        self.busy(fork, Cat::Layout, "parallel_fork");
        let sched = parallel::schedule_jobs(durs, k);
        let t0 = self.t;
        for (c, &b) in sched.core_busy.iter().enumerate() {
            if b.is_zero() {
                continue;
            }
            if c == 0 {
                self.m.cpu_busy.push((t0, t0 + b));
            } else {
                self.m.aux_busy.push((t0, t0 + b));
            }
            self.recorder.emit_with(|| ObsEvent::Span {
                layer: ObsLayer::Browser,
                name: stage,
                start: t0,
                end: t0 + b,
            });
        }
        self.t = t0 + sched.makespan;
        self.m.work.layout += work;
        self.m.parallel_work += work;
        self.m.parallel_span += fork + sched.makespan;
    }

    fn finish_layout(&mut self, doc: &Document, lr: layout::LayoutResult) {
        let fingerprint = self.m.bytes_fetched;
        self.m.final_display_at = self.t;
        self.m.page_height = lr.page_height;
        self.m.page_width = lr.page_width;
        self.m.dom_nodes = doc.len();
        if let Some(cache) = self.cache.as_mut() {
            cache.insert(
                self.root_url.clone(),
                CachedLayout {
                    page_height: lr.page_height,
                    page_width: lr.page_width,
                    boxes: lr.boxes,
                    fingerprint,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::FixedRateFetcher;
    use ewb_webpage::{benchmark_corpus, OriginServer, PageVersion};

    fn load(mode: PipelineMode, key: &str, version: PageVersion) -> LoadMetrics {
        let corpus = benchmark_corpus(1);
        let page = corpus.page(key, version).unwrap();
        let mut fetcher = FixedRateFetcher::paper_3g(OriginServer::from_corpus(&corpus));
        let mut cfg = PipelineConfig::new(mode);
        if version == PageVersion::Mobile {
            cfg.draw_intermediate = false;
        }
        load_page(
            &mut fetcher,
            page.root_url(),
            SimTime::ZERO,
            &cfg,
            &CpuCostModel::default(),
        )
    }

    #[test]
    fn both_modes_fetch_every_object() {
        let corpus = benchmark_corpus(1);
        let espn = corpus.page("espn", PageVersion::Full).unwrap();
        let orig = load(PipelineMode::Original, "espn", PageVersion::Full);
        let ea = load(PipelineMode::EnergyAware, "espn", PageVersion::Full);
        assert_eq!(orig.objects_fetched, espn.object_count());
        assert_eq!(ea.objects_fetched, espn.object_count());
        assert_eq!(orig.bytes_fetched, espn.total_bytes());
        assert_eq!(ea.bytes_fetched, ea.bytes_fetched);
        assert_eq!(orig.fetch_failures, 0);
    }

    #[test]
    fn energy_aware_shortens_the_transmission_phase() {
        let orig = load(PipelineMode::Original, "espn", PageVersion::Full);
        let ea = load(PipelineMode::EnergyAware, "espn", PageVersion::Full);
        let saving =
            1.0 - ea.transmission_time().as_secs_f64() / orig.transmission_time().as_secs_f64();
        assert!(
            (0.15..0.55).contains(&saving),
            "tx saving should be paper-scale (27%), got {saving:.3} \
             (orig {}, ea {})",
            orig.transmission_time(),
            ea.transmission_time()
        );
    }

    #[test]
    fn energy_aware_shortens_the_total_load() {
        let orig = load(PipelineMode::Original, "espn", PageVersion::Full);
        let ea = load(PipelineMode::EnergyAware, "espn", PageVersion::Full);
        assert!(
            ea.load_time() < orig.load_time(),
            "ea {} vs orig {}",
            ea.load_time(),
            orig.load_time()
        );
    }

    #[test]
    fn energy_aware_intermediate_display_is_much_earlier() {
        let corpus = benchmark_corpus(1);
        let espn = corpus.page("espn", PageVersion::Full).unwrap();
        let mut fetcher = FixedRateFetcher::paper_3g(OriginServer::from_corpus(&corpus));
        let ea = load_page(
            &mut fetcher,
            espn.root_url(),
            SimTime::ZERO,
            &PipelineConfig::new(PipelineMode::EnergyAware),
            &CpuCostModel::default(),
        );
        let orig = load(PipelineMode::Original, "espn", PageVersion::Full);
        let ea_first = ea.first_display_at.unwrap();
        let orig_first = orig.first_display_at.unwrap();
        assert!(
            ea_first.as_secs_f64() < 0.6 * orig_first.as_secs_f64(),
            "EA first display {ea_first} should be far earlier than {orig_first}"
        );
    }

    #[test]
    fn original_pays_redraw_reflow_energy_aware_does_not() {
        let orig = load(PipelineMode::Original, "espn", PageVersion::Full);
        let ea = load(PipelineMode::EnergyAware, "espn", PageVersion::Full);
        assert!(
            orig.work.redraw_reflow.as_secs_f64() > 1.0,
            "{:?}",
            orig.work
        );
        assert!(ea.work.redraw_reflow.is_zero());
    }

    #[test]
    fn js_discovered_resources_are_fetched() {
        // The dyn images only exist behind JS execution; both pipelines
        // must find them all.
        let corpus = benchmark_corpus(1);
        let espn = corpus.page("espn", PageVersion::Full).unwrap();
        let n_dyn = espn.spec().js_fetches;
        assert!(n_dyn > 0);
        let ea = load(PipelineMode::EnergyAware, "espn", PageVersion::Full);
        // objects_fetched == all objects implies dynamic ones included.
        assert_eq!(ea.objects_fetched, espn.object_count());
    }

    #[test]
    fn traffic_series_accounts_all_bytes() {
        let ea = load(PipelineMode::EnergyAware, "espn", PageVersion::Full);
        assert!((ea.traffic.total() - ea.bytes_fetched as f64).abs() < 1e-6);
    }

    #[test]
    fn mobile_without_intermediate_display() {
        let ea = load(PipelineMode::EnergyAware, "cnn", PageVersion::Mobile);
        assert!(ea.first_display_at.is_none());
        assert!(ea.load_time().as_secs_f64() < 15.0, "{}", ea.load_time());
    }

    #[test]
    fn features_are_sane() {
        let ea = load(PipelineMode::EnergyAware, "espn", PageVersion::Full);
        let f = ea.features();
        assert!(f.page_size_kb > 100.0);
        assert!(f.download_figures >= 40.0);
        assert!(f.figure_size_kb > 300.0);
        assert!(f.download_js >= 8.0);
        assert!(f.js_running_time_s > 0.5);
        assert!(f.second_urls >= 20.0);
        assert!(f.page_height > 2000.0);
        assert!(f.page_width >= 980.0);
        assert_eq!(f.to_vec().len(), 10);
    }

    #[test]
    fn cpu_busy_intervals_are_disjoint_and_ordered() {
        for mode in [PipelineMode::Original, PipelineMode::EnergyAware] {
            let m = load(mode, "ebay", PageVersion::Full);
            for w in m.cpu_busy.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
            let total: f64 = m
                .cpu_busy
                .iter()
                .map(|(s, e)| (*e - *s).as_secs_f64())
                .sum();
            assert!((total - m.work.total().as_secs_f64()).abs() < 1e-6);
        }
    }

    #[test]
    fn missing_root_yields_error_page() {
        let corpus = benchmark_corpus(1);
        let mut fetcher = FixedRateFetcher::paper_3g(OriginServer::from_corpus(&corpus));
        let m = load_page(
            &mut fetcher,
            "http://nowhere/",
            SimTime::ZERO,
            &PipelineConfig::new(PipelineMode::Original),
            &CpuCostModel::default(),
        );
        assert_eq!(m.fetch_failures, 1);
        assert_eq!(m.objects_fetched, 0);
        assert_eq!(m.dom_nodes, 1);
    }

    #[test]
    fn transmission_phase_precedes_layout_phase_in_ea() {
        let ea = load(PipelineMode::EnergyAware, "espn", PageVersion::Full);
        assert!(ea.data_transmission_end < ea.final_display_at);
        // Layout phase should be a material chunk (CSS parse + decode +
        // layout) but far less than the transmission phase.
        let lp = ea.layout_phase_time().as_secs_f64();
        assert!((1.0..20.0).contains(&lp), "layout phase {lp}");
    }
}

#[cfg(test)]
mod inline_style_pipeline_tests {
    use super::*;
    use crate::fetch::{FetchCompletion, ResourceFetcher};
    use ewb_webpage::{ObjectKind, WebObject};

    struct OnePage {
        body: String,
        queue: std::collections::VecDeque<(String, SimTime)>,
        bg: bool,
    }
    impl ResourceFetcher for OnePage {
        fn request(&mut self, url: &str, t: SimTime) {
            self.queue.push_back((url.to_string(), t));
        }
        fn next_completion(&mut self) -> Option<FetchCompletion> {
            let (url, t) = self.queue.pop_front()?;
            let object = if url == "http://t/" {
                Some(WebObject::text(
                    url.clone(),
                    ObjectKind::Html,
                    self.body.clone(),
                ))
            } else if self.bg && url == "http://t/bg.png" {
                Some(WebObject::opaque(url.clone(), ObjectKind::Image, 2048))
            } else {
                None
            };
            Some(FetchCompletion::delivered(url, t, object))
        }
    }

    fn doc_with_inline_style() -> String {
        "<html><head><style>.hero { background: url(\"http://t/bg.png\"); height: 120px; }\
         </style></head><body><p class=\"c0\">text</p></body></html>"
            .to_string()
    }

    #[test]
    fn inline_style_urls_are_fetched_by_both_modes() {
        for mode in [PipelineMode::Original, PipelineMode::EnergyAware] {
            let mut fetcher = OnePage {
                body: doc_with_inline_style(),
                queue: Default::default(),
                bg: true,
            };
            let m = load_page(
                &mut fetcher,
                "http://t/",
                SimTime::ZERO,
                &PipelineConfig::new(mode),
                &CpuCostModel::default(),
            );
            assert_eq!(
                m.objects_fetched, 2,
                "{mode:?}: html + CSS-discovered image"
            );
            assert_eq!(m.image_objects, 1);
        }
    }

    #[test]
    fn energy_aware_defers_inline_style_parsing_to_the_layout_phase() {
        // In EA mode the inline style contributes only a cheap scan to the
        // transmission phase; the full parse lands after tx end. With no
        // other objects, the dtc share of CSS work must be tiny.
        let mut fetcher = OnePage {
            body: doc_with_inline_style(),
            queue: Default::default(),
            bg: false,
        };
        let ea = load_page(
            &mut fetcher,
            "http://t/",
            SimTime::ZERO,
            &PipelineConfig::new(PipelineMode::EnergyAware),
            &CpuCostModel::default(),
        );
        assert!(ea.work.layout > SimDuration::ZERO);
        assert!(ea.data_transmission_end < ea.final_display_at);
    }
}

#[cfg(test)]
mod layout_cache_tests {
    use super::*;
    use crate::cache::LayoutCache;
    use crate::fetch::FixedRateFetcher;
    use ewb_webpage::{benchmark_corpus, OriginServer, PageVersion};

    fn load_with(cache: &mut LayoutCache) -> LoadMetrics {
        let corpus = benchmark_corpus(1);
        let page = corpus.page("espn", PageVersion::Full).unwrap();
        let mut fetcher = FixedRateFetcher::paper_3g(OriginServer::from_corpus(&corpus));
        load_page_cached(
            &mut fetcher,
            page.root_url(),
            SimTime::ZERO,
            &PipelineConfig::new(PipelineMode::EnergyAware),
            &CpuCostModel::default(),
            cache,
        )
    }

    #[test]
    fn repeat_visit_hits_the_cache_and_loads_faster() {
        let mut cache = LayoutCache::new();
        let first = load_with(&mut cache);
        assert_eq!(cache.stats(), (0, 1));
        assert_eq!(cache.len(), 1);
        let second = load_with(&mut cache);
        assert_eq!(cache.stats().0, 1, "second visit hits");
        // Same transfers, but the layout phase shrinks substantially.
        assert_eq!(second.bytes_fetched, first.bytes_fetched);
        assert!(
            second.layout_phase_time().as_secs_f64()
                < 0.7 * first.layout_phase_time().as_secs_f64(),
            "cached {} vs cold {}",
            second.layout_phase_time(),
            first.layout_phase_time()
        );
        // Geometry is reproduced from the cache.
        assert_eq!(second.page_height, first.page_height);
        assert_eq!(second.page_width, first.page_width);
    }

    #[test]
    fn uncached_entry_point_never_touches_a_cache() {
        // Two plain loads agree exactly (no hidden global state).
        let corpus = benchmark_corpus(1);
        let page = corpus.page("cnn", PageVersion::Mobile).unwrap();
        let run = || {
            let mut fetcher = FixedRateFetcher::paper_3g(OriginServer::from_corpus(&corpus));
            load_page(
                &mut fetcher,
                page.root_url(),
                SimTime::ZERO,
                &PipelineConfig::new(PipelineMode::Original),
                &CpuCostModel::default(),
            )
        };
        assert_eq!(run().final_display_at, run().final_display_at);
    }
}
