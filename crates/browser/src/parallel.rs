//! Intra-page parallelism: the [`ParallelismPlan`] knob, a deterministic
//! multi-core stage scheduler, and the host-side parallel executor.
//!
//! The paper reorganizes *when* computation happens relative to the
//! radio; the pipeline stages themselves still run one after another.
//! This module adds the missing dimension (ROADMAP item 3): independent
//! stage units — per-object image decodes, per-subtree style
//! resolution, CSS scans — can be fanned out over the simulated device's
//! cores, shortening the critical path at the price of extra concurrent
//! CPU draw and a per-worker fork overhead.
//!
//! Two layers are kept strictly apart:
//!
//! * **Simulated parallelism** (what the plan changes): stage units are
//!   placed on `k` simulated cores by [`schedule_jobs`], a deterministic
//!   earliest-free-core list scheduler. The main core's interval extends
//!   the ordinary `cpu_busy` stream; helper-core intervals land in
//!   `LoadMetrics::aux_busy` and raise the CPU power draw concurrently
//!   (see `ewb_net::replay::events_of_load_parallel`).
//! * **Host parallelism** (how the simulator itself runs): [`run_jobs`]
//!   executes the per-unit engine work (real CSS parsing, real selector
//!   matching) on the vendored crossbeam scoped threads with the PR-1
//!   deterministic join-order pattern — workers are joined in spawn
//!   order and results are slotted by unit index, so the outcome is
//!   bit-identical to running the same units on one host thread. The
//!   differential oracle in `ewb-check` proves exactly that.
//!
//! Seeded defects behind the `sabotage` feature give the oracle teeth:
//! a join that ignores unit order and an unsynchronized decode counter
//! must both be caught within a single page.

use ewb_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Upper bound on per-stage threads a plan may request. Matches
/// `ewb_rrc::MAX_CPU_CORES`, the ceiling the power model clamps
/// concurrent CPU load to.
pub const MAX_THREADS: usize = 8;

/// Fork/join handoff overhead charged on the forking core per worker
/// (2009-era smartphone thread wakeup + cache migration). This is what
/// makes over-parallelizing a small page *lose* energy: the overhead is
/// paid even when the fanned-out work is tiny.
pub const FORK_US_PER_WORKER: f64 = 1500.0;

/// How a page load fans its independent stage units out over the
/// simulated cores.
///
/// `ParallelismPlan::SEQUENTIAL` reproduces the legacy single-core
/// pipeline bit-for-bit; every golden in the repo pins that path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismPlan {
    /// Simulated cores decoding deferred images (energy-aware layout
    /// phase). `1` = the legacy single summed decode.
    pub decode_threads: usize,
    /// Simulated cores for deferred CSS rule extraction and chunked
    /// style resolution. `1` = legacy sequential.
    pub style_threads: usize,
    /// Energy-aware mode: run the cheap CSS URL scan on a helper core,
    /// concurrent with HTML parsing and the transfer wait, instead of on
    /// the critical path.
    pub overlap_css: bool,
}

impl ParallelismPlan {
    /// The legacy single-core schedule (the before-this-PR behavior).
    pub const SEQUENTIAL: ParallelismPlan = ParallelismPlan {
        decode_threads: 1,
        style_threads: 1,
        overlap_css: false,
    };

    /// A plan with the given knob settings.
    pub fn new(decode_threads: usize, style_threads: usize, overlap_css: bool) -> Self {
        ParallelismPlan {
            decode_threads,
            style_threads,
            overlap_css,
        }
    }

    /// `true` when this plan is exactly the legacy sequential schedule.
    pub fn is_sequential(&self) -> bool {
        *self == ParallelismPlan::SEQUENTIAL
    }

    /// Validates thread counts are in `1..=MAX_THREADS`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending knob.
    pub fn validate(&self) -> Result<(), String> {
        for (name, n) in [
            ("decode_threads", self.decode_threads),
            ("style_threads", self.style_threads),
        ] {
            if n == 0 || n > MAX_THREADS {
                return Err(format!("{name} must be in 1..={MAX_THREADS}, got {n}"));
            }
        }
        Ok(())
    }

    /// Stable short identifier: `seq` for the sequential plan, else
    /// e.g. `d4s4o1`.
    pub fn id(&self) -> String {
        if self.is_sequential() {
            return "seq".to_string();
        }
        format!(
            "d{}s{}o{}",
            self.decode_threads,
            self.style_threads,
            u8::from(self.overlap_css)
        )
    }

    /// Stable numeric key for seed mixing (profile capture, proptests).
    /// Zero iff sequential, so pre-existing sequential capture seeds are
    /// unchanged.
    pub fn key(&self) -> u64 {
        if self.is_sequential() {
            return 0;
        }
        ((self.decode_threads as u64) << 9)
            | ((self.style_threads as u64) << 1)
            | u64::from(self.overlap_css)
    }

    /// The most simulated cores this plan can occupy at once.
    pub fn max_cores(&self) -> usize {
        self.decode_threads
            .max(self.style_threads)
            .max(1 + usize::from(self.overlap_css))
    }
}

impl Default for ParallelismPlan {
    fn default() -> Self {
        ParallelismPlan::SEQUENTIAL
    }
}

impl std::fmt::Display for ParallelismPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id())
    }
}

/// The placement [`schedule_jobs`] computes for one fanned-out stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSchedule {
    /// Total busy time per core (cores run their units back-to-back from
    /// the stage start; core 0 is the forking main core).
    pub core_busy: Vec<SimDuration>,
    /// Stage critical path: the largest per-core busy time.
    pub makespan: SimDuration,
    /// Core index each unit was placed on, in unit order.
    pub assignment: Vec<usize>,
}

/// Deterministic earliest-free-core list scheduler: units are placed in
/// input order on the core with the least accumulated work (ties to the
/// lowest core index). Purely a function of `(durations, cores)` — no
/// host timing enters.
pub fn schedule_jobs(durations: &[SimDuration], cores: usize) -> StageSchedule {
    let cores = cores.clamp(1, MAX_THREADS).min(durations.len().max(1));
    let mut core_busy = vec![SimDuration::ZERO; cores];
    let mut assignment = Vec::with_capacity(durations.len());
    for &d in durations {
        let mut best = 0usize;
        for (c, b) in core_busy.iter().enumerate().skip(1) {
            if *b < core_busy[best] {
                best = c;
            }
        }
        assignment.push(best);
        core_busy[best] += d;
    }
    let makespan = core_busy
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max);
    StageSchedule {
        core_busy,
        makespan,
        assignment,
    }
}

/// Which seeded parallel-path defect is active (all teeth-test only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMutant {
    /// No defect: the correct executor.
    #[default]
    None,
    /// Join ignores unit indices and collects worker results in a
    /// "completion order" (emulated deterministically as reversed worker
    /// order) — the classic unordered-join race.
    UnorderedJoin,
    /// Per-worker decode byte counts merged with an unsynchronized
    /// read-modify-write (emulated as `max`, the canonical lost-update
    /// outcome) instead of a sum.
    RacyDecodeCounter,
}

/// Test-only switchboard for the seeded parallel-path defects. Only
/// compiled with the `sabotage` feature; the differential oracle's teeth
/// tests flip these and must observe a violation within one page.
#[cfg(feature = "sabotage")]
pub mod sabotage {
    use super::ParallelMutant;
    use std::cell::Cell;

    thread_local! {
        static ACTIVE: Cell<ParallelMutant> = const { Cell::new(ParallelMutant::None) };
    }

    /// Activates `m` for parallel executions on this thread.
    pub fn set(m: ParallelMutant) {
        ACTIVE.with(|c| c.set(m));
    }

    /// The defect currently active on this thread.
    pub fn get() -> ParallelMutant {
        ACTIVE.with(|c| c.get())
    }
}

#[cfg(feature = "sabotage")]
fn active_mutant() -> ParallelMutant {
    sabotage::get()
}

#[cfg(not(feature = "sabotage"))]
fn active_mutant() -> ParallelMutant {
    ParallelMutant::None
}

/// Runs `n` independent stage units through `f`, fanned out over at most
/// `workers` host threads when `host_parallel` is set, and returns the
/// results in unit order.
///
/// Worker `w` takes units `w, w + k, w + 2k, …`; workers are joined in
/// spawn order and results are slotted by unit index (the PR-1
/// deterministic join-order pattern), so the output is bit-identical to
/// the single-threaded run regardless of host scheduling.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_jobs<T, F>(n: usize, workers: usize, host_parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let k = workers.min(n).max(1);
    if !host_parallel || k == 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    let per_worker: Vec<Vec<(usize, T)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|w| {
                scope.spawn(move |_| {
                    (w..n)
                        .step_by(k)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<(usize, T)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel pipeline worker panicked"))
            .collect()
    })
    .expect("thread scope");
    collect_worker_results(n, per_worker)
}

fn collect_worker_results<T>(n: usize, mut per_worker: Vec<Vec<(usize, T)>>) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    match active_mutant() {
        ParallelMutant::UnorderedJoin => {
            // lint:allow(parallel/unordered-join) this arm IS the seeded UnorderedJoin defect; the mutant-teeth test strips this allow and requires the rule to flag both shapes below
            // Seeded defect: drop the unit indices and fill positionally
            // in (emulated) completion order.
            per_worker.reverse();
            let mut pos = 0usize;
            for chunk in per_worker {
                for (_, v) in chunk {
                    slots[pos] = Some(v);
                    pos += 1;
                }
            }
        }
        _ => {
            for chunk in per_worker {
                for (i, v) in chunk {
                    slots[i] = Some(v);
                }
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every unit index filled exactly once"))
        .collect()
}

/// Splits per-unit byte counts into the per-worker subtotals the
/// executor's workers would accumulate (worker `w` owns units
/// `w, w + k, …`).
pub fn worker_byte_counts(bytes: &[u64], workers: usize) -> Vec<u64> {
    let k = workers.min(bytes.len()).max(1);
    (0..k)
        .map(|w| (w..bytes.len()).step_by(k).map(|i| bytes[i]).sum())
        .collect()
}

/// Merges per-worker decode byte subtotals into the page total. The
/// correct merge is a sum; the [`ParallelMutant::RacyDecodeCounter`]
/// defect models the lost updates of an unsynchronized shared counter.
pub fn merge_worker_byte_counts(per_worker: &[u64]) -> u64 {
    match active_mutant() {
        ParallelMutant::RacyDecodeCounter => per_worker.iter().copied().max().unwrap_or(0), // lint:allow(parallel/lossy-merge) this arm IS the seeded RacyDecodeCounter defect; the mutant-teeth test strips this allow and requires the rule to flag it
        _ => per_worker.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn sequential_plan_roundtrip() {
        let p = ParallelismPlan::SEQUENTIAL;
        assert!(p.is_sequential());
        assert_eq!(p.key(), 0);
        assert_eq!(p.id(), "seq");
        assert_eq!(p, ParallelismPlan::default());
        assert!(p.validate().is_ok());
        assert_eq!(p.max_cores(), 1);
    }

    #[test]
    fn plan_keys_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for d in 1..=MAX_THREADS {
            for s in 1..=MAX_THREADS {
                for o in [false, true] {
                    let p = ParallelismPlan::new(d, s, o);
                    assert!(p.validate().is_ok());
                    assert!(seen.insert(p.key()), "duplicate key for {p}");
                }
            }
        }
    }

    #[test]
    fn validate_rejects_out_of_range() {
        assert!(ParallelismPlan::new(0, 1, false).validate().is_err());
        assert!(ParallelismPlan::new(1, 9, false).validate().is_err());
    }

    #[test]
    fn scheduler_is_earliest_free_core() {
        // Units 10, 8, 6, 4, 2 on 2 cores: c0={10,4,2}=16? No —
        // placement: 10→c0, 8→c1, 6→c1 (8<10? no: c1 has 8 < c0's 10),
        // then c0=10 vs c1=14 → 4→c0, c0=14 vs c1=14 → tie → 2→c0.
        let s = schedule_jobs(&[us(10), us(8), us(6), us(4), us(2)], 2);
        assert_eq!(s.assignment, vec![0, 1, 1, 0, 0]);
        assert_eq!(s.core_busy, vec![us(16), us(14)]);
        assert_eq!(s.makespan, us(16));
    }

    #[test]
    fn scheduler_never_uses_more_cores_than_units() {
        let s = schedule_jobs(&[us(5)], 8);
        assert_eq!(s.core_busy.len(), 1);
        assert_eq!(s.makespan, us(5));
    }

    #[test]
    fn scheduler_on_one_core_is_the_sum() {
        let s = schedule_jobs(&[us(3), us(4), us(5)], 1);
        assert_eq!(s.makespan, us(12));
        assert_eq!(s.assignment, vec![0, 0, 0]);
    }

    #[test]
    fn run_jobs_preserves_unit_order_across_thread_counts() {
        let inputs: Vec<u64> = (0..37).map(|i| i * 17 + 3).collect();
        let expected: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 4, 8] {
            for host_parallel in [false, true] {
                let got = run_jobs(inputs.len(), workers, host_parallel, |i| {
                    inputs[i] * inputs[i]
                });
                assert_eq!(got, expected, "workers={workers} hp={host_parallel}");
            }
        }
    }

    #[test]
    fn worker_byte_counts_partition_the_total() {
        let bytes: Vec<u64> = (1..=11).collect();
        for k in 1..=8 {
            let per = worker_byte_counts(&bytes, k);
            assert_eq!(per.iter().sum::<u64>(), bytes.iter().sum::<u64>());
            assert_eq!(per.len(), k.min(bytes.len()));
        }
        assert_eq!(merge_worker_byte_counts(&worker_byte_counts(&bytes, 4)), 66);
    }

    #[test]
    fn run_jobs_empty_and_single() {
        assert_eq!(run_jobs(0, 4, true, |i| i), Vec::<usize>::new());
        assert_eq!(run_jobs(1, 4, true, |i| i + 1), vec![1]);
    }
}
