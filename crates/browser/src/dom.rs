//! The Document Object Model: an arena-backed tree of nodes.
//!
//! The paper's §2.2: "After the HTML code has been parsed, the nodes in
//! the DOM tree store the HTML data. ... Each object is added to the DOM
//! tree as a node." This is that tree — deliberately small, but a real
//! tree with parent/child links, attributes, and traversal.

use std::fmt;

/// Index of a node within its [`Document`] arena.
pub type NodeId = usize;

/// The payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The document root.
    Document,
    /// An element like `<p class="x">`.
    Element {
        /// Lower-cased tag name.
        tag: String,
        /// Attributes in source order (lower-cased names).
        attrs: Vec<(String, String)>,
    },
    /// A text run.
    Text(String),
    /// A comment (content length only; comments never affect layout).
    Comment(usize),
}

/// One node of the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Parent node, `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// An arena-backed DOM tree.
///
/// # Example
///
/// ```
/// use ewb_browser::dom::{Document, NodeKind};
///
/// let mut doc = Document::new();
/// let body = doc.append_element(doc.root(), "body", vec![]);
/// let p = doc.append_element(body, "p", vec![("class".into(), "c1".into())]);
/// doc.append_text(p, "hello");
/// assert_eq!(doc.element_count(), 2);
/// assert_eq!(doc.text_len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates a document containing only the root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Appends an element under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of bounds.
    pub fn append_element(
        &mut self,
        parent: NodeId,
        tag: &str,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        self.append(
            parent,
            NodeKind::Element {
                tag: tag.to_ascii_lowercase(),
                attrs,
            },
        )
    }

    /// Appends a text node under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of bounds.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.append(parent, NodeKind::Text(text.to_string()))
    }

    /// Appends a comment marker under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of bounds.
    pub fn append_comment(&mut self, parent: NodeId, len: usize) -> NodeId {
        self.append(parent, NodeKind::Comment(len))
    }

    fn append(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        assert!(parent < self.nodes.len(), "parent {parent} out of bounds");
        let id = self.nodes.len();
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Total node count, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A document is never empty (the root always exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element { .. }))
            .count()
    }

    /// Total length of all text runs.
    pub fn text_len(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Text(t) => t.len(),
                _ => 0,
            })
            .sum()
    }

    /// Pre-order traversal of all node ids.
    pub fn descendants(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children reversed so traversal is document-order.
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The value of attribute `name` on element `id`, if present.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.nodes[id].kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// The tag of element `id`, or `None` for non-elements.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id].kind {
            NodeKind::Element { tag, .. } => Some(tag.as_str()),
            _ => None,
        }
    }

    /// Ancestor chain of `id`, nearest first (excluding `id` itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[id].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// Merges another document's children under `parent` here — the
    /// mechanism behind `document.write` fragments.
    pub fn adopt(&mut self, parent: NodeId, fragment: &Document) {
        // Map fragment ids to new ids; root's children go under `parent`.
        let mut map = vec![usize::MAX; fragment.nodes.len()];
        map[fragment.root()] = parent;
        for id in fragment.descendants() {
            if id == fragment.root() {
                continue;
            }
            let new_parent = map[fragment.nodes[id].parent.expect("non-root has parent")];
            let new_id = self.append(new_parent, fragment.nodes[id].kind.clone());
            map[id] = new_id;
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Document({} nodes, {} elements, {} text bytes)",
            self.len(),
            self.element_count(),
            self.text_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_tree() {
        let mut d = Document::new();
        let html = d.append_element(d.root(), "HTML", vec![]);
        let body = d.append_element(html, "body", vec![]);
        let p = d.append_element(body, "p", vec![("id".into(), "x".into())]);
        d.append_text(p, "hi");
        assert_eq!(d.len(), 5);
        assert_eq!(d.element_count(), 3);
        assert_eq!(d.tag(html), Some("html"), "tags are lower-cased");
        assert_eq!(d.attr(p, "id"), Some("x"));
        assert_eq!(d.attr(p, "missing"), None);
        assert_eq!(d.node(p).parent, Some(body));
    }

    #[test]
    fn descendants_are_document_order() {
        let mut d = Document::new();
        let a = d.append_element(d.root(), "a", vec![]);
        let b = d.append_element(a, "b", vec![]);
        let c = d.append_element(a, "c", vec![]);
        let e = d.append_element(d.root(), "e", vec![]);
        assert_eq!(d.descendants(), vec![0, a, b, c, e]);
    }

    #[test]
    fn ancestors_chain() {
        let mut d = Document::new();
        let a = d.append_element(d.root(), "a", vec![]);
        let b = d.append_element(a, "b", vec![]);
        assert_eq!(d.ancestors(b), vec![a, 0]);
        assert_eq!(d.ancestors(0), Vec::<NodeId>::new());
    }

    #[test]
    fn adopt_merges_fragments() {
        let mut main = Document::new();
        let body = main.append_element(main.root(), "body", vec![]);
        let mut frag = Document::new();
        let p = frag.append_element(frag.root(), "p", vec![]);
        frag.append_text(p, "written");
        main.adopt(body, &frag);
        assert_eq!(main.element_count(), 2);
        assert_eq!(main.text_len(), 7);
        // The adopted <p> is a child of <body>.
        let p_new = main.node(body).children[0];
        assert_eq!(main.tag(p_new), Some("p"));
    }

    #[test]
    fn text_len_and_comment() {
        let mut d = Document::new();
        d.append_text(d.root(), "abc");
        d.append_comment(d.root(), 10);
        assert_eq!(d.text_len(), 3);
        assert_eq!(d.len(), 3);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn adopt_preserves_deep_structure() {
        let mut main = Document::new();
        let host = main.append_element(main.root(), "div", vec![]);
        let mut frag = Document::new();
        let outer = frag.append_element(frag.root(), "section", vec![]);
        let inner = frag.append_element(outer, "p", vec![("id".into(), "deep".into())]);
        frag.append_text(inner, "nested");
        main.adopt(host, &frag);
        // The adopted subtree keeps its shape and attributes.
        let section = main.node(host).children[0];
        assert_eq!(main.tag(section), Some("section"));
        let p = main.node(section).children[0];
        assert_eq!(main.attr(p, "id"), Some("deep"));
        assert_eq!(main.text_len(), 6);
    }

    #[test]
    fn adopt_empty_fragment_is_noop() {
        let mut main = Document::new();
        let host = main.append_element(main.root(), "div", vec![]);
        let before = main.len();
        main.adopt(host, &Document::new());
        assert_eq!(main.len(), before);
    }

    #[test]
    fn display_summarizes_the_tree() {
        let mut d = Document::new();
        let p = d.append_element(d.root(), "p", vec![]);
        d.append_text(p, "hello");
        let s = d.to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("1 elements"));
        assert!(s.contains("5 text bytes"));
    }

    #[test]
    fn descendants_count_matches_len() {
        let mut d = Document::new();
        let mut parent = d.root();
        for i in 0..50 {
            parent = d.append_element(parent, if i % 2 == 0 { "div" } else { "span" }, vec![]);
        }
        assert_eq!(d.descendants().len(), d.len());
    }
}
