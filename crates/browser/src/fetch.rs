//! The resource-fetching abstraction the pipelines drive.
//!
//! The browser is network-agnostic: it issues requests and consumes
//! completions. `ewb-net` implements [`ResourceFetcher`] on top of the 3G
//! link and RRC machine; [`FixedRateFetcher`] is a simple deterministic
//! implementation for tests and for isolating CPU effects from radio
//! effects.

use ewb_simcore::SimTime;
use ewb_webpage::{OriginServer, WebObject};
use std::collections::VecDeque;

/// One finished transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchCompletion {
    /// The requested URL.
    pub url: String,
    /// When the last byte arrived (or when the 404/failure was known).
    pub at: SimTime,
    /// The object, or `None` for a 404 or a failed transfer.
    pub object: Option<WebObject>,
    /// `true` when the transfer errored out (retries/deadline exhausted on
    /// a faulty link) rather than receiving a definitive 404. The
    /// pipelines degrade gracefully on failed completions instead of
    /// treating them as missing resources.
    pub failed: bool,
}

impl FetchCompletion {
    /// A completion that delivered a definitive response (`object` for a
    /// 200, `None` for a 404).
    pub fn delivered(url: String, at: SimTime, object: Option<WebObject>) -> Self {
        FetchCompletion {
            url,
            at,
            object,
            failed: false,
        }
    }

    /// A completion for a transfer that errored out after retries.
    pub fn errored(url: String, at: SimTime) -> Self {
        FetchCompletion {
            url,
            at,
            object: None,
            failed: true,
        }
    }
}

/// A source of web objects with simulated timing.
///
/// Contract: completions are delivered in non-decreasing `at` order, and
/// every `request` eventually yields exactly one completion.
pub trait ResourceFetcher {
    /// Issues a request for `url` at time `t`.
    fn request(&mut self, url: &str, t: SimTime);

    /// Delivers the next completion, or `None` if nothing is outstanding.
    fn next_completion(&mut self) -> Option<FetchCompletion>;
}

/// A FIFO pipe at a fixed byte rate with per-request overhead — the
/// simplest useful network: requests queue, bytes stream at `bytes_per_sec`,
/// and each request pays `overhead` of latency that overlaps with earlier
/// transfers (HTTP pipelining).
#[derive(Debug, Clone)]
pub struct FixedRateFetcher {
    server: OriginServer,
    bytes_per_sec: f64,
    overhead: SimTime, // stored as duration-from-zero for arithmetic ease
    busy_until: SimTime,
    queue: VecDeque<(String, SimTime)>,
}

impl FixedRateFetcher {
    /// Creates a fetcher.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive and finite.
    pub fn new(
        server: OriginServer,
        bytes_per_sec: f64,
        overhead: ewb_simcore::SimDuration,
    ) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "rate must be positive, got {bytes_per_sec}"
        );
        FixedRateFetcher {
            server,
            bytes_per_sec,
            overhead: SimTime::ZERO + overhead,
            busy_until: SimTime::ZERO,
            queue: VecDeque::new(),
        }
    }

    /// The paper's effective DCH goodput: ≈95 KB/s (a 760 KB bulk download
    /// completes in ≈8 s, Fig. 4), with a 300 ms per-request overhead.
    pub fn paper_3g(server: OriginServer) -> Self {
        FixedRateFetcher::new(
            server,
            95.0 * 1024.0,
            ewb_simcore::SimDuration::from_millis(300),
        )
    }
}

impl ResourceFetcher for FixedRateFetcher {
    fn request(&mut self, url: &str, t: SimTime) {
        self.queue.push_back((url.to_string(), t));
    }

    fn next_completion(&mut self) -> Option<FetchCompletion> {
        let (url, t) = self.queue.pop_front()?;
        let overhead = self.overhead - SimTime::ZERO;
        let arrival = t + overhead;
        let object = self.server.fetch(&url).cloned();
        let at = match &object {
            Some(obj) => {
                let start = self.busy_until.max(arrival);
                let end = start
                    + ewb_simcore::SimDuration::from_secs_f64(
                        obj.bytes as f64 / self.bytes_per_sec,
                    );
                self.busy_until = end;
                end
            }
            None => {
                // 404: the error response still rides the FIFO pipe, so
                // completion order stays monotone.
                let at = self.busy_until.max(arrival);
                self.busy_until = at;
                at
            }
        };
        Some(FetchCompletion::delivered(url, at, object))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_simcore::SimDuration;
    use ewb_webpage::{benchmark_corpus, PageVersion};

    fn setup() -> (FixedRateFetcher, String) {
        let corpus = benchmark_corpus(5);
        let espn = corpus.page("espn", PageVersion::Full).unwrap();
        let root = espn.root_url().to_string();
        (
            FixedRateFetcher::paper_3g(OriginServer::from_corpus(&corpus)),
            root,
        )
    }

    #[test]
    fn single_fetch_timing() {
        let (mut f, root) = setup();
        f.request(&root, SimTime::ZERO);
        let c = f.next_completion().unwrap();
        assert_eq!(c.url, root);
        let obj = c.object.unwrap();
        let expected = 0.3 + obj.bytes as f64 / (95.0 * 1024.0);
        assert!((c.at.as_secs_f64() - expected).abs() < 1e-6);
    }

    #[test]
    fn completions_are_fifo_and_monotone() {
        let (mut f, root) = setup();
        let corpus = benchmark_corpus(5);
        let espn = corpus.page("espn", PageVersion::Full).unwrap();
        let urls: Vec<String> = espn.objects().map(|o| o.url.clone()).collect();
        for u in &urls {
            f.request(u, SimTime::ZERO);
        }
        let _ = root;
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(c) = f.next_completion() {
            assert!(c.at >= last, "completion went backwards");
            last = c.at;
            count += 1;
        }
        assert_eq!(count, urls.len());
    }

    #[test]
    fn bulk_download_rate_matches_fig4() {
        // Downloading the 760 KB espn page as one stream takes ≈8 s.
        let (mut f, _) = setup();
        let corpus = benchmark_corpus(5);
        let espn = corpus.page("espn", PageVersion::Full).unwrap();
        for o in espn.objects() {
            f.request(&o.url, SimTime::ZERO);
        }
        let mut last = SimTime::ZERO;
        while let Some(c) = f.next_completion() {
            last = c.at;
        }
        let secs = last.as_secs_f64();
        assert!((6.5..10.0).contains(&secs), "bulk download took {secs} s");
    }

    #[test]
    fn missing_url_is_a_404() {
        let (mut f, _) = setup();
        f.request("http://nowhere/x.png", SimTime::from_secs(1));
        let c = f.next_completion().unwrap();
        assert!(c.object.is_none());
        assert_eq!(c.at, SimTime::from_secs(1) + SimDuration::from_millis(300));
    }

    #[test]
    fn empty_fetcher_returns_none() {
        let (mut f, _) = setup();
        assert!(f.next_completion().is_none());
    }
}
