//! The JavaScript lexer.

/// One token of the JS subset.
#[derive(Debug, Clone, PartialEq)]
pub enum JsToken {
    /// Numeric literal.
    Num(f64),
    /// String literal (quotes removed, escapes resolved).
    Str(String),
    /// Identifier or dotted member path (`document.write` lexes as two
    /// idents joined by `Dot`).
    Ident(String),
    /// `var`, `function`, `return`, `if`, `else`, `while`, `true`, `false`.
    Keyword(&'static str),
    /// A single punctuation/operator token.
    Punct(&'static str),
}

const KEYWORDS: &[&str] = &[
    "var", "function", "return", "if", "else", "while", "true", "false",
];

/// Multi-character operators, longest first.
const OPS2: &[&str] = &["<=", ">=", "==", "!="];
const OPS1: &[&str] = &[
    "+", "-", "*", "/", "%", "<", ">", "=", "(", ")", "{", "}", ";", ",", ".", "!",
];

/// Lexes `input` into tokens. Unknown bytes are skipped (robustness over
/// strictness — a real engine reports a syntax error, ours just moves on
/// and lets the parser fail gracefully).
pub fn lex(input: &str) -> Vec<JsToken> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if input[i..].starts_with("//") {
            i = input[i..].find('\n').map_or(input.len(), |p| i + p + 1);
            continue;
        }
        if input[i..].starts_with("/*") {
            i = input[i + 2..]
                .find("*/")
                .map_or(input.len(), |p| i + 2 + p + 2);
            continue;
        }
        // Strings.
        if c == b'"' || c == b'\'' {
            let quote = c;
            let mut s = String::new();
            let mut j = i + 1;
            while j < b.len() && b[j] != quote {
                if b[j] == b'\\' && j + 1 < b.len() && b[j + 1].is_ascii() {
                    let esc = b[j + 1];
                    s.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    j += 2;
                } else if b[j] == b'\\' {
                    // Backslash before a multi-byte char (or at EOF):
                    // drop the backslash, let the char flow through.
                    j += 1;
                } else {
                    // Multi-byte UTF-8 safe: take the full char.
                    let ch = input[j..].chars().next().expect("in bounds");
                    s.push(ch);
                    j += ch.len_utf8();
                }
            }
            out.push(JsToken::Str(s));
            i = (j + 1).min(input.len());
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.') {
                j += 1;
            }
            match input[start..j].parse::<f64>() {
                Ok(v) => out.push(JsToken::Num(v)),
                Err(_) => out.push(JsToken::Num(0.0)), // e.g. "1.2.3"
            }
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' || c == b'$' {
            let start = i;
            let mut j = i;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'$') {
                j += 1;
            }
            let word = &input[start..j];
            if let Some(&kw) = KEYWORDS.iter().find(|&&k| k == word) {
                out.push(JsToken::Keyword(kw));
            } else {
                out.push(JsToken::Ident(word.to_string()));
            }
            i = j;
            continue;
        }
        // Operators.
        if let Some(&op) = OPS2.iter().find(|&&op| input[i..].starts_with(op)) {
            out.push(JsToken::Punct(op));
            i += 2;
            continue;
        }
        if let Some(&op) = OPS1.iter().find(|&&op| input[i..].starts_with(op)) {
            out.push(JsToken::Punct(op));
            i += 1;
            continue;
        }
        // Unknown byte: skip (robustness).
        i += input[i..].chars().next().map_or(1, |ch| ch.len_utf8());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_typical_corpus_line() {
        let toks = lex("loadImage(base + n0 + \".jpg\");");
        assert_eq!(
            toks,
            vec![
                JsToken::Ident("loadImage".into()),
                JsToken::Punct("("),
                JsToken::Ident("base".into()),
                JsToken::Punct("+"),
                JsToken::Ident("n0".into()),
                JsToken::Punct("+"),
                JsToken::Str(".jpg".into()),
                JsToken::Punct(")"),
                JsToken::Punct(";"),
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        let toks = lex("var varx = whiled;");
        assert_eq!(toks[0], JsToken::Keyword("var"));
        assert_eq!(toks[1], JsToken::Ident("varx".into()));
        assert_eq!(toks[3], JsToken::Ident("whiled".into()));
    }

    #[test]
    fn numbers_and_operators() {
        let toks = lex("a <= 3.5 != 2");
        assert_eq!(
            toks,
            vec![
                JsToken::Ident("a".into()),
                JsToken::Punct("<="),
                JsToken::Num(3.5),
                JsToken::Punct("!="),
                JsToken::Num(2.0),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("// line\nx /* block */ = 1;");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0], JsToken::Ident("x".into()));
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#""a\"b\n\\""#);
        assert_eq!(toks, vec![JsToken::Str("a\"b\n\\".into())]);
    }

    #[test]
    fn member_access_lexes_with_dot() {
        let toks = lex("document.write(\"x\")");
        assert_eq!(toks[0], JsToken::Ident("document".into()));
        assert_eq!(toks[1], JsToken::Punct("."));
        assert_eq!(toks[2], JsToken::Ident("write".into()));
    }

    #[test]
    fn junk_bytes_are_skipped() {
        let toks = lex("a @ § b");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = lex("\"open");
        assert_eq!(toks, vec![JsToken::Str("open".into())]);
    }
}
