//! The tree-walking interpreter with host effects and an operation budget.

use super::ast::{parse_program, Expr, Stmt};
use std::collections::HashMap;
use std::fmt;

/// A side effect a script asked the browser for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsEffect {
    /// `loadImage(url)` — fetch an image.
    LoadImage(String),
    /// `loadScript(url)` — fetch and execute another script.
    LoadScript(String),
    /// `document.write(html)` — inject markup (which may reference more
    /// resources).
    DocumentWrite(String),
}

/// The result of executing a script.
#[derive(Debug, Clone, PartialEq)]
pub struct JsOutcome {
    /// Host effects, in execution order.
    pub effects: Vec<JsEffect>,
    /// Interpreter operations executed (work accounting).
    pub ops: u64,
    /// Tokens lexed (work accounting).
    pub tokens: usize,
    /// Source bytes (work accounting).
    pub bytes: usize,
    /// Whether the source parsed; a `false` outcome has no effects.
    pub parse_ok: bool,
    /// Whether the operation budget was exhausted (runaway script).
    pub hit_gas_limit: bool,
}

/// Default operation budget per script.
pub const DEFAULT_GAS: u64 = 2_000_000;

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
    Undefined,
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            // lint:allow(api/float-eq) ECMA ToBoolean: only exact +/-0 and NaN are falsy
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Bool(b) => *b,
            Value::Undefined => false,
        }
    }

    fn to_num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            Value::Str(s) => s.parse().unwrap_or(f64::NAN),
            Value::Bool(true) => 1.0,
            Value::Bool(false) => 0.0,
            Value::Undefined => f64::NAN,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // JS-style number printing: integers without a decimal point,
            // which is what makes `base + i + ".jpg"` produce "dyn0.jpg".
            Value::Num(n) => {
                // lint:allow(api/float-eq) fract() of a mathematical integer is exactly 0.0
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Undefined => f.write_str("undefined"),
        }
    }
}

enum Flow {
    Normal,
    Return(Value),
    OutOfGas,
}

struct Interp {
    globals: HashMap<String, Value>,
    functions: HashMap<String, (Vec<String>, Vec<Stmt>)>,
    effects: Vec<JsEffect>,
    gas: u64,
    ops: u64,
    call_depth: usize,
}

const MAX_CALL_DEPTH: usize = 64;

/// Parses and executes `source` with the given operation budget
/// (`None` = [`DEFAULT_GAS`]).
pub fn execute(source: &str, gas: Option<u64>) -> JsOutcome {
    let bytes = source.len();
    let program = match parse_program(source) {
        Ok(p) => p,
        Err(_) => {
            return JsOutcome {
                effects: Vec::new(),
                ops: 0,
                tokens: 0,
                bytes,
                parse_ok: false,
                hit_gas_limit: false,
            }
        }
    };
    let tokens = program.tokens;
    let mut interp = Interp {
        globals: HashMap::new(),
        functions: HashMap::new(),
        effects: Vec::new(),
        gas: gas.unwrap_or(DEFAULT_GAS),
        ops: 0,
        call_depth: 0,
    };
    let mut hit_gas_limit = false;
    // Hoist function declarations (simplified hoisting).
    for stmt in &program.statements {
        if let Stmt::FunctionDecl { name, params, body } = stmt {
            interp
                .functions
                .insert(name.clone(), (params.clone(), body.clone()));
        }
    }
    let mut locals = HashMap::new();
    for stmt in &program.statements {
        match interp.exec(stmt, &mut locals) {
            Flow::Normal => {}
            Flow::Return(_) => break,
            Flow::OutOfGas => {
                hit_gas_limit = true;
                break;
            }
        }
    }
    JsOutcome {
        effects: interp.effects,
        ops: interp.ops,
        tokens,
        bytes,
        parse_ok: true,
        hit_gas_limit,
    }
}

impl Interp {
    fn charge(&mut self) -> bool {
        self.ops += 1;
        if self.gas == 0 {
            return false;
        }
        self.gas -= 1;
        true
    }

    fn exec(&mut self, stmt: &Stmt, locals: &mut HashMap<String, Value>) -> Flow {
        if !self.charge() {
            return Flow::OutOfGas;
        }
        match stmt {
            Stmt::VarDecl { name, init } => {
                let value = match init {
                    Some(e) => match self.eval(e, locals) {
                        Ok(v) => v,
                        Err(flow) => return flow,
                    },
                    None => Value::Undefined,
                };
                locals.insert(name.clone(), value);
                Flow::Normal
            }
            Stmt::Expr(e) => match self.eval(e, locals) {
                Ok(_) => Flow::Normal,
                Err(flow) => flow,
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = match self.eval(cond, locals) {
                    Ok(v) => v,
                    Err(flow) => return flow,
                };
                let branch = if c.truthy() { then_branch } else { else_branch };
                for s in branch {
                    match self.exec(s, locals) {
                        Flow::Normal => {}
                        other => return other,
                    }
                }
                Flow::Normal
            }
            Stmt::While { cond, body } => loop {
                let c = match self.eval(cond, locals) {
                    Ok(v) => v,
                    Err(flow) => return flow,
                };
                if !c.truthy() {
                    return Flow::Normal;
                }
                for s in body {
                    match self.exec(s, locals) {
                        Flow::Normal => {}
                        other => return other,
                    }
                }
            },
            Stmt::FunctionDecl { name, params, body } => {
                // Re-registration at execution time is a no-op thanks to
                // hoisting, but nested declarations register here.
                self.functions
                    .insert(name.clone(), (params.clone(), body.clone()));
                Flow::Normal
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => match self.eval(e, locals) {
                        Ok(v) => v,
                        Err(flow) => return flow,
                    },
                    None => Value::Undefined,
                };
                Flow::Return(v)
            }
        }
    }

    fn eval(&mut self, expr: &Expr, locals: &mut HashMap<String, Value>) -> Result<Value, Flow> {
        if !self.charge() {
            return Err(Flow::OutOfGas);
        }
        match expr {
            Expr::Num(v) => Ok(Value::Num(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Var(name) => Ok(locals
                .get(name)
                .or_else(|| self.globals.get(name))
                .cloned()
                .unwrap_or(Value::Undefined)),
            Expr::Assign { name, value } => {
                let v = self.eval(value, locals)?;
                // Assignment updates the innermost binding that exists;
                // otherwise creates a global (JS semantics, simplified).
                if locals.contains_key(name) {
                    locals.insert(name.clone(), v.clone());
                } else {
                    self.globals.insert(name.clone(), v.clone());
                }
                Ok(v)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, locals)?;
                Ok(match *op {
                    "-" => Value::Num(-v.to_num()),
                    "!" => Value::Bool(!v.truthy()),
                    _ => Value::Undefined,
                })
            }
            Expr::Binary { op, left, right } => {
                let l = self.eval(left, locals)?;
                let r = self.eval(right, locals)?;
                Ok(binary(op, &l, &r))
            }
            Expr::Call { target, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, locals)?);
                }
                self.call(target, values)
            }
        }
    }

    fn call(&mut self, target: &str, args: Vec<Value>) -> Result<Value, Flow> {
        match target {
            "loadImage" => {
                if let Some(v) = args.first() {
                    self.effects.push(JsEffect::LoadImage(v.to_string()));
                }
                Ok(Value::Undefined)
            }
            "loadScript" => {
                if let Some(v) = args.first() {
                    self.effects.push(JsEffect::LoadScript(v.to_string()));
                }
                Ok(Value::Undefined)
            }
            "document.write" => {
                if let Some(v) = args.first() {
                    self.effects.push(JsEffect::DocumentWrite(v.to_string()));
                }
                Ok(Value::Undefined)
            }
            name => {
                let Some((params, body)) = self.functions.get(name).cloned() else {
                    // Unknown function: evaluate to undefined, as a lenient
                    // engine does for missing host APIs.
                    return Ok(Value::Undefined);
                };
                if self.call_depth >= MAX_CALL_DEPTH {
                    return Err(Flow::OutOfGas);
                }
                self.call_depth += 1;
                let mut frame: HashMap<String, Value> = HashMap::new();
                for (i, p) in params.iter().enumerate() {
                    frame.insert(p.clone(), args.get(i).cloned().unwrap_or(Value::Undefined));
                }
                let mut result = Value::Undefined;
                for s in &body {
                    match self.exec(s, &mut frame) {
                        Flow::Normal => {}
                        Flow::Return(v) => {
                            result = v;
                            break;
                        }
                        Flow::OutOfGas => {
                            self.call_depth -= 1;
                            return Err(Flow::OutOfGas);
                        }
                    }
                }
                self.call_depth -= 1;
                Ok(result)
            }
        }
    }
}

fn binary(op: &str, l: &Value, r: &Value) -> Value {
    match op {
        "+" => {
            // String concatenation wins if either side is a string.
            if matches!(l, Value::Str(_)) || matches!(r, Value::Str(_)) {
                Value::Str(format!("{l}{r}"))
            } else {
                Value::Num(l.to_num() + r.to_num())
            }
        }
        "-" => Value::Num(l.to_num() - r.to_num()),
        "*" => Value::Num(l.to_num() * r.to_num()),
        "/" => Value::Num(l.to_num() / r.to_num()),
        "%" => Value::Num(l.to_num() % r.to_num()),
        "<" => Value::Bool(l.to_num() < r.to_num()),
        ">" => Value::Bool(l.to_num() > r.to_num()),
        "<=" => Value::Bool(l.to_num() <= r.to_num()),
        ">=" => Value::Bool(l.to_num() >= r.to_num()),
        "==" => Value::Bool(js_eq(l, r)),
        "!=" => Value::Bool(!js_eq(l, r)),
        _ => Value::Undefined,
    }
}

fn js_eq(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::Str(a), Value::Str(b)) => a == b,
        (Value::Undefined, Value::Undefined) => true,
        _ => l.to_num() == r.to_num(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_urls_require_execution() {
        // The corpus pattern: the fetched URL never appears literally.
        let src = r#"
            var base = "http://s/img/dyn";
            var n = 0;
            while (n < 3) { loadImage(base + n + ".jpg"); n = n + 1; }
        "#;
        let out = execute(src, None);
        assert!(out.parse_ok);
        assert_eq!(
            out.effects,
            vec![
                JsEffect::LoadImage("http://s/img/dyn0.jpg".into()),
                JsEffect::LoadImage("http://s/img/dyn1.jpg".into()),
                JsEffect::LoadImage("http://s/img/dyn2.jpg".into()),
            ]
        );
        assert!(out.ops > 10);
    }

    #[test]
    fn document_write_effect() {
        let out = execute("document.write(\"<img src='x.jpg'>\");", None);
        assert_eq!(
            out.effects,
            vec![JsEffect::DocumentWrite("<img src='x.jpg'>".into())]
        );
    }

    #[test]
    fn functions_and_arithmetic() {
        let src = r#"
            function mix(a, b) { return a * 31 + b % 97; }
            var acc = 0;
            var k = 0;
            while (k < 10) { acc = mix(acc, k); k = k + 1; }
            if (acc > 0) { loadImage("got" + acc + ".png"); }
        "#;
        let out = execute(src, None);
        assert_eq!(out.effects.len(), 1);
        // acc is deterministic; recompute in Rust.
        let mut acc = 0i64;
        for k in 0..10 {
            acc = acc * 31 + k % 97;
        }
        assert_eq!(out.effects[0], JsEffect::LoadImage(format!("got{acc}.png")));
    }

    #[test]
    fn dead_branches_produce_no_effects() {
        let out = execute("if (1 > 2) { loadImage(\"never.jpg\"); }", None);
        assert!(out.effects.is_empty());
    }

    #[test]
    fn infinite_loop_hits_gas_limit() {
        let out = execute("while (true) { var x = 1; }", Some(10_000));
        assert!(out.hit_gas_limit);
        assert!(out.ops >= 10_000);
    }

    #[test]
    fn parse_errors_yield_no_effects() {
        let out = execute("loadImage(", None);
        assert!(!out.parse_ok);
        assert!(out.effects.is_empty());
    }

    #[test]
    fn unbounded_recursion_is_cut_off() {
        let out = execute("function f() { return f(); } f();", None);
        // Either gas or call-depth stops it; must not overflow the stack.
        assert!(out.parse_ok);
    }

    #[test]
    fn number_formatting_matches_js() {
        let out = execute("loadImage(\"a\" + 7 + \"_\" + 2.5 + \".png\");", None);
        assert_eq!(out.effects, vec![JsEffect::LoadImage("a7_2.5.png".into())]);
    }

    #[test]
    fn string_comparison_and_equality() {
        let out = execute(
            "if (\"a\" == \"a\") { loadImage(\"eq.png\"); } if (1 != 2) { loadImage(\"ne.png\"); }",
            None,
        );
        assert_eq!(out.effects.len(), 2);
    }

    #[test]
    fn undefined_variables_are_undefined() {
        let out = execute("if (ghost) { loadImage(\"no.png\"); }", None);
        assert!(out.effects.is_empty());
    }

    #[test]
    fn globals_assigned_inside_functions() {
        let src = "function set() { g = 5; } set(); if (g == 5) { loadImage(\"g.png\"); }";
        let out = execute(src, None);
        assert_eq!(out.effects.len(), 1);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[test]
    fn division_and_modulo_by_zero_are_nan_or_inf_not_panics() {
        let out = execute(
            "var a = 1 / 0; var b = 0 / 0; var c = 5 % 0; \
             if (a > 100) { loadImage(\"inf.png\"); }",
            None,
        );
        assert!(out.parse_ok);
        assert_eq!(out.effects, vec![JsEffect::LoadImage("inf.png".into())]);
    }

    #[test]
    fn string_to_number_coercion_in_arithmetic() {
        // "3" * 2 -> 6; "x" * 2 -> NaN (falsy in comparisons).
        let out = execute(
            "var a = \"3\" * 2; if (a == 6) { loadImage(\"six.png\"); } \
             var b = \"x\" * 2; if (b == b) { loadImage(\"nan-equal.png\"); }",
            None,
        );
        // NaN != NaN, so only the first effect fires.
        assert_eq!(out.effects, vec![JsEffect::LoadImage("six.png".into())]);
    }

    #[test]
    fn boolean_coercion_in_concat() {
        let out = execute("loadImage(\"f_\" + true + \".png\");", None);
        assert_eq!(out.effects, vec![JsEffect::LoadImage("f_true.png".into())]);
    }

    #[test]
    fn unary_operators() {
        let out = execute(
            "var a = -3; if (!false) { if (a < 0) { loadImage(\"neg.png\"); } }",
            None,
        );
        assert_eq!(out.effects.len(), 1);
    }

    #[test]
    fn nested_function_calls_and_shadowing() {
        let out = execute(
            "function f(x) { return g(x) + 1; } function g(x) { return x * 2; } \
             var x = 10; if (f(x) == 21) { loadImage(\"ok\" + x + \".png\"); }",
            None,
        );
        assert_eq!(out.effects, vec![JsEffect::LoadImage("ok10.png".into())]);
    }

    #[test]
    fn while_with_early_return_inside_function() {
        let out = execute(
            "function first(n) { var i = 0; while (i < 100) { if (i == n) { return i; } \
             i = i + 1; } return -1; } if (first(7) == 7) { loadImage(\"r.png\"); }",
            None,
        );
        assert_eq!(out.effects.len(), 1);
    }

    #[test]
    fn empty_source_is_fine() {
        let out = execute("", None);
        assert!(out.parse_ok);
        assert!(out.effects.is_empty());
        assert_eq!(out.ops, 0);
    }

    #[test]
    fn args_mismatch_pads_with_undefined() {
        // Missing arguments become `undefined`; as in JS,
        // `undefined == undefined` is true, but `undefined < 1` is false.
        let out = execute(
            "function f(a, b) { if (b == b) { if (b < 1) { return 3; } return 1; } return 2; } \
             if (f(1) == 1) { loadImage(\"pad.png\"); }",
            None,
        );
        assert_eq!(out.effects.len(), 1);
    }
}
