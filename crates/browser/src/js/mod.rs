//! A small JavaScript engine: lexer, parser, tree-walking interpreter.
//!
//! §4.1 of the paper: "JavaScript codes are much more complex than HTML or
//! CSS codes, and there is no simple approach to find out if they will
//! generate new data transmission without executing them." So the
//! energy-aware browser *executes* scripts during the transmission phase —
//! and this module is the interpreter that makes that meaningful: the
//! corpus scripts build their fetch URLs with string concatenation inside
//! loops, and only evaluation reveals them.
//!
//! The language subset: `var`, `function`/`return`, `if`/`else`, `while`,
//! numbers, strings, booleans, arithmetic, comparison, assignment, string
//! concatenation, and the host API `loadImage(url)`, `loadScript(url)`,
//! `document.write(html)`.
//!
//! Safety: execution is bounded by an operation budget (gas), so arbitrary
//! input — including infinite loops — always terminates.

mod ast;
mod interp;
mod lexer;

pub use ast::{parse_program, Expr, ParseError, Program, Stmt};
pub use interp::{execute, JsEffect, JsOutcome, DEFAULT_GAS};
pub use lexer::{lex, JsToken};
