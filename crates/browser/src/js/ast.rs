//! The JavaScript AST and recursive-descent parser.

use super::lexer::{lex, JsToken};
use std::fmt;

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Binary operation: `+ - * / % < > <= >= == !=`.
    Binary {
        /// Operator text.
        op: &'static str,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation: `-` or `!`.
    Unary {
        /// Operator text.
        op: &'static str,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Assignment to a variable (expression-valued, as in JS).
    Assign {
        /// Target variable.
        name: String,
        /// Value expression.
        value: Box<Expr>,
    },
    /// A call to a plain or dotted name, e.g. `loadImage(x)` or
    /// `document.write(y)`.
    Call {
        /// The (possibly dotted) callee name.
        target: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = init;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// An expression statement.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_branch: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `function name(params) { .. }`
    FunctionDecl {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Option<Expr>),
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements.
    pub statements: Vec<Stmt>,
    /// Token count (work accounting).
    pub tokens: usize,
}

/// A parse failure (position + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Token index where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a program from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] on the first construct outside the supported
/// subset; the engine treats that as a script error and continues the page
/// load, exactly like a real browser.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source);
    let n = tokens.len();
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut statements = Vec::new();
    while !p.at_end() {
        statements.push(p.statement()?);
    }
    Ok(Program {
        statements,
        tokens: n,
    })
}

const MAX_DEPTH: usize = 200;

struct Parser {
    tokens: Vec<JsToken>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&JsToken> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<JsToken> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.advance() {
            Some(JsToken::Punct(q)) if q == p => Ok(()),
            other => Err(self.err(format!("expected '{p}', found {other:?}"))),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let result = self.statement_inner();
        self.leave();
        result
    }

    fn statement_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(JsToken::Keyword("var")) => {
                self.advance();
                let name = self.ident()?;
                let init = if matches!(self.peek(), Some(JsToken::Punct("="))) {
                    self.advance();
                    Some(self.expression()?)
                } else {
                    None
                };
                self.semi();
                Ok(Stmt::VarDecl { name, init })
            }
            Some(JsToken::Keyword("if")) => {
                self.advance();
                self.expect_punct("(")?;
                let cond = self.expression()?;
                self.expect_punct(")")?;
                let then_branch = self.block_or_single()?;
                let else_branch = if matches!(self.peek(), Some(JsToken::Keyword("else"))) {
                    self.advance();
                    self.block_or_single()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Some(JsToken::Keyword("while")) => {
                self.advance();
                self.expect_punct("(")?;
                let cond = self.expression()?;
                self.expect_punct(")")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            Some(JsToken::Keyword("function")) => {
                self.advance();
                let name = self.ident()?;
                self.expect_punct("(")?;
                let mut params = Vec::new();
                if !matches!(self.peek(), Some(JsToken::Punct(")"))) {
                    loop {
                        params.push(self.ident()?);
                        if matches!(self.peek(), Some(JsToken::Punct(","))) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::FunctionDecl { name, params, body })
            }
            Some(JsToken::Keyword("return")) => {
                self.advance();
                let value = if matches!(self.peek(), Some(JsToken::Punct(";")) | None) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.semi();
                Ok(Stmt::Return(value))
            }
            Some(_) => {
                let e = self.expression()?;
                self.semi();
                Ok(Stmt::Expr(e))
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Consumes an optional semicolon (ASI-lite).
    fn semi(&mut self) {
        if matches!(self.peek(), Some(JsToken::Punct(";"))) {
            self.advance();
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !matches!(self.peek(), Some(JsToken::Punct("}")) | None) {
            out.push(self.statement()?);
        }
        self.expect_punct("}")?;
        Ok(out)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if matches!(self.peek(), Some(JsToken::Punct("{"))) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(JsToken::Ident(name)) => Ok(name),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.assignment();
        self.leave();
        result
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let left = self.comparison()?;
        if matches!(self.peek(), Some(JsToken::Punct("="))) {
            let Expr::Var(name) = left else {
                return Err(self.err("invalid assignment target"));
            };
            self.advance();
            let value = self.assignment()?;
            return Ok(Expr::Assign {
                name,
                value: Box::new(value),
            });
        }
        Ok(left)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.additive()?;
        while let Some(JsToken::Punct(op @ ("<" | ">" | "<=" | ">=" | "==" | "!="))) = self.peek() {
            let op = *op;
            self.advance();
            let right = self.additive()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        while let Some(JsToken::Punct(op @ ("+" | "-"))) = self.peek() {
            let op = *op;
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        while let Some(JsToken::Punct(op @ ("*" | "/" | "%"))) = self.peek() {
            let op = *op;
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if let Some(JsToken::Punct(op @ ("-" | "!"))) = self.peek() {
            let op = *op;
            self.advance();
            self.enter()?;
            let operand = self.unary();
            self.leave();
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand?),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let primary = self.primary()?;
        // Dotted member path + optional call.
        if let Expr::Var(mut name) = primary {
            while matches!(self.peek(), Some(JsToken::Punct("."))) {
                self.advance();
                let field = self.ident()?;
                name = format!("{name}.{field}");
            }
            if matches!(self.peek(), Some(JsToken::Punct("("))) {
                self.advance();
                let mut args = Vec::new();
                if !matches!(self.peek(), Some(JsToken::Punct(")"))) {
                    loop {
                        args.push(self.expression()?);
                        if matches!(self.peek(), Some(JsToken::Punct(","))) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                return Ok(Expr::Call { target: name, args });
            }
            return Ok(Expr::Var(name));
        }
        Ok(primary)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Some(JsToken::Num(v)) => Ok(Expr::Num(v)),
            Some(JsToken::Str(s)) => Ok(Expr::Str(s)),
            Some(JsToken::Keyword("true")) => Ok(Expr::Bool(true)),
            Some(JsToken::Keyword("false")) => Ok(Expr::Bool(false)),
            Some(JsToken::Ident(name)) => Ok(Expr::Var(name)),
            Some(JsToken::Punct("(")) => {
                let e = self.expression()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_var_and_while() {
        let p = parse_program("var i = 0; while (i < 3) { i = i + 1; }").unwrap();
        assert_eq!(p.statements.len(), 2);
        assert!(matches!(&p.statements[0], Stmt::VarDecl { name, .. } if name == "i"));
        let Stmt::While { body, .. } = &p.statements[1] else {
            panic!("expected while");
        };
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_function_and_call() {
        let p =
            parse_program("function mix(a, b) { return a * 31 + b; } var h = mix(1, 2);").unwrap();
        let Stmt::FunctionDecl { name, params, body } = &p.statements[0] else {
            panic!("expected function");
        };
        assert_eq!(name, "mix");
        assert_eq!(params, &["a", "b"]);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_dotted_call() {
        let p = parse_program("document.write(\"<p>x</p>\");").unwrap();
        let Stmt::Expr(Expr::Call { target, args }) = &p.statements[0] else {
            panic!("expected call");
        };
        assert_eq!(target, "document.write");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn precedence_mul_before_add_before_cmp() {
        let p = parse_program("var x = 1 + 2 * 3 < 10;").unwrap();
        let Stmt::VarDecl { init: Some(e), .. } = &p.statements[0] else {
            panic!()
        };
        // (1 + (2*3)) < 10
        let Expr::Binary { op: "<", left, .. } = e else {
            panic!("{e:?}")
        };
        let Expr::Binary { op: "+", right, .. } = left.as_ref() else {
            panic!()
        };
        assert!(matches!(right.as_ref(), Expr::Binary { op: "*", .. }));
    }

    #[test]
    fn if_else_without_braces() {
        let p = parse_program("if (a < b) x = 1; else x = 2;").unwrap();
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = &p.statements[0]
        else {
            panic!()
        };
        assert_eq!(then_branch.len(), 1);
        assert_eq!(else_branch.len(), 1);
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse_program("var x = {a: 1};").is_err());
        assert!(parse_program("x = = 2;").is_err());
        assert!(parse_program("1 = 2;").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let src = format!("var x = {}1{};", "(".repeat(500), ")".repeat(500));
        assert!(parse_program(&src).is_err());
    }

    #[test]
    fn token_count_recorded() {
        let p = parse_program("var a = 1;").unwrap();
        assert_eq!(p.tokens, 5);
    }
}
