//! Layout caching — the paper's §6 pointer to Zhang et al. (WWW 2010):
//! "For webpages that have already been opened, \[they\] propose a layout
//! caching approach. It caches the layout results to eliminate redundant
//! computations." This module implements that comparator/extension: on a
//! repeat visit the style+layout pass is replaced by a cheap validation,
//! compounding with the energy-aware pipeline (whose layout phase runs
//! off-radio anyway).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A cached layout result for one page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachedLayout {
    /// Page height, px.
    pub page_height: f64,
    /// Page width, px.
    pub page_width: f64,
    /// Boxes in the layout (paint still runs over these).
    pub boxes: usize,
    /// Total fetched bytes when the entry was created — the cheap
    /// change-detection fingerprint.
    pub fingerprint: u64,
}

/// An across-loads layout cache, keyed by root URL.
///
/// # Example
///
/// ```
/// use ewb_browser::cache::{CachedLayout, LayoutCache};
///
/// let mut cache = LayoutCache::new();
/// cache.insert("http://a/", CachedLayout {
///     page_height: 3000.0, page_width: 980.0, boxes: 120, fingerprint: 1,
/// });
/// assert!(cache.lookup("http://a/", 1).is_some());
/// assert!(cache.lookup("http://a/", 2).is_none(), "changed page misses");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LayoutCache {
    // Sorted so a serialized cache is byte-deterministic (hash order
    // leaked before ewb-lint).
    entries: BTreeMap<String, CachedLayout>,
    hits: u64,
    misses: u64,
}

impl LayoutCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        LayoutCache::default()
    }

    /// Looks up a fresh entry for `url`; a fingerprint mismatch (the page
    /// changed) is a miss and evicts the stale entry.
    pub fn lookup(&mut self, url: &str, fingerprint: u64) -> Option<CachedLayout> {
        match self.entries.get(url) {
            Some(e) if e.fingerprint == fingerprint => {
                self.hits += 1;
                Some(*e)
            }
            Some(_) => {
                self.entries.remove(url);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a layout result.
    pub fn insert(&mut self, url: impl Into<String>, layout: CachedLayout) {
        self.entries.insert(url.into(), layout);
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fp: u64) -> CachedLayout {
        CachedLayout {
            page_height: 100.0,
            page_width: 980.0,
            boxes: 10,
            fingerprint: fp,
        }
    }

    #[test]
    fn hit_requires_matching_fingerprint() {
        let mut c = LayoutCache::new();
        assert!(c.lookup("u", 1).is_none());
        c.insert("u", entry(1));
        assert_eq!(c.lookup("u", 1), Some(entry(1)));
        assert!(c.lookup("u", 2).is_none(), "stale entry");
        assert!(c.is_empty(), "stale entry evicted");
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LayoutCache::new();
        c.insert("u", entry(1));
        let _ = c.lookup("u", 1);
        let _ = c.lookup("u", 1);
        let _ = c.lookup("v", 1);
        assert_eq!(c.stats(), (2, 1));
        assert_eq!(c.len(), 1);
    }
}
