//! The HTML tree builder: tokens in, DOM + discovered resources out.

use super::tokenizer::{tokenize, Token};
use crate::dom::Document;
use ewb_webpage::ObjectKind;

/// A resource reference discovered while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Absolute URL as written in the document.
    pub url: String,
    /// What kind of object the reference points at.
    pub kind: ObjectKind,
}

/// The output of [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct HtmlParseResult {
    /// The constructed DOM tree.
    pub document: Document,
    /// External resources referenced by the markup, in document order:
    /// stylesheets, scripts, images, flash objects.
    pub resources: Vec<Resource>,
    /// Inline `<script>` bodies, in document order.
    pub inline_scripts: Vec<String>,
    /// Inline `<style>` bodies, in document order.
    pub inline_styles: Vec<String>,
    /// `<a href>` targets — the paper's "Second URL" feature (Table 1).
    pub secondary_urls: Vec<String>,
    /// Bytes of input processed (work accounting).
    pub bytes: usize,
    /// Tokens produced (work accounting).
    pub tokens: usize,
}

/// Elements that never have children.
const VOID_ELEMENTS: &[&str] = &[
    "img", "br", "hr", "link", "meta", "input", "area", "base", "col", "embed", "source", "track",
    "wbr",
];

/// Parses an HTML document (or a `document.write` fragment), building the
/// DOM and collecting resource references. Robust to arbitrary input.
pub fn parse(input: &str) -> HtmlParseResult {
    let tokens = tokenize(input);
    let mut document = Document::new();
    let mut resources = Vec::new();
    let mut inline_scripts = Vec::new();
    let mut inline_styles = Vec::new();
    let mut secondary_urls = Vec::new();

    // Open-element stack; the top is the insertion point.
    let mut stack: Vec<(usize, String)> = vec![(document.root(), String::new())];
    // When inside <script>/<style>, the next Text token is the body.
    let mut in_script = false;
    let mut in_style = false;

    let n_tokens = tokens.len();
    for token in tokens {
        match token {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                // Resource discovery by tag.
                match name.as_str() {
                    "link" => {
                        let rel = attr(&attrs, "rel").unwrap_or_default();
                        if rel.eq_ignore_ascii_case("stylesheet") {
                            if let Some(href) = attr(&attrs, "href") {
                                resources.push(Resource {
                                    url: href,
                                    kind: ObjectKind::Css,
                                });
                            }
                        }
                    }
                    "script" => {
                        if let Some(src) = attr(&attrs, "src") {
                            resources.push(Resource {
                                url: src,
                                kind: ObjectKind::Js,
                            });
                        } else if !self_closing {
                            in_script = true;
                        }
                    }
                    "style" if !self_closing => {
                        in_style = true;
                    }
                    "img" => {
                        if let Some(src) = attr(&attrs, "src") {
                            resources.push(Resource {
                                url: src,
                                kind: ObjectKind::Image,
                            });
                        }
                    }
                    "embed" | "object" => {
                        if let Some(src) = attr(&attrs, "src").or_else(|| attr(&attrs, "data")) {
                            resources.push(Resource {
                                url: src,
                                kind: ObjectKind::Flash,
                            });
                        }
                    }
                    "a" => {
                        if let Some(href) = attr(&attrs, "href") {
                            secondary_urls.push(href);
                        }
                    }
                    _ => {}
                }

                let parent = stack.last().expect("stack never empty").0;
                let id = document.append_element(parent, &name, attrs);
                let is_void = VOID_ELEMENTS.contains(&name.as_str());
                if !is_void && !self_closing {
                    stack.push((id, name));
                }
            }
            Token::EndTag { name } => {
                if name == "script" {
                    in_script = false;
                }
                if name == "style" {
                    in_style = false;
                }
                // Pop to the matching open element, if any; otherwise
                // ignore the stray end tag (standard recovery).
                if let Some(pos) = stack.iter().rposition(|(_, n)| *n == name) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
            }
            Token::Text(text) => {
                let parent = stack.last().expect("stack never empty").0;
                if in_script {
                    inline_scripts.push(text.clone());
                    in_script = false;
                    document.append_text(parent, &text);
                } else if in_style {
                    inline_styles.push(text.clone());
                    in_style = false;
                    document.append_text(parent, &text);
                } else if !text.trim().is_empty() {
                    document.append_text(parent, &text);
                }
            }
            Token::Comment(len) => {
                let parent = stack.last().expect("stack never empty").0;
                document.append_comment(parent, len);
            }
            Token::Doctype => {}
        }
    }

    HtmlParseResult {
        document,
        resources,
        inline_scripts,
        inline_styles,
        secondary_urls,
        bytes: input.len(),
        tokens: n_tokens,
    }
}

fn attr(attrs: &[(String, String)], name: &str) -> Option<String> {
    attrs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<!DOCTYPE html>
<html><head>
<link rel="stylesheet" href="http://s/css/a.css">
<script src="http://s/js/b.js"></script>
</head><body>
<p class="intro">Hello</p>
<img src="http://s/img/c.jpg" width="100">
<a href="http://s/story/1.html">read</a>
<embed src="http://s/f/anim.swf">
<script>var x = 1 + 2;</script>
</body></html>"#;

    #[test]
    fn discovers_all_resource_kinds_in_order() {
        let r = parse(DOC);
        let urls: Vec<(&str, ObjectKind)> = r
            .resources
            .iter()
            .map(|x| (x.url.as_str(), x.kind))
            .collect();
        assert_eq!(
            urls,
            vec![
                ("http://s/css/a.css", ObjectKind::Css),
                ("http://s/js/b.js", ObjectKind::Js),
                ("http://s/img/c.jpg", ObjectKind::Image),
                ("http://s/f/anim.swf", ObjectKind::Flash),
            ]
        );
        assert_eq!(r.secondary_urls, vec!["http://s/story/1.html"]);
        assert_eq!(r.inline_scripts, vec!["var x = 1 + 2;"]);
    }

    #[test]
    fn builds_nested_dom() {
        let r = parse(DOC);
        let d = &r.document;
        assert!(d.element_count() >= 8);
        // The <p> holds the text "Hello".
        let p = d
            .descendants()
            .into_iter()
            .find(|&id| d.tag(id) == Some("p"))
            .unwrap();
        assert_eq!(d.attr(p, "class"), Some("intro"));
        let text_child = d.node(p).children[0];
        assert!(matches!(
            &d.node(text_child).kind,
            crate::dom::NodeKind::Text(t) if t == "Hello"
        ));
    }

    #[test]
    fn void_elements_do_not_nest() {
        let r = parse("<p><img src=\"a.jpg\"><img src=\"b.jpg\"></p>");
        let d = &r.document;
        let p = d
            .descendants()
            .into_iter()
            .find(|&id| d.tag(id) == Some("p"))
            .unwrap();
        // Both images are siblings under <p>.
        assert_eq!(d.node(p).children.len(), 2);
    }

    #[test]
    fn stray_end_tags_are_ignored() {
        let r = parse("</div><p>ok</p></span>");
        assert_eq!(r.document.element_count(), 1);
        assert_eq!(r.document.text_len(), 2);
    }

    #[test]
    fn unclosed_elements_still_build() {
        let r = parse("<div><p>one<p>two");
        assert!(r.document.element_count() >= 2);
        assert_eq!(r.document.text_len(), 6);
    }

    #[test]
    fn script_without_rel_stylesheet_link_is_not_css() {
        let r = parse("<link rel=\"icon\" href=\"x.ico\"><link href=\"y.css\">");
        assert!(r.resources.is_empty());
    }

    #[test]
    fn work_counters_are_populated() {
        let r = parse(DOC);
        assert_eq!(r.bytes, DOC.len());
        assert!(r.tokens > 10);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let r = parse("<p>\n   \n</p><p>x</p>");
        assert_eq!(r.document.text_len(), 1);
    }
}

#[cfg(test)]
mod inline_style_tests {
    use super::*;

    #[test]
    fn inline_styles_are_collected() {
        let r = parse(
            "<head><style>.a { background: url(\"http://s/bg.png\"); }</style></head><p>x</p>",
        );
        assert_eq!(r.inline_styles.len(), 1);
        assert!(r.inline_styles[0].contains("bg.png"));
        // The style body is raw text, not parsed as markup.
        assert!(r.resources.is_empty());
    }

    #[test]
    fn style_and_script_bodies_do_not_mix() {
        let r = parse("<style>p{color:red}</style><script>var a=1;</script>");
        assert_eq!(r.inline_styles, vec!["p{color:red}"]);
        assert_eq!(r.inline_scripts, vec!["var a=1;"]);
    }

    #[test]
    fn empty_style_element_is_harmless() {
        let r = parse("<style></style><p>x</p>");
        assert!(r.inline_styles.is_empty());
        assert_eq!(r.document.text_len(), 1);
    }
}
