//! HTML processing: tokenizer and tree builder.
//!
//! This is not a full HTML5 parser; it is the subset a 2009 mobile engine
//! needed for real pages — tags, attributes (quoted and bare), comments,
//! doctype, raw-text `<script>`/`<style>` elements, void elements — plus
//! unconditional robustness: any byte sequence tokenizes without panicking
//! (verified by property tests).

mod parser;
mod tokenizer;

pub use parser::{parse, HtmlParseResult, Resource};
pub use tokenizer::{tokenize, Token};
