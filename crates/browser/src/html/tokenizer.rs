//! The HTML tokenizer: bytes in, tokens out.

/// One HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<tag attr="v">`; `self_closing` for `<tag/>`.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in source order, names lower-cased.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    EndTag {
        /// Lower-cased tag name.
        name: String,
    },
    /// A text run between tags.
    Text(String),
    /// `<!-- ... -->` (content length only).
    Comment(usize),
    /// `<!DOCTYPE ...>` and other markup declarations.
    Doctype,
}

/// Tokenizes `input` completely. Never panics: malformed markup degrades
/// to text or gets skipped, as real engines do.
///
/// `<script>` and `<style>` contents are treated as raw text: everything
/// until the matching end tag becomes a single [`Token::Text`].
pub fn tokenize(input: &str) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let n = bytes.len();
    let mut text_start = 0;

    // Pending raw-text element (script/style): consume until its end tag.
    let mut raw_until: Option<String> = None;

    while i < n {
        if let Some(tag) = &raw_until {
            // Scan for `</tag` case-insensitively.
            let close = format!("</{tag}");
            let rest = &input[i..];
            let pos = find_ci(rest, &close);
            let (content_end, resume) = match pos {
                Some(p) => (i + p, i + p),
                None => (n, n),
            };
            if content_end > i {
                tokens.push(Token::Text(input[i..content_end].to_string()));
            }
            i = resume;
            text_start = i;
            raw_until = None;
            continue;
        }

        if bytes[i] == b'<' {
            // Flush preceding text.
            if i > text_start {
                tokens.push(Token::Text(input[text_start..i].to_string()));
            }
            if input[i..].starts_with("<!--") {
                // Comment.
                let end = input[i + 4..].find("-->").map(|p| i + 4 + p);
                match end {
                    Some(e) => {
                        tokens.push(Token::Comment(e - (i + 4)));
                        i = e + 3;
                    }
                    None => {
                        tokens.push(Token::Comment(n - (i + 4).min(n)));
                        i = n;
                    }
                }
                text_start = i;
                continue;
            }
            if input[i..].starts_with("<!") {
                // Doctype / markup declaration: skip to '>'.
                let end = input[i..].find('>').map(|p| i + p);
                tokens.push(Token::Doctype);
                i = end.map_or(n, |e| e + 1);
                text_start = i;
                continue;
            }
            if input[i..].starts_with("</") {
                match parse_end_tag(input, i) {
                    Some((name, next)) => {
                        tokens.push(Token::EndTag { name });
                        i = next;
                    }
                    None => {
                        // Malformed `</`: emit as text and move on.
                        tokens.push(Token::Text("</".to_string()));
                        i += 2;
                    }
                }
                text_start = i;
                continue;
            }
            match parse_start_tag(input, i) {
                Some((name, attrs, self_closing, next)) => {
                    if !self_closing && (name == "script" || name == "style") {
                        raw_until = Some(name.clone());
                    }
                    tokens.push(Token::StartTag {
                        name,
                        attrs,
                        self_closing,
                    });
                    i = next;
                }
                None => {
                    // A lone '<' that is not a tag: literal text.
                    tokens.push(Token::Text("<".to_string()));
                    i += 1;
                }
            }
            text_start = i;
        } else {
            i += 1;
        }
    }
    if n > text_start {
        tokens.push(Token::Text(input[text_start..].to_string()));
    }
    tokens
}

/// Case-insensitive substring search (ASCII).
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let nd = needle.as_bytes();
    if nd.is_empty() || nd.len() > h.len() {
        return None;
    }
    'outer: for start in 0..=(h.len() - nd.len()) {
        for (j, &c) in nd.iter().enumerate() {
            if !h[start + j].eq_ignore_ascii_case(&c) {
                continue 'outer;
            }
        }
        return Some(start);
    }
    None
}

/// Parses `</name ... >` starting at `i`. Returns `(name, index_after_gt)`.
fn parse_end_tag(input: &str, i: usize) -> Option<(String, usize)> {
    let bytes = input.as_bytes();
    let mut j = i + 2;
    let name_start = j;
    while j < bytes.len() && bytes[j].is_ascii_alphanumeric() {
        j += 1;
    }
    if j == name_start {
        return None;
    }
    let name = input[name_start..j].to_ascii_lowercase();
    // Skip to '>'.
    while j < bytes.len() && bytes[j] != b'>' {
        j += 1;
    }
    if j < bytes.len() {
        j += 1;
    }
    Some((name, j))
}

/// Parses `<name attr=... >` starting at `i`.
/// Returns `(name, attrs, self_closing, index_after_gt)`.
#[allow(clippy::type_complexity)]
fn parse_start_tag(input: &str, i: usize) -> Option<(String, Vec<(String, String)>, bool, usize)> {
    let bytes = input.as_bytes();
    let mut j = i + 1;
    let name_start = j;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'-') {
        j += 1;
    }
    if j == name_start {
        return None;
    }
    let name = input[name_start..j].to_ascii_lowercase();
    let mut attrs = Vec::new();
    let mut self_closing = false;

    loop {
        // Skip whitespace.
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() {
            break;
        }
        match bytes[j] {
            b'>' => {
                j += 1;
                break;
            }
            b'/' => {
                self_closing = true;
                j += 1;
            }
            _ => {
                // Attribute name.
                let an_start = j;
                while j < bytes.len()
                    && !bytes[j].is_ascii_whitespace()
                    && bytes[j] != b'='
                    && bytes[j] != b'>'
                    && bytes[j] != b'/'
                {
                    j += 1;
                }
                if j == an_start {
                    // Unexpected byte (e.g. a stray quote); skip it.
                    j += 1;
                    continue;
                }
                let an = input[an_start..j].to_ascii_lowercase();
                // Skip whitespace before '='.
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                let value = if j < bytes.len() && bytes[j] == b'=' {
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] == b'"' || bytes[j] == b'\'') {
                        let quote = bytes[j];
                        j += 1;
                        let v_start = j;
                        while j < bytes.len() && bytes[j] != quote {
                            j += 1;
                        }
                        let v = input[v_start..j].to_string();
                        if j < bytes.len() {
                            j += 1; // closing quote
                        }
                        v
                    } else {
                        let v_start = j;
                        while j < bytes.len() && !bytes[j].is_ascii_whitespace() && bytes[j] != b'>'
                        {
                            j += 1;
                        }
                        input[v_start..j].to_string()
                    }
                } else {
                    String::new()
                };
                attrs.push((an, value));
            }
        }
    }
    Some((name, attrs, self_closing, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let toks = tokenize("<html><body><p>hi</p></body></html>");
        assert_eq!(toks.len(), 7);
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "html"));
        assert!(matches!(&toks[3], Token::Text(t) if t == "hi"));
        assert!(matches!(&toks[4], Token::EndTag { name } if name == "p"));
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let toks = tokenize(r#"<img SRC="a.jpg" width=120 alt='x y'>"#);
        let Token::StartTag { name, attrs, .. } = &toks[0] else {
            panic!("expected start tag, got {toks:?}");
        };
        assert_eq!(name, "img");
        assert_eq!(
            attrs,
            &vec![
                ("src".to_string(), "a.jpg".to_string()),
                ("width".to_string(), "120".to_string()),
                ("alt".to_string(), "x y".to_string()),
            ]
        );
    }

    #[test]
    fn self_closing_tag() {
        let toks = tokenize("<br/><hr />");
        assert!(matches!(
            &toks[0],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(
            &toks[1],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- twelve chars --><p>x</p>");
        assert_eq!(toks[0], Token::Doctype);
        assert!(matches!(toks[1], Token::Comment(14)));
    }

    #[test]
    fn script_content_is_raw_text() {
        let toks = tokenize("<script>if (a < b) { x = \"<p>\"; }</script><p>t</p>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "script"));
        let Token::Text(body) = &toks[1] else {
            panic!("expected raw text, got {:?}", toks[1]);
        };
        assert!(body.contains("a < b"));
        assert!(body.contains("\"<p>\""));
        assert!(matches!(&toks[2], Token::EndTag { name } if name == "script"));
        assert!(matches!(&toks[3], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn script_end_tag_is_case_insensitive() {
        let toks = tokenize("<script>x</SCRIPT>done");
        assert!(matches!(&toks[2], Token::EndTag { name } if name == "script"));
        assert!(matches!(&toks[3], Token::Text(t) if t == "done"));
    }

    #[test]
    fn malformed_markup_degrades_to_text() {
        let toks = tokenize("a < b and </ and <");
        let text: String = toks
            .iter()
            .map(|t| match t {
                Token::Text(s) => s.as_str(),
                _ => "",
            })
            .collect();
        assert_eq!(text, "a < b and </ and <");
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for s in [
            "<p",
            "<!-- open",
            "<script>never closed",
            "</",
            "<img src=\"x",
        ] {
            let _ = tokenize(s); // must not panic
        }
    }

    #[test]
    fn unquoted_attr_stops_at_gt() {
        let toks = tokenize("<a href=x>y</a>");
        let Token::StartTag { attrs, .. } = &toks[0] else {
            panic!()
        };
        assert_eq!(attrs[0], ("href".to_string(), "x".to_string()));
        assert!(matches!(&toks[1], Token::Text(t) if t == "y"));
    }
}
