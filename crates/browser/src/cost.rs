//! The CPU cost model: counted engine work → simulated smartphone time.
//!
//! The engine does the real parsing/interpretation work on the host and
//! counts work units (bytes tokenized, interpreter operations, selector
//! match attempts, boxes laid out). This model prices those units at
//! 2009-smartphone rates, calibrated so the benchmark pages reproduce the
//! paper's load-time structure: full pages take tens of seconds, layout
//! computation is a large fraction of processing (the paper cites 40–70 %
//! [Meyerovich & Bodik 2010]), and CSS *parsing* is roughly an order of
//! magnitude more expensive than the energy-aware URL *scan*.

use ewb_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-unit CPU costs (microseconds per unit unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// HTML tokenize+tree-build, µs per byte.
    pub html_us_per_byte: f64,
    /// Extra cost per DOM node created, µs.
    pub html_us_per_node: f64,
    /// Full CSS parse (rule extraction), µs per byte.
    pub css_parse_us_per_byte: f64,
    /// Extra cost per rule constructed, µs.
    pub css_us_per_rule: f64,
    /// Cheap CSS URL scan, µs per byte.
    pub css_scan_us_per_byte: f64,
    /// JS lex+parse, µs per byte.
    pub js_parse_us_per_byte: f64,
    /// JS interpretation, µs per operation.
    pub js_us_per_op: f64,
    /// Image decode, µs per byte.
    pub image_decode_us_per_byte: f64,
    /// Selector matching, µs per match attempt.
    pub style_us_per_match: f64,
    /// Cascade application, µs per declaration applied.
    pub style_us_per_decl: f64,
    /// Layout calculation, µs per box.
    pub layout_us_per_box: f64,
    /// Painting, µs per box drawn.
    pub paint_us_per_box: f64,
}

impl CpuCostModel {
    /// The calibrated smartphone model (see module docs).
    pub fn smartphone() -> Self {
        CpuCostModel {
            html_us_per_byte: 55.0,
            html_us_per_node: 140.0,
            css_parse_us_per_byte: 42.0,
            css_us_per_rule: 60.0,
            css_scan_us_per_byte: 5.0,
            js_parse_us_per_byte: 60.0,
            js_us_per_op: 22.0,
            image_decode_us_per_byte: 2.4,
            style_us_per_match: 2.6,
            style_us_per_decl: 7.0,
            layout_us_per_box: 950.0,
            paint_us_per_box: 420.0,
        }
    }

    /// Cost of parsing an HTML document.
    pub fn html_parse(&self, bytes: usize, nodes: usize) -> SimDuration {
        us(self.html_us_per_byte * bytes as f64 + self.html_us_per_node * nodes as f64)
    }

    /// Cost of fully parsing a stylesheet.
    pub fn css_parse(&self, bytes: usize, rules: usize) -> SimDuration {
        us(self.css_parse_us_per_byte * bytes as f64 + self.css_us_per_rule * rules as f64)
    }

    /// Cost of the cheap URL scan over a stylesheet.
    pub fn css_scan(&self, bytes: usize) -> SimDuration {
        us(self.css_scan_us_per_byte * bytes as f64)
    }

    /// Cost of lexing+parsing+executing a script.
    pub fn js_run(&self, bytes: usize, ops: u64) -> SimDuration {
        us(self.js_parse_us_per_byte * bytes as f64 + self.js_us_per_op * ops as f64)
    }

    /// Cost of decoding an image/flash blob.
    pub fn image_decode(&self, bytes: u64) -> SimDuration {
        us(self.image_decode_us_per_byte * bytes as f64)
    }

    /// Cost of style formatting (selector matching + cascade).
    pub fn style(&self, match_attempts: usize, decls_applied: usize) -> SimDuration {
        us(self.style_us_per_match * match_attempts as f64
            + self.style_us_per_decl * decls_applied as f64)
    }

    /// Cost of one layout pass over `boxes` boxes.
    pub fn layout(&self, boxes: usize) -> SimDuration {
        us(self.layout_us_per_box * boxes as f64)
    }

    /// Cost of painting `boxes` boxes.
    pub fn paint(&self, boxes: usize) -> SimDuration {
        us(self.paint_us_per_box * boxes as f64)
    }
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel::smartphone()
    }
}

fn us(micros: f64) -> SimDuration {
    SimDuration::from_micros(micros.max(0.0).round() as u64)
}

/// A breakdown of simulated CPU time by the paper's two computation
/// categories plus the progressive-display overhead the original browser
/// pays (§4.2's redraws and reflows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpuWork {
    /// Data-transmission computation: HTML parsing, JS execution, CSS
    /// scanning — everything that can generate new transfers.
    pub dtc: SimDuration,
    /// Layout computation: CSS parsing, style, decode, layout, paint.
    pub layout: SimDuration,
    /// The subset of layout spent on intermediate redraws/reflows.
    pub redraw_reflow: SimDuration,
    /// The subset of dtc spent inside the JS interpreter (Table 1's
    /// "JavaScript Running Time").
    pub js: SimDuration,
}

impl CpuWork {
    /// Total CPU time.
    pub fn total(&self) -> SimDuration {
        self.dtc + self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_much_cheaper_than_parse() {
        let m = CpuCostModel::smartphone();
        let parse = m.css_parse(10_240, 100);
        let scan = m.css_scan(10_240);
        assert!(
            parse.as_secs_f64() > 6.0 * scan.as_secs_f64(),
            "parse {parse} vs scan {scan}"
        );
    }

    #[test]
    fn costs_scale_linearly() {
        let m = CpuCostModel::smartphone();
        assert_eq!(
            m.image_decode(2000).as_micros(),
            2 * m.image_decode(1000).as_micros()
        );
        assert_eq!(m.layout(10) * 2, m.layout(20));
    }

    #[test]
    fn zero_work_is_free() {
        let m = CpuCostModel::smartphone();
        assert!(m.html_parse(0, 0).is_zero());
        assert!(m.js_run(0, 0).is_zero());
        assert!(m.paint(0).is_zero());
    }

    #[test]
    fn work_totals() {
        let w = CpuWork {
            dtc: SimDuration::from_secs(3),
            layout: SimDuration::from_secs(2),
            redraw_reflow: SimDuration::from_secs(1),
            js: SimDuration::from_millis(500),
        };
        assert_eq!(w.total(), SimDuration::from_secs(5));
    }

    #[test]
    fn full_page_parse_takes_seconds_on_the_model() {
        // 35 KB of HTML with ~600 nodes should take 2-ish seconds on a
        // 2009 smartphone per the calibration.
        let m = CpuCostModel::smartphone();
        let t = m.html_parse(35 * 1024, 600).as_secs_f64();
        assert!((1.0..4.0).contains(&t), "html parse {t} s");
    }
}
