//! # ewb-browser — a miniature smartphone web-browser engine
//!
//! The paper's first technique (§4.1–§4.2) *reorganizes the computation
//! sequence* of the browser: run every computation that can generate data
//! transmissions first (HTML parsing, CSS scanning, JavaScript execution),
//! batch-fetch everything, drop the radio, and only then run the layout
//! computations (CSS rule extraction, style formatting, image decoding,
//! layout, painting). Evaluating that idea requires an engine that
//! actually *has* those computations, so this crate implements one:
//!
//! * [`html`] — tokenizer and tree builder producing a real [`dom::Document`];
//! * [`css`] — stylesheet parser, selector matching, computed styles, and
//!   the cheap URL *scan* the energy-aware path uses instead of parsing;
//! * [`js`] — a small JavaScript interpreter (variables, functions,
//!   arithmetic, strings, `while`/`if`, `loadImage`, `document.write`)
//!   because "there is no simple approach to find out if \[JS\] will
//!   generate new data transmission without executing \[it\]" (§4.1);
//! * [`layout`] — block layout with page-geometry output and
//!   reflow/redraw cost accounting (§4.2);
//! * [`CpuCostModel`] — converts counted engine work (bytes tokenized,
//!   ops executed, boxes laid out) into simulated smartphone CPU time;
//! * [`pipeline`] — the two end-to-end page-load schedules,
//!   [`pipeline::PipelineMode::Original`] (interleaved, progressive
//!   redraw/reflow) and [`pipeline::PipelineMode::EnergyAware`]
//!   (transmission phase, then layout phase, with the §4.2 cheap
//!   intermediate display).
//!
//! The engine runs on *virtual* CPU time: it does the real parsing and
//! interpretation work, counts work units, and prices them with the cost
//! model — so the simulated timings scale like a 2009 smartphone's even
//! though the host is much faster.
//!
//! # Example
//!
//! ```
//! use ewb_browser::fetch::FixedRateFetcher;
//! use ewb_browser::pipeline::{load_page, PipelineConfig, PipelineMode};
//! use ewb_browser::CpuCostModel;
//! use ewb_simcore::SimTime;
//! use ewb_webpage::{benchmark_corpus, OriginServer, PageVersion};
//!
//! let corpus = benchmark_corpus(1);
//! let espn = corpus.page("espn", PageVersion::Full).unwrap();
//! let mut fetcher = FixedRateFetcher::paper_3g(OriginServer::from_corpus(&corpus));
//! let metrics = load_page(
//!     &mut fetcher,
//!     espn.root_url(),
//!     SimTime::ZERO,
//!     &PipelineConfig::new(PipelineMode::EnergyAware),
//!     &CpuCostModel::default(),
//! );
//! assert!(metrics.objects_fetched >= 50);
//! assert!(metrics.final_display_at > metrics.first_display_at.unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod css;
pub mod dom;
pub mod fetch;
pub mod html;
pub mod js;
pub mod layout;
pub mod parallel;
pub mod pipeline;

mod cost;

pub use cost::{CpuCostModel, CpuWork};
