//! Style formatting: assigning computed styles to DOM nodes.
//!
//! §2.2: "After the CSS code has been parsed, the style and layout
//! properties are assigned to these nodes in the DOM tree." The cascade
//! here is simplified (specificity, then source order) but real: every
//! element is matched against every rule, which is exactly the cost the
//! paper's layout-computation category pays.

use super::parser::Stylesheet;
use super::selector::matches;
use crate::dom::{Document, NodeId, NodeKind};
use std::collections::HashMap;

/// The layout-relevant computed style of one element.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputedStyle {
    /// `display: none` removes the subtree from layout.
    pub display_none: bool,
    /// Vertical margin in pixels (top + bottom combined).
    pub margin_px: f64,
    /// Padding in pixels (all sides).
    pub padding_px: f64,
    /// Font size in pixels.
    pub font_size_px: f64,
    /// Explicit height (e.g. CSS-sized hero images), if any.
    pub height_px: Option<f64>,
    /// Explicit width, if any.
    pub width_px: Option<f64>,
    /// Number of declarations that applied (cascade accounting).
    pub applied: usize,
}

impl Default for ComputedStyle {
    fn default() -> Self {
        ComputedStyle {
            display_none: false,
            margin_px: 4.0,
            padding_px: 0.0,
            font_size_px: 14.0,
            height_px: None,
            width_px: None,
            applied: 0,
        }
    }
}

/// The output of [`compute_styles`].
#[derive(Debug, Clone, PartialEq)]
pub struct StyleResult {
    /// Computed style per element node.
    pub styles: HashMap<NodeId, ComputedStyle>,
    /// Total selector-match attempts (elements × selectors) — the work
    /// unit priced by the cost model.
    pub match_attempts: usize,
    /// Total declarations applied.
    pub declarations_applied: usize,
}

/// Matches every element against every rule of every sheet and folds the
/// winning declarations into computed styles.
pub fn compute_styles(doc: &Document, sheets: &[&Stylesheet]) -> StyleResult {
    compute_styles_for(doc, sheets, &doc.descendants())
}

/// [`compute_styles`] restricted to the nodes in `ids` (non-elements are
/// skipped). Each node is styled independently, so a document's node list
/// can be split into chunks, resolved on separate cores, and the partial
/// results merged: the style maps are disjoint and the counters sum to
/// exactly the whole-document totals.
pub fn compute_styles_for(doc: &Document, sheets: &[&Stylesheet], ids: &[NodeId]) -> StyleResult {
    let mut styles = HashMap::new();
    let mut match_attempts = 0usize;
    let mut declarations_applied = 0usize;

    // Collect (specificity, source_index, rule) across sheets for cascade
    // ordering.
    let mut indexed = Vec::new();
    for sheet in sheets {
        for rule in &sheet.rules {
            indexed.push(rule);
        }
    }

    for &id in ids {
        if !matches!(doc.node(id).kind, NodeKind::Element { .. }) {
            continue;
        }
        let mut style = ComputedStyle::default();
        // Gather matching declarations with cascade keys.
        let mut winners: Vec<((usize, usize, usize), usize, &super::parser::Declaration)> =
            Vec::new();
        for (src_idx, rule) in indexed.iter().enumerate() {
            for sel in &rule.selectors {
                match_attempts += 1;
                if matches(doc, id, sel) {
                    let spec = sel.specificity();
                    for d in &rule.declarations {
                        winners.push((spec, src_idx, d));
                    }
                    break; // one matching selector per rule suffices
                }
            }
        }
        winners.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        for (_, _, d) in winners {
            apply(&mut style, &d.name, &d.value);
            style.applied += 1;
            declarations_applied += 1;
        }
        styles.insert(id, style);
    }

    StyleResult {
        styles,
        match_attempts,
        declarations_applied,
    }
}

fn apply(style: &mut ComputedStyle, name: &str, value: &str) {
    match name {
        "display" => style.display_none = value.eq_ignore_ascii_case("none"),
        "margin" => {
            if let Some(px) = first_px(value) {
                style.margin_px = px * 2.0;
            }
        }
        "padding" => {
            if let Some(px) = first_px(value) {
                style.padding_px = px;
            }
        }
        "font-size" => {
            if let Some(px) = first_px(value) {
                style.font_size_px = px.clamp(6.0, 64.0);
            }
        }
        "height" => style.height_px = first_px(value),
        "width" => style.width_px = first_px(value),
        _ => {}
    }
}

/// Extracts the first `<number>px` in a value.
fn first_px(value: &str) -> Option<f64> {
    for token in value.split_whitespace() {
        if let Some(num) = token.strip_suffix("px") {
            if let Ok(v) = num.parse::<f64>() {
                if v.is_finite() && v >= 0.0 {
                    return Some(v);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::css::parse;
    use crate::html;

    #[test]
    fn applies_matching_declarations() {
        let r = html::parse("<div class=\"wrap\"><p class=\"c1\">x</p></div>");
        let css = parse(".wrap p { font-size: 20px; margin: 6px; } .c1 { padding: 3px; }");
        let out = compute_styles(&r.document, &[&css.sheet]);
        let p = r
            .document
            .descendants()
            .into_iter()
            .find(|&id| r.document.tag(id) == Some("p"))
            .unwrap();
        let style = &out.styles[&p];
        assert_eq!(style.font_size_px, 20.0);
        assert_eq!(style.margin_px, 12.0);
        assert_eq!(style.padding_px, 3.0);
        assert_eq!(style.applied, 3);
        assert!(out.match_attempts >= 4, "2 elements x 2 rules");
    }

    #[test]
    fn cascade_specificity_wins_over_source_order() {
        let r = html::parse("<p class=\"c1\">x</p>");
        let css = parse(".c1 { font-size: 22px; } p { font-size: 10px; }");
        let out = compute_styles(&r.document, &[&css.sheet]);
        let p = r
            .document
            .descendants()
            .into_iter()
            .find(|&id| r.document.tag(id) == Some("p"))
            .unwrap();
        // .c1 (0,1,0) beats p (0,0,1) despite earlier source position.
        assert_eq!(out.styles[&p].font_size_px, 22.0);
    }

    #[test]
    fn later_source_wins_at_equal_specificity() {
        let r = html::parse("<p>x</p>");
        let css = parse("p { font-size: 10px; } p { font-size: 18px; }");
        let out = compute_styles(&r.document, &[&css.sheet]);
        let p = r
            .document
            .descendants()
            .into_iter()
            .find(|&id| r.document.tag(id) == Some("p"))
            .unwrap();
        assert_eq!(out.styles[&p].font_size_px, 18.0);
    }

    #[test]
    fn display_none_and_explicit_geometry() {
        let r = html::parse("<div class=\"hide\">x</div><div class=\"hero0\">y</div>");
        let css = parse(".hide { display: none; } .hero0 { height: 150px; width: 300px; }");
        let out = compute_styles(&r.document, &[&css.sheet]);
        let divs: Vec<_> = r
            .document
            .descendants()
            .into_iter()
            .filter(|&id| r.document.tag(id) == Some("div"))
            .collect();
        assert!(out.styles[&divs[0]].display_none);
        assert_eq!(out.styles[&divs[1]].height_px, Some(150.0));
        assert_eq!(out.styles[&divs[1]].width_px, Some(300.0));
    }

    #[test]
    fn unstyled_elements_get_defaults() {
        let r = html::parse("<p>x</p>");
        let out = compute_styles(&r.document, &[]);
        let p = r
            .document
            .descendants()
            .into_iter()
            .find(|&id| r.document.tag(id) == Some("p"))
            .unwrap();
        assert_eq!(out.styles[&p], ComputedStyle::default());
        assert_eq!(out.declarations_applied, 0);
    }

    #[test]
    fn chunked_resolution_merges_to_the_whole_document_result() {
        let r = html::parse(
            "<div class=\"wrap\"><p class=\"c1\">x</p><p>y</p><span class=\"c1\">z</span></div>",
        );
        let css = parse(".wrap p { font-size: 20px; } .c1 { padding: 3px; } p { margin: 2px; }");
        let sheets = [&css.sheet];
        let whole = compute_styles(&r.document, &sheets);
        let ids = r.document.descendants();
        for chunk_size in 1..=ids.len() {
            let mut styles = HashMap::new();
            let mut match_attempts = 0;
            let mut declarations_applied = 0;
            for chunk in ids.chunks(chunk_size) {
                let part = compute_styles_for(&r.document, &sheets, chunk);
                match_attempts += part.match_attempts;
                declarations_applied += part.declarations_applied;
                styles.extend(part.styles);
            }
            assert_eq!(styles, whole.styles, "chunk_size={chunk_size}");
            assert_eq!(match_attempts, whole.match_attempts);
            assert_eq!(declarations_applied, whole.declarations_applied);
        }
    }

    #[test]
    fn first_px_parsing() {
        assert_eq!(first_px("12px"), Some(12.0));
        assert_eq!(first_px("0 auto 3px"), Some(3.0));
        assert_eq!(first_px("red"), None);
        assert_eq!(first_px("-5px"), None, "negative rejected");
    }
}
