//! The cheap URL scan — the energy-aware transmission-phase CSS path.
//!
//! §4.1: "For the computation to process CSS code and files, we only scan
//! them to fetch the objects (images and CSS files) referred by URLs, but
//! do not parse them." This module is that scan: one pass over the bytes,
//! no rule construction, roughly an order of magnitude cheaper than
//! [`super::parse`] under the cost model.

/// The output of [`scan_urls`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CssScanResult {
    /// `url(...)` targets, in source order.
    pub urls: Vec<String>,
    /// `@import` targets (stylesheets to fetch and scan too).
    pub imports: Vec<String>,
    /// Bytes scanned (work accounting).
    pub bytes: usize,
}

/// Scans stylesheet text for fetchable references without parsing rules.
pub fn scan_urls(input: &str) -> CssScanResult {
    let mut urls = Vec::new();
    let mut imports = Vec::new();
    let bytes = input.len();

    let b = input.as_bytes();
    let mut i = 0;
    while i < b.len() {
        // The scan advances byte-wise; only slice on char boundaries.
        if !input.is_char_boundary(i) {
            i += 1;
            continue;
        }
        // Skip comments so commented-out references are not fetched.
        if input[i..].starts_with("/*") {
            match input[i + 2..].find("*/") {
                Some(end) => i += 2 + end + 2,
                None => break,
            }
            continue;
        }
        if input[i..].starts_with("@import") {
            let end = input[i..].find(';').map_or(input.len(), |p| i + p);
            let head = &input[i + 7..end.min(input.len())];
            if let Some(u) = urls_in_value(head).into_iter().next() {
                imports.push(u);
            } else if let Some(u) = quoted_string(head) {
                imports.push(u);
            }
            i = end + 1;
            continue;
        }
        if has_url_at(input, i) {
            let (url, next) = read_url(input, i + 4);
            if let Some(u) = url {
                urls.push(u);
            }
            i = next;
            continue;
        }
        i += 1;
    }

    CssScanResult {
        urls,
        imports,
        bytes,
    }
}

fn has_url_at(input: &str, i: usize) -> bool {
    input[i..].len() >= 4
        && input.as_bytes()[i..i + 3].eq_ignore_ascii_case(b"url")
        && input.as_bytes()[i + 3] == b'('
}

/// Reads the contents of `url( ... )` starting just past `url(`.
/// Returns `(url, index_after_close_paren)`.
fn read_url(input: &str, start: usize) -> (Option<String>, usize) {
    let rest = &input[start..];
    let close = match rest.find(')') {
        Some(p) => p,
        None => return (None, input.len()),
    };
    let raw = rest[..close].trim();
    let url = raw
        .trim_start_matches(['"', '\''])
        .trim_end_matches(['"', '\''])
        .trim();
    let next = start + close + 1;
    if url.is_empty() {
        (None, next)
    } else {
        (Some(url.to_string()), next)
    }
}

/// All `url(...)` values inside a declaration value (used by the full
/// parser too, so both paths agree on what counts as a reference).
pub(super) fn urls_in_value(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < value.len() {
        if !value.is_char_boundary(i) {
            i += 1;
            continue;
        }
        if has_url_at(value, i) {
            let (url, next) = read_url(value, i + 4);
            if let Some(u) = url {
                out.push(u);
            }
            i = next;
        } else {
            i += 1;
        }
    }
    out
}

fn quoted_string(text: &str) -> Option<String> {
    let t = text.trim();
    let first = t.find(['"', '\''])?;
    let quote = t.as_bytes()[first] as char;
    let rest = &t[first + 1..];
    let end = rest.find(quote)?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_urls_in_various_quotings() {
        let css = r#"
            .a { background: url("http://s/1.png"); }
            .b { background-image: url('http://s/2.png'); }
            .c { background: url(http://s/3.png) no-repeat; }
        "#;
        let r = scan_urls(css);
        assert_eq!(
            r.urls,
            vec!["http://s/1.png", "http://s/2.png", "http://s/3.png"]
        );
        assert_eq!(r.bytes, css.len());
    }

    #[test]
    fn finds_imports() {
        let r = scan_urls("@import url(\"http://s/x.css\");\n@import 'y.css';");
        assert_eq!(r.imports, vec!["http://s/x.css", "y.css"]);
    }

    #[test]
    fn ignores_commented_out_references() {
        let r = scan_urls("/* url(\"http://s/ghost.png\") */ .a { background: url(real.png); }");
        assert_eq!(r.urls, vec!["real.png"]);
    }

    #[test]
    fn agrees_with_full_parser_on_urls() {
        let css = r#"
            .hero0 { background-image: url("http://s/img/bg0.png"); height: 120px; }
            .hero1 { background-image: url("http://s/img/bg1.png"); }
            p { color: red; }
        "#;
        let scan = scan_urls(css);
        let full = super::super::parse(css);
        assert_eq!(scan.urls, full.urls);
    }

    #[test]
    fn case_insensitive_url_keyword() {
        let r = scan_urls(".a { background: URL(x.png); }");
        assert_eq!(r.urls, vec!["x.png"]);
    }

    #[test]
    fn malformed_input_does_not_panic() {
        for s in ["url(", "url(   ", "@import", "url()", "/* open", "url(')"] {
            let _ = scan_urls(s);
        }
        assert!(scan_urls("url()").urls.is_empty());
    }
}
