//! CSS processing.
//!
//! Two very different code paths, mirroring the paper's §4.1:
//!
//! * [`scan_urls`] — the energy-aware transmission-phase operation: a
//!   cheap single pass that extracts `url(...)` and `@import` references
//!   *without* building rules ("we only scan them to fetch the objects ...
//!   but do not parse them");
//! * [`parse`] + [`compute_styles`] — the full layout-phase work: parse
//!   selectors and declarations, match rules against the DOM, produce
//!   computed styles. The paper notes rule extraction "takes a lot of
//!   processing time" — the cost model prices it accordingly.

mod parser;
mod scan;
mod selector;
mod style;

pub use parser::{parse, CssParseResult, Declaration, Rule, Selector, SimpleSelector, Stylesheet};
pub use scan::{scan_urls, CssScanResult};
pub use selector::matches;
pub use style::{compute_styles, compute_styles_for, ComputedStyle, StyleResult};
