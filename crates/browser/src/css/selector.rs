//! Selector matching against the DOM.

use super::parser::{Selector, SimpleSelector};
use crate::dom::{Document, NodeId, NodeKind};

/// Whether `selector` matches the element `id` in `doc` (the last simple
/// selector must match the element, earlier ones must match ancestors in
/// order — descendant combinator semantics).
///
/// Non-element nodes never match.
pub fn matches(doc: &Document, id: NodeId, selector: &Selector) -> bool {
    let Some(subject) = selector.parts.last() else {
        return false;
    };
    if !matches_simple(doc, id, subject) {
        return false;
    }
    // Walk ancestors matching the remaining chain right-to-left.
    let mut remaining: Vec<&SimpleSelector> =
        selector.parts[..selector.parts.len() - 1].iter().collect();
    let mut current = doc.node(id).parent;
    while let Some(part) = remaining.last() {
        let Some(anc) = current else {
            return false; // ran out of ancestors with parts unmatched
        };
        if matches_simple(doc, anc, part) {
            remaining.pop();
        }
        current = doc.node(anc).parent;
    }
    true
}

fn matches_simple(doc: &Document, id: NodeId, simple: &SimpleSelector) -> bool {
    let NodeKind::Element { tag, attrs } = &doc.node(id).kind else {
        return false;
    };
    if let Some(want) = &simple.tag {
        if tag != want {
            return false;
        }
    }
    if let Some(want_id) = &simple.id {
        let has = attrs.iter().any(|(k, v)| k == "id" && v == want_id);
        if !has {
            return false;
        }
    }
    if !simple.classes.is_empty() {
        let class_attr = attrs
            .iter()
            .find(|(k, _)| k == "class")
            .map(|(_, v)| v.as_str())
            .unwrap_or("");
        let classes: Vec<&str> = class_attr.split_whitespace().collect();
        for want in &simple.classes {
            if !classes.contains(&want.as_str()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::css::parse;

    /// Builds `<div id="top" class="wrap"><p class="c1 big">..<a>..</a></p></div>`.
    fn doc() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let div = d.append_element(
            d.root(),
            "div",
            vec![("id".into(), "top".into()), ("class".into(), "wrap".into())],
        );
        let p = d.append_element(div, "p", vec![("class".into(), "c1 big".into())]);
        let a = d.append_element(p, "a", vec![("href".into(), "#".into())]);
        (d, div, p, a)
    }

    fn sel(text: &str) -> Selector {
        parse(&format!("{text} {{ color: red; }}")).sheet.rules[0].selectors[0].clone()
    }

    #[test]
    fn tag_class_id_matching() {
        let (d, div, p, _) = doc();
        assert!(matches(&d, p, &sel("p")));
        assert!(matches(&d, p, &sel(".c1")));
        assert!(matches(&d, p, &sel("p.big")));
        assert!(!matches(&d, p, &sel("p.missing")));
        assert!(matches(&d, div, &sel("#top")));
        assert!(matches(&d, div, &sel("div#top.wrap")));
        assert!(!matches(&d, p, &sel("#top")));
    }

    #[test]
    fn descendant_combinator() {
        let (d, _, p, a) = doc();
        assert!(matches(&d, p, &sel(".wrap p")));
        assert!(matches(&d, a, &sel("#top a")));
        assert!(matches(&d, a, &sel("div p a")));
        assert!(!matches(&d, a, &sel("span a")));
        assert!(
            !matches(&d, p, &sel("p a")),
            "subject must be the element itself"
        );
    }

    #[test]
    fn universal_matches_all_elements() {
        let (d, div, p, a) = doc();
        for id in [div, p, a] {
            assert!(matches(&d, id, &sel("*")));
        }
        assert!(!matches(&d, d.root(), &sel("*")), "root is not an element");
    }

    #[test]
    fn multi_class_requirement() {
        let (d, _, p, _) = doc();
        assert!(matches(&d, p, &sel(".c1.big")));
        assert!(!matches(&d, p, &sel(".c1.small")));
    }
}
