//! The CSS parser: stylesheet text → rules.

/// One simple selector: optional tag, classes, optional id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimpleSelector {
    /// Tag name to match (lower-cased), or `None` for `*`/any.
    pub tag: Option<String>,
    /// Required classes.
    pub classes: Vec<String>,
    /// Required id.
    pub id: Option<String>,
}

impl SimpleSelector {
    /// Whether this selector has no constraints (matches everything).
    pub fn is_universal(&self) -> bool {
        self.tag.is_none() && self.classes.is_empty() && self.id.is_none()
    }
}

/// A selector: a chain of simple selectors joined by descendant
/// combinators, e.g. `.wrap p` = `[.wrap, p]`. Pseudo-classes (`:hover`)
/// are parsed and ignored for matching, as a non-interactive engine would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// The chain, outermost ancestor first; the last entry is the subject.
    pub parts: Vec<SimpleSelector>,
}

impl Selector {
    /// Specificity as (ids, classes, tags) — enough for cascade ordering.
    pub fn specificity(&self) -> (usize, usize, usize) {
        let mut ids = 0;
        let mut classes = 0;
        let mut tags = 0;
        for p in &self.parts {
            ids += usize::from(p.id.is_some());
            classes += p.classes.len();
            tags += usize::from(p.tag.is_some());
        }
        (ids, classes, tags)
    }
}

/// `name: value` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// Property name, lower-cased.
    pub name: String,
    /// Raw value text, trimmed.
    pub value: String,
}

/// One rule: selectors sharing a declaration block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The comma-separated selector list.
    pub selectors: Vec<Selector>,
    /// The declarations.
    pub declarations: Vec<Declaration>,
}

/// A parsed stylesheet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stylesheet {
    /// Rules in source order.
    pub rules: Vec<Rule>,
    /// `@import` targets.
    pub imports: Vec<String>,
}

impl Stylesheet {
    /// Total number of declarations across all rules.
    pub fn declaration_count(&self) -> usize {
        self.rules.iter().map(|r| r.declarations.len()).sum()
    }
}

/// The output of [`parse`], with work accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CssParseResult {
    /// The stylesheet.
    pub sheet: Stylesheet,
    /// Bytes processed.
    pub bytes: usize,
    /// `url(...)` references found in declaration values.
    pub urls: Vec<String>,
}

/// Parses stylesheet text. Robust: malformed constructs are skipped to the
/// next `}` as the CSS error-recovery rules prescribe; arbitrary input
/// never panics.
pub fn parse(input: &str) -> CssParseResult {
    let cleaned = strip_comments(input);
    let mut rules = Vec::new();
    let mut imports = Vec::new();
    let mut urls = Vec::new();
    let bytes = input.len();

    let mut rest = cleaned.as_str();
    while !rest.trim().is_empty() {
        let trimmed = rest.trim_start();
        let offset = rest.len() - trimmed.len();
        rest = &rest[offset..];
        if rest.is_empty() {
            break;
        }
        if rest.starts_with('@') {
            // At-rule: @import url(...) | "..." ; — others skipped.
            let end = rest.find([';', '{']).unwrap_or(rest.len());
            let head = &rest[..end];
            if let Some(stripped) = head.strip_prefix("@import") {
                if let Some(u) = extract_import(stripped) {
                    imports.push(u);
                }
            }
            if rest[end..].starts_with('{') {
                // Skip a block at-rule wholesale (balanced braces).
                rest = skip_block(&rest[end..]);
            } else {
                rest = rest.get(end + 1..).unwrap_or("");
            }
            continue;
        }
        // Ordinary rule: selectors { declarations }.
        let Some(open) = rest.find('{') else {
            break; // trailing garbage without a block
        };
        let selector_text = &rest[..open];
        let after_open = &rest[open + 1..];
        let close = after_open.find('}').unwrap_or(after_open.len());
        let body = &after_open[..close];
        rest = after_open.get(close + 1..).unwrap_or("");

        let selectors: Vec<Selector> = selector_text
            .split(',')
            .filter_map(parse_selector)
            .collect();
        let declarations = parse_declarations(body, &mut urls);
        if !selectors.is_empty() && !declarations.is_empty() {
            rules.push(Rule {
                selectors,
                declarations,
            });
        }
    }

    CssParseResult {
        sheet: Stylesheet { rules, imports },
        bytes,
        urls,
    }
}

fn strip_comments(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut rest = input;
    while let Some(start) = rest.find("/*") {
        out.push_str(&rest[..start]);
        match rest[start + 2..].find("*/") {
            Some(end) => rest = &rest[start + 2 + end + 2..],
            None => return out,
        }
    }
    out.push_str(rest);
    out
}

fn parse_selector(text: &str) -> Option<Selector> {
    let mut parts = Vec::new();
    for chunk in text.split_whitespace() {
        if chunk == ">" || chunk == "+" || chunk == "~" {
            // Treat all combinators as descendant — close enough for cost
            // and geometry purposes.
            continue;
        }
        let mut simple = SimpleSelector::default();
        // Strip pseudo-classes/elements.
        let chunk = chunk.split(':').next().unwrap_or("");
        let mut cur = String::new();
        let mut mode = b' '; // ' ' = tag, '.' = class, '#' = id
        let flush = |mode: u8, cur: &mut String, s: &mut SimpleSelector| {
            if cur.is_empty() {
                return;
            }
            match mode {
                b'.' => s.classes.push(cur.clone()),
                b'#' => s.id = Some(cur.clone()),
                _ => {
                    if cur != "*" {
                        s.tag = Some(cur.to_ascii_lowercase());
                    }
                }
            }
            cur.clear();
        };
        for ch in chunk.chars() {
            match ch {
                '.' | '#' => {
                    flush(mode, &mut cur, &mut simple);
                    mode = ch as u8;
                }
                c if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '*' => cur.push(c),
                _ => {
                    // Attribute selectors etc.: ignore the remainder.
                    break;
                }
            }
        }
        flush(mode, &mut cur, &mut simple);
        parts.push(simple);
    }
    if parts.is_empty() {
        None
    } else {
        Some(Selector { parts })
    }
}

fn parse_declarations(body: &str, urls: &mut Vec<String>) -> Vec<Declaration> {
    let mut out = Vec::new();
    for decl in body.split(';') {
        let Some((name, value)) = decl.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name.is_empty() || value.is_empty() {
            continue;
        }
        urls.extend(super::scan::urls_in_value(&value));
        out.push(Declaration { name, value });
    }
    out
}

fn extract_import(text: &str) -> Option<String> {
    let t = text.trim();
    if let Some(u) = super::scan::urls_in_value(t).into_iter().next() {
        return Some(u);
    }
    // @import "path";
    let t = t.trim_start_matches(['"', '\'']);
    let end = t.find(['"', '\''])?;
    Some(t[..end].to_string())
}

/// Skips a balanced `{ ... }` block, returning the remainder.
fn skip_block(rest: &str) -> &str {
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return rest.get(i + 1..).unwrap_or("");
                }
            }
            _ => {}
        }
    }
    ""
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rules() {
        let r = parse("body { margin: 0; color: #222; } .wrap p { font-size: 12px; }");
        assert_eq!(r.sheet.rules.len(), 2);
        assert_eq!(r.sheet.declaration_count(), 3);
        let first = &r.sheet.rules[0];
        assert_eq!(first.selectors[0].parts[0].tag.as_deref(), Some("body"));
        assert_eq!(first.declarations[0].name, "margin");
    }

    #[test]
    fn selector_chain_and_specificity() {
        let r = parse("#top .menu a:hover { color: red; }");
        let sel = &r.sheet.rules[0].selectors[0];
        assert_eq!(sel.parts.len(), 3);
        assert_eq!(sel.parts[0].id.as_deref(), Some("top"));
        assert_eq!(sel.parts[1].classes, vec!["menu"]);
        assert_eq!(sel.parts[2].tag.as_deref(), Some("a"));
        assert_eq!(sel.specificity(), (1, 1, 1));
    }

    #[test]
    fn selector_list_splits_on_comma() {
        let r = parse("h1, h2, .big { font-weight: bold; }");
        assert_eq!(r.sheet.rules[0].selectors.len(), 3);
    }

    #[test]
    fn extracts_urls_from_values() {
        let r = parse(".hero { background-image: url(\"http://s/img/bg0.png\"); }");
        assert_eq!(r.urls, vec!["http://s/img/bg0.png"]);
    }

    #[test]
    fn imports_are_collected() {
        let r = parse(
            "@import url(\"http://s/css/extra.css\");\n@import \"plain.css\";\nbody{margin:0;}",
        );
        assert_eq!(r.sheet.imports, vec!["http://s/css/extra.css", "plain.css"]);
        assert_eq!(r.sheet.rules.len(), 1);
    }

    #[test]
    fn comments_are_stripped() {
        let r = parse("/* c1 */ body /* c2 */ { margin: 0; /* c3 */ }");
        assert_eq!(r.sheet.rules.len(), 1);
    }

    #[test]
    fn at_media_blocks_are_skipped() {
        let r = parse("@media print { body { display: none; } } p { color: blue; }");
        assert_eq!(r.sheet.rules.len(), 1);
        assert_eq!(
            r.sheet.rules[0].selectors[0].parts[0].tag.as_deref(),
            Some("p")
        );
    }

    #[test]
    fn malformed_input_does_not_panic() {
        for s in ["{", "}", "a {", "a } b {", "@import", "/* open", "x { y }"] {
            let _ = parse(s);
        }
    }

    #[test]
    fn universal_selector() {
        let r = parse("* { margin: 0; }");
        assert!(r.sheet.rules[0].selectors[0].parts[0].is_universal());
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[test]
    fn attribute_selectors_degrade_gracefully() {
        let r = parse("a[href^=\"http\"] { color: blue; } p { margin: 1px; }");
        // The attribute chunk is truncated at '['; both rules survive.
        assert_eq!(r.sheet.rules.len(), 2);
    }

    #[test]
    fn nested_at_rule_blocks_are_skipped_wholesale() {
        let r = parse(
            "@media screen { @supports (display: flex) { p { color: red; } } } \
             div { padding: 2px; }",
        );
        assert_eq!(r.sheet.rules.len(), 1);
        assert_eq!(
            r.sheet.rules[0].selectors[0].parts[0].tag.as_deref(),
            Some("div")
        );
    }

    #[test]
    fn declaration_without_colon_is_dropped() {
        let r = parse("p { color red; margin: 3px; }");
        assert_eq!(r.sheet.declaration_count(), 1);
    }

    #[test]
    fn multiple_urls_in_one_declaration() {
        let r = parse(".a { background: url(one.png), url(two.png); }");
        assert_eq!(r.urls, vec!["one.png", "two.png"]);
    }

    #[test]
    fn selector_with_only_combinators_is_dropped() {
        let r = parse("> { color: red; } p { color: blue; }");
        assert_eq!(r.sheet.rules.len(), 1);
    }

    #[test]
    fn unclosed_final_block_still_parses() {
        let r = parse("p { color: red; margin: 2px");
        assert_eq!(r.sheet.rules.len(), 1);
        assert_eq!(r.sheet.declaration_count(), 2);
    }
}
