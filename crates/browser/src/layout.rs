//! Block layout: DOM (+ computed styles) → page geometry.
//!
//! A single-pass vertical block layout, enough to produce the paper's
//! Table 1 geometry features (page height/width) and to count the boxes
//! whose layout and painting the cost model prices. The energy-aware
//! intermediate display (§4.2) calls this *without* styles — "this display
//! does not need CSS rules, style format or images" — which is both
//! cheaper per box and skips image boxes entirely.

use crate::css::{ComputedStyle, StyleResult};
use crate::dom::{Document, NodeKind};

/// The result of a layout pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutResult {
    /// Number of boxes laid out (elements + text runs).
    pub boxes: usize,
    /// Page width in px (the viewport, or wider if content forces it).
    pub page_width: f64,
    /// Total page height in px.
    pub page_height: f64,
}

/// Average glyph width as a fraction of font size.
const GLYPH_WIDTH_EM: f64 = 0.52;
/// Line height as a multiple of font size.
const LINE_HEIGHT: f64 = 1.4;
/// Default image box height when neither attributes nor styles size it.
const DEFAULT_IMAGE_HEIGHT: f64 = 150.0;

/// Lays out `doc` at `viewport_px` wide. With `styles == None` this is the
/// cheap text-only intermediate pass: default typography, images skipped.
///
/// # Panics
///
/// Panics if `viewport_px` is not positive and finite.
pub fn layout(doc: &Document, styles: Option<&StyleResult>, viewport_px: f64) -> LayoutResult {
    assert!(
        viewport_px.is_finite() && viewport_px > 0.0,
        "viewport must be positive, got {viewport_px}"
    );
    let mut boxes = 0usize;
    let mut height = 0.0f64;
    let mut max_width = viewport_px;
    let default_style = ComputedStyle::default();

    let mut stack = vec![doc.root()];
    while let Some(id) = stack.pop() {
        let node = doc.node(id);
        match &node.kind {
            NodeKind::Document => {}
            NodeKind::Comment(_) => continue,
            NodeKind::Element { tag, attrs } => {
                let style = styles
                    .and_then(|s| s.styles.get(&id))
                    .unwrap_or(&default_style);
                if style.display_none {
                    continue; // skip the whole subtree
                }
                boxes += 1;
                if tag == "img" || tag == "embed" || tag == "object" {
                    if styles.is_none() {
                        // Intermediate display: no images.
                        continue;
                    }
                    let attr_h = attr_px(attrs, "height");
                    let h = style.height_px.or(attr_h).unwrap_or(DEFAULT_IMAGE_HEIGHT);
                    let w = style
                        .width_px
                        .or_else(|| attr_px(attrs, "width"))
                        .unwrap_or(200.0);
                    max_width = max_width.max(w.min(2000.0));
                    height += h + style.margin_px;
                } else {
                    // Block container: contributes its own margin/padding.
                    height += style.margin_px + 2.0 * style.padding_px;
                    if let Some(w) = style.width_px {
                        max_width = max_width.max(w.min(2000.0));
                    }
                }
            }
            NodeKind::Text(text) => {
                let style = node
                    .parent
                    .and_then(|p| styles.and_then(|s| s.styles.get(&p)))
                    .unwrap_or(&default_style);
                if style.display_none {
                    continue;
                }
                boxes += 1;
                let glyph_w = style.font_size_px * GLYPH_WIDTH_EM;
                let chars_per_line = (viewport_px / glyph_w).max(1.0);
                let lines = (text.len() as f64 / chars_per_line).ceil().max(1.0);
                height += lines * style.font_size_px * LINE_HEIGHT;
            }
        }
        for &c in doc.node(id).children.iter().rev() {
            stack.push(c);
        }
    }

    LayoutResult {
        boxes,
        page_width: max_width,
        page_height: height,
    }
}

fn attr_px(attrs: &[(String, String)], name: &str) -> Option<f64> {
    attrs
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
}

/// Convenience: element ids visible under styles (not `display: none`),
/// used by tests and the pipeline for paint counting.
pub fn visible_boxes(doc: &Document, styles: Option<&StyleResult>, viewport_px: f64) -> usize {
    layout(doc, styles, viewport_px).boxes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::css;
    use crate::html;

    #[test]
    fn text_height_scales_with_length() {
        let short = html::parse("<p>ab</p>");
        let long = html::parse(&format!("<p>{}</p>", "x".repeat(4000)));
        let h1 = layout(&short.document, None, 980.0).page_height;
        let h2 = layout(&long.document, None, 980.0).page_height;
        assert!(h2 > h1 * 3.0, "h1={h1} h2={h2}");
    }

    #[test]
    fn narrower_viewport_is_taller() {
        let r = html::parse(&format!("<p>{}</p>", "word ".repeat(300)));
        let wide = layout(&r.document, None, 980.0).page_height;
        let narrow = layout(&r.document, None, 320.0).page_height;
        assert!(narrow > 2.0 * wide, "wide={wide} narrow={narrow}");
    }

    #[test]
    fn intermediate_pass_skips_images() {
        let r = html::parse("<p>text</p><img src=\"a.jpg\" height=\"400\">");
        let without = layout(&r.document, None, 980.0);
        let styles = css::compute_styles(&r.document, &[]);
        let with = layout(&r.document, Some(&styles), 980.0);
        assert!(
            with.page_height > without.page_height + 300.0,
            "styled {with:?} vs intermediate {without:?}"
        );
    }

    #[test]
    fn image_height_from_attribute() {
        let r = html::parse("<img src=\"a.jpg\" height=\"250\">");
        let styles = css::compute_styles(&r.document, &[]);
        let out = layout(&r.document, Some(&styles), 980.0);
        assert!((out.page_height - (250.0 + 4.0)).abs() < 1.0, "{out:?}");
    }

    #[test]
    fn display_none_removes_subtree() {
        let r = html::parse("<div class=\"hide\"><p>invisible text here</p></div><p>x</p>");
        let sheet = css::parse(".hide { display: none; }").sheet;
        let styles = css::compute_styles(&r.document, &[&sheet]);
        let hidden = layout(&r.document, Some(&styles), 980.0);
        let shown = layout(&r.document, None, 980.0);
        assert!(hidden.boxes < shown.boxes);
    }

    #[test]
    fn css_height_overrides_default() {
        let r = html::parse("<div class=\"hero0\">x</div>");
        let sheet = css::parse(".hero0 { height: 180px; }").sheet;
        let styles = css::compute_styles(&r.document, &[&sheet]);
        // Block heights are margins/padding-based; explicit width widens
        // the page. Here we just verify styled layout differs.
        let styled = layout(&r.document, Some(&styles), 980.0);
        assert!(styled.boxes >= 2);
    }

    #[test]
    fn box_count_counts_elements_and_text() {
        let r = html::parse("<div><p>a</p><p>b</p></div>");
        let out = layout(&r.document, None, 980.0);
        assert_eq!(out.boxes, 5); // div + 2 p + 2 text runs
    }

    #[test]
    #[should_panic(expected = "viewport")]
    fn rejects_bad_viewport() {
        let r = html::parse("<p>x</p>");
        layout(&r.document, None, 0.0);
    }
}
