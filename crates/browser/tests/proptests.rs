//! Property-based robustness tests for the browser engine.
//!
//! The engine processes whatever the network hands it; none of these
//! components may panic or hang on arbitrary input.

use ewb_browser::pipeline::{load_page, PipelineConfig, PipelineMode};
use ewb_browser::{css, html, js, layout, CpuCostModel};
use ewb_simcore::SimTime;
use proptest::prelude::*;

proptest! {
    /// The HTML tokenizer and parser accept arbitrary strings.
    #[test]
    fn html_parse_never_panics(input in ".{0,400}") {
        let r = html::parse(&input);
        prop_assert!(!r.document.is_empty());
        prop_assert_eq!(r.bytes, input.len());
    }

    /// Tag-soup built from HTML-ish fragments parses and lays out.
    #[test]
    fn tag_soup_builds_a_layoutable_dom(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<div>".to_string()),
                Just("</div>".to_string()),
                Just("<p class='a'>".to_string()),
                Just("</p>".to_string()),
                Just("<img src='x.jpg'>".to_string()),
                Just("text content".to_string()),
                Just("<script>var a = 1;</script>".to_string()),
                Just("<!-- comment -->".to_string()),
                Just("<a href='y.html'>l</a>".to_string()),
            ],
            0..40,
        )
    ) {
        let doc_text: String = parts.concat();
        let r = html::parse(&doc_text);
        let lr = layout::layout(&r.document, None, 980.0);
        prop_assert!(lr.page_height >= 0.0);
        prop_assert!(lr.page_width >= 980.0);
    }

    /// Text length through the parser never exceeds input length.
    #[test]
    fn parsed_text_is_bounded_by_input(input in "[a-z<>/ ]{0,300}") {
        let r = html::parse(&input);
        prop_assert!(r.document.text_len() <= input.len());
    }

    /// The CSS parser and scanner accept arbitrary strings and agree that
    /// scanning finds at least every URL the parser attributes to
    /// declarations.
    #[test]
    fn css_paths_never_panic(input in ".{0,400}") {
        let parsed = css::parse(&input);
        let scanned = css::scan_urls(&input);
        prop_assert_eq!(scanned.bytes, input.len());
        for u in &parsed.urls {
            prop_assert!(
                scanned.urls.contains(u),
                "parser found {} that scan missed", u
            );
        }
    }

    /// The JS engine accepts arbitrary strings: parse errors are flagged,
    /// and execution always terminates within gas.
    #[test]
    fn js_never_panics_or_hangs(input in ".{0,300}") {
        let out = js::execute(&input, Some(50_000));
        prop_assert!(out.ops <= 50_001);
        if !out.parse_ok {
            prop_assert!(out.effects.is_empty());
        }
    }

    /// Structured-but-random JS programs run within budget.
    #[test]
    fn random_programs_terminate(
        n in 0u32..50,
        m in 1u32..20,
        s in "[a-z]{1,8}",
    ) {
        let src = format!(
            "var acc = 0;\nvar i = 0;\nwhile (i < {n}) {{ acc = acc + i % {m}; i = i + 1; }}\n\
             if (acc > 3) {{ loadImage(\"{s}\" + acc + \".png\"); }}"
        );
        let out = js::execute(&src, None);
        prop_assert!(out.parse_ok);
        prop_assert!(!out.hit_gas_limit);
    }

    /// Layout is monotone in content: adding a paragraph never shrinks
    /// the page.
    #[test]
    fn layout_is_monotone(base in "[a-z ]{0,200}", extra in "[a-z ]{1,200}") {
        let d1 = html::parse(&format!("<p>{base}</p>"));
        let d2 = html::parse(&format!("<p>{base}</p><p>{extra}</p>"));
        let h1 = layout::layout(&d1.document, None, 980.0).page_height;
        let h2 = layout::layout(&d2.document, None, 980.0).page_height;
        prop_assert!(h2 >= h1);
    }
}

// A fetcher serving one synthetic object store built from arbitrary
// bodies: the pipeline must terminate and account every byte.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn pipeline_survives_arbitrary_content(
        html_body in ".{0,500}",
        css_body in ".{0,200}",
        js_body in ".{0,200}",
        mode_ea in any::<bool>(),
    ) {
        use ewb_webpage::{ObjectKind, WebObject};
        // Craft a root that references the two sub-objects plus the
        // arbitrary body.
        let root = "http://t/".to_string();
        let doc = format!(
            "<html><head><link rel=\"stylesheet\" href=\"http://t/a.css\">\
             <script src=\"http://t/a.js\"></script></head><body>{html_body}</body></html>"
        );
        let objs = vec![
            WebObject::text(root.clone(), ObjectKind::Html, doc),
            WebObject::text("http://t/a.css".to_string(), ObjectKind::Css, css_body),
            WebObject::text("http://t/a.js".to_string(), ObjectKind::Js, js_body),
        ];
        // An instant in-memory fetcher over a URL map.
        struct MapFetcher {
            map: std::collections::HashMap<String, WebObject>,
            queue: std::collections::VecDeque<(String, SimTime)>,
        }
        impl ewb_browser::fetch::ResourceFetcher for MapFetcher {
            fn request(&mut self, url: &str, t: SimTime) {
                self.queue.push_back((url.to_string(), t));
            }
            fn next_completion(&mut self) -> Option<ewb_browser::fetch::FetchCompletion> {
                let (url, t) = self.queue.pop_front()?;
                Some(ewb_browser::fetch::FetchCompletion {
                    object: self.map.get(&url).cloned(),
                    url,
                    at: t,
                    failed: false,
                })
            }
        }
        let map: std::collections::HashMap<String, WebObject> =
            objs.into_iter().map(|o| (o.url.clone(), o)).collect();
        let total_bytes: u64 = map.values().map(|o| o.bytes).sum();
        let mut fetcher = MapFetcher { map, queue: Default::default() };
        let mode = if mode_ea { PipelineMode::EnergyAware } else { PipelineMode::Original };
        let m = load_page(
            &mut fetcher,
            &root,
            SimTime::ZERO,
            &PipelineConfig::new(mode),
            &CpuCostModel::default(),
        );
        // Every *existing* object referenced got fetched; arbitrary bodies
        // may reference nonexistent URLs (404s are fine).
        prop_assert!(m.bytes_fetched >= total_bytes.min(1));
        prop_assert!(m.final_display_at >= m.data_transmission_end);
    }
}
