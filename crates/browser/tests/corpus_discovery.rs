//! Property test: the engine discovers the *complete* inventory of any
//! generated corpus page — HTML references, CSS-scanned `url(...)`
//! targets, and JS-computed fetches all included. This is the coverage
//! property the paper's §4.1 technique depends on: the transmission phase
//! only ends correctly if nothing is discovered late.

use ewb_browser::fetch::FixedRateFetcher;
use ewb_browser::pipeline::{load_page, PipelineConfig, PipelineMode};
use ewb_browser::CpuCostModel;
use ewb_simcore::SimTime;
use ewb_webpage::{OriginServer, Page, PageSpec, PageVersion};
use proptest::prelude::*;

fn arbitrary_spec() -> impl Strategy<Value = PageSpec> {
    let text = (
        1.0f64..40.0,
        1usize..4,
        1.0f64..10.0,
        1usize..6,
        1.0f64..8.0,
    );
    let scripts = (0usize..6, 0usize..300);
    let media = (0usize..20, 1.0f64..20.0, 0usize..4);
    let misc = (0usize..12, 1usize..20, any::<u64>(), any::<bool>());
    (text, scripts, media, misc).prop_map(
        |(
            (html_kb, n_css, css_kb, n_scripts, js_kb),
            (js_fetches, js_work),
            (n_images, image_kb, css_image_refs),
            (n_links, text_paragraphs, seed, full),
        )| {
            PageSpec {
                site: "discovery".to_string(),
                version: if full {
                    PageVersion::Full
                } else {
                    PageVersion::Mobile
                },
                html_kb,
                n_css,
                css_kb,
                n_scripts,
                js_kb,
                js_fetches,
                js_work,
                n_images,
                image_kb,
                css_image_refs,
                n_links,
                text_paragraphs,
                seed,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn both_pipelines_discover_every_object(spec in arbitrary_spec(), ea in any::<bool>()) {
        let page = Page::generate(&spec);
        let mut server = OriginServer::new();
        server.add_page(&page);
        let mode = if ea { PipelineMode::EnergyAware } else { PipelineMode::Original };
        let mut fetcher = FixedRateFetcher::paper_3g(server);
        let metrics = load_page(
            &mut fetcher,
            page.root_url(),
            SimTime::ZERO,
            &PipelineConfig::new(mode),
            &CpuCostModel::default(),
        );
        prop_assert_eq!(metrics.objects_fetched, page.object_count());
        prop_assert_eq!(metrics.bytes_fetched, page.total_bytes());
        prop_assert_eq!(metrics.fetch_failures, 0);
        // The Table 1 features must be internally consistent too.
        let f = metrics.features();
        prop_assert_eq!(f.download_js as usize, spec.n_scripts);
        prop_assert_eq!(
            f.download_figures as usize,
            spec.n_images + spec.js_fetches + spec.css_image_refs
        );
        prop_assert!(f.page_height >= 0.0);
    }

    /// The energy-aware transmission phase never ends before the last
    /// byte, and its layout phase adds no transfers.
    #[test]
    fn ea_phase_boundary_is_sound(spec in arbitrary_spec()) {
        let page = Page::generate(&spec);
        let mut server = OriginServer::new();
        server.add_page(&page);
        let mut fetcher = FixedRateFetcher::paper_3g(server);
        let metrics = load_page(
            &mut fetcher,
            page.root_url(),
            SimTime::ZERO,
            &PipelineConfig::new(PipelineMode::EnergyAware),
            &CpuCostModel::default(),
        );
        let last_arrival = metrics
            .traffic
            .end_time()
            .expect("at least the root arrived");
        prop_assert!(metrics.data_transmission_end >= last_arrival);
        prop_assert!(metrics.final_display_at >= metrics.data_transmission_end);
    }
}
