//! Calibration checks: the load-time *structure* must match the paper.
//!
//! Run with `--nocapture` to see the measured numbers next to the paper's.

use ewb_browser::fetch::FixedRateFetcher;
use ewb_browser::pipeline::{load_page, LoadMetrics, PipelineConfig, PipelineMode};
use ewb_browser::CpuCostModel;
use ewb_simcore::SimTime;
use ewb_webpage::{benchmark_corpus, OriginServer, PageVersion};

fn load(key: &str, version: PageVersion, mode: PipelineMode) -> LoadMetrics {
    let corpus = benchmark_corpus(1);
    let page = corpus.page(key, version).unwrap();
    let mut fetcher = FixedRateFetcher::paper_3g(OriginServer::from_corpus(&corpus));
    let mut cfg = PipelineConfig::new(mode);
    if version == PageVersion::Mobile {
        cfg.draw_intermediate = false;
    }
    load_page(
        &mut fetcher,
        page.root_url(),
        SimTime::ZERO,
        &cfg,
        &CpuCostModel::default(),
    )
}

fn mean<T: Fn(&LoadMetrics) -> f64>(version: PageVersion, mode: PipelineMode, f: T) -> f64 {
    let keys: Vec<&str> = ewb_webpage::BENCHMARK_SITES.iter().map(|s| s.0).collect();
    let vals: Vec<f64> = keys.iter().map(|k| f(&load(k, version, mode))).collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

/// Paper Fig. 8(a), full-version benchmark: EA cuts data-transmission time
/// by ≈27 % and total load time by ≈17 %.
#[test]
fn full_benchmark_savings_match_fig8() {
    let orig_tx = mean(PageVersion::Full, PipelineMode::Original, |m| {
        m.transmission_time().as_secs_f64()
    });
    let ea_tx = mean(PageVersion::Full, PipelineMode::EnergyAware, |m| {
        m.transmission_time().as_secs_f64()
    });
    let ea_total = mean(PageVersion::Full, PipelineMode::EnergyAware, |m| {
        m.load_time().as_secs_f64()
    });
    let tx_saving = 1.0 - ea_tx / orig_tx;
    let total_saving = 1.0 - ea_total / orig_tx; // original load time == its tx time
    println!(
        "FULL: orig tx/load = {orig_tx:.1} s, ea tx = {ea_tx:.1} s, ea total = {ea_total:.1} s"
    );
    println!(
        "FULL: tx saving = {:.1}% (paper 27%), total saving = {:.1}% (paper 17%)",
        tx_saving * 100.0,
        total_saving * 100.0
    );
    assert!((0.17..0.40).contains(&tx_saving), "tx saving {tx_saving}");
    assert!(
        (0.06..0.30).contains(&total_saving),
        "total saving {total_saving}"
    );
    assert!(
        (15.0..55.0).contains(&orig_tx),
        "full pages should take tens of seconds, got {orig_tx}"
    );
}

/// Paper Fig. 8(a), mobile benchmark: ≈15 % tx saving, ≈2.5 % total.
#[test]
fn mobile_benchmark_savings_match_fig8() {
    let orig_tx = mean(PageVersion::Mobile, PipelineMode::Original, |m| {
        m.transmission_time().as_secs_f64()
    });
    let ea_tx = mean(PageVersion::Mobile, PipelineMode::EnergyAware, |m| {
        m.transmission_time().as_secs_f64()
    });
    let ea_total = mean(PageVersion::Mobile, PipelineMode::EnergyAware, |m| {
        m.load_time().as_secs_f64()
    });
    let tx_saving = 1.0 - ea_tx / orig_tx;
    let total_saving = 1.0 - ea_total / orig_tx;
    println!(
        "MOBILE: orig tx/load = {orig_tx:.1} s, ea tx = {ea_tx:.1} s, ea total = {ea_total:.1} s"
    );
    println!(
        "MOBILE: tx saving = {:.1}% (paper 15%), total saving = {:.1}% (paper 2.5%)",
        tx_saving * 100.0,
        total_saving * 100.0
    );
    assert!((0.05..0.30).contains(&tx_saving), "tx saving {tx_saving}");
    assert!(total_saving > -0.05, "total saving {total_saving}");
    assert!(
        (3.0..16.0).contains(&orig_tx),
        "mobile pages load in seconds, got {orig_tx}"
    );
}

/// Paper Fig. 12/13 (espn full): intermediate display 17.6 s → 7 s, final
/// 34.5 s → 28.6 s. Shape: EA intermediate far earlier, EA final earlier.
#[test]
fn espn_display_times_match_fig12_13() {
    let orig = load("espn", PageVersion::Full, PipelineMode::Original);
    let ea = load("espn", PageVersion::Full, PipelineMode::EnergyAware);
    let of = orig.first_display_at.unwrap().as_secs_f64();
    let ef = ea.first_display_at.unwrap().as_secs_f64();
    let ol = orig.final_display_at.as_secs_f64();
    let el = ea.final_display_at.as_secs_f64();
    println!("ESPN first display: orig {of:.1} s (paper 17.6), ea {ef:.1} s (paper 7)");
    println!("ESPN final display: orig {ol:.1} s (paper 34.5), ea {el:.1} s (paper 28.6)");
    assert!(ef < 0.6 * of, "EA intermediate should be much earlier");
    assert!(el < ol, "EA final should be earlier");
}

/// Diagnostic: print the CPU work breakdown (not asserted).
#[test]
fn print_work_breakdown() {
    for (key, ver) in [("espn", PageVersion::Full), ("cnn", PageVersion::Mobile)] {
        for mode in [PipelineMode::Original, PipelineMode::EnergyAware] {
            let m = load(key, ver, mode);
            println!(
                "{key}/{ver:?}/{mode:?}: tx={:.1}s load={:.1}s dtc={:.1}s layout={:.1}s redraw={:.1}s js={:.1}s bytes_net={:.1}s",
                m.transmission_time().as_secs_f64(),
                m.load_time().as_secs_f64(),
                m.work.dtc.as_secs_f64(),
                m.work.layout.as_secs_f64(),
                m.work.redraw_reflow.as_secs_f64(),
                m.work.js.as_secs_f64(),
                m.bytes_fetched as f64 / (95.0 * 1024.0),
            );
        }
    }
}
