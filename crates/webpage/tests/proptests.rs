//! Property-based tests for the corpus generator: every generated page is
//! internally consistent regardless of spec parameters.

use ewb_webpage::{ObjectKind, Page, PageSpec, PageVersion};
use proptest::prelude::*;

fn arbitrary_spec() -> impl Strategy<Value = PageSpec> {
    let text = (
        1.0f64..60.0,
        1usize..5,
        1.0f64..15.0,
        1usize..8,
        1.0f64..12.0,
    );
    let scripts = (0usize..6, 0usize..500);
    let media = (0usize..30, 1.0f64..25.0, 0usize..5);
    let misc = (0usize..20, 1usize..30, any::<u64>(), any::<bool>());
    (text, scripts, media, misc).prop_map(
        |(
            (html_kb, n_css, css_kb, n_scripts, js_kb),
            (js_fetches, js_work),
            (n_images, image_kb, css_image_refs),
            (n_links, text_paragraphs, seed, full),
        )| {
            PageSpec {
                site: "propsite".to_string(),
                version: if full {
                    PageVersion::Full
                } else {
                    PageVersion::Mobile
                },
                html_kb,
                n_css,
                css_kb,
                n_scripts,
                js_kb,
                js_fetches,
                js_work,
                n_images,
                image_kb,
                css_image_refs,
                n_links,
                text_paragraphs,
                seed,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated page has exactly the objects the spec promises,
    /// all with unique URLs and positive sizes.
    #[test]
    fn inventory_matches_spec(spec in arbitrary_spec()) {
        let page = Page::generate(&spec);
        prop_assert_eq!(page.object_count(), spec.expected_objects());
        prop_assert_eq!(page.count_kind(ObjectKind::Html), 1);
        prop_assert_eq!(page.count_kind(ObjectKind::Css), spec.n_css);
        prop_assert_eq!(page.count_kind(ObjectKind::Js), spec.n_scripts);
        prop_assert_eq!(
            page.count_kind(ObjectKind::Image),
            spec.n_images + spec.js_fetches + spec.css_image_refs
        );
        for obj in page.objects() {
            prop_assert!(obj.bytes > 0, "{} has zero size", obj.url);
        }
    }

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_is_deterministic(spec in arbitrary_spec()) {
        prop_assert_eq!(Page::generate(&spec), Page::generate(&spec));
    }

    /// Textual objects really carry their bytes (`bytes == body.len()`),
    /// and the root document references every stylesheet and script.
    #[test]
    fn text_objects_are_real(spec in arbitrary_spec()) {
        let page = Page::generate(&spec);
        let root = page.object(page.root_url()).expect("root exists");
        prop_assert_eq!(root.bytes as usize, root.body.len());
        for obj in page.objects() {
            if obj.kind.can_discover_resources() {
                prop_assert_eq!(obj.bytes as usize, obj.body.len());
            } else {
                prop_assert!(obj.body.is_empty());
            }
            if matches!(obj.kind, ObjectKind::Css | ObjectKind::Js) {
                prop_assert!(root.body.contains(&obj.url), "root must reference {}", obj.url);
            }
        }
    }

    /// The origin server resolves every URL of a generated page.
    #[test]
    fn server_serves_the_whole_page(spec in arbitrary_spec()) {
        let page = Page::generate(&spec);
        let mut server = ewb_webpage::OriginServer::new();
        server.add_page(&page);
        prop_assert_eq!(server.len(), page.object_count());
        for obj in page.objects() {
            prop_assert_eq!(server.fetch(&obj.url), Some(obj));
        }
    }
}
