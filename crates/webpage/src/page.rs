//! A fully generated page: the object store the origin server serves.

use crate::gen;
use crate::object::{ObjectKind, WebObject};
use crate::spec::PageSpec;
use ewb_simcore::dist::{Distribution, LogNormal};
use ewb_simcore::{SplitMix64, Xoshiro256};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A generated webpage: the root document plus every sub-resource,
/// addressable by URL.
///
/// # Example
///
/// ```
/// use ewb_webpage::{Page, PageSpec, PageVersion};
///
/// let spec = PageSpec {
///     site: "demo".into(),
///     version: PageVersion::Mobile,
///     html_kb: 10.0, n_css: 1, css_kb: 3.0,
///     n_scripts: 1, js_kb: 2.0, js_fetches: 1, js_work: 50,
///     n_images: 3, image_kb: 5.0, css_image_refs: 1,
///     n_links: 2, text_paragraphs: 5, seed: 1,
/// };
/// let page = Page::generate(&spec);
/// assert_eq!(page.object_count(), spec.expected_objects());
/// assert!(page.object(page.root_url()).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Page {
    spec: PageSpec,
    root_url: String,
    objects: BTreeMap<String, WebObject>,
}

impl Page {
    /// Generates the page deterministically from its spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`PageSpec::validate`].
    pub fn generate(spec: &PageSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid PageSpec: {e}");
        }
        let root = spec.root_url();
        // Derive the content stream from the page identity + seed so every
        // page in the corpus is distinct but reproducible.
        let identity = spec.site.bytes().fold(spec.seed ^ 0x9E37_79B9, |h, b| {
            h.wrapping_mul(131).wrapping_add(b as u64)
        }) ^ SplitMix64::mix(
            matches!(spec.version, crate::spec::PageVersion::Full) as u64 + 17,
        );
        let mut rng = Xoshiro256::seed_from_u64(identity);

        let mut objects = BTreeMap::new();
        let html = gen::gen_html(spec, &mut rng);
        objects.insert(
            root.clone(),
            WebObject::text(root.clone(), ObjectKind::Html, html),
        );
        for i in 0..spec.n_css {
            let url = gen::css_url(&root, i);
            objects.insert(
                url.clone(),
                WebObject::text(url, ObjectKind::Css, gen::gen_css(spec, i, &mut rng)),
            );
        }
        for i in 0..spec.n_scripts {
            let url = gen::js_url(&root, i);
            objects.insert(
                url.clone(),
                WebObject::text(url, ObjectKind::Js, gen::gen_js(spec, i, &mut rng)),
            );
        }
        // Image sizes: log-normal with *mean* equal to the spec's
        // image_kb (median = mean / e^{σ²/2}), clamped to a sane floor so
        // tiny draws don't vanish. Matching the mean keeps page totals on
        // the paper's numbers (espn full = 760 KB).
        const SIGMA: f64 = 0.5;
        let median = spec.image_kb / (0.5 * SIGMA * SIGMA).exp();
        let size_dist = LogNormal::with_median(median, SIGMA);
        let img = |url: String, rng: &mut Xoshiro256| {
            let kb = size_dist.sample(rng).max(0.5);
            WebObject::opaque(url, ObjectKind::Image, (kb * 1024.0) as u64)
        };
        for i in 0..spec.n_images {
            let url = gen::img_url(&root, i);
            objects.insert(url.clone(), img(url, &mut rng));
        }
        for i in 0..spec.js_fetches {
            let url = gen::dyn_img_url(&root, i);
            objects.insert(url.clone(), img(url, &mut rng));
        }
        for i in 0..spec.css_image_refs {
            let url = gen::bg_img_url(&root, i);
            objects.insert(url.clone(), img(url, &mut rng));
        }

        Page {
            spec: spec.clone(),
            root_url: root,
            objects,
        }
    }

    /// The URL of the main HTML document.
    pub fn root_url(&self) -> &str {
        &self.root_url
    }

    /// The spec the page was generated from.
    pub fn spec(&self) -> &PageSpec {
        &self.spec
    }

    /// Looks up an object by URL.
    pub fn object(&self, url: &str) -> Option<&WebObject> {
        self.objects.get(url)
    }

    /// All objects, in URL order.
    pub fn objects(&self) -> impl Iterator<Item = &WebObject> {
        self.objects.values()
    }

    /// Number of objects, including the root document.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Total transfer size of the page in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.values().map(|o| o.bytes).sum()
    }

    /// Number of objects of a given kind.
    pub fn count_kind(&self, kind: ObjectKind) -> usize {
        self.objects.values().filter(|o| o.kind == kind).count()
    }

    /// Total bytes of a given kind.
    pub fn bytes_of_kind(&self, kind: ObjectKind) -> u64 {
        self.objects
            .values()
            .filter(|o| o.kind == kind)
            .map(|o| o.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PageVersion;

    fn spec() -> PageSpec {
        PageSpec {
            site: "espn".into(),
            version: PageVersion::Full,
            html_kb: 30.0,
            n_css: 3,
            css_kb: 10.0,
            n_scripts: 5,
            js_kb: 8.0,
            js_fetches: 4,
            js_work: 100,
            n_images: 20,
            image_kb: 15.0,
            css_image_refs: 3,
            n_links: 8,
            text_paragraphs: 15,
            seed: 3,
        }
    }

    #[test]
    fn generates_expected_object_inventory() {
        let p = Page::generate(&spec());
        assert_eq!(p.object_count(), spec().expected_objects());
        assert_eq!(p.count_kind(ObjectKind::Html), 1);
        assert_eq!(p.count_kind(ObjectKind::Css), 3);
        assert_eq!(p.count_kind(ObjectKind::Js), 5);
        assert_eq!(p.count_kind(ObjectKind::Image), 27);
    }

    #[test]
    fn total_size_is_near_spec_expectation() {
        let p = Page::generate(&spec());
        let expected_kb = spec().expected_total_kb();
        let actual_kb = p.total_bytes() as f64 / 1024.0;
        // Log-normal image jitter: allow a generous band.
        assert!(
            (actual_kb / expected_kb - 1.0).abs() < 0.5,
            "expected ≈{expected_kb} KB, got {actual_kb} KB"
        );
    }

    #[test]
    fn generation_is_deterministic_and_version_sensitive() {
        let a = Page::generate(&spec());
        let b = Page::generate(&spec());
        assert_eq!(a, b);
        let mobile = Page::generate(&PageSpec {
            version: PageVersion::Mobile,
            n_images: 4,
            ..spec()
        });
        assert_ne!(a.root_url(), mobile.root_url());
    }

    #[test]
    fn every_referenced_url_resolves() {
        let p = Page::generate(&spec());
        let root = p.root_url().to_string();
        // All generator-known URLs must be in the store.
        for i in 0..spec().n_css {
            assert!(p.object(&crate::gen::css_url(&root, i)).is_some());
        }
        for i in 0..spec().js_fetches {
            assert!(p.object(&crate::gen::dyn_img_url(&root, i)).is_some());
        }
        for i in 0..spec().css_image_refs {
            assert!(p.object(&crate::gen::bg_img_url(&root, i)).is_some());
        }
    }

    #[test]
    fn kind_byte_accounting_sums_to_total() {
        let p = Page::generate(&spec());
        let sum: u64 = [
            ObjectKind::Html,
            ObjectKind::Css,
            ObjectKind::Js,
            ObjectKind::Image,
            ObjectKind::Flash,
        ]
        .iter()
        .map(|&k| p.bytes_of_kind(k))
        .sum();
        assert_eq!(sum, p.total_bytes());
    }
}
