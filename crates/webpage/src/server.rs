//! The origin server: a URL-addressed content store.
//!
//! The network substrate asks the server for objects by URL; the server is
//! the authoritative store built from one or more generated [`Page`]s.

use crate::object::WebObject;
use crate::page::Page;
use std::collections::BTreeMap;

/// An in-memory origin server.
///
/// # Example
///
/// ```
/// use ewb_webpage::{benchmark_corpus, OriginServer, PageVersion};
///
/// let corpus = benchmark_corpus(7);
/// let server = OriginServer::from_corpus(&corpus);
/// let espn = corpus.page("espn", PageVersion::Full).unwrap();
/// assert!(server.fetch(espn.root_url()).is_some());
/// assert!(server.fetch("http://nowhere/").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct OriginServer {
    // Sorted store: lookups are by exact URL today, but any future
    // iteration (batch prefetch, store dumps) must not inherit hash
    // order.
    objects: BTreeMap<String, WebObject>,
}

impl OriginServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        OriginServer {
            objects: BTreeMap::new(),
        }
    }

    /// Creates a server holding every object of every page in `corpus`.
    pub fn from_corpus(corpus: &crate::corpus::Corpus) -> Self {
        let mut server = OriginServer::new();
        for site in corpus.sites() {
            server.add_page(&site.mobile);
            server.add_page(&site.full);
        }
        server
    }

    /// Adds all objects of `page` to the store. Re-adding a page replaces
    /// its objects.
    pub fn add_page(&mut self, page: &Page) {
        for obj in page.objects() {
            self.objects.insert(obj.url.clone(), obj.clone());
        }
    }

    /// Serves the object at `url`, or `None` (a 404).
    pub fn fetch(&self, url: &str) -> Option<&WebObject> {
        self.objects.get(url)
    }

    /// Number of objects in the store.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::benchmark_corpus;
    use crate::spec::PageVersion;

    #[test]
    fn serves_every_corpus_object() {
        let corpus = benchmark_corpus(3);
        let server = OriginServer::from_corpus(&corpus);
        let total: usize = corpus
            .sites()
            .iter()
            .map(|s| s.mobile.object_count() + s.full.object_count())
            .sum();
        assert_eq!(server.len(), total, "URLs must be globally unique");
        for site in corpus.sites() {
            for obj in site.full.objects() {
                assert_eq!(server.fetch(&obj.url), Some(obj));
            }
        }
    }

    #[test]
    fn unknown_url_is_a_404() {
        let server = OriginServer::from_corpus(&benchmark_corpus(3));
        assert!(server.fetch("http://example.invalid/x.png").is_none());
    }

    #[test]
    fn add_page_is_idempotent() {
        let corpus = benchmark_corpus(3);
        let page = corpus.page("cnn", PageVersion::Mobile).unwrap();
        let mut server = OriginServer::new();
        assert!(server.is_empty());
        server.add_page(page);
        let n = server.len();
        server.add_page(page);
        assert_eq!(server.len(), n);
    }
}
