//! # ewb-webpage — the synthetic web corpus
//!
//! The paper benchmarks against the Alexa top sites (its Table 3), in a
//! mobile-version and a full-version flavor. Live 2009-era webpages are
//! long gone, so this crate *generates* a deterministic corpus with the
//! same shape: each benchmark page is a set of real byte-for-byte
//! HTML/CSS/JavaScript documents plus opaque image/flash blobs, sized to
//! match the paper's anecdotes (espn.go.com/sports full version = 760 KB,
//! mobile pages a few tens of KB).
//!
//! The content is *real* in the sense that matters: the `ewb-browser`
//! engine actually tokenizes the HTML, parses the CSS, and executes the
//! JavaScript to discover the resources each page pulls in — including
//! images referenced only from CSS `url(...)` values and resources only a
//! JavaScript interpreter can find (the paper's §4.1 point that JS "must
//! be executed" to know what it fetches).
//!
//! # Example
//!
//! ```
//! use ewb_webpage::{benchmark_corpus, PageVersion};
//!
//! let corpus = benchmark_corpus(42);
//! let espn = corpus.page("espn", PageVersion::Full).unwrap();
//! // The paper's Fig. 4 anecdote: 760 KB for the full espn sports page.
//! let kb = espn.total_bytes() as f64 / 1024.0;
//! assert!((700.0..820.0).contains(&kb), "espn full = {kb} KB");
//! assert!(espn.object(espn.root_url()).unwrap().body.contains("<html"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod gen;
mod object;
mod page;
mod server;
mod spec;

pub use corpus::{benchmark_corpus, Corpus, Site, BENCHMARK_SITES};
pub use object::{ObjectKind, WebObject};
pub use page::Page;
pub use server::OriginServer;
pub use spec::{PageSpec, PageVersion};
