//! The Table 3 benchmark corpus.
//!
//! Ten sites, each with a mobile-version and a full-version page, matching
//! the paper's benchmark table:
//!
//! | Mobile version | Full version |
//! |---|---|
//! | cnn | edition.cnn.com/WORLD/ |
//! | ebay | www.motors.ebay.com |
//! | espn.go.com | espn.go.com/sports |
//! | amazon | amazon full version |
//! | msn | home.autos.msn.com |
//! | myspace | www.myspace.com/music |
//! | bbc.co.uk | bbc.com/travel |
//! | aol | www.popeater.com/celebrities/ |
//! | nytime | www.apple.com |
//! | youtube | hotjobs.yahoo.com |
//!
//! Object counts and sizes are calibrated to the paper's anecdotes (espn
//! full = 760 KB) and to 2009-era page-weight statistics.

use crate::page::Page;
use crate::spec::{PageSpec, PageVersion};
use serde::{Deserialize, Serialize};

/// One benchmark site: its Table 3 labels and both generated pages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Short key used throughout the workspace, e.g. `"espn"`.
    pub key: String,
    /// The paper's mobile-version label, e.g. `"espn.go.com"`.
    pub mobile_label: String,
    /// The paper's full-version label, e.g. `"espn.go.com/sports"`.
    pub full_label: String,
    /// The generated mobile page.
    pub mobile: Page,
    /// The generated full page.
    pub full: Page,
}

/// The generated benchmark corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    sites: Vec<Site>,
}

/// `(key, mobile_label, full_label)` for the ten Table 3 sites.
pub const BENCHMARK_SITES: &[(&str, &str, &str)] = &[
    ("cnn", "cnn", "edition.cnn.com/WORLD/"),
    ("ebay", "ebay", "www.motors.ebay.com"),
    ("espn", "espn.go.com", "espn.go.com/sports"),
    ("amazon", "amazon", "amazon full version"),
    ("msn", "msn", "home.autos.msn.com"),
    ("myspace", "myspace", "www.myspace.com/music"),
    ("bbc", "bbc.co.uk", "bbc.com/travel"),
    ("aol", "aol", "www.popeater.com/celebrities/"),
    ("nytime", "nytime", "www.apple.com"),
    ("youtube", "youtube", "hotjobs.yahoo.com"),
];

/// Full-version shape parameters per site:
/// `(total_kb, n_images, n_scripts, n_css, js_fetches, css_image_refs, n_links)`.
type FullShapeRow = (&'static str, f64, usize, usize, usize, usize, usize, usize);
const FULL_SHAPE: &[FullShapeRow] = &[
    ("cnn", 520.0, 30, 8, 4, 5, 4, 25),
    ("ebay", 680.0, 38, 7, 4, 6, 4, 30),
    ("espn", 760.0, 42, 8, 5, 6, 5, 28),
    ("amazon", 590.0, 34, 9, 4, 5, 3, 35),
    ("msn", 430.0, 26, 6, 3, 4, 3, 22),
    ("myspace", 510.0, 30, 7, 4, 5, 4, 18),
    ("bbc", 390.0, 22, 6, 3, 3, 3, 20),
    ("aol", 460.0, 28, 6, 3, 4, 3, 24),
    ("nytime", 350.0, 18, 5, 3, 3, 2, 15),
    ("youtube", 420.0, 24, 6, 3, 4, 3, 21),
];

/// Mobile-version shape parameters per site:
/// `(total_kb, n_images, js_fetches, n_links)`.
const MOBILE_SHAPE: &[(&str, f64, usize, usize, usize)] = &[
    ("cnn", 60.0, 6, 1, 10),
    ("ebay", 75.0, 8, 1, 12),
    ("espn", 85.0, 8, 1, 11),
    ("amazon", 70.0, 7, 1, 14),
    ("msn", 50.0, 5, 0, 9),
    ("myspace", 65.0, 6, 1, 8),
    ("bbc", 45.0, 4, 0, 9),
    ("aol", 55.0, 5, 1, 10),
    ("nytime", 40.0, 4, 0, 8),
    ("youtube", 58.0, 6, 1, 9),
];

fn full_spec(key: &str, seed: u64) -> PageSpec {
    let &(_, total_kb, n_images, n_scripts, n_css, js_fetches, css_refs, n_links) = FULL_SHAPE
        .iter()
        .find(|r| r.0 == key)
        .expect("unknown benchmark site");
    let html_kb = 35.0;
    let css_kb = 11.0;
    let js_kb = 9.0;
    let fixed = html_kb + n_css as f64 * css_kb + n_scripts as f64 * js_kb;
    let image_kb = (total_kb - fixed) / (n_images + js_fetches + css_refs) as f64;
    PageSpec {
        site: key.to_string(),
        version: PageVersion::Full,
        html_kb,
        n_css,
        css_kb,
        n_scripts,
        js_kb,
        js_fetches,
        js_work: 1200,
        n_images,
        image_kb,
        css_image_refs: css_refs,
        n_links,
        text_paragraphs: 28,
        seed,
    }
}

fn mobile_spec(key: &str, seed: u64) -> PageSpec {
    let &(_, total_kb, n_images, js_fetches, n_links) = MOBILE_SHAPE
        .iter()
        .find(|r| r.0 == key)
        .expect("unknown benchmark site");
    let html_kb = 12.0;
    let css_kb = 4.0;
    let js_kb = 3.0;
    let n_css = 1;
    let n_scripts = 1;
    let fixed = html_kb + css_kb + js_kb;
    let image_kb = (total_kb - fixed) / (n_images + js_fetches).max(1) as f64;
    PageSpec {
        site: key.to_string(),
        version: PageVersion::Mobile,
        html_kb,
        n_css,
        css_kb,
        n_scripts,
        js_kb,
        js_fetches,
        js_work: 200,
        n_images,
        image_kb,
        css_image_refs: 0,
        n_links,
        text_paragraphs: 10,
        seed,
    }
}

/// Generates the full Table 3 corpus deterministically from `seed`.
pub fn benchmark_corpus(seed: u64) -> Corpus {
    let sites = BENCHMARK_SITES
        .iter()
        .map(|&(key, mobile_label, full_label)| Site {
            key: key.to_string(),
            mobile_label: mobile_label.to_string(),
            full_label: full_label.to_string(),
            mobile: Page::generate(&mobile_spec(key, seed)),
            full: Page::generate(&full_spec(key, seed)),
        })
        .collect();
    Corpus { sites }
}

impl Corpus {
    /// The sites in Table 3 order.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Looks up one page by site key and version.
    pub fn page(&self, key: &str, version: PageVersion) -> Option<&Page> {
        self.sites
            .iter()
            .find(|s| s.key == key)
            .map(|s| match version {
                PageVersion::Mobile => &s.mobile,
                PageVersion::Full => &s.full,
            })
    }

    /// All pages of one version, in Table 3 order.
    pub fn pages(&self, version: PageVersion) -> Vec<&Page> {
        self.sites
            .iter()
            .map(|s| match version {
                PageVersion::Mobile => &s.mobile,
                PageVersion::Full => &s.full,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;

    #[test]
    fn corpus_has_ten_sites_with_both_versions() {
        let c = benchmark_corpus(1);
        assert_eq!(c.sites().len(), 10);
        for site in c.sites() {
            assert!(site.mobile.total_bytes() > 0);
            assert!(site.full.total_bytes() > site.mobile.total_bytes());
        }
    }

    #[test]
    fn espn_full_matches_the_papers_760_kb() {
        let c = benchmark_corpus(1);
        let espn = c.page("espn", PageVersion::Full).unwrap();
        let kb = espn.total_bytes() as f64 / 1024.0;
        assert!((660.0..860.0).contains(&kb), "espn full = {kb} KB");
    }

    #[test]
    fn mobile_pages_are_light() {
        let c = benchmark_corpus(1);
        for p in c.pages(PageVersion::Mobile) {
            let kb = p.total_bytes() as f64 / 1024.0;
            assert!((20.0..160.0).contains(&kb), "{} = {kb} KB", p.root_url());
            assert!(p.object_count() <= 15);
        }
    }

    #[test]
    fn full_pages_have_rich_object_mix() {
        let c = benchmark_corpus(1);
        for p in c.pages(PageVersion::Full) {
            assert!(p.count_kind(ObjectKind::Image) >= 15, "{}", p.root_url());
            assert!(p.count_kind(ObjectKind::Js) >= 5);
            assert!(p.count_kind(ObjectKind::Css) >= 3);
        }
    }

    #[test]
    fn page_lookup_by_key() {
        let c = benchmark_corpus(1);
        assert!(c.page("cnn", PageVersion::Mobile).is_some());
        assert!(c.page("nosuch", PageVersion::Mobile).is_none());
    }

    #[test]
    fn different_seeds_change_content_not_shape() {
        let a = benchmark_corpus(1);
        let b = benchmark_corpus(2);
        let pa = a.page("bbc", PageVersion::Full).unwrap();
        let pb = b.page("bbc", PageVersion::Full).unwrap();
        assert_eq!(pa.object_count(), pb.object_count());
        assert_ne!(pa.total_bytes(), pb.total_bytes());
    }

    #[test]
    fn labels_match_table3() {
        let c = benchmark_corpus(1);
        let espn = c.sites().iter().find(|s| s.key == "espn").unwrap();
        assert_eq!(espn.mobile_label, "espn.go.com");
        assert_eq!(espn.full_label, "espn.go.com/sports");
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn corpus_roundtrips_through_serde() {
        // The corpus is a data structure (C-SERDE): a downstream user can
        // snapshot it to disk and reload it bit-for-bit.
        let c = benchmark_corpus(9);
        let json = serde_json::to_string(&c).expect("serializable");
        let restored: Corpus = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(c, restored);
    }
}
