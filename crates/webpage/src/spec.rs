//! Page specifications: the knobs the generators honor.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mobile-optimized vs full desktop version of a page — the two benchmark
/// flavors of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageVersion {
    /// A lightweight page designed for phones: few objects, little CSS/JS.
    Mobile,
    /// The full desktop page: many images, multiple stylesheets, scripts.
    Full,
}

impl fmt::Display for PageVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PageVersion::Mobile => "mobile",
            PageVersion::Full => "full",
        })
    }
}

/// Generation parameters for one synthetic page.
///
/// Every quantity is an *expected* value; the deterministic generators add
/// bounded per-object jitter from the page seed so no two pages are
/// byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageSpec {
    /// Site key, e.g. `"espn"`.
    pub site: String,
    /// Mobile or full flavor.
    pub version: PageVersion,
    /// Main document size, KB.
    pub html_kb: f64,
    /// Number of external stylesheets.
    pub n_css: usize,
    /// Mean stylesheet size, KB.
    pub css_kb: f64,
    /// Number of external scripts.
    pub n_scripts: usize,
    /// Mean script size, KB.
    pub js_kb: f64,
    /// Resources (images) that only executing the JavaScript discovers.
    pub js_fetches: usize,
    /// Loop iterations of filler computation per script — the knob behind
    /// the Table 1 "JavaScript Running Time" feature.
    pub js_work: usize,
    /// Images referenced directly from the HTML.
    pub n_images: usize,
    /// Mean image size, KB (log-normal spread around this).
    pub image_kb: f64,
    /// Images referenced *only* from CSS `url(...)` values.
    pub css_image_refs: usize,
    /// Secondary URLs (`<a href>`) — Table 1's "Second URL" feature.
    pub n_links: usize,
    /// Body text paragraphs.
    pub text_paragraphs: usize,
    /// Seed for the page's content jitter.
    pub seed: u64,
}

impl PageSpec {
    /// Root URL of the page this spec generates.
    pub fn root_url(&self) -> String {
        match self.version {
            PageVersion::Mobile => format!("http://m.{}.com/", self.site),
            PageVersion::Full => format!("http://www.{}.com/main/", self.site),
        }
    }

    /// Expected total transfer size in KB (before per-object jitter).
    pub fn expected_total_kb(&self) -> f64 {
        self.html_kb
            + self.n_css as f64 * self.css_kb
            + self.n_scripts as f64 * self.js_kb
            + (self.n_images + self.js_fetches + self.css_image_refs) as f64 * self.image_kb
    }

    /// Total number of objects this page will contain (including the main
    /// document).
    pub fn expected_objects(&self) -> usize {
        1 + self.n_css + self.n_scripts + self.n_images + self.js_fetches + self.css_image_refs
    }

    /// Validates that the spec can be generated.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.site.is_empty() {
            return Err("site must be non-empty".to_string());
        }
        for (name, v) in [
            ("html_kb", self.html_kb),
            ("css_kb", self.css_kb),
            ("js_kb", self.js_kb),
            ("image_kb", self.image_kb),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.js_fetches > 0 && self.n_scripts == 0 {
            return Err("js_fetches requires at least one script".to_string());
        }
        if self.css_image_refs > 0 && self.n_css == 0 {
            return Err("css_image_refs requires at least one stylesheet".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PageSpec {
        PageSpec {
            site: "espn".into(),
            version: PageVersion::Full,
            html_kb: 40.0,
            n_css: 3,
            css_kb: 12.0,
            n_scripts: 6,
            js_kb: 10.0,
            js_fetches: 4,
            js_work: 100,
            n_images: 20,
            image_kb: 18.0,
            css_image_refs: 3,
            n_links: 12,
            text_paragraphs: 30,
            seed: 1,
        }
    }

    #[test]
    fn root_urls_differ_by_version() {
        let full = spec();
        let mobile = PageSpec {
            version: PageVersion::Mobile,
            ..spec()
        };
        assert_eq!(full.root_url(), "http://www.espn.com/main/");
        assert_eq!(mobile.root_url(), "http://m.espn.com/");
    }

    #[test]
    fn expected_totals() {
        let s = spec();
        let kb = 40.0 + 36.0 + 60.0 + 27.0 * 18.0;
        assert!((s.expected_total_kb() - kb).abs() < 1e-9);
        assert_eq!(s.expected_objects(), 1 + 3 + 6 + 20 + 4 + 3);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        assert!(spec().validate().is_ok());
        assert!(PageSpec {
            site: String::new(),
            ..spec()
        }
        .validate()
        .is_err());
        assert!(PageSpec {
            html_kb: 0.0,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(PageSpec {
            n_scripts: 0,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(PageSpec { n_css: 0, ..spec() }.validate().is_err());
    }

    #[test]
    fn version_display() {
        assert_eq!(PageVersion::Mobile.to_string(), "mobile");
        assert_eq!(PageVersion::Full.to_string(), "full");
    }
}
