//! Deterministic content generators: real HTML, CSS, and JavaScript text.
//!
//! The generated documents are what the `ewb-browser` engine actually
//! parses and executes. In particular:
//!
//! * the HTML references stylesheets, scripts, images, and secondary URLs;
//! * the CSS contains `url(...)` values that only a CSS scan discovers;
//! * the JavaScript *computes* the URLs it fetches (string concatenation in
//!   a loop), so only executing it reveals the transfers — the paper's
//!   §4.1 observation that "there is no simple approach to find out if
//!   [JS] will generate new data transmission without executing [it]".

use crate::spec::PageSpec;
use ewb_simcore::Xoshiro256;
use std::fmt::Write as _;

/// Filler vocabulary for body text (deterministic, looks like prose).
const WORDS: &[&str] = &[
    "sports", "scores", "league", "market", "travel", "finance", "update", "report", "season",
    "player", "review", "mobile", "device", "signal", "network", "energy", "budget", "record",
    "detail", "column", "editor", "global", "nation", "policy", "launch", "stream", "camera",
    "gadget",
];

fn words(rng: &mut Xoshiro256, n: usize) -> String {
    let mut s = String::with_capacity(n * 7);
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.usize_below(WORDS.len())]);
    }
    s
}

/// URL helpers shared by the generators and the page assembler.
pub(crate) fn css_url(root: &str, i: usize) -> String {
    format!("{root}css/s{i}.css")
}
pub(crate) fn js_url(root: &str, i: usize) -> String {
    format!("{root}js/a{i}.js")
}
pub(crate) fn img_url(root: &str, i: usize) -> String {
    format!("{root}img/p{i}.jpg")
}
pub(crate) fn dyn_img_url(root: &str, i: usize) -> String {
    format!("{root}img/dyn{i}.jpg")
}
pub(crate) fn bg_img_url(root: &str, i: usize) -> String {
    format!("{root}img/bg{i}.png")
}
pub(crate) fn link_url(root: &str, i: usize) -> String {
    format!("{root}story/{i}.html")
}

/// Pads `doc` with HTML comments until it reaches `target_bytes`.
fn pad_with_comments(doc: &mut String, target_bytes: usize, rng: &mut Xoshiro256) {
    while doc.len() < target_bytes {
        let chunk = words(rng, 12);
        let _ = writeln!(doc, "<!-- {chunk} -->");
    }
}

/// Generates the main HTML document.
pub(crate) fn gen_html(spec: &PageSpec, rng: &mut Xoshiro256) -> String {
    let root = spec.root_url();
    let mut doc = String::with_capacity((spec.html_kb * 1024.0) as usize + 512);
    let _ = write!(
        doc,
        "<!DOCTYPE html>\n<html>\n<head>\n<title>{} {} edition</title>\n",
        spec.site, spec.version
    );
    for i in 0..spec.n_css {
        let _ = writeln!(
            doc,
            "<link rel=\"stylesheet\" href=\"{}\">",
            css_url(&root, i)
        );
    }
    for i in 0..spec.n_scripts {
        let _ = writeln!(doc, "<script src=\"{}\"></script>", js_url(&root, i));
    }
    // A small inline stylesheet, as real pages carry: the engine must
    // treat it like any other CSS (scan in the transmission phase, parse
    // in the layout phase).
    doc.push_str(
        "<style>\n#page { padding: 4px; }\n.c0 p { color: #333; margin: 5px; }\n</style>\n",
    );
    doc.push_str("</head>\n<body>\n<div id=\"page\" class=\"wrap\">\n");

    // Interleave paragraphs, images, and links the way a news page does.
    let blocks = spec.text_paragraphs.max(1);
    for b in 0..blocks {
        let para_len = 18 + rng.usize_below(18);
        let _ = writeln!(doc, "<p class=\"c{}\">{}</p>", b % 11, words(rng, para_len));
        if b < spec.n_images {
            let _ = writeln!(
                doc,
                "<img src=\"{}\" width=\"{}\" height=\"{}\" alt=\"img{b}\">",
                img_url(&root, b),
                120 + rng.usize_below(400),
                90 + rng.usize_below(260),
            );
        }
        if b < spec.n_links {
            let _ = writeln!(
                doc,
                "<a href=\"{}\">{}</a>",
                link_url(&root, b),
                words(rng, 3)
            );
        }
    }
    // Any images beyond the paragraph count still need tags.
    for b in blocks..spec.n_images {
        let _ = writeln!(doc, "<img src=\"{}\" alt=\"img{b}\">", img_url(&root, b));
    }
    for b in blocks..spec.n_links {
        let _ = writeln!(doc, "<a href=\"{}\">more</a>", link_url(&root, b));
    }

    // A small inline script: pure computation, no fetches (those live in
    // the external scripts), so the engine's inline-script path is also
    // exercised.
    doc.push_str(
        "<script>\nvar inlineAcc = 0;\nvar q = 0;\nwhile (q < 25) { inlineAcc = inlineAcc + q; q = q + 1; }\n</script>\n",
    );
    doc.push_str("</div>\n</body>\n</html>\n");

    let target = (spec.html_kb * 1024.0) as usize;
    pad_with_comments(&mut doc, target, rng);
    doc
}

/// Generates stylesheet `i`. CSS-only image references are distributed
/// round-robin across the stylesheets.
pub(crate) fn gen_css(spec: &PageSpec, i: usize, rng: &mut Xoshiro256) -> String {
    let root = spec.root_url();
    let mut doc = String::with_capacity((spec.css_kb * 1024.0) as usize + 256);
    let _ = writeln!(doc, "/* stylesheet {i} for {} */", spec.site);
    let _ = write!(
        doc,
        "body {{ margin: 0; font-family: sans-serif; color: #222; }}\n\
         .wrap {{ width: {}px; margin: 0 auto; }}\n",
        760 + rng.usize_below(240)
    );
    // The CSS-discovered images: only scanning this text reveals them.
    for j in 0..spec.css_image_refs {
        if j % spec.n_css.max(1) == i {
            let _ = writeln!(
                doc,
                ".hero{j} {{ background-image: url(\"{}\"); height: {}px; }}",
                bg_img_url(&root, j),
                100 + rng.usize_below(200)
            );
        }
    }
    // Ordinary rules until the stylesheet reaches its target size.
    let target = (spec.css_kb * 1024.0) as usize;
    let mut k = 0;
    while doc.len() < target {
        let _ = writeln!(
            doc,
            ".c{} p, .c{} a:hover {{ color: #{:06x}; margin: {}px {}px; padding: {}px; \
             font-size: {}px; line-height: 1.{}; }}",
            k % 11,
            (k + 3) % 11,
            rng.u64_below(0xFFFFFF),
            rng.usize_below(24),
            rng.usize_below(24),
            rng.usize_below(16),
            10 + rng.usize_below(14),
            rng.usize_below(9),
        );
        k += 1;
    }
    doc
}

/// Generates script `i`. JS-discovered fetches are split contiguously
/// across the scripts; the last such resource is requested through
/// `document.write` so both discovery paths are exercised.
pub(crate) fn gen_js(spec: &PageSpec, i: usize, rng: &mut Xoshiro256) -> String {
    let root = spec.root_url();
    let mut doc = String::with_capacity((spec.js_kb * 1024.0) as usize + 256);
    let _ = writeln!(doc, "// script {i} for {} ({})", spec.site, spec.version);

    // Which dyn-image indices does this script own?
    let per = if spec.n_scripts == 0 {
        0
    } else {
        spec.js_fetches.div_ceil(spec.n_scripts)
    };
    let lo = i * per;
    let hi = ((i + 1) * per).min(spec.js_fetches);
    if lo < hi {
        // The URLs are *computed*: base + index + extension. Only an
        // interpreter can know what gets fetched.
        let _ = write!(doc, "var base{i} = \"{root}img/dyn\";\nvar n{i} = {lo};\n");
        let last_here = hi - 1;
        let loop_hi = if hi == spec.js_fetches { last_here } else { hi };
        let _ = write!(
            doc,
            "while (n{i} < {loop_hi}) {{\n  loadImage(base{i} + n{i} + \".jpg\");\n  n{i} = n{i} + 1;\n}}\n"
        );
        if hi == spec.js_fetches {
            // The final dynamic image arrives via document.write: the
            // written HTML itself must be scanned to find the reference.
            let _ = writeln!(
                doc,
                "document.write(\"<img src='\" + base{i} + \"{last_here}.jpg'>\");"
            );
        }
    }

    // Filler computation — drives the Table 1 "JavaScript Running Time"
    // feature without fetching anything.
    let _ = write!(
        doc,
        "function mix{i}(a, b) {{ return a * 31 + b % 97; }}\n\
         var acc{i} = 0;\nvar k{i} = 0;\n\
         while (k{i} < {}) {{ acc{i} = mix{i}(acc{i}, k{i}); k{i} = k{i} + 1; }}\n\
         if (acc{i} < 0) {{ document.write(\"<p>unreachable</p>\"); }}\n",
        spec.js_work
    );

    // Pad with comments to the target size.
    let target = (spec.js_kb * 1024.0) as usize;
    while doc.len() < target {
        let chunk = words(rng, 10);
        let _ = writeln!(doc, "// {chunk}");
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PageVersion;

    fn spec() -> PageSpec {
        PageSpec {
            site: "espn".into(),
            version: PageVersion::Full,
            html_kb: 30.0,
            n_css: 2,
            css_kb: 8.0,
            n_scripts: 3,
            js_kb: 6.0,
            js_fetches: 5,
            js_work: 50,
            n_images: 10,
            image_kb: 15.0,
            css_image_refs: 3,
            n_links: 6,
            text_paragraphs: 12,
            seed: 7,
        }
    }

    #[test]
    fn html_contains_all_references() {
        let s = spec();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let html = gen_html(&s, &mut rng);
        let root = s.root_url();
        for i in 0..s.n_css {
            assert!(html.contains(&css_url(&root, i)), "missing css {i}");
        }
        for i in 0..s.n_scripts {
            assert!(html.contains(&js_url(&root, i)), "missing js {i}");
        }
        for i in 0..s.n_images {
            assert!(html.contains(&img_url(&root, i)), "missing img {i}");
        }
        for i in 0..s.n_links {
            assert!(html.contains(&link_url(&root, i)), "missing link {i}");
        }
        assert!(html.len() >= 30 * 1024);
    }

    #[test]
    fn css_contains_background_urls_exactly_once_across_sheets() {
        let s = spec();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let all: String = (0..s.n_css).map(|i| gen_css(&s, i, &mut rng)).collect();
        let root = s.root_url();
        for j in 0..s.css_image_refs {
            let needle = bg_img_url(&root, j);
            assert_eq!(
                all.matches(&needle).count(),
                1,
                "bg image {j} should appear exactly once"
            );
        }
    }

    #[test]
    fn js_mentions_computed_urls_only_via_base() {
        let s = spec();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let all: String = (0..s.n_scripts).map(|i| gen_js(&s, i, &mut rng)).collect();
        let root = s.root_url();
        // The full literal URL of a dynamic image never appears: it is
        // computed at runtime.
        for j in 0..s.js_fetches {
            assert!(
                !all.contains(&dyn_img_url(&root, j)),
                "dyn image {j} must not appear literally"
            );
        }
        assert!(all.contains("loadImage"));
        assert!(all.contains("document.write"));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec();
        let a = gen_html(&s, &mut Xoshiro256::seed_from_u64(9));
        let b = gen_html(&s, &mut Xoshiro256::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn sizes_hit_targets() {
        let s = spec();
        let mut rng = Xoshiro256::seed_from_u64(4);
        let css = gen_css(&s, 0, &mut rng);
        let js = gen_js(&s, 0, &mut rng);
        assert!(css.len() >= (s.css_kb * 1024.0) as usize);
        assert!(css.len() <= (s.css_kb * 1024.0) as usize + 512);
        assert!(js.len() >= (s.js_kb * 1024.0) as usize);
    }
}
