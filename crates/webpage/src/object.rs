//! Web objects: the units a page is made of.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a web object, which determines how the browser processes it
/// (and, per the paper's §2.2, whether processing it can generate *new*
/// data transmissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// An HTML document. Parsing it discovers more objects.
    Html,
    /// A stylesheet. Scanning it can discover images (`url(...)`).
    Css,
    /// JavaScript. Executing it can fetch anything.
    Js,
    /// An image. Pure layout-side payload (decode + paint).
    Image,
    /// A flash/multimedia blob. Pure layout-side payload.
    Flash,
}

impl ObjectKind {
    /// Whether processing this object can cause further data transmissions
    /// — the paper's *data transmission computation* category.
    pub fn can_discover_resources(self) -> bool {
        matches!(self, ObjectKind::Html | ObjectKind::Css | ObjectKind::Js)
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Html => "html",
            ObjectKind::Css => "css",
            ObjectKind::Js => "js",
            ObjectKind::Image => "image",
            ObjectKind::Flash => "flash",
        };
        f.write_str(s)
    }
}

/// One fetchable object of a page.
///
/// For textual kinds (`Html`, `Css`, `Js`) the `body` is the real document
/// the browser engine parses/executes, and `bytes == body.len()`. For
/// opaque kinds (`Image`, `Flash`) the body is empty and `bytes` is the
/// transfer size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebObject {
    /// Absolute URL, unique within the corpus.
    pub url: String,
    /// What kind of object this is.
    pub kind: ObjectKind,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Document text for textual kinds; empty for opaque kinds.
    pub body: String,
}

impl WebObject {
    /// Creates a textual object whose size is its body length.
    pub fn text(url: impl Into<String>, kind: ObjectKind, body: String) -> Self {
        debug_assert!(
            kind.can_discover_resources(),
            "textual object of opaque kind"
        );
        let bytes = body.len() as u64;
        WebObject {
            url: url.into(),
            kind,
            bytes,
            body,
        }
    }

    /// Creates an opaque object (image/flash) of a given size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero — a zero-byte image is always a corpus
    /// generation bug.
    pub fn opaque(url: impl Into<String>, kind: ObjectKind, bytes: u64) -> Self {
        assert!(bytes > 0, "opaque object must have a positive size");
        debug_assert!(
            !kind.can_discover_resources(),
            "opaque object of textual kind"
        );
        WebObject {
            url: url.into(),
            kind,
            bytes,
            body: String::new(),
        }
    }

    /// Size in kilobytes (floating).
    pub fn kb(&self) -> f64 {
        self.bytes as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_categories_match_the_paper() {
        // §2.2: HTML/CSS parsing and JS execution generate transmissions;
        // images and flash are layout-side only.
        assert!(ObjectKind::Html.can_discover_resources());
        assert!(ObjectKind::Css.can_discover_resources());
        assert!(ObjectKind::Js.can_discover_resources());
        assert!(!ObjectKind::Image.can_discover_resources());
        assert!(!ObjectKind::Flash.can_discover_resources());
    }

    #[test]
    fn text_object_size_is_body_length() {
        let o = WebObject::text("http://a/x.html", ObjectKind::Html, "<html></html>".into());
        assert_eq!(o.bytes, 13);
        assert!((o.kb() - 13.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn opaque_object_has_no_body() {
        let o = WebObject::opaque("http://a/x.jpg", ObjectKind::Image, 2048);
        assert_eq!(o.bytes, 2048);
        assert!(o.body.is_empty());
        assert_eq!(o.kb(), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_byte_opaque_rejected() {
        WebObject::opaque("http://a/x.jpg", ObjectKind::Image, 0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(ObjectKind::Image.to_string(), "image");
        assert_eq!(ObjectKind::Html.to_string(), "html");
    }
}
