//! The handset power model — Table 5 of the paper.
//!
//! All figures include display and system-maintenance power, exactly as the
//! paper measured them (the Agilent supply powers the whole phone):
//!
//! | State | Power (W) |
//! |---|---|
//! | IDLE | 0.15 |
//! | FACH | 0.63 |
//! | DCH without transmission | 1.15 |
//! | DCH with transmission | 1.25 |
//! | Fully running CPU (at IDLE) | 0.60 |
//!
//! "Fully running CPU at IDLE" is 0.60 W total, so CPU load contributes up
//! to `0.60 − 0.15 = 0.45` W on top of whatever the radio draws.

use crate::state::RrcState;
use serde::{Deserialize, Serialize};

/// Ceiling on the CPU-load value the power model honors: the number of
/// cores a parallel browser plan can keep busy at once
/// (`ewb_browser::parallel::MAX_THREADS` mirrors it). Sequential loads
/// only ever report loads in `[0, 1]`; parallel pipeline stages report
/// the active-core count, each core drawing `cpu_full_extra_w`.
pub const MAX_CPU_CORES: f64 = 8.0;

/// Instantaneous power draw of the handset as a function of radio state,
/// transmission activity, and CPU load.
///
/// # Example
///
/// ```
/// use ewb_rrc::{PowerModel, RrcState};
///
/// let pm = PowerModel::default();
/// assert_eq!(pm.watts(RrcState::Idle, false, 0.0), 0.15);
/// assert_eq!(pm.watts(RrcState::Dch, true, 0.0), 1.25);
/// // Full CPU while the radio idles — the paper's 0.6 W row:
/// assert!((pm.watts(RrcState::Idle, false, 1.0) - 0.60).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// IDLE-state draw (display + system), watts. Paper: 0.15 W.
    pub idle_w: f64,
    /// FACH-state draw, watts. Paper: 0.63 W.
    pub fach_w: f64,
    /// DCH-state draw without active transmission, watts. Paper: 1.15 W.
    pub dch_hold_w: f64,
    /// DCH-state draw during transmission, watts. Paper: 1.25 W.
    pub dch_tx_w: f64,
    /// Power during signaling-connection establishment, watts. This is a
    /// *calibrated aggregate* (see `RrcConfig`): it folds the handset-side
    /// RACH/control-message exchanges and the network-side channel
    /// reallocation cost into one number chosen so the §3.1 intuitive
    /// approach breaks even at the paper's measured 9 s interval (Fig. 3).
    pub promotion_w: f64,
    /// Additional draw of a fully busy CPU, watts. Paper: 0.60 − 0.15 =
    /// 0.45 W.
    pub cpu_full_extra_w: f64,
}

impl PowerModel {
    /// The paper's Table 5 values.
    pub fn paper() -> Self {
        PowerModel {
            idle_w: 0.15,
            fach_w: 0.63,
            dch_hold_w: 1.15,
            dch_tx_w: 1.25,
            // 7.0 J aggregate promotion energy over a 1.75 s promotion —
            // calibrated so the §3.1 intuitive approach breaks even at the
            // paper's measured 9 s interval (see `intuitive::break_even`).
            promotion_w: 7.0 / 1.75,
            cpu_full_extra_w: 0.45,
        }
    }

    /// Total handset draw in watts.
    ///
    /// `transmitting` only matters in DCH (FACH's shared-channel trickle is
    /// folded into its single measured level). `cpu_load` is the number of
    /// busy cores, clamped to `[0, MAX_CPU_CORES]`; each busy core adds
    /// `cpu_full_extra_w`.
    pub fn watts(&self, state: RrcState, transmitting: bool, cpu_load: f64) -> f64 {
        let radio = match state {
            RrcState::Idle => self.idle_w,
            RrcState::Fach => self.fach_w,
            RrcState::Dch => {
                if transmitting {
                    self.dch_tx_w
                } else {
                    self.dch_hold_w
                }
            }
            RrcState::Promoting => self.promotion_w,
        };
        radio + self.cpu_full_extra_w * cpu_load.clamp(0.0, MAX_CPU_CORES)
    }

    /// Validates that the model is physically sensible (non-negative,
    /// finite, DCH ≥ FACH ≥ IDLE).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("idle_w", self.idle_w),
            ("fach_w", self.fach_w),
            ("dch_hold_w", self.dch_hold_w),
            ("dch_tx_w", self.dch_tx_w),
            ("promotion_w", self.promotion_w),
            ("cpu_full_extra_w", self.cpu_full_extra_w),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        if self.idle_w > self.fach_w {
            return Err("IDLE power must not exceed FACH power".to_string());
        }
        if self.fach_w > self.dch_hold_w {
            return Err("FACH power must not exceed DCH power".to_string());
        }
        if self.dch_hold_w > self.dch_tx_w {
            return Err("DCH hold power must not exceed DCH transmit power".to_string());
        }
        Ok(())
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table5() {
        let pm = PowerModel::paper();
        assert_eq!(pm.idle_w, 0.15);
        assert_eq!(pm.fach_w, 0.63);
        assert_eq!(pm.dch_hold_w, 1.15);
        assert_eq!(pm.dch_tx_w, 1.25);
        assert!((pm.cpu_full_extra_w - 0.45).abs() < 1e-12);
        assert!(pm.validate().is_ok());
    }

    #[test]
    fn watts_by_state() {
        let pm = PowerModel::paper();
        assert_eq!(pm.watts(RrcState::Fach, true, 0.0), 0.63);
        assert_eq!(pm.watts(RrcState::Fach, false, 0.0), 0.63);
        assert_eq!(pm.watts(RrcState::Dch, false, 0.0), 1.15);
        assert!(pm.watts(RrcState::Promoting, false, 0.0) > pm.dch_tx_w);
    }

    #[test]
    fn cpu_load_is_additive_and_clamped() {
        let pm = PowerModel::paper();
        let half = pm.watts(RrcState::Idle, false, 0.5);
        assert!((half - (0.15 + 0.225)).abs() < 1e-12);
        // Multi-core loads are additive per core up to MAX_CPU_CORES.
        let four = pm.watts(RrcState::Idle, false, 4.0);
        assert!((four - (0.15 + 4.0 * 0.45)).abs() < 1e-12);
        assert_eq!(
            pm.watts(RrcState::Idle, false, MAX_CPU_CORES + 1.0),
            pm.watts(RrcState::Idle, false, MAX_CPU_CORES)
        );
        assert_eq!(
            pm.watts(RrcState::Idle, false, -1.0),
            pm.watts(RrcState::Idle, false, 0.0)
        );
    }

    #[test]
    fn validate_rejects_inverted_ordering() {
        let mut pm = PowerModel::paper();
        pm.fach_w = 2.0;
        assert!(pm.validate().is_err());
        let mut pm = PowerModel::paper();
        pm.idle_w = f64::NAN;
        assert!(pm.validate().is_err());
        let mut pm = PowerModel::paper();
        pm.dch_hold_w = 1.3;
        assert!(pm.validate().is_err());
    }
}
