//! # ewb-rrc — UMTS 3G Radio Resource Control substrate
//!
//! The paper's energy savings come entirely from *when* the handset's radio
//! occupies each RRC state. This crate models that state machine exactly as
//! §2.1 of the paper describes it:
//!
//! * **IDLE** — no signaling connection; the radio draws almost nothing.
//! * **DCH** — dedicated uplink/downlink channels; high power; the backbone
//!   releases the channels when inactivity timer **T1** (4 s) expires.
//! * **FACH** — shared channels only (a few hundred bytes/s); about half
//!   the DCH power; the signaling connection is released when timer **T2**
//!   (15 s) expires, returning the handset to IDLE.
//!
//! Promotions (IDLE→DCH, IDLE→FACH, FACH→DCH) cost both latency and energy;
//! the paper's *fast dormancy* (its RIL-based "state switch" component,
//! §4.4) lets the application force FACH/DCH→IDLE early.
//!
//! [`RrcMachine`] is an exact discrete-event model of all of the above with
//! built-in energy metering; [`PowerModel`] carries the paper's Table 5
//! measurements; [`intuitive`] reproduces the §3.1 motivation experiment
//! (Fig. 3); [`scenario`] generates the Fig. 1 state-tour power trace.
//!
//! # Example
//!
//! ```
//! use ewb_rrc::{RrcConfig, RrcMachine, RrcState};
//! use ewb_simcore::{SimDuration, SimTime};
//!
//! let mut radio = RrcMachine::new(RrcConfig::default(), SimTime::ZERO);
//! // Request a large transfer from IDLE: the radio must first be promoted.
//! let data_start = radio.begin_transfer(SimTime::ZERO, true);
//! assert!(data_start > SimTime::ZERO); // promotion latency
//! radio.end_transfer(data_start + SimDuration::from_secs(2));
//! // Let the inactivity timers run their course.
//! radio.advance_to(data_start + SimDuration::from_secs(30));
//! assert_eq!(radio.state(), RrcState::Idle);
//! assert!(radio.meter().total_joules() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod machine;
mod power;
mod state;

pub mod backend;
pub mod intuitive;
pub mod ladder;
pub mod scenario;

pub use backend::{RadioBackend, RadioModel};
pub use config::RrcConfig;
pub use ladder::{
    FiveG, FiveGConfig, FiveGMachine, LadderBackend, LadderCounters, LadderMachine,
    LadderResidency, LadderSpec, LadderTransition, Lte, LteConfig, LteMachine, Wifi, WifiConfig,
    WifiMachine,
};
pub use machine::{RrcCounters, RrcMachine, StateResidency, Transition};
pub use power::{PowerModel, MAX_CPU_CORES};
pub use state::RrcState;
