//! The §3.1 motivation experiment (Fig. 3 of the paper).
//!
//! The "intuitive" power-saving idea is to drop the radio to IDLE
//! immediately after every data transmission. The paper shows this
//! backfires when transmissions are frequent: re-establishing the signaling
//! connection costs energy (and ≈1.75 s of delay), so the intuitive
//! approach only wins once the transmission interval exceeds **9 seconds**.
//!
//! [`compare_at_interval`] simulates steady-state cycles of both approaches
//! on the same [`RrcMachine`] model; [`sweep`] produces the full Fig. 3
//! series and [`break_even`] locates the crossover.

use crate::config::RrcConfig;
use crate::machine::RrcMachine;
use ewb_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One Fig. 3 data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CyclePoint {
    /// Transmission interval (time between starts of consecutive
    /// transmissions in the original approach), seconds.
    pub interval_s: f64,
    /// Steady-state energy per cycle of the original (timer-driven)
    /// approach, joules.
    pub original_j: f64,
    /// Steady-state energy per cycle of the intuitive (always-release)
    /// approach, joules.
    pub intuitive_j: f64,
    /// `original_j - intuitive_j`; positive means the intuitive approach
    /// saves power.
    pub saving_j: f64,
    /// Extra per-transfer delay of the intuitive approach, seconds
    /// (≈ the IDLE→DCH promotion latency).
    pub extra_delay_s: f64,
}

/// Simulates both approaches at one transmission interval.
///
/// `transfer` is the duration of each data transmission (the paper sends
/// 1 KB; ~0.5 s including round trips). The returned energies are measured
/// over a steady-state cycle, i.e. after both machines have settled into
/// their periodic pattern.
///
/// # Panics
///
/// Panics if `interval <= transfer` (the next transmission would start
/// before the previous one finished) or if `cfg` is invalid.
pub fn compare_at_interval(
    cfg: &RrcConfig,
    interval: SimDuration,
    transfer: SimDuration,
) -> CyclePoint {
    assert!(
        interval > transfer,
        "transmission interval {interval} must exceed the transfer duration {transfer}"
    );
    let gap = interval - transfer;
    let (original_j, orig_delay) = run_cycles(cfg, gap, transfer, false);
    let (intuitive_j, int_delay) = run_cycles(cfg, gap, transfer, true);
    CyclePoint {
        interval_s: interval.as_secs_f64(),
        original_j,
        intuitive_j,
        saving_j: original_j - intuitive_j,
        extra_delay_s: int_delay - orig_delay,
    }
}

/// Runs `n` cycles of "transfer, (maybe release), wait `gap`" and returns
/// the energy of the second-to-last cycle (steady state) plus the mean
/// promotion delay over the measured cycles.
fn run_cycles(
    cfg: &RrcConfig,
    gap: SimDuration,
    transfer: SimDuration,
    release_after_each: bool,
) -> (f64, f64) {
    const CYCLES: usize = 5;
    let mut m = RrcMachine::new(cfg.clone(), SimTime::ZERO);
    let mut request_marks = Vec::with_capacity(CYCLES + 1);
    let mut delays = Vec::with_capacity(CYCLES);
    let mut t = SimTime::ZERO;
    for _ in 0..CYCLES {
        request_marks.push(t);
        let data_start = m.begin_transfer(t, true);
        delays.push((data_start - t).as_secs_f64());
        let data_end = data_start + transfer;
        m.end_transfer(data_end);
        if release_after_each {
            m.release_to_idle(data_end);
        }
        t = data_end + gap;
    }
    request_marks.push(t);
    m.advance_to(t);
    // Second-to-last full cycle: cold-start effects are gone, and the
    // cycle's trailing promotion (if the next request finds IDLE) is
    // attributed to the next cycle's window consistently for both modes.
    let j = m
        .meter()
        .joules_between(request_marks[CYCLES - 2], request_marks[CYCLES - 1]);
    // Steady-state delay: the last transfer's promotion wait.
    (j, *delays.last().expect("at least one cycle"))
}

/// Produces the Fig. 3 series over the paper's interval grid
/// (1–12 s in 1 s steps, then 14–24 s in 2 s steps).
pub fn sweep(cfg: &RrcConfig, transfer: SimDuration) -> Vec<CyclePoint> {
    paper_intervals()
        .into_iter()
        .map(|s| compare_at_interval(cfg, SimDuration::from_secs_f64(s), transfer))
        .collect()
}

/// The x-axis grid of the paper's Fig. 3.
pub fn paper_intervals() -> Vec<f64> {
    let mut v: Vec<f64> = (1..=12).map(f64::from).collect();
    v.extend((7..=12).map(|i| f64::from(i * 2)));
    v
}

/// Finds the smallest interval (0.25 s resolution) at which the intuitive
/// approach starts saving power. The paper measures 9 s.
pub fn break_even(cfg: &RrcConfig, transfer: SimDuration) -> f64 {
    let mut interval = transfer.as_secs_f64() + 0.25;
    while interval < 60.0 {
        let p = compare_at_interval(cfg, SimDuration::from_secs_f64(interval), transfer);
        if p.saving_j > 0.0 {
            return interval;
        }
        interval += 0.25;
    }
    f64::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_second() -> SimDuration {
        SimDuration::from_millis(500)
    }

    #[test]
    fn intuitive_loses_at_short_intervals() {
        let cfg = RrcConfig::paper();
        let p = compare_at_interval(&cfg, SimDuration::from_secs(2), half_second());
        assert!(p.saving_j < 0.0, "saving at 2 s should be negative: {p:?}");
        let p4 = compare_at_interval(&cfg, SimDuration::from_secs(4), half_second());
        assert!(
            p4.saving_j < 0.0,
            "saving at 4 s should be negative: {p4:?}"
        );
    }

    #[test]
    fn intuitive_wins_at_long_intervals() {
        let cfg = RrcConfig::paper();
        let p = compare_at_interval(&cfg, SimDuration::from_secs(15), half_second());
        assert!(p.saving_j > 0.0, "saving at 15 s should be positive: {p:?}");
    }

    #[test]
    fn break_even_matches_paper_nine_seconds() {
        let cfg = RrcConfig::paper();
        let be = break_even(&cfg, half_second());
        assert!(
            (8.0..=10.0).contains(&be),
            "break-even should be ≈9 s as in Fig. 3, got {be}"
        );
    }

    #[test]
    fn extra_delay_matches_promotion_latency() {
        let cfg = RrcConfig::paper();
        // At a short interval the original stays connected (no delay),
        // while the intuitive approach pays the full cold promotion.
        let p = compare_at_interval(&cfg, SimDuration::from_secs(3), half_second());
        assert!(
            (p.extra_delay_s - 1.75).abs() < 1e-6,
            "extra delay should be the 1.75 s promotion: {p:?}"
        );
    }

    #[test]
    fn saving_is_monotone_over_the_sweep() {
        let cfg = RrcConfig::paper();
        let series = sweep(&cfg, half_second());
        assert_eq!(series.len(), paper_intervals().len());
        for w in series.windows(2) {
            assert!(
                w[1].saving_j >= w[0].saving_j - 1e-9,
                "saving should be non-decreasing: {w:?}"
            );
        }
    }

    #[test]
    fn saving_saturates_past_t2() {
        // Once the interval exceeds T1+T2 both approaches reach IDLE and
        // the saving flattens.
        let cfg = RrcConfig::paper();
        let a = compare_at_interval(&cfg, SimDuration::from_secs(22), half_second());
        let b = compare_at_interval(&cfg, SimDuration::from_secs(24), half_second());
        assert!((a.saving_j - b.saving_j).abs() < 0.05, "{a:?} vs {b:?}");
    }

    #[test]
    fn original_energy_at_24s_matches_hand_model() {
        // Past T1+T2 the original pays promotion + tx + full tails + idle.
        let cfg = RrcConfig::paper();
        let p = compare_at_interval(&cfg, SimDuration::from_secs(24), half_second());
        let expected = 7.0 // promotion
            + 0.5 * 1.25 // transfer
            + 4.0 * 1.15 // T1 tail
            + 15.0 * 0.63 // T2 tail
            + (24.0 - 0.5 - 19.0) * 0.15; // idle remainder
        assert!(
            (p.original_j - expected).abs() < 0.1,
            "got {} expected {expected}",
            p.original_j
        );
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn rejects_interval_shorter_than_transfer() {
        compare_at_interval(
            &RrcConfig::paper(),
            SimDuration::from_millis(400),
            half_second(),
        );
    }
}
