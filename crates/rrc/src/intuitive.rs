//! The §3.1 motivation experiment (Fig. 3 of the paper), plus the
//! *intuitive reference interpreter* used by the `ewb-check` differential
//! oracle.
//!
//! The "intuitive" power-saving idea is to drop the radio to IDLE
//! immediately after every data transmission. The paper shows this
//! backfires when transmissions are frequent: re-establishing the signaling
//! connection costs energy (and ≈1.75 s of delay), so the intuitive
//! approach only wins once the transmission interval exceeds **9 seconds**.
//!
//! [`compare_at_interval`] simulates steady-state cycles of both approaches
//! on the same [`RrcMachine`] model; [`sweep`] produces the full Fig. 3
//! series and [`break_even`] locates the crossover.
//!
//! [`ReferenceRrc`] is an independent, straight-line re-implementation of
//! the paper's Fig. 2 RRC semantics, written for obviousness rather than
//! generality: no event queue, no recorder, no concurrent transfers — just
//! explicit gap-splitting at timer deadlines and `watts × seconds`
//! accrual. The `ewb-check` crate drives it in lock-step with
//! [`RrcMachine`] and flags any disagreement.

use crate::config::RrcConfig;
use crate::machine::{RrcCounters, RrcMachine, StateResidency, Transition};
use crate::state::RrcState;
use ewb_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One Fig. 3 data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CyclePoint {
    /// Transmission interval (time between starts of consecutive
    /// transmissions in the original approach), seconds.
    pub interval_s: f64,
    /// Steady-state energy per cycle of the original (timer-driven)
    /// approach, joules.
    pub original_j: f64,
    /// Steady-state energy per cycle of the intuitive (always-release)
    /// approach, joules.
    pub intuitive_j: f64,
    /// `original_j - intuitive_j`; positive means the intuitive approach
    /// saves power.
    pub saving_j: f64,
    /// Extra per-transfer delay of the intuitive approach, seconds
    /// (≈ the IDLE→DCH promotion latency).
    pub extra_delay_s: f64,
}

/// Simulates both approaches at one transmission interval.
///
/// `transfer` is the duration of each data transmission (the paper sends
/// 1 KB; ~0.5 s including round trips). The returned energies are measured
/// over a steady-state cycle, i.e. after both machines have settled into
/// their periodic pattern.
///
/// # Panics
///
/// Panics if `interval <= transfer` (the next transmission would start
/// before the previous one finished) or if `cfg` is invalid.
pub fn compare_at_interval(
    cfg: &RrcConfig,
    interval: SimDuration,
    transfer: SimDuration,
) -> CyclePoint {
    assert!(
        interval > transfer,
        "transmission interval {interval} must exceed the transfer duration {transfer}"
    );
    let gap = interval - transfer;
    let (original_j, orig_delay) = run_cycles(cfg, gap, transfer, false);
    let (intuitive_j, int_delay) = run_cycles(cfg, gap, transfer, true);
    CyclePoint {
        interval_s: interval.as_secs_f64(),
        original_j,
        intuitive_j,
        saving_j: original_j - intuitive_j,
        extra_delay_s: int_delay - orig_delay,
    }
}

/// Runs `n` cycles of "transfer, (maybe release), wait `gap`" and returns
/// the energy of the second-to-last cycle (steady state) plus the mean
/// promotion delay over the measured cycles.
fn run_cycles(
    cfg: &RrcConfig,
    gap: SimDuration,
    transfer: SimDuration,
    release_after_each: bool,
) -> (f64, f64) {
    const CYCLES: usize = 5;
    let mut m = RrcMachine::new(*cfg, SimTime::ZERO);
    let mut request_marks = Vec::with_capacity(CYCLES + 1);
    let mut delays = Vec::with_capacity(CYCLES);
    let mut t = SimTime::ZERO;
    for _ in 0..CYCLES {
        request_marks.push(t);
        let data_start = m.begin_transfer(t, true);
        delays.push((data_start - t).as_secs_f64());
        let data_end = data_start + transfer;
        m.end_transfer(data_end);
        if release_after_each {
            m.release_to_idle(data_end);
        }
        t = data_end + gap;
    }
    request_marks.push(t);
    m.advance_to(t);
    // Second-to-last full cycle: cold-start effects are gone, and the
    // cycle's trailing promotion (if the next request finds IDLE) is
    // attributed to the next cycle's window consistently for both modes.
    let j = m
        .meter()
        .joules_between(request_marks[CYCLES - 2], request_marks[CYCLES - 1]);
    // Steady-state delay: the last transfer's promotion wait.
    (j, *delays.last().expect("at least one cycle"))
}

/// Produces the Fig. 3 series over the paper's interval grid
/// (1–12 s in 1 s steps, then 14–24 s in 2 s steps).
pub fn sweep(cfg: &RrcConfig, transfer: SimDuration) -> Vec<CyclePoint> {
    paper_intervals()
        .into_iter()
        .map(|s| compare_at_interval(cfg, SimDuration::from_secs_f64(s), transfer))
        .collect()
}

/// The x-axis grid of the paper's Fig. 3.
pub fn paper_intervals() -> Vec<f64> {
    let mut v: Vec<f64> = (1..=12).map(f64::from).collect();
    v.extend((7..=12).map(|i| f64::from(i * 2)));
    v
}

/// Finds the smallest interval (0.25 s resolution) at which the intuitive
/// approach starts saving power. The paper measures 9 s.
pub fn break_even(cfg: &RrcConfig, transfer: SimDuration) -> f64 {
    let mut interval = transfer.as_secs_f64() + 0.25;
    while interval < 60.0 {
        let p = compare_at_interval(cfg, SimDuration::from_secs_f64(interval), transfer);
        if p.saving_j > 0.0 {
            return interval;
        }
        interval += 0.25;
    }
    f64::INFINITY
}

/// An obviously-correct reference interpreter of the Fig. 2 RRC
/// semantics, for differential testing against [`RrcMachine`].
///
/// The interpreter supports exactly the *sequential* stimulus alphabet
/// the `ewb-check` scenarios use — wait, one-at-a-time transfers, fast
/// dormancy, CPU-load changes — and reproduces the machine's observable
/// surface: state at step boundaries, transition log, counters,
/// residency, promotion `data_start` instants, and total energy.
///
/// Everything is written as straight-line arithmetic so the
/// implementation can be audited against the paper directly:
///
/// * T1 (DCH→FACH) and T2 (FACH→IDLE) arm when the last transfer ends
///   and are cancelled by any new data activity or fast dormancy;
/// * promotions cost their full latency up front at promotion power
///   (cold from IDLE) or DCH-hold power (warm FACH→DCH), scaled by
///   `retries + 1` failed-signaling attempts;
/// * energy is `Σ watts × seconds` over the piecewise-constant spans.
#[derive(Debug, Clone)]
pub struct ReferenceRrc {
    cfg: RrcConfig,
    now: SimTime,
    state: RrcState,
    t1: Option<SimTime>,
    t2: Option<SimTime>,
    cpu_load: f64,
    joules: f64,
    residency: StateResidency,
    transitions: Vec<Transition>,
    counters: RrcCounters,
}

impl ReferenceRrc {
    /// Creates a reference interpreter in IDLE at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RrcConfig::validate`].
    pub fn new(cfg: RrcConfig, start: SimTime) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid RrcConfig: {e}");
        }
        ReferenceRrc {
            cfg,
            now: start,
            state: RrcState::Idle,
            t1: None,
            t2: None,
            cpu_load: 0.0,
            joules: 0.0,
            residency: StateResidency::default(),
            transitions: Vec::new(),
            counters: RrcCounters::default(),
        }
    }

    /// Current interpreter time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current RRC state (never `Promoting` at a step boundary).
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// Total accrued energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.joules
    }

    /// Per-state residency so far.
    pub fn residency(&self) -> StateResidency {
        self.residency
    }

    /// Event counters so far.
    pub fn counters(&self) -> RrcCounters {
        self.counters
    }

    /// The recorded transitions, oldest first.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Lets time pass: fires any armed T1/T2 deadlines that fall inside
    /// the window, splitting the energy accrual at each.
    pub fn wait(&mut self, d: SimDuration) {
        let target = self.now + d;
        // Fig. 2: at most one inactivity timer is armed at a time; each
        // expiry demotes one step and may arm the next timer.
        while let Some(at) = self.t1.or(self.t2).filter(|at| *at <= target) {
            if self.t1.is_some() {
                self.accrue(at, self.cfg.power.watts(RrcState::Dch, false, 0.0));
                self.t1 = None;
                self.enter(at, RrcState::Fach);
                self.t2 = Some(at + self.cfg.t2);
                self.counters.t1_expirations += 1;
            } else {
                self.accrue(at, self.cfg.power.watts(RrcState::Fach, false, 0.0));
                self.t2 = None;
                self.enter(at, RrcState::Idle);
                self.counters.t2_expirations += 1;
            }
        }
        self.accrue(target, self.cfg.power.watts(self.state, false, 0.0));
    }

    /// Runs one complete transfer: request now, promote if needed
    /// (`retries` failed signaling attempts each cost one extra full
    /// promotion window), move data for `duration`, re-arm the
    /// inactivity timer of the state the data rode in. Returns the
    /// instant data started flowing (the machine's `data_start`).
    pub fn transfer(&mut self, needs_dch: bool, duration: SimDuration, retries: u32) -> SimTime {
        self.counters.transfers += 1;
        // Any data activity cancels the inactivity timers.
        self.t1 = None;
        self.t2 = None;
        let attempts = u64::from(retries) + 1;
        let data_start = match (self.state, needs_dch) {
            (RrcState::Dch, _) | (RrcState::Fach, false) => self.now,
            (RrcState::Fach, true) => {
                // Warm promotion: reuses the signaling connection at
                // DCH-hold power.
                self.counters.fach_to_dch += 1;
                self.counters.promotion_retries += u64::from(retries);
                self.promote(
                    RrcState::Dch,
                    self.cfg.fach_to_dch_latency * attempts,
                    self.cfg.power.dch_hold_w,
                )
            }
            (RrcState::Idle, true) => {
                self.counters.idle_to_dch += 1;
                self.counters.promotion_retries += u64::from(retries);
                self.promote(
                    RrcState::Dch,
                    self.cfg.idle_to_dch_latency * attempts,
                    self.cfg.power.promotion_w,
                )
            }
            (RrcState::Idle, false) => {
                self.counters.idle_to_fach += 1;
                self.counters.promotion_retries += u64::from(retries);
                self.promote(
                    RrcState::Fach,
                    self.cfg.idle_to_fach_latency * attempts,
                    self.cfg.power.promotion_w,
                )
            }
            (RrcState::Promoting, _) => {
                unreachable!("sequential driving never observes Promoting at a step boundary")
            }
        };
        let end = data_start + duration;
        self.accrue(end, self.cfg.power.watts(self.state, true, 0.0));
        match self.state {
            RrcState::Dch => self.t1 = Some(end + self.cfg.t1),
            RrcState::Fach => self.t2 = Some(end + self.cfg.t2),
            _ => unreachable!("transfer ended in {}", self.state),
        }
        data_start
    }

    /// Fast dormancy: release the signaling connection and drop to IDLE
    /// after [`RrcConfig::release_latency`] at the current state's
    /// power. A no-op in IDLE. Returns the instant IDLE is reached.
    pub fn release(&mut self) -> SimTime {
        if self.state == RrcState::Idle {
            return self.now;
        }
        let done = self.now + self.cfg.release_latency;
        self.accrue(done, self.cfg.power.watts(self.state, false, 0.0));
        self.t1 = None;
        self.t2 = None;
        self.enter(done, RrcState::Idle);
        self.counters.fast_dormancy_releases += 1;
        done
    }

    /// Sets the simulated CPU load in `[0, 1]`, effective immediately.
    pub fn set_cpu_load(&mut self, load: f64) {
        self.cpu_load = load.clamp(0.0, crate::power::MAX_CPU_CORES);
    }

    fn promote(&mut self, target: RrcState, latency: SimDuration, watts: f64) -> SimTime {
        let requested = self.now;
        let done = requested + latency;
        self.enter(requested, RrcState::Promoting);
        self.accrue(done, watts);
        self.enter(done, target);
        done
    }

    fn accrue(&mut self, to: SimTime, base_watts: f64) {
        if to > self.now {
            let d = to - self.now;
            let watts = base_watts + self.cfg.power.cpu_full_extra_w * self.cpu_load;
            self.joules += watts * d.as_secs_f64();
            match self.state {
                RrcState::Idle => self.residency.idle += d,
                RrcState::Promoting => self.residency.promoting += d,
                RrcState::Fach => self.residency.fach += d,
                RrcState::Dch => self.residency.dch += d,
            }
            self.now = to;
        }
    }

    fn enter(&mut self, at: SimTime, to: RrcState) {
        if self.state != to {
            self.transitions.push(Transition {
                at,
                from: self.state,
                to,
            });
            self.state = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_second() -> SimDuration {
        SimDuration::from_millis(500)
    }

    #[test]
    fn intuitive_loses_at_short_intervals() {
        let cfg = RrcConfig::paper();
        let p = compare_at_interval(&cfg, SimDuration::from_secs(2), half_second());
        assert!(p.saving_j < 0.0, "saving at 2 s should be negative: {p:?}");
        let p4 = compare_at_interval(&cfg, SimDuration::from_secs(4), half_second());
        assert!(
            p4.saving_j < 0.0,
            "saving at 4 s should be negative: {p4:?}"
        );
    }

    #[test]
    fn intuitive_wins_at_long_intervals() {
        let cfg = RrcConfig::paper();
        let p = compare_at_interval(&cfg, SimDuration::from_secs(15), half_second());
        assert!(p.saving_j > 0.0, "saving at 15 s should be positive: {p:?}");
    }

    #[test]
    fn break_even_matches_paper_nine_seconds() {
        let cfg = RrcConfig::paper();
        let be = break_even(&cfg, half_second());
        assert!(
            (8.0..=10.0).contains(&be),
            "break-even should be ≈9 s as in Fig. 3, got {be}"
        );
    }

    #[test]
    fn extra_delay_matches_promotion_latency() {
        let cfg = RrcConfig::paper();
        // At a short interval the original stays connected (no delay),
        // while the intuitive approach pays the full cold promotion.
        let p = compare_at_interval(&cfg, SimDuration::from_secs(3), half_second());
        assert!(
            (p.extra_delay_s - 1.75).abs() < 1e-6,
            "extra delay should be the 1.75 s promotion: {p:?}"
        );
    }

    #[test]
    fn saving_is_monotone_over_the_sweep() {
        let cfg = RrcConfig::paper();
        let series = sweep(&cfg, half_second());
        assert_eq!(series.len(), paper_intervals().len());
        for w in series.windows(2) {
            assert!(
                w[1].saving_j >= w[0].saving_j - 1e-9,
                "saving should be non-decreasing: {w:?}"
            );
        }
    }

    #[test]
    fn saving_saturates_past_t2() {
        // Once the interval exceeds T1+T2 both approaches reach IDLE and
        // the saving flattens.
        let cfg = RrcConfig::paper();
        let a = compare_at_interval(&cfg, SimDuration::from_secs(22), half_second());
        let b = compare_at_interval(&cfg, SimDuration::from_secs(24), half_second());
        assert!((a.saving_j - b.saving_j).abs() < 0.05, "{a:?} vs {b:?}");
    }

    #[test]
    fn original_energy_at_24s_matches_hand_model() {
        // Past T1+T2 the original pays promotion + tx + full tails + idle.
        let cfg = RrcConfig::paper();
        let p = compare_at_interval(&cfg, SimDuration::from_secs(24), half_second());
        let expected = 7.0 // promotion
            + 0.5 * 1.25 // transfer
            + 4.0 * 1.15 // T1 tail
            + 15.0 * 0.63 // T2 tail
            + (24.0 - 0.5 - 19.0) * 0.15; // idle remainder
        assert!(
            (p.original_j - expected).abs() < 0.1,
            "got {} expected {expected}",
            p.original_j
        );
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn rejects_interval_shorter_than_transfer() {
        compare_at_interval(
            &RrcConfig::paper(),
            SimDuration::from_millis(400),
            half_second(),
        );
    }

    #[test]
    fn reference_interpreter_replays_the_timer_cascade() {
        let mut r = ReferenceRrc::new(RrcConfig::paper(), SimTime::ZERO);
        let ds = r.transfer(true, SimDuration::from_secs(2), 0);
        assert_eq!(ds, SimTime::from_secs_f64(1.75));
        assert_eq!(r.state(), RrcState::Dch);
        r.wait(SimDuration::from_secs(25));
        assert_eq!(r.state(), RrcState::Idle);
        assert_eq!(r.counters().t1_expirations, 1);
        assert_eq!(r.counters().t2_expirations, 1);
        let expected = 7.0 + 2.0 * 1.25 + 4.0 * 1.15 + 15.0 * 0.63 + 6.0 * 0.15;
        assert!((r.energy_j() - expected).abs() < 1e-6, "{}", r.energy_j());
        assert_eq!(r.residency().total(), SimDuration::from_secs_f64(28.75));
    }

    #[test]
    fn reference_agrees_with_machine_on_a_mixed_scenario() {
        let cfg = RrcConfig::paper();
        let mut m = RrcMachine::new(cfg, SimTime::ZERO);
        let mut r = ReferenceRrc::new(cfg, SimTime::ZERO);

        // transfer → partial tail → small FACH transfer → dormancy → idle.
        let half = SimDuration::from_millis(500);
        let ds_m = m.begin_transfer_with_promotion_retries(m.now(), true, 1);
        m.end_transfer(ds_m + half);
        let ds_r = r.transfer(true, half, 1);
        assert_eq!(ds_m, ds_r);

        m.advance_to(m.now() + SimDuration::from_secs(6));
        r.wait(SimDuration::from_secs(6));
        assert_eq!(m.state(), r.state());
        assert_eq!(m.state(), RrcState::Fach);

        let ds_m = m.begin_transfer(m.now(), false);
        m.end_transfer(ds_m + half);
        r.transfer(false, half, 0);

        m.release_to_idle(m.now());
        r.release();

        m.advance_to(m.now() + SimDuration::from_secs(5));
        r.wait(SimDuration::from_secs(5));

        assert_eq!(m.now(), r.now());
        assert_eq!(m.state(), r.state());
        assert_eq!(m.counters(), r.counters());
        assert_eq!(m.residency(), r.residency());
        assert_eq!(m.transitions(), r.transitions());
        assert!((m.energy_j() - r.energy_j()).abs() < 1e-9);
    }
}
