//! Downward-cascade radio machines: LTE DRX, WiFi PSM, and 5G cDRX.
//!
//! Every post-3G radio in scope shares one shape: a ladder of sleep
//! levels with the full-rate state on top. Data can only flow at the top
//! level; inactivity walks the radio down one level at a time (each level
//! has its own dwell timer); a transfer request from any lower level
//! promotes straight to the top after a wake latency. Duty-cycled levels
//! (DRX, PSM beacons, cDRX) are modeled with their *cycle-averaged*
//! power — exact for energy, and it keeps the event count per simulated
//! second O(stimuli) instead of O(beacons), which is what lets the
//! `ewb-check` exhaustive explorer drive these machines at depth 6. The
//! integer wakeup count per level is still recoverable exactly from
//! residency ([`LadderMachine::cycle_wakeups`]).
//!
//! [`LadderMachine`] is the table-driven interpreter of a [`LadderSpec`];
//! the marker types [`Lte`], [`Wifi`], and [`FiveG`] lower their
//! named-field configs ([`LteConfig`], [`WifiConfig`], [`FiveGConfig`])
//! into specs. `ewb-check` holds independent straight-line reference
//! interpreters for each backend — this file is the implementation under
//! test, not the oracle.

use crate::backend::{RadioBackend, RadioModel};
use ewb_obs::{Event as ObsEvent, RadioState as ObsState, Recorder, Timer as ObsTimer};
use ewb_simcore::{EnergyMeter, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::marker::PhantomData;

/// The maximum ladder depth any backend uses (LTE: IDLE, long DRX, short
/// DRX, CONNECTED).
pub const MAX_LEVELS: usize = 4;

/// Cycle-averaged power of a duty-cycled sleep level: `on_w` for `on_s`
/// out of every `cycle_s`, the sleep floor `sleep_w` for the rest. Both
/// the ladder machines and the `ewb-check` reference interpreters call
/// this, so their energy arithmetic agrees bit-for-bit.
pub fn duty_cycle_avg_w(on_w: f64, sleep_w: f64, on_s: f64, cycle_s: f64) -> f64 {
    let on_j = on_w * on_s;
    let sleep_j = sleep_w * (cycle_s - on_s);
    (on_j + sleep_j) / cycle_s
}

/// The lowered, table form of a ladder backend: level 0 is the deepest
/// sleep, level `n_levels - 1` is the only transmit-capable state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderSpec {
    /// Which radio technology this spec models.
    pub backend: RadioBackend,
    /// Number of levels in use (2..=[`MAX_LEVELS`]).
    pub n_levels: usize,
    /// Stable level names, deepest first (unused slots empty).
    pub level_names: [&'static str; MAX_LEVELS],
    /// The `ewb-obs` state each level reports.
    pub obs_states: [ObsState; MAX_LEVELS],
    /// Cycle-averaged hold power per level, watts.
    pub level_w: [f64; MAX_LEVELS],
    /// DRX/beacon cycle length per level; `ZERO` = continuous (no duty
    /// cycling at this level).
    pub cycle: [SimDuration; MAX_LEVELS],
    /// Inactivity dwell before descending one level (level 0 unused).
    pub dwell: [SimDuration; MAX_LEVELS],
    /// Promotion latency from each level to the top (top slot unused).
    pub wake_latency: [SimDuration; MAX_LEVELS],
    /// Power during a promotion from each level, watts.
    pub wake_w: [f64; MAX_LEVELS],
    /// Top-level power while data is flowing, watts.
    pub active_tx_w: f64,
    /// Latency of an application-initiated release to level 0.
    pub release_latency: SimDuration,
    /// Extra power at full CPU load, watts (scaled by the load).
    pub cpu_full_extra_w: f64,
}

impl LadderSpec {
    /// Index of the transmit-capable top level.
    pub fn active(&self) -> usize {
        self.n_levels - 1
    }

    /// Structural validation: level count in range, powers finite and
    /// ordered (deeper never draws more than shallower), dwell timers and
    /// wake latencies positive where used.
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=MAX_LEVELS).contains(&self.n_levels) {
            return Err(format!("n_levels {} out of range 2..=4", self.n_levels));
        }
        let n = self.n_levels;
        for i in 0..n {
            let w = self.level_w[i];
            if !w.is_finite() || w < 0.0 {
                return Err(format!(
                    "level {i} ({}) power {w} invalid",
                    self.level_names[i]
                ));
            }
            if i > 0 {
                if self.level_w[i] < self.level_w[i - 1] {
                    return Err(format!(
                        "power must be non-decreasing up the ladder: level {i} ({}) draws {} < {}",
                        self.level_names[i],
                        self.level_w[i],
                        self.level_w[i - 1]
                    ));
                }
                if self.dwell[i].is_zero() {
                    return Err(format!(
                        "level {i} ({}) dwell must be positive",
                        self.level_names[i]
                    ));
                }
            }
            if i < n - 1 {
                if self.wake_latency[i].is_zero() {
                    return Err(format!(
                        "level {i} ({}) wake latency must be positive",
                        self.level_names[i]
                    ));
                }
                let ww = self.wake_w[i];
                if !ww.is_finite() || ww < 0.0 {
                    return Err(format!("level {i} wake power {ww} invalid"));
                }
            }
        }
        if !self.active_tx_w.is_finite() || self.active_tx_w < self.level_w[n - 1] {
            return Err(format!(
                "tx power {} must be at least the top hold power {}",
                self.active_tx_w,
                self.level_w[n - 1]
            ));
        }
        if !self.cpu_full_extra_w.is_finite() || self.cpu_full_extra_w < 0.0 {
            return Err(format!(
                "cpu_full_extra_w {} invalid",
                self.cpu_full_extra_w
            ));
        }
        if self.release_latency.is_zero() {
            return Err("release latency must be positive".into());
        }
        Ok(())
    }
}

/// A backend that lowers to a [`LadderSpec`].
pub trait LadderBackend {
    /// The backend's named-field configuration.
    type Config: Copy + fmt::Debug + PartialEq + Serialize;
    /// Which radio technology the backend models.
    const BACKEND: RadioBackend;
    /// Ladder depth (compile-time; the click-state dimension).
    const N_LEVELS: usize;
    /// Stable level names, deepest first.
    const LEVEL_NAMES: [&'static str; MAX_LEVELS];
    /// Validates the named-field config.
    fn validate(cfg: &Self::Config) -> Result<(), String>;
    /// Lowers the config into the table the machine interprets.
    fn spec(cfg: &Self::Config) -> LadderSpec;
}

/// Cumulative time per ladder level, plus promotion windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LadderResidency {
    /// Time at each level, deepest first (unused slots stay zero).
    pub levels: [SimDuration; MAX_LEVELS],
    /// Time inside promotion (wake) windows.
    pub promoting: SimDuration,
}

impl LadderResidency {
    /// Sum over all levels and promotion windows — equals elapsed time.
    pub fn total(&self) -> SimDuration {
        self.levels.iter().fold(self.promoting, |acc, &d| acc + d)
    }
}

/// Event counters of a ladder machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LadderCounters {
    /// Transfers requested.
    pub transfers: u64,
    /// Promotions (wakes) to the top level.
    pub promotions: u64,
    /// Failed promotion attempts retried by the signaling layer.
    pub promotion_retries: u64,
    /// Dwell-timer firings (one per single-level descent).
    pub dwell_expirations: u64,
    /// Application-initiated fast releases to level 0.
    pub releases: u64,
}

/// One recorded level change, in `ewb-obs` state vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderTransition {
    /// When the change took effect.
    pub at: SimTime,
    /// State before.
    pub from: ObsState,
    /// State after.
    pub to: ObsState,
}

/// A ladder radio machine: the table-driven interpreter of a
/// [`LadderSpec`], with the same exact energy metering discipline as
/// [`crate::RrcMachine`].
#[derive(Debug, Clone)]
pub struct LadderMachine<B: LadderBackend> {
    cfg: B::Config,
    spec: LadderSpec,
    meter: EnergyMeter,
    level: usize,
    /// `(end, from_level)` of an in-flight promotion.
    promotion: Option<(SimTime, usize)>,
    dwell_deadline: Option<SimTime>,
    active_transfers: u32,
    cpu_load: f64,
    residency: LadderResidency,
    transitions: Vec<LadderTransition>,
    counters: LadderCounters,
    recorder: Recorder,
    _backend: PhantomData<B>,
}

impl<B: LadderBackend> LadderMachine<B> {
    /// Creates a machine at level 0 (deepest sleep) at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`LadderBackend::validate`].
    pub fn new(cfg: B::Config, start: SimTime) -> Self {
        Self::with_recorder(cfg, start, Recorder::disabled())
    }

    /// Like [`LadderMachine::new`] with structured-event tracing.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`LadderBackend::validate`].
    pub fn with_recorder(cfg: B::Config, start: SimTime, recorder: Recorder) -> Self {
        if let Err(e) = B::validate(&cfg) {
            panic!("invalid {} config: {e}", B::BACKEND);
        }
        let spec = B::spec(&cfg);
        debug_assert_eq!(spec.n_levels, B::N_LEVELS);
        if let Err(e) = spec.validate() {
            panic!("invalid {} ladder spec: {e}", B::BACKEND);
        }
        LadderMachine {
            cfg,
            spec,
            meter: EnergyMeter::new(start),
            level: 0,
            promotion: None,
            dwell_deadline: None,
            active_transfers: 0,
            cpu_load: 0.0,
            residency: LadderResidency::default(),
            transitions: Vec::new(),
            counters: LadderCounters::default(),
            recorder,
            _backend: PhantomData,
        }
    }

    /// Replaces the machine's recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The machine's configuration.
    pub fn config(&self) -> &B::Config {
        &self.cfg
    }

    /// The lowered spec the machine interprets.
    pub fn spec(&self) -> &LadderSpec {
        &self.spec
    }

    /// The machine's current time.
    pub fn now(&self) -> SimTime {
        self.meter.now()
    }

    /// The current level (0 = deepest sleep), regardless of any in-flight
    /// promotion.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Whether a promotion (wake) is in flight.
    pub fn is_promoting(&self) -> bool {
        self.promotion.is_some()
    }

    /// Whether any transfer is currently requested/active.
    pub fn is_transferring(&self) -> bool {
        self.active_transfers > 0
    }

    /// The embedded energy meter (read access).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Total energy so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.meter.total_joules()
    }

    /// Per-level residency so far.
    pub fn residency(&self) -> LadderResidency {
        self.residency
    }

    /// Event counters so far.
    pub fn counters(&self) -> LadderCounters {
        self.counters
    }

    /// The recorded level changes, oldest first.
    pub fn transitions(&self) -> &[LadderTransition] {
        &self.transitions
    }

    /// Completed duty cycles (beacon/DRX wakeups) spent at `level`,
    /// recovered exactly from integer-microsecond residency. Zero for
    /// continuous (non-cycled) levels.
    pub fn cycle_wakeups(&self, level: usize) -> u64 {
        let cycle = self.spec.cycle[level];
        if cycle.is_zero() {
            0
        } else {
            self.residency.levels[level].as_micros() / cycle.as_micros()
        }
    }

    /// A short, stable name of the current state.
    pub fn state_label(&self) -> &'static str {
        if self.promotion.is_some() {
            "PROMOTING"
        } else {
            self.spec.level_names[self.level]
        }
    }

    fn display_state(&self) -> ObsState {
        if self.promotion.is_some() {
            ObsState::Promoting
        } else {
            self.spec.obs_states[self.level]
        }
    }

    /// Instantaneous power draw right now, watts.
    pub fn current_watts(&self) -> f64 {
        let w = if let Some((_, from)) = self.promotion {
            self.spec.wake_w[from]
        } else if self.level == self.spec.active() && self.active_transfers > 0 {
            self.spec.active_tx_w
        } else {
            self.spec.level_w[self.level]
        };
        w + self.spec.cpu_full_extra_w * self.cpu_load
    }

    /// Sets the simulated CPU load in `[0, 1]`, effective from `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the machine's past.
    pub fn set_cpu_load(&mut self, t: SimTime, load: f64) {
        self.advance_to(t);
        self.cpu_load = load.clamp(0.0, crate::power::MAX_CPU_CORES);
    }

    /// Advances virtual time to `t`, firing promotions and dwell timers
    /// along the way and integrating energy.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the machine's past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now(),
            "LadderMachine cannot move backwards: {} -> {}",
            self.now(),
            t
        );
        loop {
            match self.next_pending() {
                Some(te) if te <= t => {
                    self.integrate_to(te);
                    self.apply_pending(te);
                }
                _ => {
                    self.integrate_to(t);
                    return;
                }
            }
        }
    }

    /// Requests a data transfer at `t`; see
    /// [`RadioModel::begin_transfer_with_promotion_retries`]. Ladder
    /// backends have no shared-channel trickle path, so `needs_fast` is
    /// accepted for interface parity but every transfer uses the top
    /// level.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the machine's past.
    pub fn begin_transfer_with_promotion_retries(
        &mut self,
        t: SimTime,
        _needs_fast: bool,
        retries: u32,
    ) -> SimTime {
        self.advance_to(t);
        self.counters.transfers += 1;
        self.dwell_deadline = None;
        self.active_transfers += 1;
        if let Some((end, _)) = self.promotion {
            // Join the in-flight wake; data flows when it completes.
            return end;
        }
        if self.level == self.spec.active() {
            return t;
        }
        let attempts = u64::from(retries) + 1;
        let from = self.level;
        self.counters.promotions += 1;
        self.counters.promotion_retries += u64::from(retries);
        let end = t + self.spec.wake_latency[from] * attempts;
        self.promotion = Some((end, from));
        let target = self.spec.obs_states[self.spec.active()];
        let from_obs = self.spec.obs_states[from];
        self.recorder.emit_with(|| ObsEvent::PromotionStart {
            at: t,
            from: from_obs,
            target,
            done: end,
            retries,
        });
        self.note_transition(t, ObsState::Promoting);
        end
    }

    /// Marks one transfer as finished at `t`. When the last active
    /// transfer ends, the top level's dwell timer is armed.
    ///
    /// # Panics
    ///
    /// Panics if no transfer is active, `t` is in the machine's past, or
    /// `t` precedes the data-start instant (still promoting).
    pub fn end_transfer(&mut self, t: SimTime) {
        self.advance_to(t);
        assert!(
            self.active_transfers > 0,
            "end_transfer without begin_transfer"
        );
        assert!(
            self.promotion.is_none(),
            "end_transfer at {t} while still promoting — ended before its data_start"
        );
        debug_assert_eq!(
            self.level,
            self.spec.active(),
            "transfers only run at the top level"
        );
        self.active_transfers -= 1;
        if self.active_transfers == 0 {
            self.dwell_deadline = Some(t + self.spec.dwell[self.level]);
        }
    }

    /// Fast release: the application asks the radio to drop straight to
    /// level 0. The release signaling takes the spec's release latency at
    /// the current level's power. Returns the instant level 0 is reached;
    /// a no-op returning `t` when already there.
    ///
    /// # Panics
    ///
    /// Panics if a transfer is active or a promotion is in flight.
    pub fn release_to_idle(&mut self, t: SimTime) -> SimTime {
        self.advance_to(t);
        assert!(
            self.active_transfers == 0,
            "cannot release while a transfer is active"
        );
        assert!(
            self.promotion.is_none(),
            "cannot release during a promotion"
        );
        if self.level == 0 {
            return t;
        }
        let done = t + self.spec.release_latency;
        self.integrate_to(done);
        self.dwell_deadline = None;
        self.recorder
            .emit_with(|| ObsEvent::FastDormancy { at: t, done });
        self.set_level(done, 0);
        self.counters.releases += 1;
        done
    }

    fn next_pending(&self) -> Option<SimTime> {
        // Invariant: a promotion and a dwell timer are never armed
        // together (begin_transfer cancels the dwell; the dwell only arms
        // after the promotion resolved).
        if let Some((end, _)) = self.promotion {
            return Some(end);
        }
        self.dwell_deadline
    }

    fn apply_pending(&mut self, te: SimTime) {
        if let Some((end, _)) = self.promotion {
            debug_assert_eq!(end, te);
            self.promotion = None;
            self.set_level(te, self.spec.active());
            if self.active_transfers == 0 {
                // Promotion finished but the requester vanished — cannot
                // happen through the public API, but arm the dwell
                // defensively so the radio does not hang at the top.
                self.dwell_deadline = Some(te + self.spec.dwell[self.level]);
            }
            return;
        }
        // Dwell expiry: descend one level.
        debug_assert!(self.level > 0, "level 0 has no dwell timer");
        debug_assert_eq!(self.active_transfers, 0);
        self.dwell_deadline = None;
        self.recorder.emit_with(|| ObsEvent::TimerExpired {
            at: te,
            timer: ObsTimer::Dwell,
        });
        let next = self.level - 1;
        self.set_level(te, next);
        if next > 0 {
            self.dwell_deadline = Some(te + self.spec.dwell[next]);
        }
        self.counters.dwell_expirations += 1;
    }

    fn integrate_to(&mut self, t: SimTime) {
        let watts = self.current_watts();
        let before = self.now();
        if t > before {
            let d = t - before;
            if self.promotion.is_some() {
                self.residency.promoting += d;
            } else {
                self.residency.levels[self.level] += d;
            }
            self.meter.advance_to(t, watts);
            // Energy-ledger entry: same arithmetic, same operands as the
            // meter's addend, so folding the ledger in emission order is
            // bit-identical to the meter's total.
            let state = self.display_state();
            self.recorder.emit_with(|| ObsEvent::EnergySegment {
                start: before,
                end: t,
                state,
                watts,
                joules: watts * (t - before).as_secs_f64(),
            });
        }
    }

    fn set_level(&mut self, at: SimTime, to: usize) {
        self.level = to;
        self.note_transition(at, self.display_state());
    }

    fn note_transition(&mut self, at: SimTime, to: ObsState) {
        let from = match self.transitions.last() {
            Some(t) => t.to,
            None => self.spec.obs_states[0],
        };
        if from != to {
            self.transitions.push(LadderTransition { at, from, to });
            self.recorder
                .emit_with(|| ObsEvent::StateTransition { at, from, to });
        }
    }
}

impl<B: LadderBackend> RadioModel for LadderMachine<B> {
    type Config = B::Config;
    type Counters = LadderCounters;

    const BACKEND: RadioBackend = B::BACKEND;

    fn validate_config(cfg: &B::Config) -> Result<(), String> {
        B::validate(cfg)?;
        B::spec(cfg).validate()
    }

    fn with_recorder(cfg: B::Config, start: SimTime, recorder: Recorder) -> Self {
        LadderMachine::with_recorder(cfg, start, recorder)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        LadderMachine::set_recorder(self, recorder);
    }

    fn config(&self) -> &B::Config {
        LadderMachine::config(self)
    }

    fn now(&self) -> SimTime {
        LadderMachine::now(self)
    }

    fn advance_to(&mut self, t: SimTime) {
        LadderMachine::advance_to(self, t);
    }

    fn begin_transfer_with_promotion_retries(
        &mut self,
        t: SimTime,
        needs_fast: bool,
        retries: u32,
    ) -> SimTime {
        LadderMachine::begin_transfer_with_promotion_retries(self, t, needs_fast, retries)
    }

    fn end_transfer(&mut self, t: SimTime) {
        LadderMachine::end_transfer(self, t);
    }

    fn release_to_idle(&mut self, t: SimTime) -> SimTime {
        LadderMachine::release_to_idle(self, t)
    }

    fn set_cpu_load(&mut self, t: SimTime, load: f64) {
        LadderMachine::set_cpu_load(self, t, load);
    }

    fn is_transferring(&self) -> bool {
        LadderMachine::is_transferring(self)
    }

    fn energy_j(&self) -> f64 {
        LadderMachine::energy_j(self)
    }

    fn meter(&self) -> &EnergyMeter {
        LadderMachine::meter(self)
    }

    fn counters(&self) -> LadderCounters {
        LadderMachine::counters(self)
    }

    fn residency_total(&self) -> SimDuration {
        self.residency.total()
    }

    fn transfer_capable(&self) -> bool {
        self.promotion.is_none() && self.level == self.spec.active()
    }

    fn state_label(&self) -> &'static str {
        LadderMachine::state_label(self)
    }

    fn release_latency(cfg: &B::Config) -> SimDuration {
        B::spec(cfg).release_latency
    }

    fn needs_fast_channel(&self, _bytes: u64) -> bool {
        // No shared-channel trickle path: every transfer runs full-rate.
        true
    }

    fn uses_shared_channel_rate(&self, _needs_fast: bool) -> bool {
        false
    }

    fn click_state_count() -> usize {
        B::N_LEVELS
    }

    fn click_state_name(index: usize) -> &'static str {
        assert!(index < B::N_LEVELS, "click state {index} out of range");
        B::LEVEL_NAMES[index]
    }

    fn in_click_state(cfg: B::Config, index: usize) -> (Self, SimTime) {
        assert!(index < B::N_LEVELS, "click state {index} out of range");
        let mut machine = LadderMachine::new(cfg, SimTime::ZERO);
        let t0 = if index == 0 {
            SimTime::ZERO
        } else {
            // Ride a transfer to the top, then let the dwell cascade walk
            // down to the target level; click midway through its dwell.
            let data_start = machine.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 0);
            let end = data_start + SimDuration::from_millis(100);
            machine.end_transfer(end);
            let spec = *machine.spec();
            let mut t = end;
            for lvl in (index + 1..spec.n_levels).rev() {
                t += spec.dwell[lvl];
            }
            t + spec.dwell[index] / 2
        };
        machine.advance_to(t0);
        assert_eq!(
            machine.level(),
            index,
            "pre-drive must land at level {index} ({})",
            B::LEVEL_NAMES[index]
        );
        assert!(!machine.is_promoting());
        (machine, t0)
    }

    fn click_state_index(&self) -> usize {
        assert!(
            self.promotion.is_none(),
            "a click cannot find the radio mid-promotion: promotion windows only exist \
             inside page loads"
        );
        self.level
    }
}

// ---------------------------------------------------------------------------
// LTE: IDLE → long DRX → short DRX → CONNECTED.
// ---------------------------------------------------------------------------

/// LTE configuration: CONNECTED with short+long DRX cycles and an
/// inactivity cascade, calibrated to the 4G measurement literature
/// (≈260 ms idle→connected setup, ≈11.5 s connected tail, milliwatt-level
/// idle/DRX sleep floors, ≈1 W continuous reception).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LteConfig {
    /// RRC_IDLE floor power, watts.
    pub idle_w: f64,
    /// DRX sleep floor between on-durations, watts.
    pub sleep_w: f64,
    /// Receiver-on power (DRX on-durations and continuous RX), watts.
    pub on_w: f64,
    /// CONNECTED power while data is flowing, watts.
    pub tx_w: f64,
    /// Power during wake (promotion) signaling, watts.
    pub promotion_w: f64,
    /// Extra power at full CPU load, watts.
    pub cpu_full_extra_w: f64,
    /// Short DRX cycle length, seconds.
    pub short_cycle_s: f64,
    /// Receiver-on duration per short DRX cycle, seconds.
    pub short_on_s: f64,
    /// Long DRX cycle length, seconds.
    pub long_cycle_s: f64,
    /// Receiver-on duration per long DRX cycle, seconds.
    pub long_on_s: f64,
    /// Continuous-RX inactivity timer before entering short DRX, seconds.
    pub inactivity_s: f64,
    /// Short-DRX dwell before falling into long DRX, seconds.
    pub short_drx_s: f64,
    /// Long-DRX dwell (the RRC tail) before releasing to IDLE, seconds.
    pub long_drx_s: f64,
    /// IDLE→CONNECTED setup latency, seconds.
    pub idle_to_connected_s: f64,
    /// Wake latency from within a connected DRX level, seconds.
    pub drx_wake_s: f64,
    /// Application-initiated connection-release latency, seconds.
    pub release_latency_s: f64,
}

impl LteConfig {
    /// The calibrated default described on the type.
    pub fn calibrated() -> Self {
        LteConfig {
            idle_w: 0.015,
            sleep_w: 0.03,
            on_w: 1.0,
            tx_w: 1.28,
            promotion_w: 1.2,
            cpu_full_extra_w: 0.45,
            short_cycle_s: 0.02,
            short_on_s: 0.001,
            long_cycle_s: 0.32,
            long_on_s: 0.01,
            inactivity_s: 0.1,
            short_drx_s: 1.0,
            long_drx_s: 10.3,
            idle_to_connected_s: 0.26,
            drx_wake_s: 0.02,
            release_latency_s: 0.05,
        }
    }

    /// Cycle-averaged short-DRX power, watts.
    pub fn short_drx_avg_w(&self) -> f64 {
        duty_cycle_avg_w(self.on_w, self.sleep_w, self.short_on_s, self.short_cycle_s)
    }

    /// Cycle-averaged long-DRX power, watts.
    pub fn long_drx_avg_w(&self) -> f64 {
        duty_cycle_avg_w(self.on_w, self.sleep_w, self.long_on_s, self.long_cycle_s)
    }
}

impl Default for LteConfig {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Marker for the LTE ladder backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lte;

impl LadderBackend for Lte {
    type Config = LteConfig;
    const BACKEND: RadioBackend = RadioBackend::Lte;
    const N_LEVELS: usize = 4;
    const LEVEL_NAMES: [&'static str; MAX_LEVELS] = ["IDLE", "LONG_DRX", "SHORT_DRX", "CONNECTED"];

    fn validate(cfg: &LteConfig) -> Result<(), String> {
        for (name, v) in [
            ("short_cycle_s", cfg.short_cycle_s),
            ("long_cycle_s", cfg.long_cycle_s),
            ("inactivity_s", cfg.inactivity_s),
            ("short_drx_s", cfg.short_drx_s),
            ("long_drx_s", cfg.long_drx_s),
            ("idle_to_connected_s", cfg.idle_to_connected_s),
            ("drx_wake_s", cfg.drx_wake_s),
            ("release_latency_s", cfg.release_latency_s),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if cfg.short_on_s < 0.0 || cfg.short_on_s > cfg.short_cycle_s {
            return Err("short_on_s must lie within the short cycle".into());
        }
        if cfg.long_on_s < 0.0 || cfg.long_on_s > cfg.long_cycle_s {
            return Err("long_on_s must lie within the long cycle".into());
        }
        if !(cfg.sleep_w <= cfg.on_w && cfg.on_w <= cfg.tx_w) {
            return Err(format!(
                "power ordering sleep ({}) <= on ({}) <= tx ({}) violated",
                cfg.sleep_w, cfg.on_w, cfg.tx_w
            ));
        }
        Ok(())
    }

    fn spec(cfg: &LteConfig) -> LadderSpec {
        LadderSpec {
            backend: RadioBackend::Lte,
            n_levels: 4,
            level_names: Self::LEVEL_NAMES,
            obs_states: [
                ObsState::Idle,
                ObsState::LongDrx,
                ObsState::ShortDrx,
                ObsState::Connected,
            ],
            level_w: [
                cfg.idle_w,
                cfg.long_drx_avg_w(),
                cfg.short_drx_avg_w(),
                cfg.on_w,
            ],
            cycle: [
                SimDuration::ZERO,
                SimDuration::from_secs_f64(cfg.long_cycle_s),
                SimDuration::from_secs_f64(cfg.short_cycle_s),
                SimDuration::ZERO,
            ],
            dwell: [
                SimDuration::ZERO,
                SimDuration::from_secs_f64(cfg.long_drx_s),
                SimDuration::from_secs_f64(cfg.short_drx_s),
                SimDuration::from_secs_f64(cfg.inactivity_s),
            ],
            wake_latency: [
                SimDuration::from_secs_f64(cfg.idle_to_connected_s),
                SimDuration::from_secs_f64(cfg.drx_wake_s),
                SimDuration::from_secs_f64(cfg.drx_wake_s),
                SimDuration::ZERO,
            ],
            wake_w: [cfg.promotion_w, cfg.promotion_w, cfg.promotion_w, 0.0],
            active_tx_w: cfg.tx_w,
            release_latency: SimDuration::from_secs_f64(cfg.release_latency_s),
            cpu_full_extra_w: cfg.cpu_full_extra_w,
        }
    }
}

/// The LTE radio machine.
pub type LteMachine = LadderMachine<Lte>;

// ---------------------------------------------------------------------------
// WiFi: PSM → ACTIVE.
// ---------------------------------------------------------------------------

/// WiFi 802.11 configuration: active mode vs power-save mode with
/// beacon-interval wakeups (standard 102.4 ms beacons), calibrated to
/// paper-era handset WiFi measurements (~0.7 W active).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiConfig {
    /// PSM sleep floor between beacons, watts.
    pub psm_sleep_w: f64,
    /// Active-mode hold power, watts.
    pub active_w: f64,
    /// Active-mode power while data is flowing, watts.
    pub tx_w: f64,
    /// Power while waking out of PSM, watts.
    pub promotion_w: f64,
    /// Extra power at full CPU load, watts.
    pub cpu_full_extra_w: f64,
    /// Beacon interval (PSM duty cycle), seconds.
    pub beacon_interval_s: f64,
    /// Receiver-on duration per beacon, seconds.
    pub beacon_on_s: f64,
    /// Fixed wakeup overhead per beacon (radio bring-up), millijoules;
    /// amortized into the PSM cycle-average power.
    pub beacon_wake_mj: f64,
    /// Active-mode idle timeout before re-entering PSM, seconds.
    pub psm_timeout_s: f64,
    /// PSM→active wake latency, seconds.
    pub wake_latency_s: f64,
    /// Application-initiated PSM-entry latency, seconds.
    pub release_latency_s: f64,
}

impl WifiConfig {
    /// The calibrated default described on the type.
    pub fn calibrated() -> Self {
        WifiConfig {
            psm_sleep_w: 0.02,
            active_w: 0.72,
            tx_w: 1.0,
            promotion_w: 0.72,
            cpu_full_extra_w: 0.45,
            beacon_interval_s: 0.1024,
            beacon_on_s: 0.004,
            beacon_wake_mj: 1.2,
            psm_timeout_s: 0.2,
            wake_latency_s: 0.05,
            release_latency_s: 0.01,
        }
    }

    /// Cycle-averaged PSM power: the beacon duty cycle plus the
    /// per-beacon wakeup energy amortized over the interval, watts.
    pub fn psm_avg_w(&self) -> f64 {
        duty_cycle_avg_w(
            self.active_w,
            self.psm_sleep_w,
            self.beacon_on_s,
            self.beacon_interval_s,
        ) + self.beacon_wake_mj / 1000.0 / self.beacon_interval_s
    }
}

impl Default for WifiConfig {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Marker for the WiFi ladder backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wifi;

impl LadderBackend for Wifi {
    type Config = WifiConfig;
    const BACKEND: RadioBackend = RadioBackend::Wifi;
    const N_LEVELS: usize = 2;
    const LEVEL_NAMES: [&'static str; MAX_LEVELS] = ["PSM", "ACTIVE", "", ""];

    fn validate(cfg: &WifiConfig) -> Result<(), String> {
        for (name, v) in [
            ("beacon_interval_s", cfg.beacon_interval_s),
            ("psm_timeout_s", cfg.psm_timeout_s),
            ("wake_latency_s", cfg.wake_latency_s),
            ("release_latency_s", cfg.release_latency_s),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if cfg.beacon_on_s < 0.0 || cfg.beacon_on_s > cfg.beacon_interval_s {
            return Err("beacon_on_s must lie within the beacon interval".into());
        }
        if !cfg.beacon_wake_mj.is_finite() || cfg.beacon_wake_mj < 0.0 {
            return Err(format!(
                "beacon_wake_mj must be non-negative, got {}",
                cfg.beacon_wake_mj
            ));
        }
        if !(cfg.psm_sleep_w <= cfg.active_w && cfg.active_w <= cfg.tx_w) {
            return Err(format!(
                "power ordering sleep ({}) <= active ({}) <= tx ({}) violated",
                cfg.psm_sleep_w, cfg.active_w, cfg.tx_w
            ));
        }
        if cfg.psm_avg_w() > cfg.active_w {
            return Err("PSM cycle-average power exceeds active power".into());
        }
        Ok(())
    }

    fn spec(cfg: &WifiConfig) -> LadderSpec {
        LadderSpec {
            backend: RadioBackend::Wifi,
            n_levels: 2,
            level_names: Self::LEVEL_NAMES,
            obs_states: [
                ObsState::PsmSleep,
                ObsState::Connected,
                ObsState::Idle,
                ObsState::Idle,
            ],
            level_w: [cfg.psm_avg_w(), cfg.active_w, 0.0, 0.0],
            cycle: [
                SimDuration::from_secs_f64(cfg.beacon_interval_s),
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
            ],
            dwell: [
                SimDuration::ZERO,
                SimDuration::from_secs_f64(cfg.psm_timeout_s),
                SimDuration::ZERO,
                SimDuration::ZERO,
            ],
            wake_latency: [
                SimDuration::from_secs_f64(cfg.wake_latency_s),
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
            ],
            wake_w: [cfg.promotion_w, 0.0, 0.0, 0.0],
            active_tx_w: cfg.tx_w,
            release_latency: SimDuration::from_secs_f64(cfg.release_latency_s),
            cpu_full_extra_w: cfg.cpu_full_extra_w,
        }
    }
}

/// The WiFi radio machine.
pub type WifiMachine = LadderMachine<Wifi>;

// ---------------------------------------------------------------------------
// 5G: IDLE → cDRX → CONNECTED.
// ---------------------------------------------------------------------------

/// 5G NR configuration: connected-mode DRX with a fast release,
/// coefficients anchored to the SNIPPETS.md redime table
/// (`E_ACC_NET_5G = 0.1 × WIFI_ENERGY_PER_S` — "90 % more efficient than
/// WiFi"): the cDRX cycle-average power is pinned to one tenth of the
/// calibrated WiFi active power, while the instantaneous burst power is
/// high (NR radios draw more than LTE when actually transmitting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveGConfig {
    /// RRC_IDLE floor power, watts.
    pub idle_w: f64,
    /// cDRX sleep floor between on-durations, watts.
    pub cdrx_sleep_w: f64,
    /// CONNECTED hold power, watts.
    pub connected_w: f64,
    /// CONNECTED power while data is flowing, watts.
    pub tx_w: f64,
    /// Power during wake (promotion) signaling, watts.
    pub promotion_w: f64,
    /// Extra power at full CPU load, watts.
    pub cpu_full_extra_w: f64,
    /// cDRX cycle length, seconds.
    pub cdrx_cycle_s: f64,
    /// Receiver-on duration per cDRX cycle, seconds.
    pub cdrx_on_s: f64,
    /// CONNECTED inactivity timer before entering cDRX, seconds.
    pub inactivity_s: f64,
    /// cDRX tail before the fast release to IDLE, seconds. Much shorter
    /// than 3G's T1+T2 — the scenario where promotions are cheap *and*
    /// the tail is short is exactly what the cross-backend experiment
    /// probes.
    pub cdrx_tail_s: f64,
    /// IDLE→CONNECTED setup latency, seconds (NR setup is tens of ms).
    pub idle_to_connected_s: f64,
    /// Wake latency from within cDRX, seconds.
    pub cdrx_wake_s: f64,
    /// Application-initiated release latency, seconds.
    pub release_latency_s: f64,
}

impl FiveGConfig {
    /// The calibrated default described on the type. With these values
    /// `cdrx_avg_w()` ≈ 0.072 W ≈ 0.1 × the WiFi active power (0.72 W),
    /// the redime ratio.
    pub fn calibrated() -> Self {
        FiveGConfig {
            idle_w: 0.01,
            cdrx_sleep_w: 0.0179,
            connected_w: 1.1,
            tx_w: 1.8,
            promotion_w: 1.1,
            cpu_full_extra_w: 0.45,
            cdrx_cycle_s: 0.16,
            cdrx_on_s: 0.008,
            inactivity_s: 0.1,
            cdrx_tail_s: 2.0,
            idle_to_connected_s: 0.025,
            cdrx_wake_s: 0.008,
            release_latency_s: 0.01,
        }
    }

    /// Cycle-averaged cDRX power, watts.
    pub fn cdrx_avg_w(&self) -> f64 {
        duty_cycle_avg_w(
            self.connected_w,
            self.cdrx_sleep_w,
            self.cdrx_on_s,
            self.cdrx_cycle_s,
        )
    }
}

impl Default for FiveGConfig {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Marker for the 5G ladder backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiveG;

impl LadderBackend for FiveG {
    type Config = FiveGConfig;
    const BACKEND: RadioBackend = RadioBackend::FiveG;
    const N_LEVELS: usize = 3;
    const LEVEL_NAMES: [&'static str; MAX_LEVELS] = ["IDLE", "CDRX", "CONNECTED", ""];

    fn validate(cfg: &FiveGConfig) -> Result<(), String> {
        for (name, v) in [
            ("cdrx_cycle_s", cfg.cdrx_cycle_s),
            ("inactivity_s", cfg.inactivity_s),
            ("cdrx_tail_s", cfg.cdrx_tail_s),
            ("idle_to_connected_s", cfg.idle_to_connected_s),
            ("cdrx_wake_s", cfg.cdrx_wake_s),
            ("release_latency_s", cfg.release_latency_s),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if cfg.cdrx_on_s < 0.0 || cfg.cdrx_on_s > cfg.cdrx_cycle_s {
            return Err("cdrx_on_s must lie within the cDRX cycle".into());
        }
        if !(cfg.cdrx_sleep_w <= cfg.connected_w && cfg.connected_w <= cfg.tx_w) {
            return Err(format!(
                "power ordering sleep ({}) <= connected ({}) <= tx ({}) violated",
                cfg.cdrx_sleep_w, cfg.connected_w, cfg.tx_w
            ));
        }
        if cfg.idle_w > cfg.cdrx_avg_w() {
            return Err("idle power exceeds the cDRX cycle-average".into());
        }
        Ok(())
    }

    fn spec(cfg: &FiveGConfig) -> LadderSpec {
        LadderSpec {
            backend: RadioBackend::FiveG,
            n_levels: 3,
            level_names: Self::LEVEL_NAMES,
            obs_states: [
                ObsState::Idle,
                ObsState::Cdrx,
                ObsState::Connected,
                ObsState::Idle,
            ],
            level_w: [cfg.idle_w, cfg.cdrx_avg_w(), cfg.connected_w, 0.0],
            cycle: [
                SimDuration::ZERO,
                SimDuration::from_secs_f64(cfg.cdrx_cycle_s),
                SimDuration::ZERO,
                SimDuration::ZERO,
            ],
            dwell: [
                SimDuration::ZERO,
                SimDuration::from_secs_f64(cfg.cdrx_tail_s),
                SimDuration::from_secs_f64(cfg.inactivity_s),
                SimDuration::ZERO,
            ],
            wake_latency: [
                SimDuration::from_secs_f64(cfg.idle_to_connected_s),
                SimDuration::from_secs_f64(cfg.cdrx_wake_s),
                SimDuration::ZERO,
                SimDuration::ZERO,
            ],
            wake_w: [cfg.promotion_w, cfg.promotion_w, 0.0, 0.0],
            active_tx_w: cfg.tx_w,
            release_latency: SimDuration::from_secs_f64(cfg.release_latency_s),
            cpu_full_extra_w: cfg.cpu_full_extra_w,
        }
    }
}

/// The 5G radio machine.
pub type FiveGMachine = LadderMachine<FiveG>;

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn lte_cold_transfer_pays_the_setup_latency() {
        let mut m = LteMachine::new(LteConfig::calibrated(), SimTime::ZERO);
        let ds = m.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 0);
        assert_eq!(ds, secs(0.26));
        assert!(m.is_promoting());
        m.advance_to(ds);
        assert_eq!(m.level(), 3);
        assert_eq!(m.state_label(), "CONNECTED");
        assert_eq!(m.counters().promotions, 1);
    }

    #[test]
    fn lte_dwell_cascade_walks_connected_to_idle() {
        let cfg = LteConfig::calibrated();
        let mut m = LteMachine::new(cfg, SimTime::ZERO);
        let ds = m.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 0);
        let end = ds + SimDuration::from_secs(1);
        m.end_transfer(end);
        // inactivity (0.1 s) → SHORT_DRX, +1.0 s → LONG_DRX, +10.3 s → IDLE.
        m.advance_to(end + SimDuration::from_millis(99));
        assert_eq!(m.state_label(), "CONNECTED");
        m.advance_to(end + SimDuration::from_millis(100));
        assert_eq!(m.state_label(), "SHORT_DRX");
        m.advance_to(end + SimDuration::from_millis(1100));
        assert_eq!(m.state_label(), "LONG_DRX");
        m.advance_to(end + SimDuration::from_millis(11_399));
        assert_eq!(m.state_label(), "LONG_DRX");
        m.advance_to(end + SimDuration::from_millis(11_400));
        assert_eq!(m.state_label(), "IDLE");
        assert_eq!(m.counters().dwell_expirations, 3);
        assert_eq!(
            m.residency().total(),
            (end + SimDuration::from_millis(11_400)) - SimTime::ZERO
        );
    }

    #[test]
    fn wifi_energy_matches_hand_computation() {
        let cfg = WifiConfig::calibrated();
        let mut m = WifiMachine::new(cfg, SimTime::ZERO);
        // 1 s asleep, wake (0.05 s), 2 s tx, PSM timeout (0.2 s), release
        // no-op afterwards because the dwell already dropped us to PSM.
        let t1 = secs(1.0);
        let ds = m.begin_transfer_with_promotion_retries(t1, true, 0);
        assert_eq!(ds, t1 + SimDuration::from_millis(50));
        let end = ds + SimDuration::from_secs(2);
        m.end_transfer(end);
        m.advance_to(end + SimDuration::from_secs(1));
        let expected = cfg.psm_avg_w() * 1.0    // initial sleep
            + cfg.promotion_w * 0.05            // wake
            + cfg.tx_w * 2.0                    // transfer
            + cfg.active_w * 0.2                // idle timeout at active power
            + cfg.psm_avg_w() * 0.8; // back in PSM
        assert!(
            (m.energy_j() - expected).abs() < 1e-9,
            "got {} expected {expected}",
            m.energy_j()
        );
        assert_eq!(m.counters().dwell_expirations, 1);
    }

    #[test]
    fn five_g_fast_release_skips_the_tail() {
        let cfg = FiveGConfig::calibrated();
        let run = |release: bool| {
            let mut m = FiveGMachine::new(cfg, SimTime::ZERO);
            let ds = m.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 0);
            let end = ds + SimDuration::from_secs(1);
            m.end_transfer(end);
            if release {
                m.release_to_idle(end);
            }
            m.advance_to(end + SimDuration::from_secs(10));
            (m.energy_j(), m.counters())
        };
        let (with_timers, c1) = run(false);
        let (with_release, c2) = run(true);
        assert!(with_release < with_timers);
        assert_eq!(c1.releases, 0);
        assert_eq!(c2.releases, 1);
        assert_eq!(c2.dwell_expirations, 0, "release cancels the cascade");
        // But the absolute saving is small: the 5G tail is only
        // 0.1 s connected + 2 s cDRX vs 4 s DCH + 15 s FACH on 3G.
        let tail_j = cfg.connected_w * 0.1 + cfg.cdrx_avg_w() * 2.0;
        assert!(with_timers - with_release < tail_j + 1e-9);
    }

    #[test]
    fn cycle_wakeups_counts_complete_beacons() {
        let cfg = WifiConfig::calibrated();
        let mut m = WifiMachine::new(cfg, SimTime::ZERO);
        m.advance_to(secs(1.024)); // exactly 10 beacon intervals
        assert_eq!(m.cycle_wakeups(0), 10);
        assert_eq!(m.cycle_wakeups(1), 0, "active level is continuous");
    }

    #[test]
    fn promotion_retries_extend_latency_and_energy() {
        let cfg = LteConfig::calibrated();
        let mut clean = LteMachine::new(cfg, SimTime::ZERO);
        let mut faulty = LteMachine::new(cfg, SimTime::ZERO);
        let sc = clean.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 0);
        let sf = faulty.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 2);
        assert_eq!(sc, secs(0.26));
        assert_eq!(sf, secs(3.0 * 0.26));
        clean.end_transfer(sc + SimDuration::from_secs(1));
        faulty.end_transfer(sf + SimDuration::from_secs(1));
        let delta = faulty.energy_j() - clean.energy_j();
        // Both runs promote starting at t = 0; the faulty one just holds
        // the wake power for two extra promotion latencies.
        let expected = 2.0 * cfg.promotion_w * 0.26;
        assert!(
            (delta - expected).abs() < 1e-9,
            "delta {delta} expected {expected}"
        );
        assert_eq!(faulty.counters().promotion_retries, 2);
    }

    #[test]
    fn begin_mid_promotion_joins_the_wake() {
        let mut m = FiveGMachine::new(FiveGConfig::calibrated(), SimTime::ZERO);
        let ds = m.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 0);
        let ds2 = m.begin_transfer_with_promotion_retries(secs(0.01), true, 0);
        assert_eq!(ds, ds2, "second transfer joins the in-flight wake");
        m.advance_to(ds);
        m.end_transfer(ds);
        m.end_transfer(ds + SimDuration::from_millis(10));
        assert_eq!(m.counters().promotions, 1);
    }

    #[test]
    fn determinism_same_stimuli_same_bits() {
        let cfg = LteConfig::calibrated();
        let drive = || {
            let mut m = LteMachine::new(cfg, SimTime::ZERO);
            let ds = m.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 1);
            m.end_transfer(ds + SimDuration::from_millis(700));
            m.set_cpu_load(ds + SimDuration::from_secs(1), 0.7);
            m.set_cpu_load(ds + SimDuration::from_secs(2), 0.0);
            m.release_to_idle(ds + SimDuration::from_secs(3));
            m.advance_to(secs(30.0));
            (m.energy_j().to_bits(), m.counters(), m.residency())
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn ladder_ledger_reconciles_bit_for_bit_and_recorder_is_invisible() {
        let cfg = WifiConfig::calibrated();
        let recorder = Recorder::memory();
        let mut traced = WifiMachine::with_recorder(cfg, SimTime::ZERO, recorder.clone());
        let mut plain = WifiMachine::new(cfg, SimTime::ZERO);
        for m in [&mut traced, &mut plain] {
            let ds = m.begin_transfer_with_promotion_retries(secs(0.5), true, 1);
            m.end_transfer(ds + SimDuration::from_millis(800));
            let ds2 =
                m.begin_transfer_with_promotion_retries(ds + SimDuration::from_secs(2), true, 0);
            m.end_transfer(ds2 + SimDuration::from_millis(300));
            // Release before the 0.2 s PSM timeout fires, so the fast
            // release actually has something to do.
            m.release_to_idle(ds2 + SimDuration::from_millis(400));
            m.advance_to(secs(20.0));
        }
        assert_eq!(traced.energy_j().to_bits(), plain.energy_j().to_bits());
        assert_eq!(traced.counters(), plain.counters());
        assert_eq!(traced.transitions(), plain.transitions());
        let events = recorder.events();
        let entries = ewb_obs::ledger::entries(&events);
        assert!(ewb_obs::ledger::audit(&entries).is_empty());
        assert_eq!(
            ewb_obs::ledger::total(&entries).to_bits(),
            traced.energy_j().to_bits()
        );
        let summary = recorder.summary();
        assert_eq!(summary.events_by_kind["fast_dormancy"], 1);
        assert_eq!(summary.events_by_kind["promotion_start"], 2);
    }

    #[test]
    fn click_states_cover_every_level() {
        fn check<B: LadderBackend>(cfg: B::Config) {
            for i in 0..<LadderMachine<B> as RadioModel>::click_state_count() {
                let (m, t0) = <LadderMachine<B> as RadioModel>::in_click_state(cfg, i);
                assert_eq!(m.level(), i);
                assert_eq!(m.now(), t0);
                assert_eq!(RadioModel::click_state_index(&m), i);
                assert_eq!(
                    RadioModel::state_label(&m),
                    <LadderMachine<B> as RadioModel>::click_state_name(i)
                );
            }
        }
        check::<Lte>(LteConfig::calibrated());
        check::<Wifi>(WifiConfig::calibrated());
        check::<FiveG>(FiveGConfig::calibrated());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut lte = LteConfig::calibrated();
        lte.short_on_s = 1.0; // exceeds the 20 ms cycle
        assert!(Lte::validate(&lte).is_err());
        let mut wifi = WifiConfig::calibrated();
        wifi.tx_w = 0.1; // below active power
        assert!(Wifi::validate(&wifi).is_err());
        let mut five_g = FiveGConfig::calibrated();
        five_g.cdrx_tail_s = -1.0;
        assert!(FiveG::validate(&five_g).is_err());
    }

    #[test]
    fn five_g_cdrx_average_tracks_the_redime_wifi_ratio() {
        let five_g = FiveGConfig::calibrated();
        let wifi = WifiConfig::calibrated();
        let ratio = five_g.cdrx_avg_w() / wifi.active_w;
        assert!(
            (ratio - 0.1).abs() < 0.005,
            "cDRX average / WiFi active = {ratio}, redime pins it at 0.1"
        );
    }
}
