//! The RRC protocol states.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The RRC state of the handset's 3G radio, per §2.1 of the paper.
///
/// `Promoting` is not a 3GPP state; it models the signaling-connection
/// establishment window ("ten\[s\] of control message exchanges ... more than
/// one second") during which the radio burns power but cannot move user
/// data yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrcState {
    /// No signaling connection; the radio draws almost nothing.
    Idle,
    /// Signaling-connection / dedicated-channel establishment in progress.
    Promoting,
    /// Shared common channels only; low speed, roughly half DCH power.
    Fach,
    /// Dedicated transmission channels allocated; full speed, full power.
    Dch,
}

impl RrcState {
    /// Whether the handset holds a signaling connection in this state.
    pub fn is_connected(self) -> bool {
        !matches!(self, RrcState::Idle)
    }

    /// Whether the handset occupies a pair of dedicated transmission
    /// channels (the scarce resource behind the Fig. 11 capacity
    /// experiment).
    pub fn holds_dedicated_channel(self) -> bool {
        matches!(self, RrcState::Dch)
    }
}

impl fmt::Display for RrcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RrcState::Idle => "IDLE",
            RrcState::Promoting => "PROMOTING",
            RrcState::Fach => "FACH",
            RrcState::Dch => "DCH",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connectivity_flags() {
        assert!(!RrcState::Idle.is_connected());
        assert!(RrcState::Fach.is_connected());
        assert!(RrcState::Dch.is_connected());
        assert!(RrcState::Promoting.is_connected());
        assert!(RrcState::Dch.holds_dedicated_channel());
        assert!(!RrcState::Fach.holds_dedicated_channel());
    }

    #[test]
    fn display_names() {
        assert_eq!(RrcState::Idle.to_string(), "IDLE");
        assert_eq!(RrcState::Dch.to_string(), "DCH");
        assert_eq!(RrcState::Fach.to_string(), "FACH");
        assert_eq!(RrcState::Promoting.to_string(), "PROMOTING");
    }
}
