//! RRC protocol configuration: timers, promotion costs, FACH capability.

use crate::power::PowerModel;
use ewb_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of the RRC state machine.
///
/// Defaults reproduce the paper's testbed (T-Mobile UMTS, §2.1 and §5):
/// T1 = 4 s, T2 = 15 s, IDLE→DCH promotion 1.75 s (the extra delay the
/// paper measured for its "intuitive" approach in §3.1).
///
/// # Example
///
/// ```
/// use ewb_rrc::RrcConfig;
/// use ewb_simcore::SimDuration;
///
/// let cfg = RrcConfig::default();
/// assert_eq!(cfg.t1, SimDuration::from_secs(4));
/// assert_eq!(cfg.t2, SimDuration::from_secs(15));
///
/// // A carrier with a longer DCH tail:
/// let long_tail = RrcConfig { t1: SimDuration::from_secs(8), ..RrcConfig::default() };
/// assert_eq!(long_tail.t1, SimDuration::from_secs(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrcConfig {
    /// DCH inactivity timer: dedicated channels are released (DCH→FACH)
    /// when no data has moved for this long. Paper: 4 s.
    pub t1: SimDuration,
    /// FACH inactivity timer: the signaling connection is released
    /// (FACH→IDLE) after this long without data. Paper: 15 s.
    pub t2: SimDuration,
    /// IDLE→DCH promotion latency (signaling-connection establishment plus
    /// dedicated-channel allocation). Paper §3.1 measures 1.75 s of extra
    /// delay for a cold transfer.
    pub idle_to_dch_latency: SimDuration,
    /// IDLE→FACH promotion latency (signaling connection only; used for
    /// small transfers that fit the shared channels).
    pub idle_to_fach_latency: SimDuration,
    /// FACH→DCH promotion latency (channels allocated on an existing
    /// signaling connection — cheaper than a cold start, per §2.1).
    pub fach_to_dch_latency: SimDuration,
    /// Time spent executing the fast-dormancy release procedure (the
    /// paper's RIL `state switch`, §4.4) before the radio actually reaches
    /// IDLE. Power during this window is the current state's level.
    pub release_latency: SimDuration,
    /// Largest transfer the FACH shared channels can carry. The paper puts
    /// FACH throughput at "a few hundred bytes/second"; anything bigger
    /// forces a DCH promotion.
    pub fach_capacity_bytes: u64,
    /// The handset power model (Table 5).
    pub power: PowerModel,
}

impl RrcConfig {
    /// The paper's testbed parameters.
    pub fn paper() -> Self {
        RrcConfig {
            t1: SimDuration::from_secs(4),
            t2: SimDuration::from_secs(15),
            idle_to_dch_latency: SimDuration::from_millis(1750),
            idle_to_fach_latency: SimDuration::from_millis(600),
            fach_to_dch_latency: SimDuration::from_millis(900),
            release_latency: SimDuration::from_millis(200),
            fach_capacity_bytes: 512,
            power: PowerModel::paper(),
        }
    }

    /// Aggregate energy of one IDLE→DCH promotion in joules (latency ×
    /// promotion power). The default is calibrated to 7.0 J so the §3.1
    /// intuitive approach breaks even at the paper's 9 s (Fig. 3).
    pub fn idle_to_dch_energy_j(&self) -> f64 {
        self.power.promotion_w * self.idle_to_dch_latency.as_secs_f64()
    }

    /// Whether a transfer of `bytes` requires dedicated channels (DCH)
    /// rather than the FACH shared channels.
    pub fn needs_dch(&self, bytes: u64) -> bool {
        bytes > self.fach_capacity_bytes
    }

    /// Validates timers and the power model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.t1.is_zero() {
            return Err("T1 must be positive".to_string());
        }
        if self.t2.is_zero() {
            return Err("T2 must be positive".to_string());
        }
        self.power.validate()
    }
}

impl Default for RrcConfig {
    fn default() -> Self {
        RrcConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = RrcConfig::paper();
        assert_eq!(cfg.t1, SimDuration::from_secs(4));
        assert_eq!(cfg.t2, SimDuration::from_secs(15));
        assert_eq!(cfg.idle_to_dch_latency, SimDuration::from_millis(1750));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn promotion_energy_is_calibrated_to_fig3() {
        let cfg = RrcConfig::paper();
        assert!((cfg.idle_to_dch_energy_j() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn needs_dch_threshold() {
        let cfg = RrcConfig::paper();
        assert!(!cfg.needs_dch(100));
        assert!(!cfg.needs_dch(512));
        assert!(cfg.needs_dch(513));
        assert!(cfg.needs_dch(1024));
    }

    #[test]
    fn validate_rejects_zero_timers() {
        let mut cfg = RrcConfig::paper();
        cfg.t1 = SimDuration::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = RrcConfig::paper();
        cfg.t2 = SimDuration::ZERO;
        assert!(cfg.validate().is_err());
    }
}
