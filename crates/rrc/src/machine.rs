//! The RRC state machine with built-in energy metering.
//!
//! [`RrcMachine`] is driven by three kinds of stimuli:
//!
//! * [`RrcMachine::begin_transfer`] / [`RrcMachine::end_transfer`] — user
//!   data moving, which (re)sets the inactivity timers and may require a
//!   promotion first;
//! * [`RrcMachine::release_to_idle`] — the paper's fast-dormancy "state
//!   switch" (§4.4), an application-initiated early release;
//! * [`RrcMachine::advance_to`] — the passage of time, during which the
//!   machine fires T1/T2 expirations and finishes promotions on its own.
//!
//! Between stimuli the handset's power draw is piecewise constant, so the
//! embedded [`EnergyMeter`] integrates energy exactly.

use crate::config::RrcConfig;
use crate::state::RrcState;
use ewb_obs::{Event as ObsEvent, RadioState as ObsState, Recorder, Timer as ObsTimer};
use ewb_simcore::{EnergyMeter, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

fn obs_state(s: RrcState) -> ObsState {
    match s {
        RrcState::Idle => ObsState::Idle,
        RrcState::Promoting => ObsState::Promoting,
        RrcState::Fach => ObsState::Fach,
        RrcState::Dch => ObsState::Dch,
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// When the change took effect.
    pub at: SimTime,
    /// State before.
    pub from: RrcState,
    /// State after.
    pub to: RrcState,
}

/// Cumulative time spent in each state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StateResidency {
    /// Time in IDLE.
    pub idle: SimDuration,
    /// Time in promotion windows.
    pub promoting: SimDuration,
    /// Time in FACH.
    pub fach: SimDuration,
    /// Time in DCH (dedicated channels held).
    pub dch: SimDuration,
}

impl StateResidency {
    /// Sum over all states — equals the machine's elapsed time.
    pub fn total(&self) -> SimDuration {
        self.idle + self.promoting + self.fach + self.dch
    }

    fn add(&mut self, state: RrcState, d: SimDuration) {
        match state {
            RrcState::Idle => self.idle += d,
            RrcState::Promoting => self.promoting += d,
            RrcState::Fach => self.fach += d,
            RrcState::Dch => self.dch += d,
        }
    }
}

/// Event counters, useful for assertions and capacity accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RrcCounters {
    /// Transfers requested via [`RrcMachine::begin_transfer`].
    pub transfers: u64,
    /// IDLE→DCH promotions.
    pub idle_to_dch: u64,
    /// IDLE→FACH promotions.
    pub idle_to_fach: u64,
    /// FACH→DCH promotions.
    pub fach_to_dch: u64,
    /// T1 expirations (DCH→FACH demotions).
    pub t1_expirations: u64,
    /// T2 expirations (FACH→IDLE releases by the network).
    pub t2_expirations: u64,
    /// Application-initiated fast-dormancy releases.
    pub fast_dormancy_releases: u64,
    /// Failed promotion attempts that were retried by the signaling layer
    /// (fault injection); each costs one extra promotion window of
    /// latency and promotion-level power.
    pub promotion_retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    PromotionDone,
    T1Expired,
    T2Expired,
}

/// The UMTS RRC state machine of one handset, with exact energy metering.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct RrcMachine {
    cfg: RrcConfig,
    meter: EnergyMeter,
    state: RrcState,
    /// Target and power-relevant origin of an in-flight promotion.
    promotion: Option<(SimTime, RrcState, RrcState)>, // (end, target, from)
    t1_deadline: Option<SimTime>,
    t2_deadline: Option<SimTime>,
    active_transfers: u32,
    cpu_load: f64,
    residency: StateResidency,
    transitions: Vec<Transition>,
    counters: RrcCounters,
    recorder: Recorder,
}

impl RrcMachine {
    /// Creates a machine in IDLE at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RrcConfig::validate`].
    pub fn new(cfg: RrcConfig, start: SimTime) -> Self {
        Self::with_recorder(cfg, start, Recorder::disabled())
    }

    /// Like [`RrcMachine::new`], but every state transition, timer
    /// expiry, promotion, and energy-meter advance is mirrored into
    /// `recorder` as structured events. The recorder only observes —
    /// machine behaviour and energy are identical with it enabled or
    /// disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RrcConfig::validate`].
    pub fn with_recorder(cfg: RrcConfig, start: SimTime, recorder: Recorder) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid RrcConfig: {e}");
        }
        RrcMachine {
            cfg,
            meter: EnergyMeter::new(start),
            state: RrcState::Idle,
            promotion: None,
            t1_deadline: None,
            t2_deadline: None,
            active_transfers: 0,
            cpu_load: 0.0,
            residency: StateResidency::default(),
            transitions: Vec::new(),
            counters: RrcCounters::default(),
            recorder,
        }
    }

    /// Replaces the machine's recorder (e.g. to attach tracing to an
    /// already-constructed machine).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The machine's recorder handle.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The machine's current time (the last stimulus it processed).
    pub fn now(&self) -> SimTime {
        self.meter.now()
    }

    /// The current RRC state.
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// Whether any transfer is currently requested/active.
    pub fn is_transferring(&self) -> bool {
        self.active_transfers > 0
    }

    /// The embedded energy meter (read access).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Total energy so far, in joules.
    pub fn energy_j(&self) -> f64 {
        self.meter.total_joules()
    }

    /// Per-state residency so far.
    pub fn residency(&self) -> StateResidency {
        self.residency
    }

    /// Event counters so far.
    pub fn counters(&self) -> RrcCounters {
        self.counters
    }

    /// The recorded transitions, oldest first.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The machine's configuration.
    pub fn config(&self) -> &RrcConfig {
        &self.cfg
    }

    /// Instantaneous power draw right now, in watts.
    pub fn current_watts(&self) -> f64 {
        let w = match self.state {
            RrcState::Promoting => {
                let from = self.promotion.expect("promoting implies promotion info").2;
                // A warm promotion (FACH→DCH) reuses the signaling
                // connection: the radio draws roughly DCH-hold power. A
                // cold promotion uses the calibrated aggregate.
                match from {
                    RrcState::Fach => self.cfg.power.dch_hold_w,
                    _ => self.cfg.power.promotion_w,
                }
            }
            s => self.cfg.power.watts(s, self.active_transfers > 0, 0.0),
        };
        w + self.cfg.power.cpu_full_extra_w * self.cpu_load
    }

    /// Sets the simulated CPU load in `[0, 1]`, effective from `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the machine's past.
    pub fn set_cpu_load(&mut self, t: SimTime, load: f64) {
        self.advance_to(t);
        self.cpu_load = load.clamp(0.0, crate::power::MAX_CPU_CORES);
    }

    /// Advances virtual time to `t`, firing promotions and timer
    /// expirations along the way and integrating energy.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the machine's past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now(),
            "RrcMachine cannot move backwards: {} -> {}",
            self.now(),
            t
        );
        loop {
            let next = self.next_pending();
            match next {
                Some((te, ev)) if te <= t => {
                    self.integrate_to(te);
                    self.apply(ev, te);
                }
                _ => {
                    self.integrate_to(t);
                    return;
                }
            }
        }
    }

    /// Requests a data transfer at `t`. `needs_dch` says whether the
    /// transfer exceeds the FACH shared-channel capability (see
    /// [`RrcConfig::needs_dch`]). Returns the instant data can actually
    /// start flowing — `t` when the radio is already in a capable state,
    /// later when a promotion is required.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the machine's past.
    pub fn begin_transfer(&mut self, t: SimTime, needs_dch: bool) -> SimTime {
        self.begin_transfer_with_promotion_retries(t, needs_dch, 0)
    }

    /// Like [`RrcMachine::begin_transfer`], but if this request triggers
    /// (or extends) a promotion, the signaling fails `retries` times
    /// first: each failed attempt costs one more full promotion window at
    /// the promotion power level before the promotion succeeds. With
    /// `retries == 0` this is exactly `begin_transfer`. When the radio is
    /// already in a capable state (no promotion needed), `retries` has no
    /// effect.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the machine's past.
    pub fn begin_transfer_with_promotion_retries(
        &mut self,
        t: SimTime,
        needs_dch: bool,
        retries: u32,
    ) -> SimTime {
        self.advance_to(t);
        self.counters.transfers += 1;
        // Any data activity cancels the inactivity timers.
        self.t1_deadline = None;
        self.t2_deadline = None;
        self.active_transfers += 1;
        let attempts = u64::from(retries) + 1;
        match self.state {
            RrcState::Dch => t,
            RrcState::Fach => {
                if needs_dch {
                    self.counters.fach_to_dch += 1;
                    self.counters.promotion_retries += u64::from(retries);
                    self.start_promotion(
                        t,
                        RrcState::Dch,
                        RrcState::Fach,
                        self.cfg.fach_to_dch_latency * attempts,
                        retries,
                    )
                } else {
                    t
                }
            }
            RrcState::Idle => {
                if needs_dch {
                    self.counters.idle_to_dch += 1;
                    self.counters.promotion_retries += u64::from(retries);
                    self.start_promotion(
                        t,
                        RrcState::Dch,
                        RrcState::Idle,
                        self.cfg.idle_to_dch_latency * attempts,
                        retries,
                    )
                } else {
                    self.counters.idle_to_fach += 1;
                    self.counters.promotion_retries += u64::from(retries);
                    self.start_promotion(
                        t,
                        RrcState::Fach,
                        RrcState::Idle,
                        self.cfg.idle_to_fach_latency * attempts,
                        retries,
                    )
                }
            }
            RrcState::Promoting => {
                let (end, target, from) = self.promotion.expect("promoting implies promotion info");
                if needs_dch && target == RrcState::Fach {
                    // Upgrade: finish the FACH promotion, then allocate
                    // dedicated channels on the fresh signaling connection.
                    let new_end = end + self.cfg.fach_to_dch_latency * attempts;
                    self.promotion = Some((new_end, RrcState::Dch, from));
                    self.counters.fach_to_dch += 1;
                    self.counters.promotion_retries += u64::from(retries);
                    self.recorder.emit_with(|| ObsEvent::PromotionStart {
                        at: t,
                        from: obs_state(from),
                        target: ObsState::Dch,
                        done: new_end,
                        retries,
                    });
                    new_end
                } else {
                    end
                }
            }
        }
    }

    /// Marks one transfer as finished at `t`. When the last active
    /// transfer ends, the network arms the relevant inactivity timer
    /// (T1 in DCH, T2 in FACH).
    ///
    /// # Panics
    ///
    /// Panics if no transfer is active, if `t` is in the machine's past,
    /// or if `t` precedes the data-start instant returned by
    /// [`RrcMachine::begin_transfer`] (the machine would still be
    /// promoting).
    pub fn end_transfer(&mut self, t: SimTime) {
        self.advance_to(t);
        assert!(
            self.active_transfers > 0,
            "end_transfer without begin_transfer"
        );
        assert!(
            !matches!(self.state, RrcState::Promoting),
            "end_transfer at {t} while still promoting — ended before its data_start"
        );
        self.active_transfers -= 1;
        if self.active_transfers == 0 {
            match self.state {
                RrcState::Dch => self.t1_deadline = Some(t + self.cfg.t1),
                RrcState::Fach => self.t2_deadline = Some(t + self.cfg.t2),
                _ => unreachable!("transfer ended in {}", self.state),
            }
        }
    }

    /// Fast dormancy: the application asks the radio firmware (through the
    /// paper's RIL path) to release the signaling connection and drop to
    /// IDLE. The release procedure takes [`RrcConfig::release_latency`] at
    /// the current state's power. Returns the instant IDLE is reached.
    /// Calling this in IDLE is a no-op that returns `t`.
    ///
    /// # Panics
    ///
    /// Panics if a transfer is active or a promotion is in flight — the
    /// paper's Algorithm 2 only releases after a page has fully loaded.
    pub fn release_to_idle(&mut self, t: SimTime) -> SimTime {
        self.advance_to(t);
        assert!(
            self.active_transfers == 0,
            "cannot release to IDLE while a transfer is active"
        );
        assert!(
            !matches!(self.state, RrcState::Promoting),
            "cannot release to IDLE during a promotion"
        );
        if self.state == RrcState::Idle {
            return t;
        }
        // The release signaling runs at the current state's power level.
        let done = t + self.cfg.release_latency;
        self.integrate_to(done);
        self.t1_deadline = None;
        self.t2_deadline = None;
        self.recorder
            .emit_with(|| ObsEvent::FastDormancy { at: t, done });
        self.change_state(done, RrcState::Idle);
        self.counters.fast_dormancy_releases += 1;
        done
    }

    fn next_pending(&self) -> Option<(SimTime, Pending)> {
        // Invariant: at most one of these is armed at any moment.
        if let Some((end, _, _)) = self.promotion {
            return Some((end, Pending::PromotionDone));
        }
        if let Some(d) = self.t1_deadline {
            return Some((d, Pending::T1Expired));
        }
        if let Some(d) = self.t2_deadline {
            return Some((d, Pending::T2Expired));
        }
        None
    }

    fn apply(&mut self, ev: Pending, te: SimTime) {
        match ev {
            Pending::PromotionDone => {
                let (_, target, _) = self.promotion.take().expect("promotion event without info");
                self.change_state(te, target);
                if self.active_transfers == 0 {
                    // Promotion finished but the requester vanished —
                    // cannot happen through the public API, but arm the
                    // timer defensively so the radio does not hang.
                    match target {
                        RrcState::Dch => self.t1_deadline = Some(te + self.cfg.t1),
                        RrcState::Fach => self.t2_deadline = Some(te + self.cfg.t2),
                        _ => {}
                    }
                }
            }
            Pending::T1Expired => {
                debug_assert_eq!(self.state, RrcState::Dch);
                debug_assert_eq!(self.active_transfers, 0);
                self.t1_deadline = None;
                self.recorder.emit_with(|| ObsEvent::TimerExpired {
                    at: te,
                    timer: ObsTimer::T1,
                });
                self.change_state(te, RrcState::Fach);
                self.t2_deadline = Some(te + self.cfg.t2);
                self.counters.t1_expirations += 1;
            }
            Pending::T2Expired => {
                debug_assert_eq!(self.state, RrcState::Fach);
                debug_assert_eq!(self.active_transfers, 0);
                self.t2_deadline = None;
                self.recorder.emit_with(|| ObsEvent::TimerExpired {
                    at: te,
                    timer: ObsTimer::T2,
                });
                self.change_state(te, RrcState::Idle);
                self.counters.t2_expirations += 1;
            }
        }
    }

    fn start_promotion(
        &mut self,
        t: SimTime,
        target: RrcState,
        from: RrcState,
        latency: SimDuration,
        retries: u32,
    ) -> SimTime {
        let end = t + latency;
        self.promotion = Some((end, target, from));
        self.recorder.emit_with(|| ObsEvent::PromotionStart {
            at: t,
            from: obs_state(from),
            target: obs_state(target),
            done: end,
            retries,
        });
        self.change_state(t, RrcState::Promoting);
        end
    }

    fn integrate_to(&mut self, t: SimTime) {
        let watts = self.current_watts();
        let before = self.now();
        if t > before {
            self.residency.add(self.state, t - before);
            self.meter.advance_to(t, watts);
            // Energy-ledger entry: same arithmetic, same operands as the
            // meter's addend, so folding the ledger in emission order is
            // bit-identical to the meter's total.
            let state = self.state;
            self.recorder.emit_with(|| ObsEvent::EnergySegment {
                start: before,
                end: t,
                state: obs_state(state),
                watts,
                joules: watts * (t - before).as_secs_f64(),
            });
        }
    }

    fn change_state(&mut self, at: SimTime, to: RrcState) {
        if self.state != to {
            self.transitions.push(Transition {
                at,
                from: self.state,
                to,
            });
            let from = self.state;
            self.recorder.emit_with(|| ObsEvent::StateTransition {
                at,
                from: obs_state(from),
                to: obs_state(to),
            });
            self.state = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn machine() -> RrcMachine {
        RrcMachine::new(RrcConfig::paper(), SimTime::ZERO)
    }

    #[test]
    fn cold_transfer_pays_promotion_latency() {
        let mut m = machine();
        let start = m.begin_transfer(SimTime::ZERO, true);
        assert_eq!(start, secs(1.75));
        assert_eq!(m.state(), RrcState::Promoting);
        m.advance_to(start);
        assert_eq!(m.state(), RrcState::Dch);
        assert_eq!(m.counters().idle_to_dch, 1);
    }

    #[test]
    fn timer_cascade_dch_fach_idle() {
        let mut m = machine();
        let start = m.begin_transfer(SimTime::ZERO, true);
        let end = start + SimDuration::from_secs(2);
        m.end_transfer(end);
        // T1 fires 4 s after the transfer ends.
        m.advance_to(end + SimDuration::from_millis(3999));
        assert_eq!(m.state(), RrcState::Dch);
        m.advance_to(end + SimDuration::from_secs(4));
        assert_eq!(m.state(), RrcState::Fach);
        // T2 fires 15 s after that.
        m.advance_to(end + SimDuration::from_millis(18_999));
        assert_eq!(m.state(), RrcState::Fach);
        m.advance_to(end + SimDuration::from_secs(19));
        assert_eq!(m.state(), RrcState::Idle);
        assert_eq!(m.counters().t1_expirations, 1);
        assert_eq!(m.counters().t2_expirations, 1);
    }

    #[test]
    fn energy_matches_hand_computation() {
        let mut m = machine();
        let start = m.begin_transfer(SimTime::ZERO, true); // 1.75 s promotion
        let end = start + SimDuration::from_secs(2); // 2 s tx
        m.end_transfer(end);
        m.advance_to(end + SimDuration::from_secs(25)); // full tail + 6 s idle
        let promo = 7.0;
        let tx = 2.0 * 1.25;
        let t1_tail = 4.0 * 1.15;
        let t2_tail = 15.0 * 0.63;
        let idle = 6.0 * 0.15;
        let expected = promo + tx + t1_tail + t2_tail + idle;
        assert!(
            (m.energy_j() - expected).abs() < 1e-6,
            "got {} expected {expected}",
            m.energy_j()
        );
    }

    #[test]
    fn new_transfer_resets_t1() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        m.end_transfer(s + SimDuration::from_secs(1));
        // 3 s later (inside T1) another transfer arrives: no demotion.
        let t2 = s + SimDuration::from_secs(4);
        let s2 = m.begin_transfer(t2, true);
        assert_eq!(s2, t2, "already in DCH, data flows immediately");
        assert_eq!(m.state(), RrcState::Dch);
        m.end_transfer(s2 + SimDuration::from_secs(1));
        assert_eq!(m.counters().t1_expirations, 0);
    }

    #[test]
    fn fach_transfer_promotes_to_dch_cheaper() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        let end = s + SimDuration::from_secs(1);
        m.end_transfer(end);
        // Wait past T1 (→FACH) but inside T2.
        let later = end + SimDuration::from_secs(6);
        m.advance_to(later);
        assert_eq!(m.state(), RrcState::Fach);
        let s2 = m.begin_transfer(later, true);
        assert_eq!(s2, later + SimDuration::from_millis(900));
        m.advance_to(s2);
        assert_eq!(m.state(), RrcState::Dch);
        assert_eq!(m.counters().fach_to_dch, 1);
    }

    #[test]
    fn small_transfer_stays_in_fach() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        let end = s + SimDuration::from_secs(1);
        m.end_transfer(end);
        let later = end + SimDuration::from_secs(6);
        m.advance_to(later);
        assert_eq!(m.state(), RrcState::Fach);
        let s2 = m.begin_transfer(later, false);
        assert_eq!(
            s2, later,
            "small transfers use the shared channels directly"
        );
        assert_eq!(m.state(), RrcState::Fach);
        m.end_transfer(s2 + SimDuration::from_millis(500));
        // T2 re-arms from the transfer end.
        m.advance_to(s2 + SimDuration::from_millis(500) + SimDuration::from_secs(15));
        assert_eq!(m.state(), RrcState::Idle);
    }

    #[test]
    fn small_transfer_from_idle_promotes_to_fach() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, false);
        assert_eq!(s, secs(0.6));
        m.advance_to(s);
        assert_eq!(m.state(), RrcState::Fach);
        assert_eq!(m.counters().idle_to_fach, 1);
    }

    #[test]
    fn promotion_upgrade_fach_to_dch() {
        let mut m = machine();
        let s1 = m.begin_transfer(SimTime::ZERO, false); // → FACH promotion
        let s2 = m.begin_transfer(secs(0.1), true); // upgrade mid-promotion
        assert_eq!(s2, s1 + SimDuration::from_millis(900));
        m.advance_to(s2);
        assert_eq!(m.state(), RrcState::Dch);
        m.end_transfer(s2 + SimDuration::from_millis(100));
        m.end_transfer(s2 + SimDuration::from_millis(200));
        assert!(!m.is_transferring());
    }

    #[test]
    fn concurrent_transfers_share_dch() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        m.advance_to(s);
        let s2 = m.begin_transfer(s + SimDuration::from_millis(100), true);
        assert_eq!(s2, s + SimDuration::from_millis(100));
        m.end_transfer(s + SimDuration::from_secs(1));
        assert_eq!(m.state(), RrcState::Dch);
        assert!(m.is_transferring());
        // T1 only arms after the *last* transfer ends.
        m.advance_to(s + SimDuration::from_secs(6));
        assert_eq!(m.state(), RrcState::Dch);
        m.end_transfer(s + SimDuration::from_secs(7));
        m.advance_to(s + SimDuration::from_secs(11));
        assert_eq!(m.state(), RrcState::Fach);
    }

    #[test]
    fn fast_dormancy_skips_the_tail() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        let end = s + SimDuration::from_secs(1);
        m.end_transfer(end);
        let idle_at = m.release_to_idle(end);
        assert_eq!(idle_at, end + SimDuration::from_millis(200));
        assert_eq!(m.state(), RrcState::Idle);
        assert_eq!(m.counters().fast_dormancy_releases, 1);
        // No timer fires later.
        m.advance_to(end + SimDuration::from_secs(60));
        assert_eq!(m.counters().t1_expirations, 0);
        assert_eq!(m.counters().t2_expirations, 0);
    }

    #[test]
    fn fast_dormancy_saves_energy_vs_timers() {
        let run = |release: bool| {
            let mut m = machine();
            let s = m.begin_transfer(SimTime::ZERO, true);
            let end = s + SimDuration::from_secs(1);
            m.end_transfer(end);
            if release {
                m.release_to_idle(end);
            }
            m.advance_to(end + SimDuration::from_secs(30));
            m.energy_j()
        };
        let with_timers = run(false);
        let with_dormancy = run(true);
        assert!(
            with_dormancy < with_timers,
            "dormancy {with_dormancy} should beat timers {with_timers}"
        );
        // The tail is 4 s DCH + 15 s FACH vs ~19.8 s IDLE + release window.
        let expected_saving = 4.0 * (1.15 - 0.15) + 15.0 * (0.63 - 0.15) - 0.2 * (1.15 - 0.15);
        assert!((with_timers - with_dormancy - expected_saving).abs() < 1e-6);
    }

    #[test]
    fn release_in_idle_is_noop() {
        let mut m = machine();
        let t = m.release_to_idle(secs(5.0));
        assert_eq!(t, secs(5.0));
        assert_eq!(m.counters().fast_dormancy_releases, 0);
        assert!((m.energy_j() - 5.0 * 0.15).abs() < 1e-9);
    }

    #[test]
    fn residency_sums_to_elapsed() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        m.end_transfer(s + SimDuration::from_secs(3));
        m.advance_to(secs(40.0));
        assert_eq!(m.residency().total(), SimDuration::from_secs(40));
        assert_eq!(m.residency().promoting, SimDuration::from_millis(1750));
        assert_eq!(
            m.residency().dch,
            SimDuration::from_secs(3) + SimDuration::from_secs(4)
        );
        assert_eq!(m.residency().fach, SimDuration::from_secs(15));
    }

    #[test]
    fn cpu_load_adds_power() {
        let mut m = machine();
        m.set_cpu_load(SimTime::ZERO, 1.0);
        m.advance_to(secs(10.0));
        assert!(
            (m.energy_j() - 10.0 * 0.60).abs() < 1e-9,
            "{}",
            m.energy_j()
        );
        m.set_cpu_load(secs(10.0), 0.0);
        m.advance_to(secs(20.0));
        assert!((m.energy_j() - (10.0 * 0.60 + 10.0 * 0.15)).abs() < 1e-9);
    }

    #[test]
    fn transitions_are_recorded_in_order() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        m.end_transfer(s + SimDuration::from_secs(1));
        m.advance_to(secs(60.0));
        let seq: Vec<(RrcState, RrcState)> =
            m.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            seq,
            vec![
                (RrcState::Idle, RrcState::Promoting),
                (RrcState::Promoting, RrcState::Dch),
                (RrcState::Dch, RrcState::Fach),
                (RrcState::Fach, RrcState::Idle),
            ]
        );
        for w in m.transitions().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    #[should_panic(expected = "without begin_transfer")]
    fn end_without_begin_panics() {
        machine().end_transfer(secs(1.0));
    }

    #[test]
    #[should_panic(expected = "while a transfer is active")]
    fn release_during_transfer_panics() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        m.advance_to(s);
        m.release_to_idle(s + SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_backwards_panics() {
        let mut m = machine();
        m.advance_to(secs(5.0));
        m.advance_to(secs(4.0));
    }

    #[test]
    fn promotion_retries_extend_latency_and_energy() {
        let mut clean = machine();
        let mut faulty = machine();
        let s_clean = clean.begin_transfer(SimTime::ZERO, true);
        let s_faulty = faulty.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 2);
        // Each failed attempt costs one more full promotion window.
        assert_eq!(s_clean, secs(1.75));
        assert_eq!(s_faulty, secs(3.0 * 1.75));
        clean.end_transfer(s_clean + SimDuration::from_secs(1));
        faulty.end_transfer(s_faulty + SimDuration::from_secs(1));
        // Extra energy = 2 extra windows at promotion power (4 W avg → 7 J
        // per 1.75 s window in the paper calibration).
        let delta = faulty.energy_j() - clean.energy_j();
        assert!((delta - 2.0 * 7.0).abs() < 1e-6, "delta {delta}");
        assert_eq!(faulty.counters().promotion_retries, 2);
        assert_eq!(clean.counters().promotion_retries, 0);
    }

    #[test]
    fn zero_retries_is_exactly_begin_transfer() {
        let mut a = machine();
        let mut b = machine();
        let sa = a.begin_transfer(SimTime::ZERO, true);
        let sb = b.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 0);
        assert_eq!(sa, sb);
        a.end_transfer(sa + SimDuration::from_secs(1));
        b.end_transfer(sb + SimDuration::from_secs(1));
        a.advance_to(secs(30.0));
        b.advance_to(secs(30.0));
        assert_eq!(a.energy_j().to_bits(), b.energy_j().to_bits());
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.residency(), b.residency());
    }

    #[test]
    fn retries_in_capable_state_are_free() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        m.advance_to(s);
        // Already in DCH: a retry plan changes nothing.
        let s2 = m.begin_transfer_with_promotion_retries(s, true, 3);
        assert_eq!(s2, s);
        assert_eq!(m.counters().promotion_retries, 0);
        m.end_transfer(s2);
        m.end_transfer(s2);
    }

    #[test]
    fn warm_promotion_power_is_cheaper_than_cold() {
        // FACH→DCH promotion runs at DCH-hold power, not the calibrated
        // cold-start aggregate.
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        m.end_transfer(s + SimDuration::from_secs(1));
        m.advance_to(s + SimDuration::from_secs(6)); // now FACH
        let before = m.energy_j();
        let s2 = m.begin_transfer(s + SimDuration::from_secs(6), true);
        m.advance_to(s2);
        let promo_energy = m.energy_j() - before;
        assert!((promo_energy - 0.9 * 1.15).abs() < 1e-9, "{promo_energy}");
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    fn machine() -> RrcMachine {
        RrcMachine::new(RrcConfig::paper(), SimTime::ZERO)
    }

    #[test]
    fn release_directly_from_dch() {
        // Fast dormancy before T1 even fires: DCH -> IDLE.
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        let end = s + SimDuration::from_secs(1);
        m.end_transfer(end);
        let idle_at = m.release_to_idle(end + SimDuration::from_secs(1));
        assert_eq!(m.state(), RrcState::Idle);
        // Release window billed at DCH-hold power.
        let expected = 7.0 + 1.0 * 1.25 + 1.0 * 1.15 + 0.2 * 1.15;
        assert!((m.energy_j() - expected).abs() < 1e-6, "{}", m.energy_j());
        assert_eq!(idle_at, end + SimDuration::from_millis(1200));
    }

    #[test]
    fn release_exactly_at_t1_expiry_uses_fach_power() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        let end = s + SimDuration::from_secs(1);
        m.end_transfer(end);
        // T1 fires at end+4; release at exactly that instant: the timer
        // event processes first (FACH), then the release runs at FACH
        // power.
        let at = end + SimDuration::from_secs(4);
        m.release_to_idle(at);
        assert_eq!(m.counters().t1_expirations, 1);
        assert_eq!(m.counters().t2_expirations, 0);
        assert_eq!(m.state(), RrcState::Idle);
    }

    #[test]
    fn transfer_request_exactly_at_t2_expiry_promotes_warm_or_cold() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        let end = s + SimDuration::from_secs(1);
        m.end_transfer(end);
        // At exactly end + 19 s the T2 event fires first (IDLE), so the
        // new transfer pays a cold promotion.
        let at = end + SimDuration::from_secs(19);
        let ds = m.begin_transfer(at, true);
        assert_eq!(ds, at + SimDuration::from_millis(1750));
        assert_eq!(m.counters().idle_to_dch, 2);
    }

    #[test]
    fn zero_duration_transfer_is_legal() {
        let mut m = machine();
        let s = m.begin_transfer(SimTime::ZERO, true);
        m.end_transfer(s);
        assert_eq!(m.state(), RrcState::Dch);
        m.advance_to(s + SimDuration::from_secs(25));
        assert_eq!(m.state(), RrcState::Idle);
    }

    #[test]
    fn many_rapid_small_fach_transfers_never_promote() {
        let mut m = machine();
        // Prime into FACH.
        let s = m.begin_transfer(SimTime::ZERO, false);
        m.end_transfer(s + SimDuration::from_millis(100));
        let mut t = s + SimDuration::from_millis(200);
        for _ in 0..20 {
            let ds = m.begin_transfer(t, false);
            assert_eq!(ds, t, "small transfers ride FACH");
            m.end_transfer(ds + SimDuration::from_millis(50));
            t = ds + SimDuration::from_millis(500);
        }
        assert_eq!(m.counters().idle_to_dch, 0);
        assert_eq!(m.counters().fach_to_dch, 0);
        assert_eq!(m.state(), RrcState::Fach);
    }

    #[test]
    fn ledger_reconciles_bit_for_bit_and_recorder_is_invisible() {
        let recorder = ewb_obs::Recorder::memory();
        let mut traced =
            RrcMachine::with_recorder(RrcConfig::paper(), SimTime::ZERO, recorder.clone());
        let mut plain = machine();
        for m in [&mut traced, &mut plain] {
            let s = m.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 1);
            m.end_transfer(s + SimDuration::from_secs(2));
            let s2 = m.begin_transfer(s + SimDuration::from_secs(8), false);
            m.end_transfer(s2 + SimDuration::from_millis(300));
            let rel = s2 + SimDuration::from_secs(3);
            m.release_to_idle(rel);
            m.advance_to(rel + SimDuration::from_secs(10));
        }
        // Observer effect = 0: tracing changes nothing observable.
        assert_eq!(traced.energy_j().to_bits(), plain.energy_j().to_bits());
        assert_eq!(traced.counters(), plain.counters());
        assert_eq!(traced.transitions(), plain.transitions());
        // The ledger folds back to the reported energy exactly.
        let events = recorder.events();
        let entries = ewb_obs::ledger::entries(&events);
        assert!(ewb_obs::ledger::audit(&entries).is_empty());
        assert_eq!(
            ewb_obs::ledger::total(&entries).to_bits(),
            traced.energy_j().to_bits()
        );
        // Transitions, timers, promotions, and the release all surfaced.
        let summary = recorder.summary();
        assert_eq!(summary.transitions, traced.transitions().len() as u64);
        assert_eq!(summary.events_by_kind["fast_dormancy"], 1);
        assert_eq!(summary.events_by_kind["promotion_start"], 1);
        assert_eq!(summary.events_by_kind["timer_expired"], 1);
    }

    #[test]
    fn current_watts_reflects_state() {
        let mut m = machine();
        assert_eq!(m.current_watts(), 0.15);
        let s = m.begin_transfer(SimTime::ZERO, true);
        assert!(m.current_watts() > 1.25, "promotion burst");
        m.advance_to(s);
        assert_eq!(m.current_watts(), 1.25, "DCH transmitting");
        m.end_transfer(s + SimDuration::from_secs(1));
        assert_eq!(m.current_watts(), 1.15, "DCH hold");
    }
}
