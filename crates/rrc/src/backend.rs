//! Pluggable radio backends: the [`RadioModel`] trait.
//!
//! The paper's savings are derived on the UMTS 3G RRC machine, whose
//! promotions are expensive (1.75 s, ~7 J) and whose inactivity tail is
//! long (T1 + T2 = 19 s). The related work (arXiv:1710.03559,
//! arXiv:2005.00749) argues the computation-reorganization technique's
//! value changes fundamentally on radios with cheap wakeups — LTE DRX,
//! WiFi PSM, 5G cDRX. This module extracts the exact surface the fetcher,
//! the pipelines, and the session simulator need from a radio, so
//! [`RrcMachine`] becomes one implementation among several (the others
//! live in [`crate::ladder`]).
//!
//! The trait is deliberately shaped after `RrcMachine`'s inherent API:
//! the 3G impl is pure delegation, and since inherent methods win over
//! trait methods at every existing call site, the 3G code path performs
//! the same calls with the same arithmetic as before — bit-identical to
//! the pre-trait goldens by construction.

use crate::config::RrcConfig;
use crate::machine::RrcMachine;
use crate::state::RrcState;
use ewb_obs::Recorder;
use ewb_simcore::{EnergyMeter, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The radio technology a machine models. Part of profile keys, golden
/// tables, and bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioBackend {
    /// UMTS 3G RRC (the paper's radio): IDLE/FACH/DCH, T1/T2 timers.
    ThreeG,
    /// LTE: CONNECTED with short+long DRX cycles, inactivity cascade.
    Lte,
    /// WiFi 802.11: active vs power-save mode with beacon wakeups.
    Wifi,
    /// 5G NR: connected-mode DRX with a fast release to idle.
    FiveG,
}

impl RadioBackend {
    /// Every backend, in stable [`index`](RadioBackend::index) order.
    pub const ALL: [RadioBackend; 4] = [
        RadioBackend::ThreeG,
        RadioBackend::Lte,
        RadioBackend::Wifi,
        RadioBackend::FiveG,
    ];

    /// Human-readable backend name (reports, golden tables).
    pub fn name(self) -> &'static str {
        match self {
            RadioBackend::ThreeG => "3g",
            RadioBackend::Lte => "lte",
            RadioBackend::Wifi => "wifi",
            RadioBackend::FiveG => "5g",
        }
    }

    /// Stable numeric id — what profile keys and checkpoints persist.
    pub fn index(self) -> u8 {
        match self {
            RadioBackend::ThreeG => 0,
            RadioBackend::Lte => 1,
            RadioBackend::Wifi => 2,
            RadioBackend::FiveG => 3,
        }
    }

    /// Inverse of [`index`](RadioBackend::index).
    pub fn from_index(index: u8) -> Option<RadioBackend> {
        RadioBackend::ALL
            .iter()
            .copied()
            .find(|b| b.index() == index)
    }
}

impl fmt::Display for RadioBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The radio surface the fetcher, replay, session, and profile layers
/// drive: timers, promotion costs, per-state power, and transfer gating,
/// with exact piecewise-constant energy metering behind it.
///
/// Implementations must be deterministic: the same stimulus sequence
/// applied to machines built from the same config must produce
/// bit-identical energy, residency, and counters.
pub trait RadioModel: Sized {
    /// The backend's named-field configuration (timers, powers).
    type Config: Copy + fmt::Debug + PartialEq + Serialize;
    /// The backend's event counters.
    type Counters: Clone + fmt::Debug + PartialEq + Default + Serialize;

    /// Which radio technology this machine models.
    const BACKEND: RadioBackend;

    /// Validates a configuration without constructing a machine.
    fn validate_config(cfg: &Self::Config) -> Result<(), String>;

    /// Creates a machine in its deepest sleep state at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RadioModel::validate_config`].
    fn new(cfg: Self::Config, start: SimTime) -> Self {
        Self::with_recorder(cfg, start, Recorder::disabled())
    }

    /// Like [`RadioModel::new`] with structured-event tracing attached.
    /// The recorder only observes — behaviour and energy are identical
    /// with it enabled or disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RadioModel::validate_config`].
    fn with_recorder(cfg: Self::Config, start: SimTime, recorder: Recorder) -> Self;

    /// Replaces the machine's recorder.
    fn set_recorder(&mut self, recorder: Recorder);

    /// The machine's configuration.
    fn config(&self) -> &Self::Config;

    /// The machine's current time (the last stimulus it processed).
    fn now(&self) -> SimTime;

    /// Advances virtual time to `t`, firing timers/promotions on the way
    /// and integrating energy.
    fn advance_to(&mut self, t: SimTime);

    /// Requests a data transfer at `t`; returns the instant data can
    /// actually start flowing (after any promotion, whose signaling
    /// fails `retries` times first). `needs_fast` says whether the
    /// transfer exceeds the backend's shared/background channel
    /// capability — only 3G has one; other backends always promote to
    /// their full-rate state.
    fn begin_transfer_with_promotion_retries(
        &mut self,
        t: SimTime,
        needs_fast: bool,
        retries: u32,
    ) -> SimTime;

    /// Marks one transfer as finished at `t`, arming the backend's
    /// inactivity timer when it was the last one.
    fn end_transfer(&mut self, t: SimTime);

    /// Application-initiated fast release to the deepest sleep state
    /// (3G fast dormancy, LTE connection release, WiFi PSM entry, 5G
    /// inactive release). Returns the instant the release completes; a
    /// no-op returning `t` when already fully asleep.
    fn release_to_idle(&mut self, t: SimTime) -> SimTime;

    /// Sets the simulated CPU load in `[0, 1]`, effective from `t`.
    fn set_cpu_load(&mut self, t: SimTime, load: f64);

    /// Whether any transfer is currently requested/active.
    fn is_transferring(&self) -> bool;

    /// Total energy so far, joules.
    fn energy_j(&self) -> f64;

    /// The embedded energy meter (read access).
    fn meter(&self) -> &EnergyMeter;

    /// Event counters so far.
    fn counters(&self) -> Self::Counters;

    /// Total time accounted across all states — must equal elapsed time.
    fn residency_total(&self) -> SimDuration;

    /// Whether the current state can move user data.
    fn transfer_capable(&self) -> bool;

    /// A short, stable name of the current state (differential oracles,
    /// reports).
    fn state_label(&self) -> &'static str;

    /// The latency of [`RadioModel::release_to_idle`] under `cfg` — what
    /// the session layer uses to gate releases against the next click.
    fn release_latency(cfg: &Self::Config) -> SimDuration;

    /// Whether a transfer of `bytes` exceeds the backend's shared/
    /// background channel capability and needs the full-rate state.
    fn needs_fast_channel(&self, bytes: u64) -> bool;

    /// Whether a transfer beginning now with the given `needs_fast`
    /// rides the backend's low-rate shared channel (3G FACH). Backends
    /// without a shared-channel trickle path always return `false`.
    fn uses_shared_channel_rate(&self, needs_fast: bool) -> bool;

    /// How many distinct states a click can find the radio in — the
    /// memoized-profile key dimension (3G: IDLE/FACH/DCH).
    fn click_state_count() -> usize;

    /// Stable name of click state `index` (profile keys, goldens).
    ///
    /// # Panics
    ///
    /// Panics if `index >= click_state_count()`.
    fn click_state_name(index: usize) -> &'static str;

    /// A machine pre-driven to a click instant in click state `index`,
    /// plus that instant. Mirrors the profile layer's contract: the
    /// pre-drive uses plain transfers and waiting, so any pending
    /// inactivity deadline it leaves behind is exactly the kind a real
    /// session leaves.
    ///
    /// # Panics
    ///
    /// Panics if `index >= click_state_count()` or `cfg` is invalid.
    fn in_click_state(cfg: Self::Config, index: usize) -> (Self, SimTime);

    /// The click-state index of the current state.
    ///
    /// # Panics
    ///
    /// Panics if the current state is not a click state (e.g. a
    /// promotion window, which only exists inside page loads).
    fn click_state_index(&self) -> usize;
}

/// The 3G click states, in profile-key order (shared with `ewb-core`'s
/// profile table).
const THREE_G_CLICK_STATES: [RrcState; 3] = [RrcState::Idle, RrcState::Fach, RrcState::Dch];

impl RadioModel for RrcMachine {
    type Config = RrcConfig;
    type Counters = crate::machine::RrcCounters;

    const BACKEND: RadioBackend = RadioBackend::ThreeG;

    fn validate_config(cfg: &RrcConfig) -> Result<(), String> {
        cfg.validate()
    }

    fn with_recorder(cfg: RrcConfig, start: SimTime, recorder: Recorder) -> Self {
        RrcMachine::with_recorder(cfg, start, recorder)
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        RrcMachine::set_recorder(self, recorder);
    }

    fn config(&self) -> &RrcConfig {
        RrcMachine::config(self)
    }

    fn now(&self) -> SimTime {
        RrcMachine::now(self)
    }

    fn advance_to(&mut self, t: SimTime) {
        RrcMachine::advance_to(self, t);
    }

    fn begin_transfer_with_promotion_retries(
        &mut self,
        t: SimTime,
        needs_fast: bool,
        retries: u32,
    ) -> SimTime {
        RrcMachine::begin_transfer_with_promotion_retries(self, t, needs_fast, retries)
    }

    fn end_transfer(&mut self, t: SimTime) {
        RrcMachine::end_transfer(self, t);
    }

    fn release_to_idle(&mut self, t: SimTime) -> SimTime {
        RrcMachine::release_to_idle(self, t)
    }

    fn set_cpu_load(&mut self, t: SimTime, load: f64) {
        RrcMachine::set_cpu_load(self, t, load);
    }

    fn is_transferring(&self) -> bool {
        RrcMachine::is_transferring(self)
    }

    fn energy_j(&self) -> f64 {
        RrcMachine::energy_j(self)
    }

    fn meter(&self) -> &EnergyMeter {
        RrcMachine::meter(self)
    }

    fn counters(&self) -> Self::Counters {
        RrcMachine::counters(self)
    }

    fn residency_total(&self) -> SimDuration {
        self.residency().total()
    }

    fn transfer_capable(&self) -> bool {
        matches!(self.state(), RrcState::Fach | RrcState::Dch)
    }

    fn state_label(&self) -> &'static str {
        match self.state() {
            RrcState::Idle => "IDLE",
            RrcState::Promoting => "PROMOTING",
            RrcState::Fach => "FACH",
            RrcState::Dch => "DCH",
        }
    }

    fn release_latency(cfg: &RrcConfig) -> SimDuration {
        cfg.release_latency
    }

    fn needs_fast_channel(&self, bytes: u64) -> bool {
        RrcMachine::config(self).needs_dch(bytes)
    }

    fn uses_shared_channel_rate(&self, needs_fast: bool) -> bool {
        self.state() == RrcState::Fach && !needs_fast
    }

    fn click_state_count() -> usize {
        THREE_G_CLICK_STATES.len()
    }

    fn click_state_name(index: usize) -> &'static str {
        match THREE_G_CLICK_STATES[index] {
            RrcState::Idle => "IDLE",
            RrcState::Fach => "FACH",
            RrcState::Dch => "DCH",
            RrcState::Promoting => unreachable!("Promoting is not a click state"),
        }
    }

    fn in_click_state(cfg: RrcConfig, index: usize) -> (Self, SimTime) {
        let state = THREE_G_CLICK_STATES[index];
        let mut machine = RrcMachine::new(cfg, SimTime::ZERO);
        let t0 = match state {
            RrcState::Idle => SimTime::ZERO,
            RrcState::Fach | RrcState::Dch => {
                let data_start = machine.begin_transfer(SimTime::ZERO, state == RrcState::Dch);
                let end = data_start + SimDuration::from_millis(100);
                machine.end_transfer(end);
                end + SimDuration::from_secs(1)
            }
            RrcState::Promoting => unreachable!("Promoting is not a click state"),
        };
        machine.advance_to(t0);
        assert_eq!(machine.state(), state, "pre-drive must land in {state:?}");
        (machine, t0)
    }

    fn click_state_index(&self) -> usize {
        match self.state() {
            RrcState::Idle => 0,
            RrcState::Fach => 1,
            RrcState::Dch => 2,
            RrcState::Promoting => panic!(
                "a click cannot find the radio in the Promoting state: promotion windows \
                 only exist inside page loads"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_ids_round_trip() {
        for b in RadioBackend::ALL {
            assert_eq!(RadioBackend::from_index(b.index()), Some(b));
            assert!(!b.name().is_empty());
        }
        assert_eq!(RadioBackend::from_index(200), None);
    }

    /// The trait surface on `RrcMachine` is pure delegation: a scenario
    /// driven through `RadioModel` is bit-identical to the same scenario
    /// driven through the inherent API.
    #[test]
    fn trait_calls_are_bit_identical_to_inherent_calls() {
        fn drive_inherent(m: &mut RrcMachine) {
            let s = m.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 1);
            m.end_transfer(s + SimDuration::from_secs(2));
            m.set_cpu_load(s + SimDuration::from_secs(3), 0.5);
            let s2 = m.begin_transfer(s + SimDuration::from_secs(8), false);
            m.end_transfer(s2 + SimDuration::from_millis(300));
            m.release_to_idle(s2 + SimDuration::from_secs(3));
            m.advance_to(s2 + SimDuration::from_secs(20));
        }
        fn drive_trait<R: RadioModel>(m: &mut R) {
            let s = m.begin_transfer_with_promotion_retries(SimTime::ZERO, true, 1);
            m.end_transfer(s + SimDuration::from_secs(2));
            m.set_cpu_load(s + SimDuration::from_secs(3), 0.5);
            let s2 =
                m.begin_transfer_with_promotion_retries(s + SimDuration::from_secs(8), false, 0);
            m.end_transfer(s2 + SimDuration::from_millis(300));
            m.release_to_idle(s2 + SimDuration::from_secs(3));
            m.advance_to(s2 + SimDuration::from_secs(20));
        }
        let cfg = RrcConfig::paper();
        let mut a = RrcMachine::new(cfg, SimTime::ZERO);
        let mut b = <RrcMachine as RadioModel>::new(cfg, SimTime::ZERO);
        drive_inherent(&mut a);
        drive_trait(&mut b);
        assert_eq!(a.energy_j().to_bits(), b.energy_j().to_bits());
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.residency(), b.residency());
        assert_eq!(a.transitions(), b.transitions());
    }

    #[test]
    fn three_g_click_states_match_the_profile_convention() {
        assert_eq!(<RrcMachine as RadioModel>::click_state_count(), 3);
        let cfg = RrcConfig::paper();
        for (i, want) in [RrcState::Idle, RrcState::Fach, RrcState::Dch]
            .into_iter()
            .enumerate()
        {
            let (m, t0) = <RrcMachine as RadioModel>::in_click_state(cfg, i);
            assert_eq!(m.state(), want);
            assert_eq!(m.now(), t0);
            assert_eq!(RadioModel::click_state_index(&m), i);
        }
    }

    #[test]
    fn shared_channel_gating_matches_fach_semantics() {
        let cfg = RrcConfig::paper();
        let (m, _) = <RrcMachine as RadioModel>::in_click_state(cfg, 1); // FACH
        assert!(m.uses_shared_channel_rate(false));
        assert!(!m.uses_shared_channel_rate(true));
        assert!(RadioModel::transfer_capable(&m));
        let (idle, _) = <RrcMachine as RadioModel>::in_click_state(cfg, 0);
        assert!(!idle.uses_shared_channel_rate(false));
        assert!(!RadioModel::transfer_capable(&idle));
        // The byte threshold is the FACH capacity.
        assert!(!idle.needs_fast_channel(1));
        assert!(idle.needs_fast_channel(100_000));
    }
}
