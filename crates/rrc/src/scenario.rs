//! Canned radio scenarios for the paper's descriptive figures.
//!
//! * [`state_tour`] reproduces Fig. 1: the 4 Hz power trace of a handset
//!   that starts IDLE, performs one data transmission (promotion → DCH),
//!   rides the T1/T2 tails through FACH, and returns to IDLE.
//! * [`measured_state_powers`] re-derives Table 5 from simulation: it runs
//!   the machine through each state and reports the mean sampled power, so
//!   the "measured" column of the Table 5 binary comes from the model
//!   rather than from the constants directly.

use crate::config::RrcConfig;
use crate::machine::{RrcMachine, Transition};
use crate::state::RrcState;
use ewb_simcore::{PowerTrace, SimDuration, SimTime};

/// The Fig. 1 state tour: `idle_lead` of IDLE, one transfer of length
/// `transfer`, then the full timer tails and `idle_tail` of IDLE. Returns
/// the 4 Hz power trace and the state transitions.
pub fn state_tour(
    cfg: &RrcConfig,
    idle_lead: SimDuration,
    transfer: SimDuration,
    idle_tail: SimDuration,
) -> (PowerTrace, Vec<Transition>) {
    let mut m = RrcMachine::new(*cfg, SimTime::ZERO);
    let request = SimTime::ZERO + idle_lead;
    m.advance_to(request);
    let data_start = m.begin_transfer(request, true);
    let data_end = data_start + transfer;
    m.end_transfer(data_end);
    // Ride the tails to IDLE, then linger.
    let settle = data_end + cfg.t1 + cfg.t2 + idle_tail;
    m.advance_to(settle);
    (
        PowerTrace::sample_meter(m.meter(), PowerTrace::PAPER_INTERVAL),
        m.transitions().to_vec(),
    )
}

/// Mean power per state, measured by sampling the simulated tour — the
/// reproduction of Table 5's measurement procedure. Returns
/// `(state, mean_watts)` pairs for IDLE, FACH, DCH-without-transmission
/// and DCH-with-transmission, plus the fully-running-CPU-at-IDLE figure.
pub fn measured_state_powers(cfg: &RrcConfig) -> Vec<(String, f64)> {
    let mut m = RrcMachine::new(*cfg, SimTime::ZERO);
    let mut rows = Vec::new();

    // IDLE: [0, 10).
    m.advance_to(SimTime::from_secs(10));
    rows.push((
        "IDLE state".to_string(),
        m.meter()
            .joules_between(SimTime::ZERO, SimTime::from_secs(10))
            / 10.0,
    ));

    // Transfer: promotion, then DCH with transmission for 5 s.
    let data_start = m.begin_transfer(SimTime::from_secs(10), true);
    let data_end = data_start + SimDuration::from_secs(5);
    m.end_transfer(data_end);
    rows.push((
        "DCH state with transmission".to_string(),
        m.meter().joules_between(data_start, data_end) / 5.0,
    ));

    // DCH hold: the T1 window.
    let t1_end = data_end + cfg.t1;
    m.advance_to(t1_end);
    rows.push((
        "DCH state without transmission".to_string(),
        m.meter().joules_between(data_end, t1_end) / cfg.t1.as_secs_f64(),
    ));

    // FACH: the T2 window.
    let t2_end = t1_end + cfg.t2;
    m.advance_to(t2_end);
    rows.push((
        "FACH state".to_string(),
        m.meter().joules_between(t1_end, t2_end) / cfg.t2.as_secs_f64(),
    ));

    // Fully running CPU at IDLE.
    debug_assert_eq!(m.state(), RrcState::Idle);
    m.set_cpu_load(t2_end, 1.0);
    let cpu_end = t2_end + SimDuration::from_secs(10);
    m.advance_to(cpu_end);
    rows.push((
        "Fully running CPU (IDLE state)".to_string(),
        m.meter().joules_between(t2_end, cpu_end) / 10.0,
    ));

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tour_visits_all_states_in_order() {
        let cfg = RrcConfig::paper();
        let (_, transitions) = state_tour(
            &cfg,
            SimDuration::from_secs(5),
            SimDuration::from_secs(3),
            SimDuration::from_secs(5),
        );
        let seq: Vec<(RrcState, RrcState)> = transitions.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            seq,
            vec![
                (RrcState::Idle, RrcState::Promoting),
                (RrcState::Promoting, RrcState::Dch),
                (RrcState::Dch, RrcState::Fach),
                (RrcState::Fach, RrcState::Idle),
            ]
        );
    }

    #[test]
    fn tour_trace_shows_the_fig1_staircase() {
        let cfg = RrcConfig::paper();
        let (trace, _) = state_tour(
            &cfg,
            SimDuration::from_secs(5),
            SimDuration::from_secs(3),
            SimDuration::from_secs(5),
        );
        let samples = trace.samples();
        // First samples: IDLE level.
        assert!((samples[0] - 0.15).abs() < 1e-9);
        // Peak reaches the DCH transmission level (or the promotion burst).
        let peak = samples.iter().copied().fold(0.0_f64, f64::max);
        assert!(peak >= 1.25);
        // Final samples: back to IDLE.
        assert!((samples[samples.len() - 1] - 0.15).abs() < 1e-9);
        // The FACH plateau exists: some samples at 0.63.
        assert!(samples.iter().any(|&w| (w - 0.63).abs() < 1e-9));
    }

    #[test]
    fn measured_powers_match_table5() {
        let cfg = RrcConfig::paper();
        let rows = measured_state_powers(&cfg);
        let get = |name: &str| {
            rows.iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
                .1
        };
        assert!((get("IDLE state") - 0.15).abs() < 1e-9);
        assert!((get("FACH state") - 0.63).abs() < 1e-9);
        assert!((get("DCH state without transmission") - 1.15).abs() < 1e-9);
        assert!((get("DCH state with transmission") - 1.25).abs() < 1e-9);
        assert!((get("Fully running CPU (IDLE state)") - 0.60).abs() < 1e-9);
    }
}
