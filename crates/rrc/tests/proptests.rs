//! Property-based tests for the RRC state machine.
//!
//! These drive the machine with arbitrary (but well-formed) stimulus
//! sequences and check global invariants that must hold for *any* workload:
//! residency accounting, energy bounds, and legal state transitions.

use ewb_rrc::{RrcConfig, RrcMachine, RrcState};
use ewb_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// A well-formed stimulus: (gap before the transfer, transfer length,
/// whether it needs DCH, whether to fast-dormancy release afterwards).
fn stimulus() -> impl Strategy<Value = (u64, u64, bool, bool)> {
    (
        0u64..30_000_000,       // gap up to 30 s, microseconds
        100_000u64..10_000_000, // transfer 0.1–10 s
        any::<bool>(),
        any::<bool>(),
    )
}

fn run(seq: &[(u64, u64, bool, bool)]) -> RrcMachine {
    let mut m = RrcMachine::new(RrcConfig::paper(), SimTime::ZERO);
    let mut t = SimTime::ZERO;
    for &(gap, xfer, needs_dch, release) in seq {
        t += SimDuration::from_micros(gap);
        let data_start = m.begin_transfer(t, needs_dch);
        let data_end = data_start + SimDuration::from_micros(xfer);
        m.end_transfer(data_end);
        t = if release {
            m.release_to_idle(data_end)
        } else {
            data_end
        };
    }
    m.advance_to(t + SimDuration::from_secs(60));
    m
}

proptest! {
    /// Residency always sums exactly to elapsed time.
    #[test]
    fn residency_partitions_time(seq in proptest::collection::vec(stimulus(), 1..20)) {
        let m = run(&seq);
        prop_assert_eq!(m.residency().total(), m.now() - SimTime::ZERO);
    }

    /// Energy is bounded by the extreme power levels: every second costs at
    /// least IDLE power and at most promotion power plus full CPU.
    #[test]
    fn energy_is_bounded(seq in proptest::collection::vec(stimulus(), 1..20)) {
        let m = run(&seq);
        let secs = (m.now() - SimTime::ZERO).as_secs_f64();
        let pm = &RrcConfig::paper().power;
        let lo = pm.idle_w * secs;
        let hi = (pm.promotion_w.max(pm.dch_tx_w) + pm.cpu_full_extra_w) * secs;
        prop_assert!(m.energy_j() >= lo - 1e-6, "energy {} < idle floor {}", m.energy_j(), lo);
        prop_assert!(m.energy_j() <= hi + 1e-6, "energy {} > ceiling {}", m.energy_j(), hi);
    }

    /// After a long quiet period the machine always ends in IDLE, and every
    /// recorded transition is a legal RRC edge.
    #[test]
    fn settles_to_idle_via_legal_edges(seq in proptest::collection::vec(stimulus(), 1..20)) {
        let m = run(&seq);
        prop_assert_eq!(m.state(), RrcState::Idle);
        for tr in m.transitions() {
            let legal = matches!(
                (tr.from, tr.to),
                (RrcState::Idle, RrcState::Promoting)
                    | (RrcState::Fach, RrcState::Promoting)
                    | (RrcState::Promoting, RrcState::Dch)
                    | (RrcState::Promoting, RrcState::Fach)
                    | (RrcState::Dch, RrcState::Fach)
                    | (RrcState::Dch, RrcState::Idle)
                    | (RrcState::Fach, RrcState::Idle)
            );
            prop_assert!(legal, "illegal transition {:?}", tr);
        }
    }

    /// Transition timestamps are non-decreasing.
    #[test]
    fn transitions_are_chronological(seq in proptest::collection::vec(stimulus(), 1..20)) {
        let m = run(&seq);
        for w in m.transitions().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    /// Fast dormancy never *increases* total energy for the same workload
    /// when the inter-transfer gaps are long (past the intuitive-approach
    /// break-even).
    #[test]
    fn dormancy_saves_energy_for_long_gaps(
        gaps in proptest::collection::vec(12_000_000u64..40_000_000, 1..8)
    ) {
        let mk = |release: bool| {
            let mut m = RrcMachine::new(RrcConfig::paper(), SimTime::ZERO);
            let mut t = SimTime::ZERO;
            for &gap in &gaps {
                let ds = m.begin_transfer(t, true);
                let de = ds + SimDuration::from_millis(500);
                m.end_transfer(de);
                if release {
                    m.release_to_idle(de);
                }
                t = de + SimDuration::from_micros(gap);
            }
            m.advance_to(t + SimDuration::from_secs(30));
            m.energy_j()
        };
        prop_assert!(mk(true) <= mk(false) + 1e-6);
    }

    /// The energy meter and a 4 Hz sampled trace agree to within the
    /// sampling error bound (one sample interval's worth of the largest
    /// power step per transition).
    #[test]
    fn sampled_trace_approximates_exact_energy(seq in proptest::collection::vec(stimulus(), 1..10)) {
        let m = run(&seq);
        let trace = ewb_simcore::PowerTrace::sample_meter(
            m.meter(),
            ewb_simcore::PowerTrace::PAPER_INTERVAL,
        );
        let exact = m.energy_j();
        let sampled = trace.estimated_joules();
        // Each state change can misattribute at most one 0.25 s sample at
        // the maximum power delta (~4.45 W).
        let bound = (m.transitions().len() as f64 + 2.0) * 0.25 * 4.45;
        prop_assert!(
            (exact - sampled).abs() <= bound,
            "exact {exact} vs sampled {sampled}, bound {bound}"
        );
    }
}
