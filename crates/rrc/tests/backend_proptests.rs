//! Property-based invariants for every [`RadioModel`] implementation.
//!
//! The properties are written once against the trait and instantiated
//! for all four backends (3G RRC, LTE DRX, WiFi PSM, 5G cDRX), so a new
//! backend inherits the whole suite by implementing the trait:
//!
//! * residency tiles the clock — every microsecond of elapsed time is
//!   accounted to exactly one state;
//! * transfers happen only in transmit-capable states — at the returned
//!   `data_start` the machine is in its full-rate (or 3G shared) state;
//! * energy is monotone non-decreasing under arbitrary stimulus;
//! * per-seed determinism — the same stimulus vector drives two machines
//!   to bit-identical energy and identical counters/state/clock.

use ewb_rrc::{
    FiveGConfig, FiveGMachine, LteConfig, LteMachine, RadioModel, RrcConfig, RrcMachine,
    WifiConfig, WifiMachine,
};
use ewb_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// One random stimulus: idle gap, transfer duration, fast-channel flag,
/// promotion retries, CPU load step, and whether to attempt a release.
#[derive(Debug, Clone, Copy)]
struct Stim {
    gap_us: u64,
    dur_us: u64,
    needs_fast: bool,
    retries: u32,
    load_pct: u8,
    release: bool,
}

fn stimulus() -> impl Strategy<Value = Stim> {
    (
        0u64..30_000_000,
        0u64..2_000_000,
        any::<bool>(),
        0u32..3,
        0u8..101,
        any::<bool>(),
    )
        .prop_map(
            |(gap_us, dur_us, needs_fast, retries, load_pct, release)| Stim {
                gap_us,
                dur_us,
                needs_fast,
                retries,
                load_pct,
                release,
            },
        )
}

/// Drives one machine through the stimulus vector, checking the
/// per-step invariants along the way, and returns it for whole-run
/// comparisons.
fn drive<R: RadioModel>(cfg: R::Config, seq: &[Stim]) -> R {
    let mut m = R::new(cfg, SimTime::ZERO);
    let mut last_energy = 0.0_f64;
    for s in seq {
        let t = m.now() + SimDuration::from_micros(s.gap_us);
        m.advance_to(t);
        m.set_cpu_load(t, f64::from(s.load_pct) / 100.0);
        let ds = m.begin_transfer_with_promotion_retries(t, s.needs_fast, s.retries);
        assert!(ds >= t, "data_start precedes the request");
        m.advance_to(ds);
        assert!(
            m.transfer_capable(),
            "{}: not transmit-capable at data_start (state {})",
            R::BACKEND,
            m.state_label()
        );
        assert!(m.is_transferring());
        let end = ds + SimDuration::from_micros(s.dur_us);
        m.end_transfer(end);
        if s.release {
            let before = m.now();
            let done = m.release_to_idle(before);
            assert!(done >= before, "release completed in the past");
        }
        // Energy is monotone across every stimulus.
        assert!(
            m.energy_j() >= last_energy,
            "{}: energy fell from {last_energy} to {}",
            R::BACKEND,
            m.energy_j()
        );
        last_energy = m.energy_j();
        // Residency tiles the clock at every step boundary.
        assert_eq!(
            m.residency_total(),
            m.now() - SimTime::ZERO,
            "{}: residency does not tile the clock",
            R::BACKEND
        );
    }
    m.advance_to(m.now() + SimDuration::from_secs(40));
    assert_eq!(m.residency_total(), m.now() - SimTime::ZERO);
    m
}

/// Runs the same vector twice and demands bit-identical observables.
fn check_determinism<R: RadioModel>(cfg: R::Config, seq: &[Stim]) {
    let a = drive::<R>(cfg, seq);
    let b = drive::<R>(cfg, seq);
    assert_eq!(
        a.energy_j().to_bits(),
        b.energy_j().to_bits(),
        "{}: energy must be bit-identical",
        R::BACKEND
    );
    assert_eq!(a.counters(), b.counters());
    assert_eq!(a.state_label(), b.state_label());
    assert_eq!(a.now(), b.now());
    assert_eq!(a.residency_total(), b.residency_total());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The per-step invariant bundle (residency tiling, transfer
    /// capability at data_start, energy monotonicity) holds on every
    /// backend under arbitrary stimulus.
    #[test]
    fn invariants_hold_on_every_backend(seq in proptest::collection::vec(stimulus(), 1..12)) {
        drive::<RrcMachine>(RrcConfig::paper(), &seq);
        drive::<LteMachine>(LteConfig::calibrated(), &seq);
        drive::<WifiMachine>(WifiConfig::calibrated(), &seq);
        drive::<FiveGMachine>(FiveGConfig::calibrated(), &seq);
    }

    /// Same seed, same bits — on every backend.
    #[test]
    fn every_backend_is_deterministic(seq in proptest::collection::vec(stimulus(), 1..8)) {
        check_determinism::<RrcMachine>(RrcConfig::paper(), &seq);
        check_determinism::<LteMachine>(LteConfig::calibrated(), &seq);
        check_determinism::<WifiMachine>(WifiConfig::calibrated(), &seq);
        check_determinism::<FiveGMachine>(FiveGConfig::calibrated(), &seq);
    }

    /// After any stimulus vector plus a long silence, every backend
    /// settles into its deepest sleep state (no timer can be left
    /// pending forever) and residency still tiles the clock.
    #[test]
    fn every_backend_settles_to_deep_sleep(seq in proptest::collection::vec(stimulus(), 1..8)) {
        let g = drive::<RrcMachine>(RrcConfig::paper(), &seq);
        prop_assert_eq!(g.state_label(), "IDLE");
        let l = drive::<LteMachine>(LteConfig::calibrated(), &seq);
        prop_assert_eq!(l.state_label(), "IDLE");
        let w = drive::<WifiMachine>(WifiConfig::calibrated(), &seq);
        prop_assert_eq!(w.state_label(), "PSM");
        let f = drive::<FiveGMachine>(FiveGConfig::calibrated(), &seq);
        prop_assert_eq!(f.state_label(), "IDLE");
    }
}
