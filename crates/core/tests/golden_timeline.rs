//! Golden observability timeline: the fixed-seed reference session must
//! reproduce the committed JSON-lines event stream byte for byte. Any
//! change to the fault models, the fetcher, the browser pipelines, the
//! RRC machine, or the event schema that shifts a single event shows up
//! here — and must be reviewed by regenerating the golden file with
//! `cargo run -p ewb-bench --release --bin robustness_sweep -- --write-golden`.

use ewb_core::experiments::timeline;
use ewb_core::webpage::{benchmark_corpus, OriginServer};
use ewb_core::CoreConfig;

/// Matches `ewb_bench::REPORT_SEED` so the exported `--timeline` artifact
/// and the golden file describe the same run.
const SEED: u64 = 2013;

#[test]
fn timeline_matches_golden() {
    let corpus = benchmark_corpus(SEED);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();
    let (events, _) = timeline::record_session_timeline(&corpus, &server, &cfg, SEED);
    let actual = timeline::timeline_jsonl(&events);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/timeline.jsonl");
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden timeline {path}: {e}; regenerate with \
             `cargo run -p ewb-bench --release --bin robustness_sweep -- --write-golden`"
        )
    });
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "reference timeline drifted from the golden file; if the change \
         is intentional, regenerate the golden file and review the delta"
    );
}
