//! Property-based tests for the session simulator: energy conservation
//! and policy dominance over arbitrary visit schedules.

use ewb_core::cases::Case;
use ewb_core::session::{simulate_session, PageRecord, Visit};
use ewb_core::webpage::{benchmark_corpus, Corpus, OriginServer, PageVersion};
use ewb_core::CoreConfig;
use proptest::prelude::*;

fn corpus() -> &'static (Corpus, OriginServer) {
    use std::sync::OnceLock;
    static CTX: OnceLock<(Corpus, OriginServer)> = OnceLock::new();
    CTX.get_or_init(|| {
        let corpus = benchmark_corpus(77);
        let server = OriginServer::from_corpus(&corpus);
        (corpus, server)
    })
}

/// (site index, mobile?, reading seconds) visit descriptors.
fn visit_plan() -> impl Strategy<Value = Vec<(usize, bool, f64)>> {
    proptest::collection::vec((0usize..10, any::<bool>(), 0.0f64..90.0), 1..5)
}

fn build_visits(plan: &[(usize, bool, f64)]) -> Vec<Visit<'static>> {
    let (corpus, _) = corpus();
    plan.iter()
        .map(|&(site, mobile, reading_s)| {
            let key = ewb_core::webpage::BENCHMARK_SITES[site].0;
            let version = if mobile {
                PageVersion::Mobile
            } else {
                PageVersion::Full
            };
            Visit {
                page: corpus.page(key, version).expect("benchmark site"),
                reading_s,
                features: None,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-page energy always partitions the session total, and timing
    /// fields are ordered, for any schedule and policy.
    #[test]
    fn energy_partition_and_ordering(plan in visit_plan(), case_idx in 0usize..7) {
        let (_, server) = corpus();
        let cfg = CoreConfig::paper();
        let case = std::iter::once(Case::Original)
            .chain(Case::TABLE6)
            .nth(case_idx)
            .expect("7 cases");
        if case.needs_predictor() {
            // Predictor-backed cases are covered by integration tests;
            // skip here to keep the property run cheap.
            return Ok(());
        }
        let visits = build_visits(&plan);
        let out = simulate_session(server, &visits, case, &cfg, None);
        let sum: f64 = out.pages.iter().map(PageRecord::total_joules).sum();
        prop_assert!((sum - out.total_joules).abs() < 1e-6);
        let mut prev_end = ewb_core::simcore::SimTime::ZERO;
        for p in &out.pages {
            prop_assert!(p.start >= prev_end);
            prop_assert!(p.start < p.tx_end);
            prop_assert!(p.tx_end <= p.opened);
            prev_end = p.opened;
        }
        prop_assert!(out.total_joules > 0.0);
    }

    /// The oracle-released case never costs more energy than Original
    /// when every read is long (above the Fig. 3 break-even).
    #[test]
    fn oracle_dominates_on_long_reads(
        plan in proptest::collection::vec((0usize..10, any::<bool>(), 25.0f64..90.0), 1..4)
    ) {
        let (_, server) = corpus();
        let cfg = CoreConfig::paper();
        let visits = build_visits(&plan);
        let base = simulate_session(server, &visits, Case::Original, &cfg, None);
        let ours = simulate_session(server, &visits, Case::Accurate20, &cfg, None);
        prop_assert!(
            ours.total_joules < base.total_joules,
            "oracle {} vs original {}",
            ours.total_joules,
            base.total_joules
        );
        // And it never slows the session down on long reads (the radio is
        // IDLE anyway when the next click comes).
        prop_assert!(ours.total_load_time_s <= base.total_load_time_s + 1e-9);
    }

    /// Sessions are deterministic.
    #[test]
    fn sessions_are_deterministic(plan in visit_plan()) {
        let (_, server) = corpus();
        let cfg = CoreConfig::paper();
        let visits = build_visits(&plan);
        let a = simulate_session(server, &visits, Case::EnergyAwareAlwaysOff, &cfg, None);
        let b = simulate_session(server, &visits, Case::EnergyAwareAlwaysOff, &cfg, None);
        prop_assert_eq!(a.total_joules, b.total_joules);
        prop_assert_eq!(a.total_load_time_s, b.total_load_time_s);
    }
}
