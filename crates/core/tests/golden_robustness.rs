//! Golden robustness summary: the fixed-seed fault sweep must reproduce
//! the committed JSON byte-for-byte. Any change to the fault models, the
//! retry policy, the RRC machine, or the pipelines that shifts a single
//! bit of the sweep shows up here — and must be reviewed by regenerating
//! the golden file with
//! `cargo run -p ewb-bench --release --bin robustness_sweep -- --write-golden`.

use ewb_core::experiments::robustness;
use ewb_core::webpage::{benchmark_corpus, OriginServer};
use ewb_core::CoreConfig;

/// Matches `ewb_bench::REPORT_SEED` so the table in EXPERIMENTS.md and
/// the golden summary describe the same run.
const SEED: u64 = 2013;

#[test]
fn robustness_summary_matches_golden() {
    let corpus = benchmark_corpus(SEED);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();
    let rows = robustness::sweep(&corpus, &server, &cfg, SEED);
    let actual = robustness::summary_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/robustness.json");
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden summary {path}: {e}; regenerate with \
             `cargo run -p ewb-bench --release --bin robustness_sweep -- --write-golden`"
        )
    });
    assert_eq!(
        actual,
        expected.trim_end(),
        "robustness sweep drifted from the golden summary; if the change \
         is intentional, regenerate the golden file and review the delta"
    );
}
