//! Golden parallelism sweep: the plan sweep plus the learned
//! controller's feature→plan table must reproduce the committed JSON
//! byte-for-byte. Any drift in the parallel stage scheduler, the fork
//! overhead, the helper-core energy replay, the GBRT trainer, or the
//! chooser's tie-breaking shows up here — and must be reviewed by
//! regenerating the golden file with
//! `cargo run -p ewb-bench --release --bin parallel_sweep -- --write-golden`.

use ewb_core::browser::parallel::ParallelismPlan;
use ewb_core::experiments::parallel::{self, ParallelSummary};
use ewb_core::planner::PlanFeatures;
use ewb_core::webpage::{benchmark_corpus, OriginServer, PageVersion};
use ewb_core::CoreConfig;

/// Matches `ewb_bench::REPORT_SEED` so the table in EXPERIMENTS.md and
/// the golden summary describe the same run.
const SEED: u64 = 2013;

fn golden() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/parallel.json");
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden summary {path}: {e}; regenerate with \
             `cargo run -p ewb-bench --release --bin parallel_sweep -- --write-golden`"
        )
    })
}

#[test]
fn parallel_sweep_matches_golden() {
    let corpus = benchmark_corpus(SEED);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();
    let rows = parallel::sweep(&corpus, &server, &cfg);
    let table = parallel::plan_table(&corpus, &server, &cfg);
    let actual = parallel::summary_json(&rows, &table);
    assert_eq!(
        actual,
        golden().trim_end(),
        "parallel sweep drifted from the golden summary; if the change \
         is intentional, regenerate the golden file and review the delta"
    );
}

/// Controller equivalence: a freshly trained plan picker must reproduce
/// the *recorded* feature→plan table choice-for-choice — same plan id,
/// same predicted energy delta to the parsed-JSON bit. This pins the
/// whole learned path (feature extraction → GBRT fit → argmin-with-
/// margin choice) independently of the sweep serialization.
#[test]
fn trained_controller_reproduces_the_recorded_plan_table() {
    let corpus = benchmark_corpus(SEED);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();
    let recorded: ParallelSummary =
        serde_json::from_str(golden().trim_end()).expect("golden summary deserializes");
    assert_eq!(recorded.plan_table.len(), corpus.sites().len() * 2);

    let chooser = parallel::trained_chooser(&corpus, &server, &cfg);
    for (site, choices) in corpus.sites().iter().zip(recorded.plan_table.chunks(2)) {
        for (version, choice) in [PageVersion::Mobile, PageVersion::Full].iter().zip(choices) {
            let page = corpus.page(&site.key, *version).expect("known page");
            let features = PlanFeatures::of_page(page);
            let plan = chooser.choose(&features);
            assert_eq!(
                plan.id(),
                choice.plan,
                "{}: retrained controller disagrees with the recorded table",
                choice.page
            );
            assert_eq!(
                chooser.predicted_delta_j(&features, plan).to_bits(),
                choice.predicted_delta_j.to_bits(),
                "{}: predicted delta drifted",
                choice.page
            );
        }
    }
}

/// The sequential anchor row of the golden sweep must stay exactly the
/// energy of the pre-parallelism session path — the golden would mask a
/// sequential regression if its own anchor drifted.
#[test]
fn golden_sequential_row_matches_a_live_sequential_run() {
    let corpus = benchmark_corpus(SEED);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();
    let recorded: ParallelSummary =
        serde_json::from_str(golden().trim_end()).expect("golden summary deserializes");
    let seq = &recorded.rows[0];
    assert_eq!(seq.plan, "seq");
    let pages = parallel::full_pages(&corpus);
    let per_page = parallel::per_page_totals(&pages, &server, &cfg, ParallelismPlan::SEQUENTIAL);
    let joules: f64 = per_page.iter().map(|(j, _)| j).sum();
    assert_eq!(joules.to_bits(), seq.joules.to_bits());
}
