//! Property-based tests of the intra-page parallelism layer: over
//! arbitrary visit schedules, parallelism plans, policies, and fault
//! seeds, (a) executing a plan with host worker threads is bit-identical
//! to executing the same plan on the host sequentially, and (b) the plan
//! is a pure timing/energy knob — it never changes what the browser
//! fetches or whether objects fail.

use ewb_core::browser::parallel::ParallelismPlan;
use ewb_core::cases::Case;
use ewb_core::net::FaultConfig;
use ewb_core::session::{simulate_session_planned, SessionFaults, SessionOutcome, Visit};
use ewb_core::webpage::{benchmark_corpus, Corpus, OriginServer, PageVersion};
use ewb_core::CoreConfig;
use proptest::prelude::*;

fn corpus() -> &'static (Corpus, OriginServer) {
    use std::sync::OnceLock;
    static CTX: OnceLock<(Corpus, OriginServer)> = OnceLock::new();
    CTX.get_or_init(|| {
        let corpus = benchmark_corpus(77);
        let server = OriginServer::from_corpus(&corpus);
        (corpus, server)
    })
}

/// (site index, mobile?, reading seconds) visit descriptors.
fn visit_plan() -> impl Strategy<Value = Vec<(usize, bool, f64)>> {
    proptest::collection::vec((0usize..10, any::<bool>(), 0.0f64..60.0), 1..4)
}

/// An arbitrary valid parallelism plan on the controller's grid.
fn parallelism_plan() -> impl Strategy<Value = ParallelismPlan> {
    (0usize..4, 0usize..4, any::<bool>()).prop_map(|(d, s, overlap)| {
        const THREADS: [usize; 4] = [1, 2, 4, 8];
        ParallelismPlan::new(THREADS[d], THREADS[s], overlap)
    })
}

/// None, or a lossy fault model with the given seed.
fn fault_plan() -> impl Strategy<Value = Option<(f64, u64)>> {
    (any::<bool>(), 0.0f64..0.3, any::<u64>())
        .prop_map(|(on, loss, seed)| on.then_some((loss, seed)))
}

fn build_visits(plan: &[(usize, bool, f64)]) -> Vec<Visit<'static>> {
    let (corpus, _) = corpus();
    plan.iter()
        .map(|&(site, mobile, reading_s)| {
            let key = ewb_core::webpage::BENCHMARK_SITES[site].0;
            let version = if mobile {
                PageVersion::Mobile
            } else {
                PageVersion::Full
            };
            Visit {
                page: corpus.page(key, version).expect("benchmark site"),
                reading_s,
                features: None,
            }
        })
        .collect()
}

fn pick_case(case_idx: usize) -> Option<Case> {
    let case = std::iter::once(Case::Original)
        .chain(Case::TABLE6)
        .nth(case_idx)
        .expect("7 cases");
    // Predictor-backed cases need a trained GBRT; the concrete
    // integration tests cover them.
    (!case.needs_predictor()).then_some(case)
}

fn run(
    visits: &[Visit<'_>],
    case: Case,
    faults: Option<&SessionFaults>,
    plan: ParallelismPlan,
    host_parallel: bool,
) -> SessionOutcome {
    let (_, server) = corpus();
    let cfg = CoreConfig::paper();
    simulate_session_planned(
        server,
        visits,
        case,
        &cfg,
        None,
        faults,
        plan,
        host_parallel,
    )
}

fn assert_bit_identical(a: &SessionOutcome, b: &SessionOutcome) -> Result<(), String> {
    prop_assert_eq!(a.total_joules.to_bits(), b.total_joules.to_bits());
    prop_assert_eq!(a.total_load_time_s.to_bits(), b.total_load_time_s.to_bits());
    prop_assert_eq!(a.duration, b.duration);
    prop_assert_eq!(&a.counters, &b.counters);
    prop_assert_eq!(a.pages.len(), b.pages.len());
    for (pa, pb) in a.pages.iter().zip(&b.pages) {
        prop_assert_eq!(&pa.url, &pb.url);
        prop_assert_eq!(pa.opened, pb.opened);
        prop_assert_eq!(pa.released_at, pb.released_at);
        prop_assert_eq!(pa.load_joules.to_bits(), pb.load_joules.to_bits());
        prop_assert_eq!(pa.reading_joules.to_bits(), pb.reading_joules.to_bits());
        prop_assert_eq!(pa.bytes, pb.bytes);
        prop_assert_eq!(pa.failed_objects, pb.failed_objects);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Host-parallel execution of any plan is bit-identical to executing
    /// the same plan sequentially on the host — for any schedule, policy,
    /// and fault stream. Worker threads are an implementation detail of
    /// the simulator, never an input to the simulation.
    #[test]
    fn host_parallelism_is_invisible(
        plan in visit_plan(),
        par in parallelism_plan(),
        case_idx in 0usize..7,
        faults in fault_plan(),
    ) {
        let Some(case) = pick_case(case_idx) else { return Ok(()) };
        let visits = build_visits(&plan);
        let sf = faults.map(|(loss, seed)| SessionFaults::new(FaultConfig::lossy(loss), seed));
        let threaded = run(&visits, case, sf.as_ref(), par, true);
        let serial = run(&visits, case, sf.as_ref(), par, false);
        assert_bit_identical(&threaded, &serial)?;
    }

    /// On clean links the parallelism plan is a pure timing/energy knob:
    /// whatever plan runs, every visit fetches the same bytes and fails
    /// zero objects — exactly like the sequential baseline.
    #[test]
    fn plan_choice_never_changes_what_loads(
        plan in visit_plan(),
        par in parallelism_plan(),
        case_idx in 0usize..7,
    ) {
        let Some(case) = pick_case(case_idx) else { return Ok(()) };
        let visits = build_visits(&plan);
        let planned = run(&visits, case, None, par, true);
        let sequential = run(&visits, case, None, ParallelismPlan::SEQUENTIAL, true);
        prop_assert_eq!(planned.pages.len(), sequential.pages.len());
        for (pa, pb) in planned.pages.iter().zip(&sequential.pages) {
            prop_assert_eq!(&pa.url, &pb.url);
            prop_assert_eq!(pa.bytes, pb.bytes, "plan {} changed bytes on {}", par.id(), pa.url);
            prop_assert_eq!(pa.failed_objects, 0, "clean link failed objects on {}", pa.url);
            prop_assert_eq!(pb.failed_objects, 0);
        }
    }
}
