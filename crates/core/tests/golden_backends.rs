//! Golden backend sweep: the cross-backend policy summary must
//! reproduce the committed JSON byte-for-byte, and its 3G rows must be
//! bit-identical to the legacy (pre-trait) session path. Any drift in
//! the `RadioModel` plumbing, the ladder machines, or the pipelines
//! shows up here — and must be reviewed by regenerating the golden file
//! with
//! `cargo run -p ewb-bench --release --bin backend_sweep -- --write-golden`.

use ewb_core::cases::Case;
use ewb_core::experiments::backends::{self, CASES, READING_S};
use ewb_core::session::{simulate_session, Visit};
use ewb_core::webpage::{benchmark_corpus, OriginServer};
use ewb_core::CoreConfig;

/// Matches `ewb_bench::REPORT_SEED` so the table in EXPERIMENTS.md and
/// the golden summary describe the same run.
const SEED: u64 = 2013;

#[test]
fn backend_sweep_matches_golden() {
    let corpus = benchmark_corpus(SEED);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();
    let rows = backends::sweep(&corpus, &server, &cfg);
    let actual = backends::summary_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/backends.json");
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden summary {path}: {e}; regenerate with \
             `cargo run -p ewb-bench --release --bin backend_sweep -- --write-golden`"
        )
    });
    assert_eq!(
        actual,
        expected.trim_end(),
        "backend sweep drifted from the golden summary; if the change \
         is intentional, regenerate the golden file and review the delta"
    );
}

/// The 3G-unchanged guard: threading the 3G machine through the
/// `RadioModel` trait must not move a single bit relative to the
/// original `simulate_session` path the robustness/timeline goldens
/// anchor. (Those goldens stay valid for free if this holds.)
#[test]
fn three_g_rows_are_bit_identical_to_the_pre_trait_path() {
    let corpus = benchmark_corpus(SEED);
    let server = OriginServer::from_corpus(&corpus);
    let cfg = CoreConfig::paper();
    let rows = backends::sweep(&corpus, &server, &cfg);
    for case in CASES {
        let row = rows
            .iter()
            .find(|r| r.backend == "3g" && r.case == case.to_string())
            .unwrap_or_else(|| panic!("missing 3g row for {case}"));
        let mut joules = 0.0;
        let mut load_s = 0.0;
        for site in corpus.sites() {
            let visits = [Visit {
                page: &site.mobile,
                reading_s: READING_S,
                features: None,
            }];
            let out = simulate_session(&server, &visits, case, &cfg, None);
            joules += out.total_joules;
            load_s += out.total_load_time_s;
        }
        assert_eq!(
            row.joules.to_bits(),
            joules.to_bits(),
            "{case}: generic path drifted from simulate_session"
        );
        assert_eq!(row.load_time_s.to_bits(), load_s.to_bits(), "{case}");
    }
}

/// Sanity: Case enum order in the golden matches `CASES` (baseline
/// first), so savings in the file are really measured against Original.
#[test]
fn golden_rows_lead_with_the_baseline_per_backend() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/backends.json");
    let text = std::fs::read_to_string(path).expect("golden present");
    let rows: Vec<backends::BackendCaseRow> =
        serde_json::from_str(text.trim_end()).expect("valid JSON");
    assert_eq!(rows.len(), 4 * CASES.len());
    for (i, row) in rows.iter().enumerate() {
        let expected = CASES[i % CASES.len()].to_string();
        assert_eq!(row.case, expected, "row {i} out of order");
        if row.case == Case::Original.to_string() {
            assert_eq!(row.power_saving, 0.0);
        }
    }
}
