//! Property-based tests of the observability substrate: over arbitrary
//! visit schedules, policies, and fault seeds, the emitted energy ledger
//! reconciles with the reported session energy bit for bit, and the
//! recorder never perturbs the simulation it observes.

use ewb_core::cases::Case;
use ewb_core::net::FaultConfig;
use ewb_core::obs::{ledger, Recorder};
use ewb_core::session::{simulate_session_recorded, SessionFaults, SessionOutcome, Visit};
use ewb_core::webpage::{benchmark_corpus, Corpus, OriginServer, PageVersion};
use ewb_core::CoreConfig;
use proptest::prelude::*;

fn corpus() -> &'static (Corpus, OriginServer) {
    use std::sync::OnceLock;
    static CTX: OnceLock<(Corpus, OriginServer)> = OnceLock::new();
    CTX.get_or_init(|| {
        let corpus = benchmark_corpus(77);
        let server = OriginServer::from_corpus(&corpus);
        (corpus, server)
    })
}

/// (site index, mobile?, reading seconds) visit descriptors.
fn visit_plan() -> impl Strategy<Value = Vec<(usize, bool, f64)>> {
    proptest::collection::vec((0usize..10, any::<bool>(), 0.0f64..60.0), 1..4)
}

/// None, or a lossy fault model with the given seed.
fn fault_plan() -> impl Strategy<Value = Option<(f64, u64)>> {
    (any::<bool>(), 0.0f64..0.3, any::<u64>())
        .prop_map(|(on, loss, seed)| on.then_some((loss, seed)))
}

fn build_visits(plan: &[(usize, bool, f64)]) -> Vec<Visit<'static>> {
    let (corpus, _) = corpus();
    plan.iter()
        .map(|&(site, mobile, reading_s)| {
            let key = ewb_core::webpage::BENCHMARK_SITES[site].0;
            let version = if mobile {
                PageVersion::Mobile
            } else {
                PageVersion::Full
            };
            Visit {
                page: corpus.page(key, version).expect("benchmark site"),
                reading_s,
                features: None,
            }
        })
        .collect()
}

fn pick_case(case_idx: usize) -> Option<Case> {
    let case = std::iter::once(Case::Original)
        .chain(Case::TABLE6)
        .nth(case_idx)
        .expect("7 cases");
    // Predictor-backed cases need a trained GBRT; the concrete
    // integration tests cover them.
    (!case.needs_predictor()).then_some(case)
}

fn run(
    visits: &[Visit<'_>],
    case: Case,
    faults: Option<&SessionFaults>,
    recorder: &Recorder,
) -> SessionOutcome {
    let (_, server) = corpus();
    let cfg = CoreConfig::paper();
    simulate_session_recorded(server, visits, case, &cfg, None, faults, recorder)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any schedule, policy, and fault stream, the emitted ledger is
    /// well-formed and folds to the reported session energy with f64 bit
    /// identity.
    #[test]
    fn ledger_identity_never_breaks(
        plan in visit_plan(),
        case_idx in 0usize..7,
        faults in fault_plan(),
    ) {
        let Some(case) = pick_case(case_idx) else { return Ok(()) };
        let visits = build_visits(&plan);
        let sf = faults.map(|(loss, seed)| SessionFaults::new(FaultConfig::lossy(loss), seed));
        let recorder = Recorder::memory();
        let out = run(&visits, case, sf.as_ref(), &recorder);
        let entries = ledger::entries(&recorder.events());
        prop_assert!(!entries.is_empty());
        let audit = ledger::audit(&entries);
        prop_assert!(audit.is_empty(), "ledger audit failed: {:?}", audit);
        prop_assert_eq!(
            ledger::total(&entries).to_bits(),
            out.total_joules.to_bits(),
            "ledger {} != reported {}",
            ledger::total(&entries),
            out.total_joules
        );
    }

    /// Observer effect is zero: any session runs bit-identically with the
    /// recorder enabled and disabled.
    #[test]
    fn recorder_never_perturbs_the_session(
        plan in visit_plan(),
        case_idx in 0usize..7,
        faults in fault_plan(),
    ) {
        let Some(case) = pick_case(case_idx) else { return Ok(()) };
        let visits = build_visits(&plan);
        let sf = faults.map(|(loss, seed)| SessionFaults::new(FaultConfig::lossy(loss), seed));
        let observed = run(&visits, case, sf.as_ref(), &Recorder::memory());
        let plain = run(&visits, case, sf.as_ref(), &Recorder::disabled());
        prop_assert_eq!(observed.total_joules.to_bits(), plain.total_joules.to_bits());
        prop_assert_eq!(
            observed.total_load_time_s.to_bits(),
            plain.total_load_time_s.to_bits()
        );
        prop_assert_eq!(observed.duration, plain.duration);
        prop_assert_eq!(observed.counters, plain.counters);
        prop_assert_eq!(observed.pages.len(), plain.pages.len());
        for (a, b) in observed.pages.iter().zip(&plain.pages) {
            prop_assert_eq!(&a.url, &b.url);
            prop_assert_eq!(a.opened, b.opened);
            prop_assert_eq!(a.released_at, b.released_at);
            prop_assert_eq!(a.load_joules.to_bits(), b.load_joules.to_bits());
            prop_assert_eq!(a.reading_joules.to_bits(), b.reading_joules.to_bits());
            prop_assert_eq!(a.bytes, b.bytes);
            prop_assert_eq!(a.failed_objects, b.failed_objects);
        }
    }
}
