//! Reference session timeline — the fixed trace the golden timeline test
//! pins and the `--timeline` flag of the bench bins exports.
//!
//! One deterministic two-visit mobile browsing session (msn then aol,
//! energy-aware pipeline, lossy radio) is run with a memory recorder
//! attached, and the full cross-layer event stream — page visits,
//! transfers, retries, browser stage spans, RRC transitions, timers, and
//! the energy ledger — is returned in simulation-time order. Serialized
//! as JSON lines it becomes `crates/core/tests/golden/timeline.jsonl`:
//! any change to the fault models, the fetcher, the pipelines, or the
//! RRC machine that shifts a single event shows up as a golden diff.

use crate::cases::Case;
use crate::config::CoreConfig;
use crate::session::{simulate_session_recorded, SessionFaults, SessionOutcome, Visit};
use ewb_net::FaultConfig;
use ewb_obs::{timeline, Event, Recorder};
use ewb_webpage::{Corpus, OriginServer, PageVersion};

/// Per-attempt loss probability of the reference session's radio link —
/// high enough that the fixed seed draws at least one fault, so the
/// golden timeline exercises the retry path.
pub const TIMELINE_LOSS: f64 = 0.10;

/// Reading times of the two visits, seconds. The first is long enough
/// for a fast-dormancy release to pay off; the second is short.
pub const READING_S: [f64; 2] = [12.0, 6.0];

/// Site keys of the two visits, in order.
pub const SITES: [&str; 2] = ["msn", "aol"];

/// Runs the reference session and returns its event stream in
/// simulation-time order, together with the outcome it observed.
///
/// Deterministic in (`corpus`, `cfg`, `seed`): same inputs, same events,
/// bit for bit.
///
/// # Panics
///
/// Panics if the corpus lacks the [`SITES`] pages or the config is
/// invalid.
pub fn record_session_timeline(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    seed: u64,
) -> (Vec<Event>, SessionOutcome) {
    let pages: Vec<_> = SITES
        .iter()
        .map(|key| {
            corpus
                .page(key, PageVersion::Mobile)
                .unwrap_or_else(|| panic!("corpus has no mobile page for {key}"))
        })
        .collect();
    let visits: Vec<Visit<'_>> = pages
        .iter()
        .zip(READING_S)
        .map(|(page, reading_s)| Visit {
            page,
            reading_s,
            features: None,
        })
        .collect();
    let faults = SessionFaults::new(FaultConfig::lossy(TIMELINE_LOSS), seed);
    let recorder = Recorder::memory();
    let outcome = simulate_session_recorded(
        server,
        &visits,
        Case::Accurate9,
        cfg,
        None,
        Some(&faults),
        &recorder,
    );
    (timeline::sorted(&recorder.events()), outcome)
}

/// Serializes an event stream as the JSON-lines timeline the golden test
/// pins and `--timeline PATH` writes: one event per line, sorted by
/// simulation time, with a trailing newline.
pub fn timeline_jsonl(events: &[Event]) -> String {
    timeline::to_jsonl(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_obs::ledger;
    use ewb_webpage::benchmark_corpus;

    #[test]
    fn reference_timeline_is_deterministic() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let (a, _) = record_session_timeline(&corpus, &server, &cfg, 2013);
        let (b, _) = record_session_timeline(&corpus, &server, &cfg, 2013);
        assert_eq!(timeline_jsonl(&a), timeline_jsonl(&b));
    }

    #[test]
    fn reference_timeline_covers_every_layer_and_reconciles() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let (events, outcome) = record_session_timeline(&corpus, &server, &cfg, 2013);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::PageVisit { .. }))
                .count(),
            SITES.len()
        );
        for kind in [
            "state_transition",
            "energy_segment",
            "transfer_begin",
            "span",
        ] {
            assert!(
                events.iter().any(|e| e.kind() == kind),
                "timeline is missing any {kind} event"
            );
        }
        // The ledger carried by the timeline folds to the session energy
        // bit for bit.
        let entries = ledger::entries(&events);
        assert!(ledger::audit(&entries).is_empty(), "ledger is well-formed");
        assert_eq!(
            ledger::total(&entries).to_bits(),
            outcome.total_joules.to_bits()
        );
        // Sorted output: simulation time never goes backwards.
        for w in events.windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }
}
