//! Drivers that regenerate every figure and table of the paper's
//! evaluation (§5). Each submodule owns one experiment; the `ewb-bench`
//! binaries print their outputs in the paper's format.

pub mod backends;
pub mod capacity_exp;
pub mod cases16;
pub mod display;
pub mod energy;
pub mod loadtime;
pub mod parallel;
pub mod power_trace;
pub mod robustness;
pub mod timeline;
pub mod traffic;

use crate::cases::Case;
use crate::config::CoreConfig;
use crate::session::{simulate_session, SessionOutcome, Visit};
use ewb_webpage::{Corpus, OriginServer, Page, Site};

/// Fans an independent per-site measurement over scoped threads, one
/// worker per benchmark site, and collects results in site order. Every
/// per-site experiment here is a pure function of (site, config), so the
/// output is identical to a serial `sites().iter().map(...)`.
///
/// # Panics
///
/// Propagates any worker panic.
pub(crate) fn par_map_sites<T, F>(corpus: &Corpus, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Site) -> T + Sync,
{
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = corpus
            .sites()
            .iter()
            .map(|site| scope.spawn(move |_| f(site)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("site worker panicked"))
            .collect()
    })
    .expect("thread scope")
}

/// Runs a single-page session (fresh radio, one visit) — the building
/// block of the per-benchmark experiments.
pub fn single_visit(
    server: &OriginServer,
    page: &Page,
    case: Case,
    cfg: &CoreConfig,
    reading_s: f64,
) -> SessionOutcome {
    let visits = [Visit {
        page,
        reading_s,
        features: None,
    }];
    simulate_session(server, &visits, case, cfg, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::{benchmark_corpus, PageVersion};

    #[test]
    fn single_visit_smoke() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let page = corpus.page("bbc", PageVersion::Mobile).unwrap();
        let out = single_visit(&server, page, Case::Original, &CoreConfig::paper(), 5.0);
        assert_eq!(out.pages.len(), 1);
        assert!(out.total_joules > 0.0);
    }
}
