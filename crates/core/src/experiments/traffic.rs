//! Fig. 4 — browser-paced traffic vs a bulk socket download.
//!
//! The paper opens espn.go.com/sports (760 KB) in the stock browser: the
//! transmissions spread over 47 s in bursts. A socket client pulls the
//! same bytes in 8 s. The contrast motivates grouping the transmissions.

use super::single_visit;
use crate::cases::Case;
use crate::config::CoreConfig;
use ewb_net::download::{bulk_download, BulkDownload, TRAFFIC_BUCKET};
use ewb_simcore::SimTime;
use ewb_webpage::{Corpus, OriginServer, PageVersion};

/// The Fig. 4 data: browser-paced and socket-paced transfers of the same
/// byte volume.
#[derive(Debug, Clone)]
pub struct TrafficComparison {
    /// Bytes per 0.5 s bucket for the browser-paced load.
    pub browser_buckets: Vec<f64>,
    /// Browser transmission duration, s.
    pub browser_duration_s: f64,
    /// Bytes per 0.5 s bucket for the bulk download.
    pub bulk_buckets: Vec<f64>,
    /// Bulk download duration, s.
    pub bulk_duration_s: f64,
    /// Total bytes moved (identical in both).
    pub total_bytes: u64,
}

/// Runs the comparison on one page (the paper uses espn full).
pub fn compare(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    key: &str,
) -> TrafficComparison {
    let page = corpus
        .page(key, PageVersion::Full)
        .unwrap_or_else(|| panic!("unknown benchmark site {key}"));
    let out = single_visit(server, page, Case::Original, cfg, 0.0);
    let record = &out.pages[0];

    // The browser-paced traffic: rebuild the per-completion series from
    // the replayed radio's transfer activity is equivalent to the load's
    // own traffic series; use a fresh pipeline run for the series.
    let mut fetcher = ewb_net::ThreeGFetcher::new(cfg.net, cfg.rrc, server, SimTime::ZERO);
    let metrics = ewb_browser::pipeline::load_page(
        &mut fetcher,
        page.root_url(),
        SimTime::ZERO,
        &ewb_browser::pipeline::PipelineConfig::new(Case::Original.pipeline_mode()),
        &cfg.cost,
    );

    let bulk: BulkDownload = bulk_download(&cfg.net, &cfg.rrc, page.total_bytes(), SimTime::ZERO);

    TrafficComparison {
        browser_buckets: metrics.traffic.bucket_sums(TRAFFIC_BUCKET),
        browser_duration_s: record.tx_time_s(),
        bulk_buckets: bulk.traffic.bucket_sums(TRAFFIC_BUCKET),
        bulk_duration_s: bulk.duration.as_secs_f64(),
        total_bytes: page.total_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    #[test]
    fn browser_is_several_times_slower_than_bulk() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let c = compare(&corpus, &server, &cfg, "espn");
        // Paper: 47 s vs 8 s (≈5.9×). Shape: browser-paced should be
        // well over 2× the socket time.
        let ratio = c.browser_duration_s / c.bulk_duration_s;
        assert!(
            ratio > 2.0,
            "browser {:.1}s vs bulk {:.1}s (ratio {ratio:.2})",
            c.browser_duration_s,
            c.bulk_duration_s
        );
        // Both move the full 760 KB.
        let kb = c.total_bytes as f64 / 1024.0;
        assert!((660.0..860.0).contains(&kb));
        let browser_sum: f64 = c.browser_buckets.iter().sum();
        assert!((browser_sum - c.total_bytes as f64).abs() < 1.0);
    }

    #[test]
    fn browser_traffic_is_bursty_bulk_is_continuous() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let c = compare(&corpus, &server, &cfg, "espn");
        // Compare within each transfer's active span (trim the leading
        // promotion/RTT silence and trailing zeros).
        let idle_frac = |buckets: &[f64]| {
            let first = buckets.iter().position(|&b| b > 0.0).unwrap_or(0);
            let last = buckets.iter().rposition(|&b| b > 0.0).unwrap_or(0);
            let active = &buckets[first..=last];
            active.iter().filter(|&&b| b == 0.0).count() as f64 / active.len() as f64
        };
        let browser_idle = idle_frac(&c.browser_buckets);
        let bulk_idle = idle_frac(&c.bulk_buckets);
        assert!(
            browser_idle > bulk_idle + 0.15,
            "browser idle {browser_idle:.2} should exceed bulk idle {bulk_idle:.2}"
        );
    }
}
