//! Figs. 12–14 — intermediate and final display times.
//!
//! Paper results for espn full: intermediate display at 7 s (energy-aware)
//! vs 17.6 s (original); final display 28.6 s vs 34.5 s. Benchmark means
//! (Fig. 14): first display 45.5 % earlier, final display 16.8 % earlier
//! on the full benchmark; mobile pages skip the intermediate display.

use super::single_visit;
use crate::cases::Case;
use crate::config::CoreConfig;
use ewb_webpage::{Corpus, OriginServer, PageVersion};
use serde::{Deserialize, Serialize};

/// Per-page display timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisplayRow {
    /// Site key.
    pub key: String,
    /// Mobile or full.
    pub version: PageVersion,
    /// Original: first (intermediate) display, s — `None` if never drawn.
    pub orig_first_s: Option<f64>,
    /// Original: final display, s.
    pub orig_final_s: f64,
    /// Energy-aware: first display, s (`None` for mobile).
    pub ea_first_s: Option<f64>,
    /// Energy-aware: final display, s.
    pub ea_final_s: f64,
}

/// Measures display timings over one benchmark version, one scoped
/// worker per independent site.
pub fn benchmark_display_times(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    version: PageVersion,
) -> Vec<DisplayRow> {
    super::par_map_sites(corpus, |site| {
        let page = match version {
            PageVersion::Mobile => &site.mobile,
            PageVersion::Full => &site.full,
        };
        let to_s = |t: Option<ewb_simcore::SimTime>| t.map(|x| x.as_secs_f64());
        let orig = single_visit(server, page, Case::Original, cfg, 0.0);
        let ea = single_visit(server, page, Case::EnergyAwareAlwaysOff, cfg, 0.0);
        DisplayRow {
            key: site.key.clone(),
            version,
            orig_first_s: to_s(orig.pages[0].first_display),
            orig_final_s: orig.pages[0].opened.as_secs_f64(),
            ea_first_s: to_s(ea.pages[0].first_display),
            ea_final_s: ea.pages[0].opened.as_secs_f64(),
        }
    })
}

/// Fig. 14 means: `(first_saving, final_saving)` fractions over rows that
/// have both first displays.
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn fig14_savings(rows: &[DisplayRow]) -> (f64, f64) {
    assert!(!rows.is_empty(), "no rows");
    let firsts: Vec<(f64, f64)> = rows
        .iter()
        .filter_map(|r| Some((r.orig_first_s?, r.ea_first_s?)))
        .collect();
    let first_saving = if firsts.is_empty() {
        0.0
    } else {
        let o: f64 = firsts.iter().map(|p| p.0).sum();
        let e: f64 = firsts.iter().map(|p| p.1).sum();
        1.0 - e / o
    };
    let o: f64 = rows.iter().map(|r| r.orig_final_s).sum();
    let e: f64 = rows.iter().map(|r| r.ea_final_s).sum();
    (first_saving, 1.0 - e / o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    #[test]
    fn espn_reproduces_fig12_and_13() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = benchmark_display_times(&corpus, &server, &cfg, PageVersion::Full);
        let espn = rows.iter().find(|r| r.key == "espn").unwrap();
        let of = espn.orig_first_s.unwrap();
        let ef = espn.ea_first_s.unwrap();
        // Paper: 17.6 s → 7 s intermediate; 34.5 s → 28.6 s final.
        assert!(ef < 0.6 * of, "first display: {ef} vs {of}");
        assert!(espn.ea_final_s < espn.orig_final_s);
        assert!((20.0..50.0).contains(&espn.orig_final_s));
    }

    #[test]
    fn fig14_savings_match_paper_shape() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = benchmark_display_times(&corpus, &server, &cfg, PageVersion::Full);
        let (first, final_) = fig14_savings(&rows);
        assert!(
            (0.30..0.90).contains(&first),
            "first saving {first:.3} (paper 0.455)"
        );
        assert!(
            (0.05..0.35).contains(&final_),
            "final saving {final_:.3} (paper 0.168)"
        );
    }

    #[test]
    fn mobile_skips_intermediate_display() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = benchmark_display_times(&corpus, &server, &cfg, PageVersion::Mobile);
        for r in &rows {
            assert!(
                r.ea_first_s.is_none(),
                "{}: mobile EA draws no intermediate",
                r.key
            );
        }
    }
}
