//! Fig. 9 — the 4 Hz power trace of loading espn.go.com/sports.
//!
//! Paper: the original browser finishes transmissions at sample 130
//! (32.5 s) and then burns ≈0.6 W in FACH for the following 20 s; the
//! energy-aware browser finishes at 100 (25 s) and switches to IDLE at
//! 110 (27.5 s), after which it draws almost nothing.

use super::single_visit;
use crate::cases::Case;
use crate::config::CoreConfig;
use ewb_simcore::PowerTrace;
use ewb_webpage::{Corpus, OriginServer, PageVersion};

/// The two traces of Fig. 9, plus the page-open instants for aligning
/// the reading windows.
#[derive(Debug, Clone)]
pub struct PowerTraces {
    /// Original browser, 4 Hz samples.
    pub original: PowerTrace,
    /// When the original browser finished opening the page, s.
    pub original_opened_s: f64,
    /// Energy-aware browser (release during reading), 4 Hz samples.
    pub energy_aware: PowerTrace,
    /// When the energy-aware browser finished opening the page, s.
    pub energy_aware_opened_s: f64,
}

/// Produces both traces for one page with a fixed reading window.
pub fn espn_power_traces(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    reading_s: f64,
) -> PowerTraces {
    let page = corpus.page("espn", PageVersion::Full).expect("espn exists");
    let orig = single_visit(server, page, Case::Original, cfg, reading_s);
    let ea = single_visit(server, page, Case::Accurate9, cfg, reading_s);
    PowerTraces {
        original: PowerTrace::sample_meter(orig.radio.meter(), PowerTrace::PAPER_INTERVAL),
        original_opened_s: orig.pages[0].opened.as_secs_f64(),
        energy_aware: PowerTrace::sample_meter(ea.radio.meter(), PowerTrace::PAPER_INTERVAL),
        energy_aware_opened_s: ea.pages[0].opened.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    #[test]
    fn traces_show_the_fig9_contrast() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let t = espn_power_traces(&corpus, &server, &cfg, 25.0);

        // The energy-aware run ends the same session with less energy.
        assert!(t.energy_aware.estimated_joules() < t.original.estimated_joules());

        // Early-reading behavior (the paper's Fig. 9 window): between 5 s
        // and 15 s after the page opens, the original still rides its
        // DCH/FACH tail (≈0.6+ W) while the energy-aware radio has been
        // released to IDLE (≈0.15 W plus display).
        let window_mean = |tr: &PowerTrace, opened_s: f64| {
            let lo = ((opened_s + 5.0) / 0.25) as usize;
            let hi = (((opened_s + 15.0) / 0.25) as usize).min(tr.len());
            let s = &tr.samples()[lo..hi];
            s.iter().sum::<f64>() / s.len() as f64
        };
        let orig_read = window_mean(&t.original, t.original_opened_s);
        let ea_read = window_mean(&t.energy_aware, t.energy_aware_opened_s);
        assert!(
            orig_read > 0.5,
            "original should ride DCH/FACH during early reading: {orig_read:.2} W"
        );
        assert!(
            ea_read < 0.25,
            "energy-aware should be at IDLE during early reading: {ea_read:.2} W"
        );

        // Both traces peak at DCH transmission levels early on.
        assert!(t.original.samples().iter().copied().fold(0.0_f64, f64::max) >= 1.2);
        assert!(
            t.energy_aware
                .samples()
                .iter()
                .copied()
                .fold(0.0_f64, f64::max)
                >= 1.2
        );
    }
}
