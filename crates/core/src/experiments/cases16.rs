//! Fig. 16 — power and delay savings of the six Table 6 cases.
//!
//! Sessions are replayed from the generated user trace: each visit loads
//! its benchmark page over the shared radio, the user reads for the
//! trace's dwell time, and the case's policy decides the release. Savings
//! are measured against the Original baseline over the same visits.
//!
//! Paper's headline numbers: Accurate-9 saves the most power (26.1 %),
//! Accurate-20 the most delay (13.6 %); Original Always-off *increases*
//! delay by 1.47 %; the predicted variants land slightly below their
//! oracles.

use crate::cases::Case;
use crate::config::CoreConfig;
use crate::session::{simulate_session, Visit};
use ewb_traces::{ReadingTimePredictor, TraceDataset};
use ewb_webpage::{Corpus, OriginServer};
use serde::{Deserialize, Serialize};

/// One bar pair of Fig. 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseOutcome {
    /// Case name.
    pub case: String,
    /// Total energy, J.
    pub joules: f64,
    /// Total page-load (user-waiting) time, s.
    pub load_time_s: f64,
    /// Energy saving vs the Original baseline (fraction).
    pub power_saving: f64,
    /// Delay saving vs the Original baseline (fraction; negative = worse).
    pub delay_saving: f64,
}

/// Selects the first `max_sessions` sessions of each of the first
/// `n_users` users, as visit groups.
pub fn select_sessions(
    trace: &TraceDataset,
    n_users: u32,
    max_sessions: u32,
) -> Vec<Vec<&ewb_traces::PageVisit>> {
    let mut sessions: Vec<Vec<&ewb_traces::PageVisit>> = Vec::new();
    for user in 0..n_users {
        let mut current: Option<u32> = None;
        let mut taken = 0u32;
        for v in trace.visits().iter().filter(|v| v.user == user) {
            if current != Some(v.session) {
                if taken >= max_sessions {
                    break;
                }
                current = Some(v.session);
                taken += 1;
                sessions.push(Vec::new());
            }
            sessions.last_mut().expect("just pushed").push(v);
        }
    }
    sessions
}

/// Runs one case over the selected sessions; returns
/// `(total_joules, total_load_time_s)`.
pub fn run_case(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    sessions: &[Vec<&ewb_traces::PageVisit>],
    case: Case,
    predictor: &ReadingTimePredictor,
) -> (f64, f64) {
    let mut joules = 0.0;
    let mut load_s = 0.0;
    for session in sessions {
        let visits: Vec<Visit<'_>> = session
            .iter()
            .map(|v| Visit {
                page: corpus
                    .page(&v.site, v.version)
                    .expect("trace sites come from the corpus"),
                reading_s: v.reading_time_s,
                features: Some(v.features),
            })
            .collect();
        let out = simulate_session(server, &visits, case, cfg, Some(predictor));
        joules += out.total_joules;
        load_s += out.total_load_time_s;
    }
    (joules, load_s)
}

/// Turns per-case totals (Original first) into the Fig. 16 rows.
///
/// # Panics
///
/// Panics if `totals` is empty or its first entry is not the baseline.
pub fn to_outcomes(totals: &[(Case, f64, f64)]) -> Vec<CaseOutcome> {
    assert!(!totals.is_empty(), "no case totals");
    assert_eq!(totals[0].0, Case::Original, "baseline must come first");
    let (_, base_j, base_s) = totals[0];
    totals
        .iter()
        .map(|&(case, joules, load_time_s)| CaseOutcome {
            case: case.to_string(),
            joules,
            load_time_s,
            power_saving: 1.0 - joules / base_j,
            delay_saving: 1.0 - load_time_s / base_s,
        })
        .collect()
}

/// Runs the Fig. 16 experiment over the first `n_users` users of `trace`,
/// capping each user at `max_sessions` sessions (runtime control).
///
/// # Panics
///
/// Panics if the selection yields no sessions.
pub fn run(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    trace: &TraceDataset,
    predictor: &ReadingTimePredictor,
    n_users: u32,
    max_sessions: u32,
) -> Vec<CaseOutcome> {
    let sessions = select_sessions(trace, n_users, max_sessions);
    assert!(!sessions.is_empty(), "no sessions selected for Fig. 16");

    let mut totals: Vec<(Case, f64, f64)> = Vec::new();
    for case in std::iter::once(Case::Original).chain(Case::TABLE6) {
        let (j, s) = run_case(corpus, server, cfg, &sessions, case, predictor);
        totals.push((case, j, s));
    }
    to_outcomes(&totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_traces::{reading_time_params, TraceConfig};
    use ewb_webpage::benchmark_corpus;

    /// A small but complete Fig. 16 run; the full-scale version lives in
    /// the bench harness.
    #[test]
    fn fig16_shape_holds_on_a_small_slice() {
        let trace_cfg = TraceConfig {
            seed: 2013,
            ..TraceConfig::small()
        };
        let trace = TraceDataset::generate(&trace_cfg);
        let corpus = benchmark_corpus(trace_cfg.seed);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let predictor = ReadingTimePredictor::train_with_interest_threshold(
            &trace,
            2.0,
            &reading_time_params(),
        );

        let rows = run(&corpus, &server, &cfg, &trace, &predictor, 2, 3);
        assert_eq!(rows.len(), 7);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.case == name)
                .unwrap_or_else(|| panic!("missing case {name}"))
                .clone()
        };

        let baseline = get("Original");
        assert_eq!(baseline.power_saving, 0.0);
        assert_eq!(baseline.delay_saving, 0.0);

        // Every non-baseline case saves power.
        for r in &rows {
            if r.case != "Original" {
                assert!(r.power_saving > 0.0, "{}: {:?}", r.case, r);
            }
        }

        // The paper's ordering relations.
        let acc9 = get("Accurate-9");
        let acc20 = get("Accurate-20");
        let orig_off = get("Original Always-off");
        let ea_off = get("Energy-aware Always-off");
        assert!(
            acc9.power_saving >= acc20.power_saving - 0.02,
            "Accurate-9 optimizes power: {acc9:?} vs {acc20:?}"
        );
        assert!(
            acc20.delay_saving >= acc9.delay_saving - 0.02,
            "Accurate-20 optimizes delay: {acc20:?} vs {acc9:?}"
        );
        assert!(
            orig_off.delay_saving < ea_off.delay_saving,
            "Original always-off has the worst delay: {orig_off:?} vs {ea_off:?}"
        );
        assert!(
            orig_off.power_saving < acc9.power_saving,
            "Original always-off saves the least power among release policies"
        );
    }
}
