//! Fig. 8 — data-transmission time and load time across the benchmark.
//!
//! Paper results: on the full-version benchmark the reorganized browser
//! cuts data-transmission time by 27 % and total loading time by 17 %;
//! on the mobile benchmark, 15 % and 2.5 %. For the original browser the
//! data-transmission time *is* the loading time (computations are mixed,
//! §5.2).

use super::single_visit;
use crate::cases::Case;
use crate::config::CoreConfig;
use ewb_webpage::{Corpus, OriginServer, PageVersion};
use serde::{Deserialize, Serialize};

/// Per-page timing comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTimeRow {
    /// Site key.
    pub key: String,
    /// Mobile or full.
    pub version: PageVersion,
    /// Original browser: loading time (= its data transmission time), s.
    pub orig_load_s: f64,
    /// Energy-aware browser: data-transmission phase, s.
    pub ea_tx_s: f64,
    /// Energy-aware browser: layout phase, s.
    pub ea_layout_s: f64,
    /// Energy-aware browser: total loading time, s.
    pub ea_load_s: f64,
}

impl LoadTimeRow {
    /// Fraction of data-transmission time saved.
    pub fn tx_saving(&self) -> f64 {
        1.0 - self.ea_tx_s / self.orig_load_s
    }

    /// Fraction of total loading time saved.
    pub fn total_saving(&self) -> f64 {
        1.0 - self.ea_load_s / self.orig_load_s
    }
}

/// Benchmark-level means (one bar group of Fig. 8a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Summary {
    /// Mean original loading time, s.
    pub orig_load_s: f64,
    /// Mean energy-aware transmission time, s.
    pub ea_tx_s: f64,
    /// Mean energy-aware loading time, s.
    pub ea_load_s: f64,
    /// Mean transmission-time saving (paper: 27 % full / 15 % mobile).
    pub tx_saving: f64,
    /// Mean total-time saving (paper: 17 % full / 2.5 % mobile).
    pub total_saving: f64,
}

/// Measures every benchmark page under both pipelines, fanning the
/// independent per-site simulations over scoped threads.
pub fn benchmark_load_times(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    version: PageVersion,
) -> Vec<LoadTimeRow> {
    super::par_map_sites(corpus, |site| {
        let page = match version {
            PageVersion::Mobile => &site.mobile,
            PageVersion::Full => &site.full,
        };
        let orig = single_visit(server, page, Case::Original, cfg, 0.0);
        let ea = single_visit(server, page, Case::EnergyAwareAlwaysOff, cfg, 0.0);
        let op = &orig.pages[0];
        let ep = &ea.pages[0];
        LoadTimeRow {
            key: site.key.clone(),
            version,
            orig_load_s: op.load_time_s(),
            ea_tx_s: ep.tx_time_s(),
            ea_layout_s: ep.load_time_s() - ep.tx_time_s(),
            ea_load_s: ep.load_time_s(),
        }
    })
}

/// Aggregates rows into the Fig. 8(a) summary.
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn summarize(rows: &[LoadTimeRow]) -> Fig8Summary {
    assert!(!rows.is_empty(), "no rows to summarize");
    let n = rows.len() as f64;
    let orig_load_s = rows.iter().map(|r| r.orig_load_s).sum::<f64>() / n;
    let ea_tx_s = rows.iter().map(|r| r.ea_tx_s).sum::<f64>() / n;
    let ea_load_s = rows.iter().map(|r| r.ea_load_s).sum::<f64>() / n;
    Fig8Summary {
        orig_load_s,
        ea_tx_s,
        ea_load_s,
        tx_saving: 1.0 - ea_tx_s / orig_load_s,
        total_saving: 1.0 - ea_load_s / orig_load_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    #[test]
    fn full_benchmark_reproduces_fig8_shape() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = benchmark_load_times(&corpus, &server, &cfg, PageVersion::Full);
        assert_eq!(rows.len(), 10);
        let s = summarize(&rows);
        assert!(
            (0.18..0.45).contains(&s.tx_saving),
            "full tx saving {:.3} (paper 0.27)",
            s.tx_saving
        );
        assert!(
            (0.05..0.32).contains(&s.total_saving),
            "full total saving {:.3} (paper 0.17)",
            s.total_saving
        );
        // Every single site should improve on both axes.
        for r in &rows {
            assert!(r.tx_saving() > 0.0, "{}: {:?}", r.key, r);
            assert!(r.ea_layout_s > 0.0);
        }
    }

    #[test]
    fn mobile_benchmark_reproduces_fig8_shape() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = benchmark_load_times(&corpus, &server, &cfg, PageVersion::Mobile);
        let s = summarize(&rows);
        assert!(
            (0.03..0.40).contains(&s.tx_saving),
            "mobile tx saving {:.3} (paper 0.15)",
            s.tx_saving
        );
        assert!(
            s.total_saving > -0.08,
            "mobile total saving {:.3} (paper 0.025)",
            s.total_saving
        );
        assert!(
            s.orig_load_s
                < summarize(&benchmark_load_times(
                    &corpus,
                    &server,
                    &cfg,
                    PageVersion::Full
                ))
                .orig_load_s
        );
    }
}
