//! Robustness sweep — does the energy win survive a bad cell?
//!
//! The paper evaluates its reorganized pipeline and fast-dormancy release
//! on a clean UMTS link. This experiment injects deterministic faults
//! (packet loss/stalls, RTT jitter + promotion failures, periodic signal
//! fades — the [`FaultConfig`] presets) at a sweep of loss rates and
//! re-runs the Fig. 10 energy comparison under each, for both the
//! original and the energy-aware browser. Failed objects degrade pages
//! instead of wedging them; every retry attempt's radio time rides into
//! the energy replay. The output is the loss-sweep table in
//! EXPERIMENTS.md and the golden summary the CI robustness job pins.

use crate::cases::Case;
use crate::config::CoreConfig;
use crate::session::{simulate_session_faulted, SessionFaults, SessionOutcome, Visit};
use ewb_net::FaultConfig;
use ewb_simcore::SplitMix64;
use ewb_webpage::{Corpus, OriginServer};
use serde::{Deserialize, Serialize};

/// The fixed reading window, matching the Fig. 10 energy experiment.
pub const READING_S: f64 = 20.0;

/// The loss rates the sweep visits.
pub const LOSS_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

/// The named fault profiles the sweep crosses with [`LOSS_RATES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// Pure packet loss/stalls plus correlated truncation
    /// ([`FaultConfig::lossy`]).
    Lossy,
    /// Loss plus RTT jitter spikes and RRC promotion failures
    /// ([`FaultConfig::jittery`]).
    Jittery,
    /// Loss plus periodic deep signal fades ([`FaultConfig::fading`]).
    Fading,
}

impl FaultProfile {
    /// Every profile, in sweep order.
    pub const ALL: [FaultProfile; 3] = [
        FaultProfile::Lossy,
        FaultProfile::Jittery,
        FaultProfile::Fading,
    ];

    /// The profile's fault model at the given loss rate.
    pub fn config(self, loss: f64) -> FaultConfig {
        match self {
            FaultProfile::Lossy => FaultConfig::lossy(loss),
            FaultProfile::Jittery => FaultConfig::jittery(loss),
            FaultProfile::Fading => FaultConfig::fading(loss),
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::Lossy => "lossy",
            FaultProfile::Jittery => "jittery",
            FaultProfile::Fading => "fading",
        }
    }
}

/// One cell of the sweep: a (profile, loss rate) pair measured across the
/// whole mobile benchmark for both browser cases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Fault profile.
    pub profile: FaultProfile,
    /// Per-attempt loss probability.
    pub loss: f64,
    /// Original browser: mean page-load time, seconds.
    pub orig_load_s: f64,
    /// Original browser: mean session energy (load + 20 s reading), J.
    pub orig_energy_j: f64,
    /// Original browser: degraded page loads across the benchmark.
    pub orig_degraded: u64,
    /// Original browser: objects that errored out across the benchmark.
    pub orig_failed_objects: u64,
    /// Energy-aware browser: mean page-load time, seconds.
    pub ea_load_s: f64,
    /// Energy-aware browser: mean session energy, J.
    pub ea_energy_j: f64,
    /// Energy-aware browser: degraded page loads across the benchmark.
    pub ea_degraded: u64,
    /// Energy-aware browser: objects that errored out.
    pub ea_failed_objects: u64,
}

impl RobustnessRow {
    /// Fraction of energy the energy-aware browser saves in this cell.
    pub fn saving(&self) -> f64 {
        1.0 - self.ea_energy_j / self.orig_energy_j
    }
}

/// Per-site seed: the base seed folded with the site key, so adding a
/// site never shifts another site's fault pattern.
fn site_seed(base: u64, key: &str) -> u64 {
    let mut h = SplitMix64::mix(base);
    for b in key.bytes() {
        h = SplitMix64::mix(h ^ u64::from(b));
    }
    h
}

fn measure(
    server: &OriginServer,
    page: &ewb_webpage::Page,
    case: Case,
    cfg: &CoreConfig,
    faults: &SessionFaults,
) -> SessionOutcome {
    let visits = [Visit {
        page,
        reading_s: READING_S,
        features: None,
    }];
    simulate_session_faulted(server, &visits, case, cfg, None, Some(faults))
}

/// Runs the full sweep: [`FaultProfile::ALL`] × [`LOSS_RATES`] over the
/// mobile benchmark, one scoped worker per site within each cell.
///
/// Deterministic in (`corpus`, `cfg`, `seed`): the golden robustness test
/// pins the serialized output at a fixed seed.
pub fn sweep(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    seed: u64,
) -> Vec<RobustnessRow> {
    let mut rows = Vec::with_capacity(FaultProfile::ALL.len() * LOSS_RATES.len());
    for (pi, profile) in FaultProfile::ALL.iter().enumerate() {
        for (li, &loss) in LOSS_RATES.iter().enumerate() {
            let cell_seed = SplitMix64::mix(seed ^ ((pi as u64) << 8 | li as u64));
            let fc = profile.config(loss);
            let per_site = super::par_map_sites(corpus, |site| {
                let sf = SessionFaults::new(fc, site_seed(cell_seed, &site.key));
                let orig = measure(server, &site.mobile, Case::Original, cfg, &sf);
                let ea = measure(server, &site.mobile, Case::Accurate9, cfg, &sf);
                (orig, ea)
            });
            let n = per_site.len() as f64;
            let mut row = RobustnessRow {
                profile: *profile,
                loss,
                orig_load_s: 0.0,
                orig_energy_j: 0.0,
                orig_degraded: 0,
                orig_failed_objects: 0,
                ea_load_s: 0.0,
                ea_energy_j: 0.0,
                ea_degraded: 0,
                ea_failed_objects: 0,
            };
            for (orig, ea) in &per_site {
                row.orig_load_s += orig.total_load_time_s / n;
                row.orig_energy_j += orig.total_joules / n;
                row.orig_degraded += orig.degraded_pages() as u64;
                row.orig_failed_objects += orig.failed_objects() as u64;
                row.ea_load_s += ea.total_load_time_s / n;
                row.ea_energy_j += ea.total_joules / n;
                row.ea_degraded += ea.degraded_pages() as u64;
                row.ea_failed_objects += ea.failed_objects() as u64;
            }
            rows.push(row);
        }
    }
    rows
}

/// Serializes the sweep as the golden summary JSON the CI robustness job
/// compares against.
pub fn summary_json(rows: &[RobustnessRow]) -> String {
    serde_json::to_string(rows).expect("rows are always serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    #[test]
    fn zero_loss_cells_match_the_clean_baseline() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = sweep(&corpus, &server, &cfg, 7);
        assert_eq!(rows.len(), FaultProfile::ALL.len() * LOSS_RATES.len());
        // At zero loss the lossy profile draws no faults at all, so its
        // cell agrees bit-for-bit with the clean (fault-free) benchmark.
        // (Jittery keeps its jitter spikes and fading its fade windows
        // even at zero loss.)
        let lossy0 = &rows[0];
        assert_eq!(lossy0.loss, 0.0);
        let n = corpus.sites().len() as f64;
        let mut clean_orig = 0.0;
        let mut clean_ea = 0.0;
        for site in corpus.sites() {
            let orig =
                super::super::single_visit(&server, &site.mobile, Case::Original, &cfg, READING_S);
            let ea =
                super::super::single_visit(&server, &site.mobile, Case::Accurate9, &cfg, READING_S);
            clean_orig += orig.total_joules / n;
            clean_ea += ea.total_joules / n;
        }
        assert_eq!(lossy0.orig_energy_j.to_bits(), clean_orig.to_bits());
        assert_eq!(lossy0.ea_energy_j.to_bits(), clean_ea.to_bits());
        assert_eq!(lossy0.orig_degraded + lossy0.ea_degraded, 0);
        assert_eq!(lossy0.orig_failed_objects + lossy0.ea_failed_objects, 0);
        // The clean cell shows the paper-scale saving.
        assert!(
            (0.20..0.55).contains(&lossy0.saving()),
            "clean saving {:.3}",
            lossy0.saving()
        );
    }

    #[test]
    fn sweep_is_deterministic_in_the_seed() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let a = sweep(&corpus, &server, &cfg, 2013);
        let b = sweep(&corpus, &server, &cfg, 2013);
        assert_eq!(summary_json(&a), summary_json(&b));
    }

    #[test]
    fn loss_increases_load_time_without_wedging() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = sweep(&corpus, &server, &cfg, 2013);
        for profile in FaultProfile::ALL {
            let of_profile: Vec<&RobustnessRow> =
                rows.iter().filter(|r| r.profile == profile).collect();
            let clean = of_profile[0];
            let worst = of_profile.last().unwrap();
            assert!(
                worst.orig_load_s > clean.orig_load_s,
                "{}: 20% loss should slow the original browser ({} vs {})",
                profile.name(),
                worst.orig_load_s,
                clean.orig_load_s
            );
            assert!(
                worst.ea_load_s > clean.ea_load_s,
                "{}: 20% loss should slow the energy-aware browser",
                profile.name()
            );
            // Every cell completed: energies are finite and positive.
            for r in &of_profile {
                assert!(r.orig_energy_j.is_finite() && r.orig_energy_j > 0.0);
                assert!(r.ea_energy_j.is_finite() && r.ea_energy_j > 0.0);
            }
        }
    }
}
