//! Cross-backend headline experiment: does computation reorganization
//! still pay off when promotions are cheap?
//!
//! The paper's savings come from two properties of the 3G radio: an
//! expensive promotion (2 s, 4 W) that reorganization amortizes, and a
//! long high-power tail (4 s DCH + 15 s FACH) that early release cuts.
//! LTE, WiFi, and 5G shrink both. This sweep re-runs the paper's
//! policy cases over the mobile benchmark on every [`RadioModel`]
//! backend with identical visits and reading times, so the per-backend
//! savings are directly comparable. The 3G rows ride the exact same
//! generic code path the fleet uses, so the golden test can pin them
//! bit-identical to the proven `simulate_session` output.
//!
//! Deterministic in (`corpus`, `cfg`): no faults, no sampling — the
//! golden backends test compares the serialized output byte-for-byte.

use crate::cases::Case;
use crate::config::CoreConfig;
use crate::session::{simulate_session_radio, Visit};
use ewb_rrc::{
    FiveGConfig, FiveGMachine, LteConfig, LteMachine, RadioBackend, RadioModel, RrcMachine,
    WifiConfig, WifiMachine,
};
use ewb_webpage::{Corpus, OriginServer};
use serde::{Deserialize, Serialize};

/// Reading time per visit, seconds — long enough that the oracle
/// release policies fire (same dwell the robustness sweep uses).
pub const READING_S: f64 = 25.0;

/// The policy cases the sweep compares on every backend: the baseline,
/// both always-off variants (isolating the reorganization effect from
/// the release effect), and both oracle thresholds. The predicted
/// variants are excluded — they need a trained predictor and add
/// nothing to the cross-backend question.
pub const CASES: [Case; 5] = [
    Case::Original,
    Case::OriginalAlwaysOff,
    Case::EnergyAwareAlwaysOff,
    Case::Accurate9,
    Case::Accurate20,
];

/// One (backend, case) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendCaseRow {
    /// Radio technology name (`3g`, `lte`, `wifi`, `5g`).
    pub backend: String,
    /// Policy case name.
    pub case: String,
    /// Total energy over the benchmark, J.
    pub joules: f64,
    /// Total page-load (user-waiting) time, s.
    pub load_time_s: f64,
    /// Energy saving vs the same backend's Original baseline (fraction).
    pub power_saving: f64,
    /// Delay saving vs the same backend's Original baseline (fraction;
    /// negative = slower).
    pub delay_saving: f64,
}

/// Per-site session totals for one backend and case:
/// `(joules, load_time_s)` per site, in corpus order. Exposed so the
/// bench binary can re-shard the same numbers for its determinism grid.
pub fn per_site_totals<R: RadioModel>(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    radio_cfg: R::Config,
    case: Case,
) -> Vec<(f64, f64)> {
    corpus
        .sites()
        .iter()
        .map(|site| {
            let visits = [Visit {
                page: &site.mobile,
                reading_s: READING_S,
                features: None,
            }];
            let out = simulate_session_radio::<R>(server, &visits, case, cfg, radio_cfg, None);
            (out.total_joules, out.total_load_time_s)
        })
        .collect()
}

fn backend_rows<R: RadioModel>(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    radio_cfg: R::Config,
) -> Vec<BackendCaseRow> {
    let totals: Vec<(Case, f64, f64)> = CASES
        .iter()
        .map(|&case| {
            let per_site = per_site_totals::<R>(corpus, server, cfg, radio_cfg, case);
            let j: f64 = per_site.iter().map(|(j, _)| j).sum();
            let s: f64 = per_site.iter().map(|(_, s)| s).sum();
            (case, j, s)
        })
        .collect();
    let (_, base_j, base_s) = totals[0];
    totals
        .iter()
        .map(|&(case, joules, load_time_s)| BackendCaseRow {
            backend: R::BACKEND.to_string(),
            case: case.to_string(),
            joules,
            load_time_s,
            power_saving: 1.0 - joules / base_j,
            delay_saving: 1.0 - load_time_s / base_s,
        })
        .collect()
}

/// Runs [`CASES`] over the mobile benchmark on all four backends (3G
/// from `cfg.rrc`, the others from their calibrated configs), baseline
/// first within each backend.
pub fn sweep(corpus: &Corpus, server: &OriginServer, cfg: &CoreConfig) -> Vec<BackendCaseRow> {
    let mut rows = Vec::with_capacity(4 * CASES.len());
    rows.extend(backend_rows::<RrcMachine>(corpus, server, cfg, cfg.rrc));
    rows.extend(backend_rows::<LteMachine>(
        corpus,
        server,
        cfg,
        LteConfig::calibrated(),
    ));
    rows.extend(backend_rows::<WifiMachine>(
        corpus,
        server,
        cfg,
        WifiConfig::calibrated(),
    ));
    rows.extend(backend_rows::<FiveGMachine>(
        corpus,
        server,
        cfg,
        FiveGConfig::calibrated(),
    ));
    rows
}

/// Serializes the sweep as the golden summary JSON the backends CI job
/// compares against.
pub fn summary_json(rows: &[BackendCaseRow]) -> String {
    serde_json::to_string(rows).expect("rows are always serializable")
}

/// The saving of `case` on `backend`, looked up from sweep rows.
///
/// # Panics
///
/// Panics if the cell is missing.
pub fn saving_of(rows: &[BackendCaseRow], backend: RadioBackend, case: Case) -> f64 {
    rows.iter()
        .find(|r| r.backend == backend.to_string() && r.case == case.to_string())
        .unwrap_or_else(|| panic!("missing sweep cell {backend}/{case}"))
        .power_saving
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::simulate_session;
    use ewb_webpage::benchmark_corpus;

    fn setup() -> (Corpus, OriginServer, CoreConfig) {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        (corpus, server, CoreConfig::paper())
    }

    /// The 3G rows must be bit-identical to the non-generic
    /// `simulate_session` path: same sessions, same machine, just routed
    /// through the `RadioModel` trait.
    #[test]
    fn three_g_rows_match_the_legacy_session_path() {
        let (corpus, server, cfg) = setup();
        let rows = sweep(&corpus, &server, &cfg);
        for case in CASES {
            let row = rows
                .iter()
                .find(|r| r.backend == "3g" && r.case == case.to_string())
                .expect("3g row present");
            let mut joules = 0.0;
            let mut load_s = 0.0;
            for site in corpus.sites() {
                let visits = [Visit {
                    page: &site.mobile,
                    reading_s: READING_S,
                    features: None,
                }];
                let out = simulate_session(&server, &visits, case, &cfg, None);
                joules += out.total_joules;
                load_s += out.total_load_time_s;
            }
            assert_eq!(row.joules.to_bits(), joules.to_bits(), "{case}");
            assert_eq!(row.load_time_s.to_bits(), load_s.to_bits(), "{case}");
        }
    }

    /// The cross-backend story: reorganization keeps paying off
    /// everywhere (always-off beats always-off), but the release-policy
    /// saving shrinks as promotions get cheap and tails get short —
    /// 3G saves the biggest fraction, 5G the smallest.
    #[test]
    fn savings_shrink_as_promotions_get_cheap() {
        let (corpus, server, cfg) = setup();
        let rows = sweep(&corpus, &server, &cfg);
        assert_eq!(rows.len(), 4 * CASES.len());
        for backend in RadioBackend::ALL {
            let base = saving_of(&rows, backend, Case::Original);
            assert_eq!(base, 0.0, "{backend}: baseline saves nothing");
            let ea = saving_of(&rows, backend, Case::EnergyAwareAlwaysOff);
            let orig_off = saving_of(&rows, backend, Case::OriginalAlwaysOff);
            assert!(
                ea > orig_off,
                "{backend}: reorganization must add savings on top of the release \
                 ({ea:.4} vs {orig_off:.4})"
            );
            assert!(ea > 0.0, "{backend}: energy-aware always-off must save");
        }
        let acc9_3g = saving_of(&rows, RadioBackend::ThreeG, Case::Accurate9);
        let acc9_5g = saving_of(&rows, RadioBackend::FiveG, Case::Accurate9);
        let acc9_wifi = saving_of(&rows, RadioBackend::Wifi, Case::Accurate9);
        assert!(
            acc9_3g > acc9_5g,
            "3G has the most tail to cut: {acc9_3g:.4} vs 5G {acc9_5g:.4}"
        );
        assert!(
            acc9_3g > acc9_wifi,
            "3G has the most tail to cut: {acc9_3g:.4} vs WiFi {acc9_wifi:.4}"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let (corpus, server, cfg) = setup();
        let a = sweep(&corpus, &server, &cfg);
        let b = sweep(&corpus, &server, &cfg);
        assert_eq!(summary_json(&a), summary_json(&b));
    }
}
