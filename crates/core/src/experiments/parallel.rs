//! Intra-page parallelism experiment: what does fanning the browser's
//! layout-phase stages over simulated cores buy, and what does it cost?
//!
//! Sweeps every controller candidate plan ([`CANDIDATE_PLANS`]) over the
//! image-heavy **full** benchmark pages under the energy-aware pipeline,
//! reporting per-plan energy, load time, and the aggregate pipeline
//! speedup (parallelizable stage work ÷ actual stage span). A final
//! `learned` row runs the trained [`PlanChooser`] per page — the
//! controller's never-lose property is visible right in the table: its
//! energy saving is ≥ 0 and ≥ every fixed plan's.
//!
//! Deterministic in (`corpus`, `cfg`): no faults, no sampling, and the
//! GBRT trains with `subsample = 1.0` — the golden parallel test pins
//! the serialized output byte-for-byte.

use crate::cases::Case;
use crate::config::CoreConfig;
use crate::planner::{training_samples, PlanChooser, PlanFeatures, CANDIDATE_PLANS};
use crate::session::{simulate_session_planned, Visit};
use ewb_browser::parallel::ParallelismPlan;
use ewb_browser::pipeline::{load_page, PipelineConfig};
use ewb_net::ThreeGFetcher;
use ewb_rrc::RrcMachine;
use ewb_simcore::SimTime;
use ewb_webpage::{Corpus, OriginServer, Page};
use serde::{Deserialize, Serialize};

/// Reading time per visit, seconds (same dwell as the backends sweep).
pub const READING_S: f64 = 25.0;

/// The policy case the sweep runs: the energy-aware pipeline without a
/// predictor, where all three plan knobs (decode fan-out, style fan-out,
/// CSS-scan overlap) are live.
pub const CASE: Case = Case::EnergyAwareAlwaysOff;

/// One plan's row of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRow {
    /// Plan id (`seq`, `d4s4o1`, ... or `learned`).
    pub plan: String,
    /// Total energy over the full-page benchmark, J.
    pub joules: f64,
    /// Total page-load (user-waiting) time, s.
    pub load_time_s: f64,
    /// Aggregate pipeline speedup: parallelizable stage work ÷ stage
    /// span, summed over all pages. 1.0 for the sequential plan.
    pub pipeline_speedup: f64,
    /// Energy saving vs the sequential plan (fraction; negative = the
    /// plan costs energy).
    pub energy_saving: f64,
    /// Delay saving vs the sequential plan (fraction).
    pub delay_saving: f64,
}

/// One page's learned choice — the feature→plan table the golden test
/// pins the trained controller against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanChoice {
    /// Site key + version (`espn/full`).
    pub page: String,
    /// Chosen plan id.
    pub plan: String,
    /// Predicted energy delta of the choice, J (0 for sequential).
    pub predicted_delta_j: f64,
}

/// The image-heavy experiment pages: every site's full version, corpus
/// order.
pub fn full_pages(corpus: &Corpus) -> Vec<&Page> {
    corpus.sites().iter().map(|s| &s.full).collect()
}

/// `(joules, load_time_s)` of a one-visit session per page under `plan`.
pub fn per_page_totals(
    pages: &[&Page],
    server: &OriginServer,
    cfg: &CoreConfig,
    plan: ParallelismPlan,
) -> Vec<(f64, f64)> {
    pages
        .iter()
        .map(|page| {
            let visits = [Visit {
                page,
                reading_s: READING_S,
                features: None,
            }];
            let out = simulate_session_planned(server, &visits, CASE, cfg, None, None, plan, true);
            (out.total_joules, out.total_load_time_s)
        })
        .collect()
}

/// Aggregate pipeline speedup of `plan` over `pages`: total
/// parallelizable stage work ÷ total stage span, from direct page loads
/// (the session path does not expose per-load metrics).
pub fn pipeline_speedup(
    pages: &[&Page],
    server: &OriginServer,
    cfg: &CoreConfig,
    plan: ParallelismPlan,
) -> f64 {
    let (mut work, mut span) = (0.0f64, 0.0f64);
    for page in pages {
        let (w, sp) = work_and_span(page, server, cfg, plan);
        work += w;
        span += sp;
    }
    if span == 0.0 {
        1.0
    } else {
        work / span
    }
}

/// `(parallelizable stage work, stage span)` of one page load under
/// `plan`, seconds.
fn work_and_span(
    page: &Page,
    server: &OriginServer,
    cfg: &CoreConfig,
    plan: ParallelismPlan,
) -> (f64, f64) {
    let mut pipe_cfg = PipelineConfig::new(CASE.pipeline_mode());
    pipe_cfg.plan = plan;
    let machine = RrcMachine::new(cfg.rrc, SimTime::ZERO);
    let mut fetcher = ThreeGFetcher::with_machine(cfg.net, machine, server);
    let m = load_page(
        &mut fetcher,
        page.root_url(),
        SimTime::ZERO,
        &pipe_cfg,
        &cfg.cost,
    );
    (m.parallel_work.as_secs_f64(), m.parallel_span.as_secs_f64())
}

/// Runs every candidate plan plus the learned controller over the full
/// benchmark pages. The sequential plan is row 0; `learned` is last.
pub fn sweep(corpus: &Corpus, server: &OriginServer, cfg: &CoreConfig) -> Vec<PlanRow> {
    let pages = full_pages(corpus);
    let mut rows = Vec::with_capacity(CANDIDATE_PLANS.len() + 1);
    let mut base = (0.0, 0.0);
    for plan in CANDIDATE_PLANS {
        let per_page = per_page_totals(&pages, server, cfg, plan);
        let joules: f64 = per_page.iter().map(|(j, _)| j).sum();
        let load_s: f64 = per_page.iter().map(|(_, s)| s).sum();
        if plan.is_sequential() {
            base = (joules, load_s);
        }
        rows.push(PlanRow {
            plan: plan.id(),
            joules,
            load_time_s: load_s,
            pipeline_speedup: pipeline_speedup(&pages, server, cfg, plan),
            energy_saving: 1.0 - joules / base.0,
            delay_saving: 1.0 - load_s / base.1,
        });
    }

    let chooser = trained_chooser(corpus, server, cfg);
    let (mut joules, mut load_s, mut work, mut span) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for page in &pages {
        let plan = chooser.choose(&PlanFeatures::of_page(page));
        let (j, s) = per_page_totals(&[page], server, cfg, plan)[0];
        joules += j;
        load_s += s;
        let (w, sp) = work_and_span(page, server, cfg, plan);
        work += w;
        span += sp;
    }
    rows.push(PlanRow {
        plan: "learned".to_string(),
        joules,
        load_time_s: load_s,
        pipeline_speedup: if span == 0.0 { 1.0 } else { work / span },
        energy_saving: 1.0 - joules / base.0,
        delay_saving: 1.0 - load_s / base.1,
    });
    rows
}

/// Trains the controller exactly as the sweep and golden test do: on
/// every corpus page (both versions) under [`CASE`] with the default
/// deterministic parameters.
pub fn trained_chooser(corpus: &Corpus, server: &OriginServer, cfg: &CoreConfig) -> PlanChooser {
    let pages: Vec<&Page> = corpus
        .sites()
        .iter()
        .flat_map(|s| [&s.mobile, &s.full])
        .collect();
    PlanChooser::train(&training_samples(&pages, server, cfg, CASE))
}

/// The trained controller's per-page choices over the whole corpus
/// (mobile and full), corpus order — the golden plan table.
pub fn plan_table(corpus: &Corpus, server: &OriginServer, cfg: &CoreConfig) -> Vec<PlanChoice> {
    let chooser = trained_chooser(corpus, server, cfg);
    let mut out = Vec::with_capacity(corpus.sites().len() * 2);
    for site in corpus.sites() {
        for (version, page) in [("mobile", &site.mobile), ("full", &site.full)] {
            let features = PlanFeatures::of_page(page);
            let plan = chooser.choose(&features);
            out.push(PlanChoice {
                page: format!("{}/{version}", site.key),
                plan: plan.id(),
                predicted_delta_j: chooser.predicted_delta_j(&features, plan),
            });
        }
    }
    out
}

/// The serialized golden summary: sweep rows plus the learned plan
/// table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelSummary {
    /// Per-plan sweep rows ([`sweep`] order).
    pub rows: Vec<PlanRow>,
    /// The trained controller's per-page choices ([`plan_table`] order).
    pub plan_table: Vec<PlanChoice>,
}

/// Serializes the sweep and plan table as the golden summary JSON.
pub fn summary_json(rows: &[PlanRow], choices: &[PlanChoice]) -> String {
    serde_json::to_string(&ParallelSummary {
        rows: rows.to_vec(),
        plan_table: choices.to_vec(),
    })
    .expect("rows are always serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    fn setup() -> (Corpus, OriginServer, CoreConfig) {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        (corpus, server, CoreConfig::paper())
    }

    #[test]
    fn sweep_reports_speedup_and_the_learned_row_never_loses() {
        let (corpus, server, cfg) = setup();
        let rows = sweep(&corpus, &server, &cfg);
        assert_eq!(rows.len(), CANDIDATE_PLANS.len() + 1);
        assert_eq!(rows[0].plan, "seq");
        assert_eq!(rows[0].energy_saving, 0.0);
        assert_eq!(rows[0].pipeline_speedup, 1.0);

        let d4 = rows
            .iter()
            .find(|r| r.plan == "d4s4o1")
            .expect("4-thread row");
        assert!(
            d4.pipeline_speedup >= 1.5,
            "4-thread plan must reach 1.5x pipeline speedup on the image-heavy \
             corpus, got {:.3}",
            d4.pipeline_speedup
        );
        assert!(d4.delay_saving > 0.0, "parallel layout opens pages sooner");

        let learned = rows.last().expect("learned row");
        assert_eq!(learned.plan, "learned");
        assert!(
            learned.energy_saving >= 0.0,
            "the controller must never lose energy vs always-sequential, got {:.6}",
            learned.energy_saving
        );
        for row in &rows {
            assert!(
                learned.joules <= row.joules + 1e-9,
                "learned ({:.6} J) must be at least as good as fixed plan {} ({:.6} J)",
                learned.joules,
                row.plan,
                row.joules
            );
        }
    }

    #[test]
    fn sweep_and_plan_table_are_deterministic() {
        let (corpus, server, cfg) = setup();
        let a = summary_json(
            &sweep(&corpus, &server, &cfg),
            &plan_table(&corpus, &server, &cfg),
        );
        let b = summary_json(
            &sweep(&corpus, &server, &cfg),
            &plan_table(&corpus, &server, &cfg),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn plan_table_covers_the_corpus_and_stays_on_candidates() {
        let (corpus, server, cfg) = setup();
        let table = plan_table(&corpus, &server, &cfg);
        assert_eq!(table.len(), corpus.sites().len() * 2);
        let ids: Vec<String> = CANDIDATE_PLANS.iter().map(|p| p.id()).collect();
        for choice in &table {
            assert!(
                ids.contains(&choice.plan),
                "{}: {} is not a candidate",
                choice.page,
                choice.plan
            );
            if choice.plan == "seq" {
                assert_eq!(choice.predicted_delta_j, 0.0);
            } else {
                assert!(choice.predicted_delta_j < 0.0, "{}", choice.page);
            }
        }
    }
}
