//! Fig. 11 — network capacity under both browsers.
//!
//! The paper feeds the measured per-page data-transmission times into an
//! M/G/200/200 loss simulation (Poisson sessions, one per user every 25 s
//! on average, 4 h horizon) and reports the session-dropping probability
//! vs the subscriber count: the energy-aware browser supports 14.3 % more
//! users on the mobile benchmark and 19.6 % more on the full benchmark at
//! equal dropping probability.

use super::loadtime::{benchmark_load_times, LoadTimeRow};
use crate::config::CoreConfig;
use ewb_capacity::{simulate, supported_users, CapacityConfig, ServiceTimes};
use ewb_webpage::{Corpus, OriginServer, PageVersion};
use serde::{Deserialize, Serialize};

/// One capacity curve: dropping probability per user count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityCurve {
    /// User counts (x axis).
    pub users: Vec<usize>,
    /// Dropping probability per user count (y axis).
    pub drop_probability: Vec<f64>,
}

/// The Fig. 11 output for one benchmark version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityComparison {
    /// Which benchmark.
    pub version: PageVersion,
    /// Original browser curve.
    pub original: CapacityCurve,
    /// Energy-aware browser curve.
    pub energy_aware: CapacityCurve,
    /// Users supported at the target dropping probability, original.
    pub original_capacity: usize,
    /// Users supported at the target dropping probability, energy-aware.
    pub energy_aware_capacity: usize,
}

impl CapacityComparison {
    /// Fractional capacity gain of the energy-aware browser.
    pub fn capacity_gain(&self) -> f64 {
        self.energy_aware_capacity as f64 / self.original_capacity as f64 - 1.0
    }
}

/// Service-time distributions measured from the benchmark loads: the
/// channel-holding time of a session is the page's data-transmission
/// time (for the original browser, the whole load).
pub fn service_times(rows: &[LoadTimeRow]) -> (ServiceTimes, ServiceTimes) {
    let orig: Vec<f64> = rows.iter().map(|r| r.orig_load_s).collect();
    let ea: Vec<f64> = rows.iter().map(|r| r.ea_tx_s).collect();
    (
        ServiceTimes::empirical(orig).expect("load times are positive"),
        ServiceTimes::empirical(ea).expect("tx times are positive"),
    )
}

/// Runs the Fig. 11 experiment for one benchmark version over a user grid.
///
/// `horizon_s` lets tests shrink the 4 h default.
pub fn compare_capacity(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    version: PageVersion,
    users_grid: &[usize],
    target_drop: f64,
    horizon_s: f64,
) -> CapacityComparison {
    let rows = benchmark_load_times(corpus, server, cfg, version);
    let (orig_service, ea_service) = service_times(&rows);
    let base = CapacityConfig {
        horizon_s,
        ..CapacityConfig::paper()
    };
    // Every (user-count, service-time) cell is an independent loss
    // simulation with its own seeded RNG — fan the grid out over scoped
    // threads, collecting in grid order.
    let curve = |service: &ServiceTimes| {
        let drop_probability = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = users_grid
                .iter()
                .map(|&users| {
                    scope.spawn(move |_| {
                        simulate(&CapacityConfig { users, ..base }, service).drop_probability()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("capacity cell worker panicked"))
                .collect()
        })
        .expect("thread scope");
        CapacityCurve {
            users: users_grid.to_vec(),
            drop_probability,
        }
    };
    let lo = users_grid.first().copied().unwrap_or(100).max(10) / 2;
    let hi = users_grid.last().copied().unwrap_or(1000) * 3;
    CapacityComparison {
        version,
        original: curve(&orig_service),
        energy_aware: curve(&ea_service),
        original_capacity: supported_users(&base, &orig_service, target_drop, lo, hi),
        energy_aware_capacity: supported_users(&base, &ea_service, target_drop, lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    #[test]
    fn energy_aware_supports_more_users() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let cmp = compare_capacity(
            &corpus,
            &server,
            &cfg,
            PageVersion::Full,
            &[200, 260, 320],
            0.02,
            20_000.0,
        );
        let gain = cmp.capacity_gain();
        assert!(
            (0.10..0.60).contains(&gain),
            "full capacity gain {gain:.3} (paper 0.196)"
        );
        // At every grid point the energy-aware curve is at or below the
        // original.
        for (o, e) in cmp
            .original
            .drop_probability
            .iter()
            .zip(&cmp.energy_aware.drop_probability)
        {
            assert!(e <= o, "ea {e} should not exceed orig {o}");
        }
    }

    #[test]
    fn dropping_probability_grows_along_the_grid() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let cmp = compare_capacity(
            &corpus,
            &server,
            &cfg,
            PageVersion::Mobile,
            &[400, 600, 800],
            0.02,
            20_000.0,
        );
        let d = &cmp.original.drop_probability;
        assert!(d[0] <= d[1] + 0.01 && d[1] <= d[2] + 0.01, "{d:?}");
    }
}
