//! Fig. 10 — power consumption for opening a page plus a 20-second
//! reading period.
//!
//! Paper results: −35.7 % on the mobile benchmark, −30.8 % on the full
//! benchmark; m.cnn −35.5 %, espn full −43.6 %. The original browser
//! rides its timers through the whole reading window; the energy-aware
//! browser finishes transmissions earlier and drops to IDLE during
//! reading (reading time 20 s > Tp).

use super::single_visit;
use crate::cases::Case;
use crate::config::CoreConfig;
use ewb_webpage::{Corpus, OriginServer, PageVersion};
use serde::{Deserialize, Serialize};

/// The paper's fixed reading window for this figure.
pub const READING_S: f64 = 20.0;

/// Per-page energy comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Site key.
    pub key: String,
    /// Mobile or full.
    pub version: PageVersion,
    /// Original: energy to open the page, J.
    pub orig_open_j: f64,
    /// Original: energy over the 20 s reading window, J.
    pub orig_reading_j: f64,
    /// Energy-aware: energy to open the page, J.
    pub ea_open_j: f64,
    /// Energy-aware: energy over the reading window, J.
    pub ea_reading_j: f64,
}

impl EnergyRow {
    /// Original total, J.
    pub fn orig_total_j(&self) -> f64 {
        self.orig_open_j + self.orig_reading_j
    }

    /// Energy-aware total, J.
    pub fn ea_total_j(&self) -> f64 {
        self.ea_open_j + self.ea_reading_j
    }

    /// Fraction of energy saved.
    pub fn saving(&self) -> f64 {
        1.0 - self.ea_total_j() / self.orig_total_j()
    }
}

/// Measures every page of one benchmark version, one scoped worker per
/// independent site.
pub fn benchmark_energy(
    corpus: &Corpus,
    server: &OriginServer,
    cfg: &CoreConfig,
    version: PageVersion,
) -> Vec<EnergyRow> {
    super::par_map_sites(corpus, |site| {
        let page = match version {
            PageVersion::Mobile => &site.mobile,
            PageVersion::Full => &site.full,
        };
        let orig = single_visit(server, page, Case::Original, cfg, READING_S);
        // "Our approach": reorganized pipeline + release during the
        // reading window (20 s > Tp = 9 s, so the oracle releases).
        let ea = single_visit(server, page, Case::Accurate9, cfg, READING_S);
        EnergyRow {
            key: site.key.clone(),
            version,
            orig_open_j: orig.pages[0].load_joules,
            orig_reading_j: orig.pages[0].reading_joules,
            ea_open_j: ea.pages[0].load_joules,
            ea_reading_j: ea.pages[0].reading_joules,
        }
    })
}

/// Mean saving across rows.
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn mean_saving(rows: &[EnergyRow]) -> f64 {
    assert!(!rows.is_empty(), "no rows");
    let orig: f64 = rows.iter().map(EnergyRow::orig_total_j).sum();
    let ea: f64 = rows.iter().map(EnergyRow::ea_total_j).sum();
    1.0 - ea / orig
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::benchmark_corpus;

    #[test]
    fn full_benchmark_saves_paper_scale_energy() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = benchmark_energy(&corpus, &server, &cfg, PageVersion::Full);
        let saving = mean_saving(&rows);
        assert!(
            (0.20..0.50).contains(&saving),
            "full energy saving {saving:.3} (paper 0.308)"
        );
        for r in &rows {
            assert!(r.saving() > 0.10, "{}: saving {:.3}", r.key, r.saving());
        }
    }

    #[test]
    fn mobile_benchmark_saves_paper_scale_energy() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = benchmark_energy(&corpus, &server, &cfg, PageVersion::Mobile);
        let saving = mean_saving(&rows);
        assert!(
            (0.20..0.55).contains(&saving),
            "mobile energy saving {saving:.3} (paper 0.357)"
        );
    }

    #[test]
    fn reading_energy_dominates_the_mobile_saving() {
        // The paper: "Most of this power saving comes from putting the
        // smartphone into IDLE during the reading time" (mobile).
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let rows = benchmark_energy(&corpus, &server, &cfg, PageVersion::Mobile);
        let read_saving: f64 = rows.iter().map(|r| r.orig_reading_j - r.ea_reading_j).sum();
        let open_saving: f64 = rows.iter().map(|r| r.orig_open_j - r.ea_open_j).sum();
        assert!(
            read_saving > open_saving,
            "reading {read_saving} vs open {open_saving}"
        );
    }
}
