//! Backend-generic memoized page-load profiles.
//!
//! The memoization argument of [`crate::profile`] — a clean-link page
//! load is a pure function of (page, pipeline mode, radio state at the
//! click) — does not depend on the 3G state machine; it only needs the
//! click to find the radio in one of a small set of *click states* and
//! the load's first event to be a `BeginTransfer` at the click instant,
//! which cancels any pending inactivity deadline. Every
//! [`RadioModel`] names its click states (3G: IDLE/FACH/DCH; LTE:
//! IDLE/LONG_DRX/SHORT_DRX/CONNECTED; WiFi: PSM/ACTIVE; 5G:
//! IDLE/CDRX/CONNECTED), so the capture generalizes verbatim.
//!
//! [`RadioProfileTable`] is the backend-tagged counterpart of the 3G
//! [`ProfileTable`](crate::profile::ProfileTable): the key gains the
//! backend (via the table's type parameter and recorded
//! [`RadioBackend`] tag) and the click-state axis widens to
//! `R::click_state_count()`. The 3G table is deliberately left
//! untouched — its bit-identity proofs against the fleet path are
//! anchored to goldens — and a test pins the two captures equal
//! event-for-event on 3G.

use crate::config::CoreConfig;
use crate::profile::{mode_index, shift_back, LoadProfile};
use ewb_browser::pipeline::{load_page, PipelineConfig, PipelineMode};
use ewb_net::replay::{events_of_load, sort_radio_events, RadioEvent};
use ewb_net::RadioFetcher;
use ewb_rrc::{RadioBackend, RadioModel};
use ewb_simcore::SimTime;
use ewb_traces::FeatureVector;
use ewb_webpage::{Corpus, OriginServer, PageVersion};

/// Both pipeline schedules, in index order.
const MODES: [PipelineMode; 2] = [PipelineMode::Original, PipelineMode::EnergyAware];

/// Every clean-link load profile of a corpus on one radio backend: one
/// per (page, pipeline mode, click state).
#[derive(Debug, Clone)]
pub struct RadioProfileTable<R: RadioModel> {
    profiles: Vec<LoadProfile>,
    n_pages: usize,
    _radio: std::marker::PhantomData<R>,
}

impl<R: RadioModel> RadioProfileTable<R> {
    /// Runs the full browser pipeline over every
    /// (page, mode, click-state) combination of backend `R` and captures
    /// the resulting load profiles on a clean link.
    ///
    /// # Panics
    ///
    /// Panics if a configuration is invalid, or if a captured load
    /// violates a memoization precondition (an event before the click,
    /// or a first transfer not at the click instant).
    pub fn capture(
        corpus: &Corpus,
        server: &OriginServer,
        cfg: &CoreConfig,
        radio_cfg: R::Config,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid CoreConfig: {e}");
        }
        if let Err(e) = R::validate_config(&radio_cfg) {
            panic!("invalid {} radio config: {e}", R::BACKEND);
        }
        let states = R::click_state_count();
        let mut profiles = Vec::with_capacity(corpus.sites().len() * 2 * MODES.len() * states);
        for site in corpus.sites() {
            for version in [PageVersion::Mobile, PageVersion::Full] {
                let page = match version {
                    PageVersion::Mobile => &site.mobile,
                    PageVersion::Full => &site.full,
                };
                for mode in MODES {
                    let mut pipe_cfg = PipelineConfig::new(mode);
                    if version == PageVersion::Mobile {
                        // §4.2: mobile pages get no intermediate display.
                        pipe_cfg.draw_intermediate = false;
                    }
                    for state_idx in 0..states {
                        let (machine, t0) = R::in_click_state(radio_cfg, state_idx);
                        let mut fetcher = RadioFetcher::with_machine(cfg.net, machine, server);
                        let metrics =
                            load_page(&mut fetcher, page.root_url(), t0, &pipe_cfg, &cfg.cost);
                        let mut events = events_of_load(fetcher.transfers(), &metrics.cpu_busy);
                        sort_radio_events(&mut events);
                        let events: Vec<RadioEvent> = events
                            .iter()
                            .map(|e| {
                                assert!(
                                    e.at() >= t0,
                                    "captured event before the click: {e:?} (click {t0:?})"
                                );
                                shift_back(e, t0)
                            })
                            .collect();
                        let first_begin = events
                            .iter()
                            .find(|e| matches!(e, RadioEvent::BeginTransfer { .. }))
                            .expect("a page load has at least one transfer");
                        assert!(
                            matches!(
                                first_begin,
                                RadioEvent::BeginTransfer {
                                    at: SimTime::ZERO,
                                    ..
                                }
                            ),
                            "the first transfer must begin at the click \
                             (it is what makes click-state a sufficient memoization key), \
                             got {first_begin:?} ({} {})",
                            R::BACKEND,
                            R::click_state_name(state_idx)
                        );
                        profiles.push(LoadProfile {
                            events,
                            opened: metrics.final_display_at - t0,
                            tx_end: metrics.data_transmission_end - t0,
                            features: FeatureVector::from_slice(&metrics.features().to_vec()),
                            bytes: metrics.bytes_fetched,
                        });
                    }
                }
            }
        }
        RadioProfileTable {
            profiles,
            n_pages: corpus.sites().len() * 2,
            _radio: std::marker::PhantomData,
        }
    }

    /// The radio technology this table was captured on.
    pub fn backend(&self) -> RadioBackend {
        R::BACKEND
    }

    /// Number of pages covered (2 per site).
    pub fn n_pages(&self) -> usize {
        self.n_pages
    }

    /// Number of click states per (page, mode) key.
    pub fn n_click_states(&self) -> usize {
        R::click_state_count()
    }

    /// The profile of `page_idx` under `mode` when the click finds the
    /// radio in click state `state_idx` (backend-specific ordering, see
    /// [`RadioModel::click_state_name`]).
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` or `state_idx` is out of range.
    pub fn profile(&self, page_idx: usize, mode: PipelineMode, state_idx: usize) -> &LoadProfile {
        assert!(
            page_idx < self.n_pages,
            "page index {page_idx} out of range ({} pages)",
            self.n_pages
        );
        let states = R::click_state_count();
        assert!(
            state_idx < states,
            "click-state index {state_idx} out of range ({} has {states})",
            R::BACKEND
        );
        &self.profiles[(page_idx * MODES.len() + mode_index(mode)) * states + state_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileTable;
    use ewb_rrc::{LteConfig, LteMachine, RrcMachine, RrcState, WifiConfig, WifiMachine};
    use ewb_webpage::benchmark_corpus;

    fn setup() -> (Corpus, OriginServer, CoreConfig) {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        (corpus, server, CoreConfig::paper())
    }

    /// On 3G the generic capture must reproduce the proven `ProfileTable`
    /// clean-tier profiles event-for-event: same events, same timings,
    /// same bytes. This pins the generic path to the golden-anchored one.
    #[test]
    fn three_g_capture_matches_the_proven_profile_table() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        let generic = RadioProfileTable::<RrcMachine>::capture(&corpus, &server, &cfg, cfg.rrc);
        assert_eq!(generic.backend(), RadioBackend::ThreeG);
        assert_eq!(generic.n_click_states(), 3);
        for page_idx in 0..table.n_pages() {
            for mode in MODES {
                for (state_idx, state) in [RrcState::Idle, RrcState::Fach, RrcState::Dch]
                    .into_iter()
                    .enumerate()
                {
                    let a = table.profile(page_idx, mode, state);
                    let b = generic.profile(page_idx, mode, state_idx);
                    assert_eq!(a.events, b.events, "page {page_idx} {mode:?} {state:?}");
                    assert_eq!(a.opened, b.opened);
                    assert_eq!(a.tx_end, b.tx_end);
                    assert_eq!(a.bytes, b.bytes);
                }
            }
        }
    }

    /// Ladder backends capture deterministically over their own
    /// click-state axis, and warm clicks load strictly no slower than
    /// cold ones (the setup latency is the difference).
    #[test]
    fn ladder_captures_are_deterministic_and_warm_beats_cold() {
        let (corpus, server, cfg) = setup();
        let lte = RadioProfileTable::<LteMachine>::capture(
            &corpus,
            &server,
            &cfg,
            LteConfig::calibrated(),
        );
        let again = RadioProfileTable::<LteMachine>::capture(
            &corpus,
            &server,
            &cfg,
            LteConfig::calibrated(),
        );
        assert_eq!(lte.backend(), RadioBackend::Lte);
        assert_eq!(lte.n_click_states(), 4);
        for page_idx in 0..lte.n_pages() {
            for mode in MODES {
                let cold = lte.profile(page_idx, mode, 0); // IDLE
                let warm = lte.profile(page_idx, mode, 3); // CONNECTED
                assert!(cold.opened >= warm.opened, "page {page_idx} {mode:?}");
                assert_eq!(cold.bytes, warm.bytes);
                for s in 0..4 {
                    assert_eq!(
                        lte.profile(page_idx, mode, s).events,
                        again.profile(page_idx, mode, s).events
                    );
                }
            }
        }
    }

    /// WiFi's cheap wakeup compresses the cold/warm gap to its 50 ms
    /// wake latency — the "promotions are cheap" end of the spectrum.
    #[test]
    fn wifi_cold_warm_gap_is_the_wake_latency() {
        let (corpus, server, cfg) = setup();
        let wifi = RadioProfileTable::<WifiMachine>::capture(
            &corpus,
            &server,
            &cfg,
            WifiConfig::calibrated(),
        );
        let cold = wifi.profile(0, PipelineMode::EnergyAware, 0); // PSM
        let warm = wifi.profile(0, PipelineMode::EnergyAware, 1); // ACTIVE
        let gap = (cold.opened - warm.opened).as_secs_f64();
        assert!(
            (gap - WifiConfig::calibrated().wake_latency_s).abs() < 1e-9,
            "cold/warm gap {gap} should be the PSM wake latency"
        );
    }
}
