//! Top-level configuration: the paper's Table 2 parameters plus the
//! substrate configurations.

use ewb_browser::CpuCostModel;
use ewb_net::NetConfig;
use ewb_rrc::RrcConfig;
use serde::{Deserialize, Serialize};

/// Algorithm 2's operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AlgorithmMode {
    /// Optimize delay: only release when no delay penalty is possible
    /// (`Tr > Td`).
    #[default]
    DelayDriven,
    /// Optimize power: release whenever it saves energy (`Tr > Tp`), even
    /// at some delay risk.
    PowerDriven,
}

/// The paper's Table 2 parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmParams {
    /// Interest threshold α: wait this long after the page opens before
    /// predicting (sub-α visits never reach the predictor). Paper: 2 s.
    pub alpha_s: f64,
    /// Delay-driven threshold Td = T1 + T2 ≈ 20 s.
    pub td_s: f64,
    /// Power-driven threshold Tp = 9 s (the Fig. 3 break-even).
    pub tp_s: f64,
    /// Operating mode.
    pub mode: AlgorithmMode,
}

impl AlgorithmParams {
    /// The paper's values.
    pub fn paper() -> Self {
        AlgorithmParams {
            alpha_s: 2.0,
            td_s: 20.0,
            tp_s: 9.0,
            mode: AlgorithmMode::DelayDriven,
        }
    }

    /// The release threshold implied by the mode: Algorithm 2 switches to
    /// IDLE when `Tr > Td`, or when `Tr > Tp` in power-driven mode.
    pub fn release_threshold_s(&self) -> f64 {
        match self.mode {
            AlgorithmMode::DelayDriven => self.td_s,
            AlgorithmMode::PowerDriven => self.tp_s,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("alpha_s", self.alpha_s),
            ("td_s", self.td_s),
            ("tp_s", self.tp_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        if self.tp_s > self.td_s {
            return Err("Tp must not exceed Td".to_string());
        }
        Ok(())
    }
}

impl Default for AlgorithmParams {
    fn default() -> Self {
        AlgorithmParams::paper()
    }
}

/// All knobs of the reproduction in one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// UMTS radio (timers, power, promotions).
    pub rrc: RrcConfig,
    /// 3G link (goodput, RTT).
    pub net: NetConfig,
    /// Smartphone CPU cost model.
    pub cost: CpuCostModel,
    /// Algorithm 2 parameters.
    pub alg: AlgorithmParams,
}

impl CoreConfig {
    /// The paper's testbed configuration.
    pub fn paper() -> Self {
        CoreConfig {
            rrc: RrcConfig::paper(),
            net: NetConfig::paper(),
            cost: CpuCostModel::smartphone(),
            alg: AlgorithmParams::paper(),
        }
    }

    /// Validates every component.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure.
    pub fn validate(&self) -> Result<(), String> {
        self.rrc.validate()?;
        self.net.validate()?;
        self.alg.validate()
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_match_table2() {
        let p = AlgorithmParams::paper();
        assert_eq!(p.alpha_s, 2.0);
        assert_eq!(p.td_s, 20.0);
        assert_eq!(p.tp_s, 9.0);
        assert_eq!(p.mode, AlgorithmMode::DelayDriven);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn mode_selects_threshold() {
        let mut p = AlgorithmParams::paper();
        assert_eq!(p.release_threshold_s(), 20.0);
        p.mode = AlgorithmMode::PowerDriven;
        assert_eq!(p.release_threshold_s(), 9.0);
    }

    #[test]
    fn validation_rejects_inverted_thresholds() {
        let p = AlgorithmParams {
            tp_s: 30.0,
            ..AlgorithmParams::paper()
        };
        assert!(p.validate().is_err());
        let p = AlgorithmParams {
            alpha_s: f64::NAN,
            ..AlgorithmParams::paper()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn core_config_validates() {
        assert!(CoreConfig::paper().validate().is_ok());
        assert_eq!(CoreConfig::default(), CoreConfig::paper());
    }
}
