//! End-to-end browsing-session simulation.
//!
//! A session is a sequence of page visits: each page is loaded through the
//! 3G radio by the case's browser pipeline, the user reads for the visit's
//! dwell time, and Algorithm 2 (parameterized by the case's
//! [`ReleasePolicy`]) decides whether to
//! switch the radio to IDLE during the reading period. The radio state
//! carries across visits, so delay penalties (a released radio must be
//! re-promoted for the next click) and energy effects are both emergent
//! rather than assumed.
//!
//! Energy is computed by replaying the session's radio events together
//! with the browser's CPU-busy intervals onto a fresh
//! [`RrcMachine`] — exactly what the paper's Agilent
//! rig integrates at the handset's power pins.

use crate::cases::{Case, ReleasePolicy};
use crate::config::CoreConfig;
use ewb_browser::parallel::ParallelismPlan;
use ewb_browser::pipeline::{load_page_recorded, PipelineConfig};
use ewb_browser::CpuWork;
use ewb_net::replay::{events_of_load_parallel, replay_radio_recorded, RadioEvent};
use ewb_net::{FaultConfig, RadioFetcher, RetryPolicy};
use ewb_obs::{Event as ObsEvent, Recorder};
use ewb_rrc::{RadioModel, RrcMachine};
use ewb_simcore::{SimDuration, SimTime, SplitMix64};
use ewb_traces::{FeatureVector, ReadingTimePredictor};
use ewb_webpage::{OriginServer, Page, PageVersion};

/// One visit of a session: which page, how long the user reads it, and
/// (optionally) the feature vector the predictor should see for it. With
/// `features: None`, Predict-N cases use the features the browser itself
/// measured during the load.
#[derive(Debug, Clone)]
pub struct Visit<'a> {
    /// The page to load.
    pub page: &'a Page,
    /// Actual reading time after the page opens, seconds.
    pub reading_s: f64,
    /// Prediction input override (e.g. the trace's features).
    pub features: Option<FeatureVector>,
}

/// Fault injection applied to every visit of a session.
///
/// Each visit gets its own deterministic fault stream, seeded from
/// `seed` mixed with the visit index, so inserting a visit does not
/// shift the fault pattern of the visits before it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionFaults {
    /// The fault model for the radio link.
    pub faults: FaultConfig,
    /// Base seed of the session's fault streams.
    pub seed: u64,
    /// The fetcher's retry/timeout/backoff policy under faults.
    pub retry: RetryPolicy,
}

impl SessionFaults {
    /// A fault setup with the standard retry policy.
    pub fn new(faults: FaultConfig, seed: u64) -> Self {
        SessionFaults {
            faults,
            seed,
            retry: RetryPolicy::standard(),
        }
    }
}

/// Everything measured for one visit.
#[derive(Debug, Clone)]
pub struct PageRecord {
    /// The page's root URL.
    pub url: String,
    /// Mobile or full version.
    pub version: PageVersion,
    /// When the click happened.
    pub start: SimTime,
    /// End of the data-transmission phase.
    pub tx_end: SimTime,
    /// When the page finished opening (final display).
    pub opened: SimTime,
    /// First (intermediate) display, if drawn.
    pub first_display: Option<SimTime>,
    /// When the radio was released to IDLE, if it was.
    pub released_at: Option<SimTime>,
    /// Actual reading time, seconds.
    pub reading_s: f64,
    /// Predicted reading time, when a predictor ran.
    pub predicted_s: Option<f64>,
    /// Handset energy from click to page-open, joules.
    pub load_joules: f64,
    /// Handset energy over the reading period, joules.
    pub reading_joules: f64,
    /// CPU work breakdown of the load.
    pub work: CpuWork,
    /// Bytes fetched.
    pub bytes: u64,
    /// Objects fetched.
    pub objects: usize,
    /// Objects whose transfers errored out (retries/deadline exhausted on
    /// a faulty link); 0 on a clean link.
    pub failed_objects: usize,
    /// Whether the page rendered without some of its objects.
    pub degraded: bool,
}

impl PageRecord {
    /// Page-load duration (click → open), seconds.
    pub fn load_time_s(&self) -> f64 {
        (self.opened - self.start).as_secs_f64()
    }

    /// Transmission-phase duration, seconds.
    pub fn tx_time_s(&self) -> f64 {
        (self.tx_end - self.start).as_secs_f64()
    }

    /// Total energy of the visit (load + reading), joules.
    pub fn total_joules(&self) -> f64 {
        self.load_joules + self.reading_joules
    }
}

/// The outcome of a simulated session on any radio backend.
#[derive(Debug, Clone)]
pub struct RadioSessionOutcome<R: RadioModel> {
    /// Per-visit records, in order.
    pub pages: Vec<PageRecord>,
    /// Total handset energy over the session, joules.
    pub total_joules: f64,
    /// Sum of page-load durations, seconds (the Fig. 16 delay metric).
    pub total_load_time_s: f64,
    /// Session duration.
    pub duration: SimDuration,
    /// Radio event counters from the energy replay.
    pub counters: R::Counters,
    /// The replayed radio — exact power segments for trace plotting
    /// (Fig. 9).
    pub radio: R,
}

/// The paper's outcome: a session on the UMTS 3G [`RrcMachine`].
pub type SessionOutcome = RadioSessionOutcome<RrcMachine>;

impl<R: RadioModel> RadioSessionOutcome<R> {
    /// Visits that rendered without some of their objects (faulty link).
    pub fn degraded_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.degraded).count()
    }

    /// Objects that errored out across the session (faulty link).
    pub fn failed_objects(&self) -> usize {
        self.pages.iter().map(|p| p.failed_objects).sum()
    }
}

/// Borrowed context for running sessions: the origin server, the
/// configuration, and (optionally) the trained predictor. Constructing
/// one allocates nothing — it is a bundle of references, cheap to copy
/// into every worker of a fleet shard — and the heavyweight inputs
/// (corpus-backed server, predictor forest) are shared read-only.
#[derive(Debug, Clone, Copy)]
pub struct SessionCtx<'a> {
    /// The origin server built from the benchmark corpus.
    pub server: &'a OriginServer,
    /// The paper's configuration.
    pub cfg: &'a CoreConfig,
    /// The trained reading-time predictor, for Predict-N cases.
    pub predictor: Option<&'a ReadingTimePredictor>,
}

impl<'a> SessionCtx<'a> {
    /// A context without a predictor (oracle and always-off cases).
    pub fn new(server: &'a OriginServer, cfg: &'a CoreConfig) -> Self {
        SessionCtx {
            server,
            cfg,
            predictor: None,
        }
    }

    /// Attaches a shared predictor for Predict-N cases.
    pub fn with_predictor(mut self, predictor: &'a ReadingTimePredictor) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Runs one session under `case`. See [`simulate_session`].
    ///
    /// # Panics
    ///
    /// Panics as [`simulate_session`] does.
    pub fn run(&self, visits: &[Visit<'_>], case: Case) -> SessionOutcome {
        simulate_session(self.server, visits, case, self.cfg, self.predictor)
    }

    /// Runs one session on a possibly faulty link. See
    /// [`simulate_session_faulted`].
    ///
    /// # Panics
    ///
    /// Panics as [`simulate_session_faulted`] does.
    pub fn run_faulted(
        &self,
        visits: &[Visit<'_>],
        case: Case,
        faults: Option<&SessionFaults>,
    ) -> SessionOutcome {
        simulate_session_faulted(self.server, visits, case, self.cfg, self.predictor, faults)
    }
}

/// The fetcher fault-stream seed of visit `visit_idx` in a session whose
/// [`SessionFaults::seed`] is `base`. Mixing the visit index in keeps the
/// per-visit streams independent: inserting a visit does not shift the
/// fault pattern of the visits before it.
pub fn visit_fault_seed(base: u64, visit_idx: usize) -> u64 {
    SplitMix64::mix(base ^ (visit_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Algorithm 2's per-visit release decision: whether (and when) to switch
/// the radio to IDLE after a page opens, given the case's policy. Returns
/// the proposed release instant — before the "does the release finish
/// before the next click" filter — plus the predicted reading time when a
/// predictor ran. `predict` is only invoked for predicted policies on
/// engaged (`reading_s > alpha_s`) visits, so callers can defer feature
/// assembly. Shared by the full browser-pipeline session path and the
/// memoized fleet path so the two stay decision-identical.
pub fn release_decision(
    policy: ReleasePolicy,
    alpha_s: f64,
    opened: SimTime,
    reading_s: f64,
    predict: impl FnOnce() -> f64,
) -> (Option<SimTime>, Option<f64>) {
    match policy {
        ReleasePolicy::Never => (None, None),
        ReleasePolicy::AfterLoad => (Some(opened), None),
        ReleasePolicy::OracleThreshold { threshold_s } => {
            let at = opened + SimDuration::from_secs_f64(alpha_s);
            (
                (reading_s > alpha_s && reading_s > threshold_s).then_some(at),
                None,
            )
        }
        ReleasePolicy::PredictedThreshold { threshold_s } => {
            // The user must stay past α for the prediction to run.
            if reading_s <= alpha_s {
                (None, None)
            } else {
                let tr = predict();
                let at = opened + SimDuration::from_secs_f64(alpha_s);
                ((tr > threshold_s).then_some(at), Some(tr))
            }
        }
    }
}

/// Simulates a session under `case`.
///
/// # Panics
///
/// Panics if `case` needs a predictor and none is supplied, if `visits`
/// is empty, or if the configuration is invalid.
pub fn simulate_session(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    predictor: Option<&ReadingTimePredictor>,
) -> SessionOutcome {
    simulate_session_faulted(server, visits, case, cfg, predictor, None)
}

/// Simulates a session under `case` on a (possibly) faulty radio link.
///
/// With `faults: None` this is exactly [`simulate_session`]. With faults,
/// failed objects degrade pages instead of wedging the load, every retry
/// attempt's radio time rides into the energy replay, and the per-page
/// records report `failed_objects`/`degraded`.
///
/// # Panics
///
/// Panics as [`simulate_session`] does, or if the fault configuration or
/// retry policy is invalid.
pub fn simulate_session_faulted(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    predictor: Option<&ReadingTimePredictor>,
    faults: Option<&SessionFaults>,
) -> SessionOutcome {
    simulate_session_recorded(
        server,
        visits,
        case,
        cfg,
        predictor,
        faults,
        &Recorder::disabled(),
    )
}

/// Simulates a session under `case`, mirroring the full cross-layer event
/// stream into `recorder`: one [`PageVisit`](ewb_obs::Event::PageVisit)
/// per visit, transfer events from the fetcher, per-stage browser spans,
/// and — from the energy replay — the RRC transitions, timers, and the
/// energy ledger. The ledger folds to the outcome's `total_joules`
/// bit-for-bit. The recorder only observes: the returned
/// [`SessionOutcome`] is identical with it enabled or disabled.
///
/// # Panics
///
/// Panics as [`simulate_session_faulted`] does.
pub fn simulate_session_recorded(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    predictor: Option<&ReadingTimePredictor>,
    faults: Option<&SessionFaults>,
    recorder: &Recorder,
) -> SessionOutcome {
    simulate_session_impl(server, visits, case, cfg, predictor, faults, None, recorder)
}

/// Simulates a session whose page loads run under an intra-page
/// [`ParallelismPlan`] (see [`ewb_browser::parallel`]): decode/style
/// stage units fan out over simulated cores and helper-core CPU power
/// rides into the energy replay. With `plan = SEQUENTIAL` and any
/// `host_parallel` this is bit-identical to [`simulate_session_faulted`].
///
/// `host_parallel` selects whether the *host* executor may use threads
/// for the fanned-out engine work; the outcome is bit-identical either
/// way (the `ewb-check` parallel differential oracle proves it).
///
/// # Panics
///
/// Panics as [`simulate_session_faulted`] does, or if `plan` is invalid.
#[allow(clippy::too_many_arguments)]
pub fn simulate_session_planned(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    predictor: Option<&ReadingTimePredictor>,
    faults: Option<&SessionFaults>,
    plan: ParallelismPlan,
    host_parallel: bool,
) -> SessionOutcome {
    simulate_session_radio_planned::<RrcMachine>(
        server,
        visits,
        case,
        cfg,
        cfg.rrc,
        predictor,
        faults,
        plan,
        host_parallel,
    )
}

/// Backend-generic [`simulate_session_planned`]: the parallel-plan
/// session on any [`RadioModel`].
///
/// # Panics
///
/// Panics as [`simulate_session_radio_recorded`] does, or if `plan` is
/// invalid.
#[allow(clippy::too_many_arguments)]
pub fn simulate_session_radio_planned<R: RadioModel>(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    radio_cfg: R::Config,
    predictor: Option<&ReadingTimePredictor>,
    faults: Option<&SessionFaults>,
    plan: ParallelismPlan,
    host_parallel: bool,
) -> RadioSessionOutcome<R> {
    simulate_session_radio_impl(
        server,
        visits,
        case,
        cfg,
        radio_cfg,
        predictor,
        faults,
        None,
        &Recorder::disabled(),
        plan,
        host_parallel,
    )
}

/// Simulates a session on an arbitrary radio backend: the same browser
/// pipelines, Algorithm 2 release policy, and energy-replay machinery as
/// [`simulate_session`], with the radio swapped for any [`RadioModel`]
/// (`radio_cfg` replaces `cfg.rrc`; the release gate uses the backend's
/// own release latency). With `R = RrcMachine` and `radio_cfg = cfg.rrc`
/// this is call-for-call [`simulate_session`].
///
/// # Panics
///
/// Panics as [`simulate_session`] does, or if `radio_cfg` is invalid.
pub fn simulate_session_radio<R: RadioModel>(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    radio_cfg: R::Config,
    predictor: Option<&ReadingTimePredictor>,
) -> RadioSessionOutcome<R> {
    simulate_session_radio_impl(
        server,
        visits,
        case,
        cfg,
        radio_cfg,
        predictor,
        None,
        None,
        &Recorder::disabled(),
        ParallelismPlan::SEQUENTIAL,
        true,
    )
}

/// [`simulate_session_radio`] with structured-event tracing and optional
/// fault injection — the backend-generic superset the 3G entry points
/// delegate to.
///
/// # Panics
///
/// Panics as [`simulate_session_radio`] does, or if the fault
/// configuration or retry policy is invalid.
#[allow(clippy::too_many_arguments)]
pub fn simulate_session_radio_recorded<R: RadioModel>(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    radio_cfg: R::Config,
    predictor: Option<&ReadingTimePredictor>,
    faults: Option<&SessionFaults>,
    recorder: &Recorder,
) -> RadioSessionOutcome<R> {
    simulate_session_radio_impl(
        server,
        visits,
        case,
        cfg,
        radio_cfg,
        predictor,
        faults,
        None,
        recorder,
        ParallelismPlan::SEQUENTIAL,
        true,
    )
}

/// Simulates a faulted session with an explicit fault-stream seed per
/// visit, instead of deriving them from [`SessionFaults::seed`] via
/// [`visit_fault_seed`].
///
/// This is the oracle the memoized fleet path is proven against: a
/// fault-tier profile is captured under one fixed seed per
/// (page, mode, click-state, tier) key, so the full-pipeline session that
/// must match it bit-for-bit has to drive each visit's fetcher with that
/// same per-key seed rather than the session-derived stream.
///
/// # Panics
///
/// Panics as [`simulate_session_faulted`] does, or if `visit_seeds` and
/// `visits` have different lengths.
pub fn simulate_session_faulted_seeded(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    predictor: Option<&ReadingTimePredictor>,
    faults: &SessionFaults,
    visit_seeds: &[u64],
) -> SessionOutcome {
    assert_eq!(
        visit_seeds.len(),
        visits.len(),
        "one fault seed per visit ({} seeds, {} visits)",
        visit_seeds.len(),
        visits.len()
    );
    simulate_session_impl(
        server,
        visits,
        case,
        cfg,
        predictor,
        Some(faults),
        Some(visit_seeds),
        &Recorder::disabled(),
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_session_impl(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    predictor: Option<&ReadingTimePredictor>,
    faults: Option<&SessionFaults>,
    visit_seeds: Option<&[u64]>,
    recorder: &Recorder,
) -> SessionOutcome {
    simulate_session_radio_impl(
        server,
        visits,
        case,
        cfg,
        cfg.rrc,
        predictor,
        faults,
        visit_seeds,
        recorder,
        ParallelismPlan::SEQUENTIAL,
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_session_radio_impl<R: RadioModel>(
    server: &OriginServer,
    visits: &[Visit<'_>],
    case: Case,
    cfg: &CoreConfig,
    radio_cfg: R::Config,
    predictor: Option<&ReadingTimePredictor>,
    faults: Option<&SessionFaults>,
    visit_seeds: Option<&[u64]>,
    recorder: &Recorder,
    plan: ParallelismPlan,
    host_parallel: bool,
) -> RadioSessionOutcome<R> {
    assert!(!visits.is_empty(), "a session needs at least one visit");
    if let Err(e) = plan.validate() {
        panic!("invalid ParallelismPlan: {e}");
    }
    if let Err(e) = cfg.validate() {
        panic!("invalid CoreConfig: {e}");
    }
    assert!(
        !case.needs_predictor() || predictor.is_some(),
        "case {case} requires a trained ReadingTimePredictor"
    );

    let start = SimTime::ZERO;
    let mut machine = R::new(radio_cfg, start);
    let mut events: Vec<RadioEvent> = Vec::new();
    let mut boundaries: Vec<(SimTime, SimTime)> = Vec::new(); // (start, opened)
    let mut partial: Vec<PageRecord> = Vec::new();
    let mut t = start;

    for (visit_idx, visit) in visits.iter().enumerate() {
        assert!(
            visit.reading_s.is_finite() && visit.reading_s >= 0.0,
            "reading time must be non-negative"
        );
        let mut pipe_cfg = PipelineConfig::new(case.pipeline_mode());
        pipe_cfg.plan = plan;
        pipe_cfg.host_parallel = host_parallel;
        if visit.page.spec().version == PageVersion::Mobile {
            // §4.2: mobile pages get no intermediate display.
            pipe_cfg.draw_intermediate = false;
        }
        let mut fetcher =
            RadioFetcher::with_machine(cfg.net, machine, server).with_recorder(recorder.clone());
        if let Some(sf) = faults {
            let seed = visit_seeds.map_or_else(
                || visit_fault_seed(sf.seed, visit_idx),
                |seeds| seeds[visit_idx],
            );
            fetcher = fetcher
                .try_with_faults(sf.faults, seed, sf.retry)
                .unwrap_or_else(|e| panic!("invalid SessionFaults: {e}"));
        }
        let metrics = load_page_recorded(
            &mut fetcher,
            visit.page.root_url(),
            t,
            &pipe_cfg,
            &cfg.cost,
            recorder.clone(),
        );
        events.extend(events_of_load_parallel(
            fetcher.transfers(),
            &metrics.cpu_busy,
            &metrics.aux_busy,
        ));
        machine = fetcher.into_machine();

        let opened = metrics.final_display_at;
        let next_start = opened + SimDuration::from_secs_f64(visit.reading_s);

        // Algorithm 2: decide at `opened + α` (or immediately for the
        // always-off policies) whether to switch to IDLE.
        let (decision, predicted_s) = release_decision(
            case.release_policy(),
            cfg.alg.alpha_s,
            opened,
            visit.reading_s,
            || {
                let features = visit
                    .features
                    .unwrap_or_else(|| FeatureVector::from_slice(&metrics.features().to_vec()));
                predictor.expect("checked above").predict_seconds(&features)
            },
        );
        // Only release if the release procedure completes before the next
        // click; otherwise the user is already navigating away.
        let released_at = decision.filter(|&at| at + R::release_latency(&radio_cfg) <= next_start);
        if let Some(at) = released_at {
            machine.release_to_idle(at);
            events.push(RadioEvent::Release { at });
        }
        machine.advance_to(next_start);

        recorder.emit_with(|| ObsEvent::PageVisit {
            at: t,
            index: visit_idx as u32,
            url: visit.page.root_url().to_string(),
            opened,
            end: next_start,
            released_at,
        });
        boundaries.push((t, opened));
        partial.push(PageRecord {
            url: visit.page.root_url().to_string(),
            version: visit.page.spec().version,
            start: t,
            tx_end: metrics.data_transmission_end,
            opened,
            first_display: metrics.first_display_at,
            released_at,
            reading_s: visit.reading_s,
            predicted_s,
            load_joules: 0.0,    // filled from the replay below
            reading_joules: 0.0, // filled from the replay below
            work: metrics.work,
            bytes: metrics.bytes_fetched,
            objects: metrics.objects_fetched,
            failed_objects: metrics.failed_objects,
            degraded: metrics.degraded,
        });
        t = next_start;
    }

    // Exact energy: replay radio + CPU events on a fresh machine. The
    // recorder rides on the *replay* machine — the one whose energy is
    // reported — so the emitted ledger folds to `total_joules` exactly.
    let radio: R = replay_radio_recorded(radio_cfg, start, events, t, recorder.clone());
    let meter = radio.meter();
    for (i, record) in partial.iter_mut().enumerate() {
        let (page_start, opened) = boundaries[i];
        let next = boundaries.get(i + 1).map_or(t, |b| b.0);
        record.load_joules = meter.joules_between(page_start, opened);
        record.reading_joules = meter.joules_between(opened, next);
    }

    RadioSessionOutcome {
        total_joules: radio.energy_j(),
        total_load_time_s: partial.iter().map(PageRecord::load_time_s).sum(),
        duration: t - start,
        counters: radio.counters(),
        pages: partial,
        radio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::{benchmark_corpus, Corpus};

    fn setup() -> (Corpus, OriginServer, CoreConfig) {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        (corpus, server, CoreConfig::paper())
    }

    fn visit<'a>(corpus: &'a Corpus, key: &str, version: PageVersion, reading: f64) -> Visit<'a> {
        Visit {
            page: corpus.page(key, version).unwrap(),
            reading_s: reading,
            features: None,
        }
    }

    #[test]
    fn energy_aware_saves_energy_on_long_reads() {
        let (corpus, server, cfg) = setup();
        let visits = vec![visit(&corpus, "espn", PageVersion::Full, 20.0)];
        let base = simulate_session(&server, &visits, Case::Original, &cfg, None);
        let ours = simulate_session(&server, &visits, Case::Accurate9, &cfg, None);
        let saving = 1.0 - ours.total_joules / base.total_joules;
        assert!(
            (0.15..0.60).contains(&saving),
            "espn full + 20 s reading should save paper-scale energy (43.6%), got {saving:.3}"
        );
    }

    #[test]
    fn oracle_respects_the_threshold() {
        let (corpus, server, cfg) = setup();
        let long = vec![visit(&corpus, "cnn", PageVersion::Mobile, 30.0)];
        let short = vec![visit(&corpus, "cnn", PageVersion::Mobile, 5.0)];
        let released = simulate_session(&server, &long, Case::Accurate9, &cfg, None);
        let kept = simulate_session(&server, &short, Case::Accurate9, &cfg, None);
        assert!(released.pages[0].released_at.is_some());
        assert!(kept.pages[0].released_at.is_none());
        assert_eq!(released.counters.fast_dormancy_releases, 1);
        assert_eq!(kept.counters.fast_dormancy_releases, 0);
    }

    #[test]
    fn always_off_pays_a_delay_penalty_on_quick_clicks() {
        let (corpus, server, cfg) = setup();
        // Two quick visits: releasing after page 1 forces a cold
        // promotion for page 2.
        let visits = vec![
            visit(&corpus, "cnn", PageVersion::Mobile, 3.0),
            visit(&corpus, "bbc", PageVersion::Mobile, 3.0),
        ];
        let base = simulate_session(&server, &visits, Case::Original, &cfg, None);
        let off = simulate_session(&server, &visits, Case::OriginalAlwaysOff, &cfg, None);
        assert!(
            off.total_load_time_s > base.total_load_time_s,
            "always-off should add promotion delay: {} vs {}",
            off.total_load_time_s,
            base.total_load_time_s
        );
        assert!(off.counters.idle_to_dch > base.counters.idle_to_dch);
    }

    #[test]
    fn radio_state_carries_across_visits() {
        let (corpus, server, cfg) = setup();
        let visits = vec![
            visit(&corpus, "cnn", PageVersion::Mobile, 2.0),
            visit(&corpus, "cnn", PageVersion::Mobile, 2.0),
        ];
        let out = simulate_session(&server, &visits, Case::Original, &cfg, None);
        // Second load starts in DCH/FACH: strictly faster than the cold
        // first load of the same page.
        assert!(
            out.pages[1].load_time_s() < out.pages[0].load_time_s(),
            "warm load {} should beat cold load {}",
            out.pages[1].load_time_s(),
            out.pages[0].load_time_s()
        );
        assert_eq!(
            out.counters.idle_to_dch, 1,
            "only the first load promotes cold"
        );
    }

    #[test]
    fn per_page_energy_sums_to_total() {
        let (corpus, server, cfg) = setup();
        let visits = vec![
            visit(&corpus, "msn", PageVersion::Mobile, 10.0),
            visit(&corpus, "aol", PageVersion::Mobile, 25.0),
        ];
        let out = simulate_session(&server, &visits, Case::Accurate20, &cfg, None);
        let per_page: f64 = out.pages.iter().map(PageRecord::total_joules).sum();
        assert!(
            (per_page - out.total_joules).abs() < 1e-6,
            "{per_page} vs {out:?}",
            out = out.total_joules
        );
    }

    #[test]
    fn predicted_case_uses_the_predictor() {
        let (corpus, server, cfg) = setup();
        let trace = ewb_traces::TraceDataset::generate(&ewb_traces::TraceConfig::small());
        let predictor = ReadingTimePredictor::train_with_interest_threshold(
            &trace,
            2.0,
            &ewb_traces::reading_time_params(),
        );
        let visits = vec![visit(&corpus, "espn", PageVersion::Full, 30.0)];
        let out = simulate_session(&server, &visits, Case::Predict9, &cfg, Some(&predictor));
        assert!(out.pages[0].predicted_s.is_some());
    }

    #[test]
    #[should_panic(expected = "requires a trained")]
    fn predicted_case_without_predictor_panics() {
        let (corpus, server, cfg) = setup();
        let visits = vec![visit(&corpus, "cnn", PageVersion::Mobile, 5.0)];
        simulate_session(&server, &visits, Case::Predict9, &cfg, None);
    }

    #[test]
    fn sub_alpha_visits_never_release() {
        let (corpus, server, cfg) = setup();
        let visits = vec![visit(&corpus, "cnn", PageVersion::Mobile, 1.0)];
        let out = simulate_session(&server, &visits, Case::Accurate9, &cfg, None);
        assert!(out.pages[0].released_at.is_none());
    }

    #[test]
    fn zero_fault_session_is_bit_identical_to_plain() {
        let (corpus, server, cfg) = setup();
        let visits = vec![
            visit(&corpus, "espn", PageVersion::Full, 20.0),
            visit(&corpus, "cnn", PageVersion::Mobile, 5.0),
        ];
        let sf = SessionFaults::new(FaultConfig::none(), 42);
        for case in [Case::Original, Case::Accurate9] {
            let plain = simulate_session(&server, &visits, case, &cfg, None);
            let faulted = simulate_session_faulted(&server, &visits, case, &cfg, None, Some(&sf));
            assert_eq!(
                plain.total_joules.to_bits(),
                faulted.total_joules.to_bits(),
                "case {case}: energy must match to the last bit"
            );
            assert_eq!(plain.total_load_time_s, faulted.total_load_time_s);
            assert_eq!(plain.counters, faulted.counters);
            assert_eq!(faulted.degraded_pages(), 0);
            assert_eq!(faulted.failed_objects(), 0);
        }
    }

    #[test]
    fn lossy_sessions_complete_in_both_modes() {
        let (corpus, server, cfg) = setup();
        let visits = vec![
            visit(&corpus, "cnn", PageVersion::Mobile, 10.0),
            visit(&corpus, "bbc", PageVersion::Mobile, 10.0),
        ];
        let sf = SessionFaults::new(FaultConfig::lossy(0.3), 2013);
        for case in [Case::Original, Case::Accurate9] {
            let clean = simulate_session(&server, &visits, case, &cfg, None);
            let out = simulate_session_faulted(&server, &visits, case, &cfg, None, Some(&sf));
            assert_eq!(out.pages.len(), 2, "case {case}: both visits complete");
            assert!(
                out.total_joules >= clean.total_joules,
                "case {case}: retries cannot make the session cheaper"
            );
            // Determinism: the same seed replays the same session.
            let again = simulate_session_faulted(&server, &visits, case, &cfg, None, Some(&sf));
            assert_eq!(out.total_joules.to_bits(), again.total_joules.to_bits());
            assert_eq!(out.failed_objects(), again.failed_objects());
        }
    }

    #[test]
    fn record_timing_fields_are_consistent() {
        let (corpus, server, cfg) = setup();
        let visits = vec![visit(&corpus, "ebay", PageVersion::Full, 20.0)];
        let out = simulate_session(&server, &visits, Case::Accurate20, &cfg, None);
        let p = &out.pages[0];
        assert!(p.start < p.tx_end);
        assert!(p.tx_end <= p.opened);
        assert!(p.load_time_s() > p.tx_time_s() - 1e-9);
        assert!(p.bytes > 100_000);
        assert!(p.objects > 40);
        assert_eq!(out.duration.as_secs_f64(), p.load_time_s() + 20.0);
    }
}

#[cfg(test)]
mod algorithm_mode_tests {
    use super::*;
    use crate::config::{AlgorithmMode, AlgorithmParams};
    use ewb_webpage::benchmark_corpus;

    /// Algorithm 2's two modes differ exactly in the release threshold:
    /// power-driven releases for reads in (Tp, Td] that delay-driven keeps.
    #[test]
    fn power_driven_releases_where_delay_driven_does_not() {
        let corpus = benchmark_corpus(6);
        let server = OriginServer::from_corpus(&corpus);
        let visits = [Visit {
            page: corpus.page("msn", PageVersion::Mobile).unwrap(),
            reading_s: 14.0, // between Tp=9 and Td=20
            features: None,
        }];
        let mut power_cfg = CoreConfig::paper();
        power_cfg.alg = AlgorithmParams {
            mode: AlgorithmMode::PowerDriven,
            ..AlgorithmParams::paper()
        };
        let delay_cfg = CoreConfig::paper(); // delay-driven default

        // Oracle cases with the mode's threshold.
        let released = simulate_session(
            &server,
            &visits,
            Case::Accurate9, // Tp threshold = power-driven behaviour
            &power_cfg,
            None,
        );
        let kept = simulate_session(&server, &visits, Case::Accurate20, &delay_cfg, None);
        assert!(
            released.pages[0].released_at.is_some(),
            "power mode releases at 14 s"
        );
        assert!(
            kept.pages[0].released_at.is_none(),
            "delay mode keeps at 14 s"
        );
    }

    /// Releasing on a 14 s read is power-positive but costs the next
    /// click a promotion — the Table 2 trade-off in one scenario.
    #[test]
    fn the_power_delay_tradeoff_is_real() {
        let corpus = benchmark_corpus(6);
        let server = OriginServer::from_corpus(&corpus);
        let visits: Vec<Visit<'_>> = vec![
            Visit {
                page: corpus.page("msn", PageVersion::Mobile).unwrap(),
                reading_s: 16.0,
                features: None,
            },
            Visit {
                page: corpus.page("aol", PageVersion::Mobile).unwrap(),
                reading_s: 16.0,
                features: None,
            },
        ];
        let cfg = CoreConfig::paper();
        let power = simulate_session(&server, &visits, Case::Accurate9, &cfg, None);
        let delay = simulate_session(&server, &visits, Case::Accurate20, &cfg, None);
        // Power-driven: releases (reading > 9), second load pays promotion.
        assert_eq!(power.counters.fast_dormancy_releases, 2);
        assert_eq!(delay.counters.fast_dormancy_releases, 0);
        assert!(
            power.total_load_time_s > delay.total_load_time_s,
            "power mode trades delay: {} vs {}",
            power.total_load_time_s,
            delay.total_load_time_s
        );
    }
}
