//! Memoized page-load profiles: the fleet simulator's fast session path.
//!
//! On a clean link, the radio events of one page load are a pure function
//! of three things: the page, the case's pipeline schedule, and the RRC
//! state at the click. Everything else the machine carries at the click —
//! pending inactivity deadlines, past history — cannot influence the load,
//! because the load's first event is a `BeginTransfer` at the click
//! instant itself, which cancels any pending timer before it could fire.
//! (Clicks always find the radio in IDLE, FACH, or DCH: promotion windows
//! only exist inside loads, and every load's transfers finish before the
//! page opens.)
//!
//! [`ProfileTable::capture`] therefore runs the full browser pipeline once
//! per (page, mode, click-state) — 120 loads for the benchmark corpus —
//! and stores each load's radio events shifted to a click-relative clock.
//! [`run_profiled_session`] replays whole sessions by time-shifting those
//! profiles onto one incremental [`RrcMachine`], making the per-visit cost
//! O(events) with zero allocation: the hot path of `ewb-fleet`.
//!
//! The replayed session is **bit-identical** to
//! [`simulate_session`](crate::session::simulate_session): both paths
//! issue the same machine calls at the same instants (the canonical
//! [`sort_radio_events`] order), so the energy meter integrates the same
//! segments in the same order.
//!
//! The same argument extends to faulty links, one [`FaultTier`] at a
//! time: a tier fixes a [`FaultConfig`] and one fault-stream seed per
//! (page, mode, click-state) key, so a captured faulted load is exactly
//! as pure a function of its key as a clean one — the fault stream is
//! part of the key, not of the session history.
//! [`ProfileTable::capture_tiered`] adds the tier as a fourth profile
//! dimension (still O(pages × modes × states × tiers) captures), and the
//! equivalence oracle is
//! [`simulate_session_faulted_seeded`](crate::session::simulate_session_faulted_seeded)
//! driven with the per-key capture seeds.

use crate::cases::{Case, ReleasePolicy};
use crate::config::CoreConfig;
use crate::session::release_decision;
use ewb_browser::parallel::ParallelismPlan;
use ewb_browser::pipeline::{load_page, PipelineConfig, PipelineMode};
use ewb_net::replay::{events_of_load_parallel, sort_radio_events, RadioEvent};
use ewb_net::{FaultConfig, RetryPolicy, ThreeGFetcher};
use ewb_rrc::{RrcCounters, RrcMachine, RrcState, StateResidency};
use ewb_simcore::{SimDuration, SimTime, SplitMix64};
use ewb_traces::FeatureVector;
use ewb_webpage::{Corpus, OriginServer, PageVersion};

/// One captured page load, on a click-relative clock (the click is
/// [`SimTime::ZERO`]).
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Radio and CPU events of the load, in canonical replay order
    /// ([`sort_radio_events`]), relative to the click.
    pub events: Vec<RadioEvent>,
    /// Click → final display (the page-load duration).
    pub opened: SimDuration,
    /// Click → end of the data-transmission phase.
    pub tx_end: SimDuration,
    /// The feature vector the browser measured during this load — what a
    /// Predict-N case's predictor sees when no per-visit override is
    /// supplied.
    pub features: FeatureVector,
    /// Bytes fetched by the load.
    pub bytes: u64,
}

impl LoadProfile {
    /// Page-load duration in seconds.
    pub fn load_time_s(&self) -> f64 {
        self.opened.as_secs_f64()
    }
}

/// The RRC states a click can find the radio in.
const CLICK_STATES: [RrcState; 3] = [RrcState::Idle, RrcState::Fach, RrcState::Dch];
/// Both pipeline schedules, in index order.
const MODES: [PipelineMode; 2] = [PipelineMode::Original, PipelineMode::EnergyAware];

fn state_index(state: RrcState) -> usize {
    match state {
        RrcState::Idle => 0,
        RrcState::Fach => 1,
        RrcState::Dch => 2,
        RrcState::Promoting => panic!(
            "a click cannot find the radio in the Promoting state: promotion windows \
             only exist inside page loads"
        ),
    }
}

pub(crate) fn mode_index(mode: PipelineMode) -> usize {
    match mode {
        PipelineMode::Original => 0,
        PipelineMode::EnergyAware => 1,
    }
}

/// A population-scale link-quality tier: a named [`FaultConfig`] preset
/// whose faulted page loads can be memoized next to the clean ones.
///
/// The tier (not the session) owns the fault randomness: every capture of
/// a (page, mode, click-state) key under a tier uses the fixed
/// [`capture_seed`](FaultTier::capture_seed) of that key, so the faulted
/// load stays a pure function of the profile key and the memoization
/// argument of this module carries over unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTier {
    /// Clean link — the original PR 6 profile set.
    Clean,
    /// 2 % object-loss rate ([`FaultConfig::lossy`]): a healthy deployed
    /// population.
    Lossy2,
    /// 10 % object-loss rate: a congested cell.
    Lossy10,
    /// 10 % delivery-jitter rate ([`FaultConfig::jittery`]): variable
    /// link quality without outright loss.
    Jittery10,
}

impl FaultTier {
    /// Every tier, in stable [`index`](FaultTier::index) order.
    pub const ALL: [FaultTier; 4] = [
        FaultTier::Clean,
        FaultTier::Lossy2,
        FaultTier::Lossy10,
        FaultTier::Jittery10,
    ];

    /// The tier's fault model.
    pub fn fault_config(self) -> FaultConfig {
        match self {
            FaultTier::Clean => FaultConfig::none(),
            FaultTier::Lossy2 => FaultConfig::lossy(0.02),
            FaultTier::Lossy10 => FaultConfig::lossy(0.10),
            FaultTier::Jittery10 => FaultConfig::jittery(0.10),
        }
    }

    /// Human-readable tier name (report and EXPERIMENTS labels).
    pub fn name(self) -> &'static str {
        match self {
            FaultTier::Clean => "clean",
            FaultTier::Lossy2 => "lossy-2%",
            FaultTier::Lossy10 => "lossy-10%",
            FaultTier::Jittery10 => "jittery-10%",
        }
    }

    /// Stable numeric id — what fleet checkpoints persist.
    pub fn index(self) -> u8 {
        match self {
            FaultTier::Clean => 0,
            FaultTier::Lossy2 => 1,
            FaultTier::Lossy10 => 2,
            FaultTier::Jittery10 => 3,
        }
    }

    /// Inverse of [`index`](FaultTier::index).
    pub fn from_index(index: u8) -> Option<FaultTier> {
        FaultTier::ALL.iter().copied().find(|t| t.index() == index)
    }

    /// The fixed fault-stream seed of one (page, mode, click-state)
    /// capture under this tier. Deterministic and collision-free across
    /// keys by construction (the key fields occupy disjoint bit ranges
    /// before mixing).
    pub fn capture_seed(self, page_idx: usize, mode: PipelineMode, state: RrcState) -> u64 {
        let key = ((page_idx as u64) << 16)
            | ((mode_index(mode) as u64) << 8)
            | ((state_index(state) as u64) << 4)
            | u64::from(self.index());
        SplitMix64::mix(0x3EBF_9A7C_51D0_246E ^ key)
    }

    /// [`capture_seed`](FaultTier::capture_seed) extended with the
    /// [`ParallelismPlan`] the load runs under. The plan is part of the
    /// profile key, so it must be part of the seed too — otherwise two
    /// plans' captures of the same (page, mode, state, tier) would share
    /// one fault stream while consuming it on different schedules.
    /// The sequential plan maps to the legacy seed unchanged
    /// ([`ParallelismPlan::key`] is 0 there), keeping every existing
    /// capture bit-identical.
    pub fn capture_seed_planned(
        self,
        page_idx: usize,
        mode: PipelineMode,
        state: RrcState,
        plan: ParallelismPlan,
    ) -> u64 {
        let base = self.capture_seed(page_idx, mode, state);
        if plan.is_sequential() {
            base
        } else {
            SplitMix64::mix(base ^ plan.key().wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }
}

impl std::fmt::Display for FaultTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every load profile of a corpus: one per (page, pipeline mode, RRC
/// state at the click).
///
/// Pages are indexed in the [`VisitSynthesizer`](ewb_traces) base order —
/// Table 3 site order, mobile before full within a site — so a
/// synthesizer's base index is directly a `ProfileTable` page index.
#[derive(Debug, Clone)]
pub struct ProfileTable {
    profiles: Vec<LoadProfile>,
    n_pages: usize,
    tiers: Vec<FaultTier>,
    plans: Vec<ParallelismPlan>,
}

impl ProfileTable {
    /// Runs the full browser pipeline over every (page, mode, click-state)
    /// combination and captures the resulting load profiles, clean tier
    /// only.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, or if a captured load
    /// violates a memoization precondition (an event before the click, or
    /// a first transfer that is not at the click instant) — either would
    /// indicate the purity argument above no longer holds.
    pub fn capture(corpus: &Corpus, server: &OriginServer, cfg: &CoreConfig) -> Self {
        Self::capture_tiered(corpus, server, cfg, &[FaultTier::Clean])
    }

    /// Runs the full browser pipeline over every
    /// (page, mode, click-state, tier) combination. Faulted tiers run the
    /// load under the tier's [`FaultConfig`] with the key's fixed
    /// [`FaultTier::capture_seed`] and the standard retry policy; failed
    /// objects are allowed (degraded pages are what a lossy tier *means*)
    /// but the first transfer must still begin at the click — the
    /// memoization precondition faults do not get to break.
    ///
    /// # Panics
    ///
    /// Panics as [`capture`](ProfileTable::capture) does, or if `tiers`
    /// is empty, contains duplicates, or does not include
    /// [`FaultTier::Clean`] (the clean tier anchors every table: it is
    /// what [`profile`](ProfileTable::profile) serves).
    pub fn capture_tiered(
        corpus: &Corpus,
        server: &OriginServer,
        cfg: &CoreConfig,
        tiers: &[FaultTier],
    ) -> Self {
        Self::capture_planned(corpus, server, cfg, tiers, &[ParallelismPlan::SEQUENTIAL])
    }

    /// [`capture_tiered`](ProfileTable::capture_tiered) with an extra
    /// profile dimension: the intra-page [`ParallelismPlan`] each load
    /// runs under. The plan changes a load's CPU schedule (and therefore
    /// its radio events, helper-core power steps, and open time), so it
    /// **must** be part of the capture key — a table captured under one
    /// plan served for another would replay the wrong profile. Faulted
    /// captures key their fault stream by
    /// [`FaultTier::capture_seed_planned`] for the same reason.
    ///
    /// # Panics
    ///
    /// Panics as [`capture_tiered`](ProfileTable::capture_tiered) does,
    /// or if `plans` is empty, contains duplicates or an invalid plan, or
    /// does not include [`ParallelismPlan::SEQUENTIAL`] (the anchor plan
    /// that [`profile_tiered`](ProfileTable::profile_tiered) serves).
    pub fn capture_planned(
        corpus: &Corpus,
        server: &OriginServer,
        cfg: &CoreConfig,
        tiers: &[FaultTier],
        plans: &[ParallelismPlan],
    ) -> Self {
        assert!(
            plans.contains(&ParallelismPlan::SEQUENTIAL),
            "a profile table must include the sequential plan (got {plans:?})"
        );
        for (i, plan) in plans.iter().enumerate() {
            if let Err(e) = plan.validate() {
                panic!("invalid ParallelismPlan {plan}: {e}");
            }
            assert!(
                !plans[..i].contains(plan),
                "duplicate parallelism plan {plan} in {plans:?}"
            );
        }
        if let Err(e) = cfg.validate() {
            panic!("invalid CoreConfig: {e}");
        }
        assert!(
            tiers.contains(&FaultTier::Clean),
            "a profile table must include the clean tier (got {tiers:?})"
        );
        for (i, tier) in tiers.iter().enumerate() {
            assert!(
                !tiers[..i].contains(tier),
                "duplicate fault tier {tier} in {tiers:?}"
            );
        }
        let mut profiles = Vec::with_capacity(
            corpus.sites().len() * 2 * MODES.len() * 3 * tiers.len() * plans.len(),
        );
        for (site_idx, site) in corpus.sites().iter().enumerate() {
            for version in [PageVersion::Mobile, PageVersion::Full] {
                let page = match version {
                    PageVersion::Mobile => &site.mobile,
                    PageVersion::Full => &site.full,
                };
                let page_idx = site_idx * 2 + usize::from(version == PageVersion::Full);
                for mode in MODES {
                    let mut pipe_cfg = PipelineConfig::new(mode);
                    if version == PageVersion::Mobile {
                        // §4.2: mobile pages get no intermediate display.
                        pipe_cfg.draw_intermediate = false;
                    }
                    for state in CLICK_STATES {
                        for &tier in tiers {
                            for &plan in plans {
                                let (machine, t0) = machine_in_state(cfg, state);
                                let mut fetcher =
                                    ThreeGFetcher::with_machine(cfg.net, machine, server);
                                if tier != FaultTier::Clean {
                                    fetcher = fetcher
                                        .try_with_faults(
                                            tier.fault_config(),
                                            tier.capture_seed_planned(page_idx, mode, state, plan),
                                            RetryPolicy::standard(),
                                        )
                                        .unwrap_or_else(|e| {
                                            panic!("fault tier {tier} has an invalid config: {e}")
                                        });
                                }
                                let mut plan_cfg = pipe_cfg.clone();
                                plan_cfg.plan = plan;
                                let metrics = load_page(
                                    &mut fetcher,
                                    page.root_url(),
                                    t0,
                                    &plan_cfg,
                                    &cfg.cost,
                                );
                                let mut events = events_of_load_parallel(
                                    fetcher.transfers(),
                                    &metrics.cpu_busy,
                                    &metrics.aux_busy,
                                );
                                sort_radio_events(&mut events);
                                let events: Vec<RadioEvent> = events
                                    .iter()
                                    .map(|e| {
                                        assert!(
                                            e.at() >= t0,
                                            "captured event before the click: {e:?} (click {t0:?})"
                                        );
                                        shift_back(e, t0)
                                    })
                                    .collect();
                                let first_begin = events
                                    .iter()
                                    .find(|e| matches!(e, RadioEvent::BeginTransfer { .. }))
                                    .expect("a page load has at least one transfer");
                                assert!(
                                    matches!(
                                        first_begin,
                                        RadioEvent::BeginTransfer {
                                            at: SimTime::ZERO,
                                            ..
                                        }
                                    ),
                                    "the first transfer must begin at the click \
                                     (it is what makes click-state a sufficient memoization \
                                     key), got {first_begin:?} (tier {tier}, plan {plan})"
                                );
                                if tier == FaultTier::Clean {
                                    assert!(
                                        matches!(
                                            first_begin,
                                            RadioEvent::BeginTransfer {
                                                promotion_retries: 0,
                                                ..
                                            }
                                        ),
                                        "a clean-link first transfer cannot retry its \
                                         promotion, got {first_begin:?}"
                                    );
                                    assert_eq!(
                                        metrics.failed_objects, 0,
                                        "clean-tier profiles must fetch every object"
                                    );
                                }
                                profiles.push(LoadProfile {
                                    events,
                                    opened: metrics.final_display_at - t0,
                                    tx_end: metrics.data_transmission_end - t0,
                                    features: FeatureVector::from_slice(
                                        &metrics.features().to_vec(),
                                    ),
                                    bytes: metrics.bytes_fetched,
                                });
                            }
                        }
                    }
                }
            }
        }
        ProfileTable {
            profiles,
            n_pages: corpus.sites().len() * 2,
            tiers: tiers.to_vec(),
            plans: plans.to_vec(),
        }
    }

    /// Number of pages covered (2 per site).
    pub fn n_pages(&self) -> usize {
        self.n_pages
    }

    /// The fault tiers this table captured, in capture order.
    pub fn tiers(&self) -> &[FaultTier] {
        &self.tiers
    }

    /// Whether `tier` was captured into this table.
    pub fn has_tier(&self, tier: FaultTier) -> bool {
        self.tiers.contains(&tier)
    }

    /// The parallelism plans this table captured, in capture order.
    pub fn plans(&self) -> &[ParallelismPlan] {
        &self.plans
    }

    /// Whether `plan` was captured into this table.
    pub fn has_plan(&self, plan: ParallelismPlan) -> bool {
        self.plans.contains(&plan)
    }

    /// The clean-tier profile of `page_idx` under `mode` when the click
    /// finds the radio in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` is out of range or `state` is `Promoting`.
    pub fn profile(&self, page_idx: usize, mode: PipelineMode, state: RrcState) -> &LoadProfile {
        self.profile_tiered(page_idx, mode, state, FaultTier::Clean)
    }

    /// The profile of `page_idx` under `mode` and link-quality `tier`
    /// when the click finds the radio in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` is out of range, `state` is `Promoting`, or
    /// `tier` was not captured into this table.
    pub fn profile_tiered(
        &self,
        page_idx: usize,
        mode: PipelineMode,
        state: RrcState,
        tier: FaultTier,
    ) -> &LoadProfile {
        self.profile_planned(page_idx, mode, state, tier, ParallelismPlan::SEQUENTIAL)
    }

    /// The profile of `page_idx` under `mode`, link-quality `tier`, and
    /// intra-page [`ParallelismPlan`] `plan` when the click finds the
    /// radio in `state` — the full five-dimensional profile key.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` is out of range, `state` is `Promoting`, or
    /// `tier`/`plan` was not captured into this table.
    pub fn profile_planned(
        &self,
        page_idx: usize,
        mode: PipelineMode,
        state: RrcState,
        tier: FaultTier,
        plan: ParallelismPlan,
    ) -> &LoadProfile {
        assert!(
            page_idx < self.n_pages,
            "page index {page_idx} out of range ({} pages)",
            self.n_pages
        );
        let tier_slot = self
            .tiers
            .iter()
            .position(|&t| t == tier)
            .unwrap_or_else(|| {
                panic!(
                    "fault tier {tier} was not captured (table has {:?})",
                    self.tiers
                )
            });
        let plan_slot = self
            .plans
            .iter()
            .position(|&p| p == plan)
            .unwrap_or_else(|| {
                panic!(
                    "parallelism plan {plan} was not captured (table has {:?})",
                    self.plans
                )
            });
        let key =
            (page_idx * MODES.len() + mode_index(mode)) * CLICK_STATES.len() + state_index(state);
        &self.profiles[(key * self.tiers.len() + tier_slot) * self.plans.len() + plan_slot]
    }
}

/// A machine advanced to a click instant in the requested state, plus
/// that instant. The pre-drive uses plain transfers, so any pending
/// inactivity deadline it leaves behind is exactly the kind a real
/// session leaves — and is cancelled by the load's first transfer.
fn machine_in_state(cfg: &CoreConfig, state: RrcState) -> (RrcMachine, SimTime) {
    let mut machine = RrcMachine::new(cfg.rrc, SimTime::ZERO);
    let t0 = match state {
        RrcState::Idle => SimTime::ZERO,
        RrcState::Fach | RrcState::Dch => {
            let data_start = machine.begin_transfer(SimTime::ZERO, state == RrcState::Dch);
            let end = data_start + SimDuration::from_millis(100);
            machine.end_transfer(end);
            end + SimDuration::from_secs(1)
        }
        RrcState::Promoting => {
            let _ = state_index(state); // panics with the shared message
            unreachable!()
        }
    };
    machine.advance_to(t0);
    assert_eq!(machine.state(), state, "pre-drive must land in {state:?}");
    (machine, t0)
}

/// Rebuilds `e` with its time shifted from an absolute clock (click at
/// `t0`) to the click-relative clock.
pub(crate) fn shift_back(e: &RadioEvent, t0: SimTime) -> RadioEvent {
    let rel = |at: SimTime| SimTime::ZERO + (at - t0);
    match *e {
        RadioEvent::BeginTransfer {
            at,
            needs_dch,
            promotion_retries,
        } => RadioEvent::BeginTransfer {
            at: rel(at),
            needs_dch,
            promotion_retries,
        },
        RadioEvent::EndTransfer { at } => RadioEvent::EndTransfer { at: rel(at) },
        RadioEvent::Release { at } => RadioEvent::Release { at: rel(at) },
        RadioEvent::CpuLoad { at, load } => RadioEvent::CpuLoad { at: rel(at), load },
    }
}

/// One visit of a profiled session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfiledVisit {
    /// Page index in [`ProfileTable`] order (synthesizer base order).
    pub page_idx: usize,
    /// Actual reading time after the page opens, seconds.
    pub reading_s: f64,
    /// Predicted reading time for this visit, when the case needs one.
    /// The fleet computes these in feature-batches up front
    /// ([`predict_rows`](ewb_traces::ReadingTimePredictor::predict_rows));
    /// the value is only consulted for engaged visits under a predicted
    /// policy.
    pub predicted_s: Option<f64>,
}

/// What [`run_profiled_session`] reports for one visit, through the
/// `on_visit` callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfiledVisitOutcome {
    /// Page index of the visit.
    pub page_idx: usize,
    /// Page-load duration (click → final display).
    pub load: SimDuration,
    /// Whether Algorithm 2 released the radio during the reading period.
    pub released: bool,
    /// The predicted reading time, when the policy consulted one.
    pub predicted_s: Option<f64>,
    /// The RRC state the click found the radio in — the profile key this
    /// visit replayed (what the fault-tier equivalence oracle needs to
    /// reconstruct the capture seeds).
    pub click_state: RrcState,
    /// Whether a predictor outage forced this visit onto the intuitive
    /// (release-after-load) fallback policy.
    pub degraded_policy: bool,
}

/// Aggregates of one profiled session — the fields the fleet folds into
/// its population summary. Matches the corresponding
/// [`SessionOutcome`](crate::session::SessionOutcome) fields bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfiledOutcome {
    /// Total handset energy over the session, joules.
    pub total_joules: f64,
    /// Sum of page-load durations, seconds.
    pub total_load_time_s: f64,
    /// Session duration.
    pub duration: SimDuration,
    /// Radio event counters.
    pub counters: RrcCounters,
    /// Time per radio state.
    pub residency: StateResidency,
    /// Visits that ran on the intuitive fallback policy because the
    /// predictor was unavailable (always 0 without an injected outage).
    pub degraded_policy_visits: u64,
}

/// Options of [`run_profiled_session_with`]: which link-quality tier to
/// replay and whether the on-device predictor goes down mid-session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfiledSessionOpts {
    /// The fault tier whose profiles the session replays. Must have been
    /// captured into the table ([`ProfileTable::capture_tiered`]).
    pub tier: FaultTier,
    /// Predictor outage: from this visit index on, predicted-threshold
    /// policies stop consulting predictions and fall back to the paper's
    /// intuitive policy (release right after the page opens). `None`
    /// means the predictor stays up. Oracle and fixed policies are
    /// unaffected — they never consult a predictor.
    pub predictor_outage_from: Option<usize>,
    /// The intra-page [`ParallelismPlan`] whose profiles the session
    /// replays. Must have been captured into the table
    /// ([`ProfileTable::capture_planned`]).
    pub plan: ParallelismPlan,
}

impl Default for ProfiledSessionOpts {
    fn default() -> Self {
        ProfiledSessionOpts {
            tier: FaultTier::Clean,
            predictor_outage_from: None,
            plan: ParallelismPlan::SEQUENTIAL,
        }
    }
}

/// Simulates a session by time-shifting memoized load profiles onto one
/// incremental radio machine. Allocation-free after the table is built.
///
/// `on_visit` fires once per visit in order — the fleet's histogram hook.
///
/// # Panics
///
/// Panics if `visits` is empty, the configuration is invalid, a page
/// index is out of range, a reading time is negative, or the case's
/// policy needs a prediction a visit does not carry.
pub fn run_profiled_session(
    table: &ProfileTable,
    cfg: &CoreConfig,
    case: Case,
    visits: &[ProfiledVisit],
    on_visit: impl FnMut(ProfiledVisitOutcome),
) -> ProfiledOutcome {
    run_profiled_session_with(
        table,
        cfg,
        case,
        ProfiledSessionOpts::default(),
        visits,
        on_visit,
    )
}

/// [`run_profiled_session`] with explicit [`ProfiledSessionOpts`]: replay
/// a faulted tier's profiles and/or inject a mid-session predictor
/// outage. With the default options this is exactly
/// [`run_profiled_session`].
///
/// During an outage, predicted-threshold visits run the intuitive
/// release-after-load policy instead; each such visit is flagged in its
/// [`ProfiledVisitOutcome`] and counted in
/// [`ProfiledOutcome::degraded_policy_visits`].
///
/// # Panics
///
/// Panics as [`run_profiled_session`] does, or if `opts.tier` was not
/// captured into `table`.
pub fn run_profiled_session_with(
    table: &ProfileTable,
    cfg: &CoreConfig,
    case: Case,
    opts: ProfiledSessionOpts,
    visits: &[ProfiledVisit],
    mut on_visit: impl FnMut(ProfiledVisitOutcome),
) -> ProfiledOutcome {
    assert!(!visits.is_empty(), "a session needs at least one visit");
    if let Err(e) = cfg.validate() {
        panic!("invalid CoreConfig: {e}");
    }

    let start = SimTime::ZERO;
    let mut machine = RrcMachine::new(cfg.rrc, start);
    let mut t = start;
    let mut total_load_time_s = 0.0;
    let mut degraded_policy_visits = 0u64;

    for (visit_idx, visit) in visits.iter().enumerate() {
        assert!(
            visit.reading_s.is_finite() && visit.reading_s >= 0.0,
            "reading time must be non-negative"
        );
        let click_state = machine.state();
        let profile = table.profile_planned(
            visit.page_idx,
            case.pipeline_mode(),
            click_state,
            opts.tier,
            opts.plan,
        );
        let dt = t - start;
        for e in &profile.events {
            match *e {
                RadioEvent::BeginTransfer {
                    at,
                    needs_dch,
                    promotion_retries,
                } => {
                    let _ = machine.begin_transfer_with_promotion_retries(
                        at + dt,
                        needs_dch,
                        promotion_retries,
                    );
                }
                RadioEvent::EndTransfer { at } => machine.end_transfer(at + dt),
                RadioEvent::Release { at } => {
                    let _ = machine.release_to_idle(at + dt);
                }
                RadioEvent::CpuLoad { at, load } => machine.set_cpu_load(at + dt, load),
            }
        }

        let opened = t + profile.opened;
        let next_start = opened + SimDuration::from_secs_f64(visit.reading_s);
        let policy = case.release_policy();
        let outage = opts
            .predictor_outage_from
            .is_some_and(|from| visit_idx >= from);
        let degraded_policy = outage && matches!(policy, ReleasePolicy::PredictedThreshold { .. });
        let policy = if degraded_policy {
            ReleasePolicy::AfterLoad
        } else {
            policy
        };
        degraded_policy_visits += u64::from(degraded_policy);
        let (decision, predicted_s) =
            release_decision(policy, cfg.alg.alpha_s, opened, visit.reading_s, || {
                visit.predicted_s.unwrap_or_else(|| {
                    panic!("case {case} needs a predicted reading time on every engaged visit")
                })
            });
        let released_at = decision.filter(|&at| at + cfg.rrc.release_latency <= next_start);
        if let Some(at) = released_at {
            machine.release_to_idle(at);
        }
        machine.advance_to(next_start);

        total_load_time_s += profile.load_time_s();
        on_visit(ProfiledVisitOutcome {
            page_idx: visit.page_idx,
            load: profile.opened,
            released: released_at.is_some(),
            predicted_s,
            click_state,
            degraded_policy,
        });
        t = next_start;
    }

    ProfiledOutcome {
        total_joules: machine.energy_j(),
        total_load_time_s,
        duration: t - start,
        counters: machine.counters(),
        residency: machine.residency(),
        degraded_policy_visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{simulate_session, Visit};
    use ewb_webpage::benchmark_corpus;

    fn setup() -> (Corpus, OriginServer, CoreConfig) {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        (corpus, server, CoreConfig::paper())
    }

    /// `(site_idx, version)` → the shared page index convention.
    fn page_idx(corpus: &Corpus, key: &str, version: PageVersion) -> usize {
        let site = corpus
            .sites()
            .iter()
            .position(|s| s.key == key)
            .expect("known site");
        site * 2 + usize::from(version == PageVersion::Full)
    }

    #[test]
    fn capture_covers_every_page_mode_and_state() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        assert_eq!(table.n_pages(), 20);
        // A cold (IDLE) click pays the promotion a warm (DCH) click skips.
        let idx = page_idx(&corpus, "espn", PageVersion::Full);
        let cold = table.profile(idx, PipelineMode::Original, RrcState::Idle);
        let warm = table.profile(idx, PipelineMode::Original, RrcState::Dch);
        assert!(
            cold.opened > warm.opened,
            "cold load {:?} must exceed warm load {:?}",
            cold.opened,
            warm.opened
        );
        // Every profile starts with its transfer at the click.
        for p in &table.profiles {
            assert_eq!(p.events.first().map(RadioEvent::at), Some(SimTime::ZERO));
            assert!(p.tx_end <= p.opened);
        }
    }

    /// The tentpole's correctness anchor: a profiled session is
    /// bit-identical to the full browser-pipeline session, across
    /// policies and across every radio state the visits drag the machine
    /// through (DCH→FACH→IDLE between clicks).
    #[test]
    fn profiled_sessions_match_full_sessions_to_the_bit() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        // Reading times chosen to land the next click in DCH (2 s),
        // FACH (6 s), and IDLE (30 s > T1+T2), plus threshold-straddling
        // values (5/12/25 s around Tp=9 and Td=20).
        let plan = [
            ("espn", PageVersion::Full, 2.0),
            ("cnn", PageVersion::Mobile, 6.0),
            ("bbc", PageVersion::Mobile, 30.0),
            ("msn", PageVersion::Mobile, 12.0),
            ("aol", PageVersion::Mobile, 5.0),
            ("ebay", PageVersion::Full, 25.0),
        ];
        let visits: Vec<Visit<'_>> = plan
            .iter()
            .map(|&(key, version, reading_s)| Visit {
                page: corpus.page(key, version).unwrap(),
                reading_s,
                features: None,
            })
            .collect();
        let profiled: Vec<ProfiledVisit> = plan
            .iter()
            .map(|&(key, version, reading_s)| ProfiledVisit {
                page_idx: page_idx(&corpus, key, version),
                reading_s,
                predicted_s: None,
            })
            .collect();

        for case in [
            Case::Original,
            Case::OriginalAlwaysOff,
            Case::Accurate9,
            Case::Accurate20,
        ] {
            let full = simulate_session(&server, &visits, case, &cfg, None);
            let mut loads = Vec::new();
            let fast = run_profiled_session(&table, &cfg, case, &profiled, |v| {
                loads.push(v.load);
            });
            assert_eq!(
                fast.total_joules.to_bits(),
                full.total_joules.to_bits(),
                "case {case}: energy must match to the last bit"
            );
            assert_eq!(
                fast.total_load_time_s.to_bits(),
                full.total_load_time_s.to_bits(),
                "case {case}: load time must match to the last bit"
            );
            assert_eq!(fast.counters, full.counters, "case {case}");
            assert_eq!(fast.residency, full.radio.residency(), "case {case}");
            assert_eq!(fast.duration, full.duration, "case {case}");
            for (got, want) in loads.iter().zip(&full.pages) {
                assert_eq!(got.as_secs_f64().to_bits(), want.load_time_s().to_bits());
            }
        }
    }

    /// Predicted policies: the profiled path consumes batch predictions
    /// and lands on the same releases and energy as the full path fed the
    /// same feature overrides.
    #[test]
    fn profiled_predicted_sessions_match_full_sessions() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        let trace = ewb_traces::TraceDataset::generate(&ewb_traces::TraceConfig::small());
        let predictor = ewb_traces::ReadingTimePredictor::train_with_interest_threshold(
            &trace,
            2.0,
            &ewb_traces::reading_time_params(),
        );
        let synth = ewb_traces::VisitSynthesizer::from_corpus(&corpus);
        let mut rng = ewb_simcore::Xoshiro256::seed_from_u64(7);
        let plan: Vec<(usize, FeatureVector, f64)> = (0..8)
            .map(|i| {
                let (idx, f, _) = synth.sample_indexed(&mut rng);
                (idx, f, [1.0, 4.0, 11.0, 30.0][i % 4])
            })
            .collect();
        let visits: Vec<Visit<'_>> = plan
            .iter()
            .map(|&(idx, f, reading_s)| {
                let (key, version) = synth.base(idx);
                Visit {
                    page: corpus.page(key, version).unwrap(),
                    reading_s,
                    features: Some(f),
                }
            })
            .collect();
        let profiled: Vec<ProfiledVisit> = plan
            .iter()
            .map(|&(idx, f, reading_s)| ProfiledVisit {
                page_idx: idx,
                reading_s,
                predicted_s: Some(predictor.predict_seconds(&f)),
            })
            .collect();

        for case in [Case::Predict9, Case::Predict20] {
            let full = simulate_session(&server, &visits, case, &cfg, Some(&predictor));
            let mut released = 0u32;
            let fast = run_profiled_session(&table, &cfg, case, &profiled, |v| {
                released += u32::from(v.released);
            });
            assert_eq!(
                fast.total_joules.to_bits(),
                full.total_joules.to_bits(),
                "case {case}"
            );
            assert_eq!(fast.counters, full.counters, "case {case}");
            assert_eq!(
                u64::from(released),
                full.counters.fast_dormancy_releases,
                "case {case}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "Promoting")]
    fn promoting_is_not_a_click_state() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        table.profile(0, PipelineMode::Original, RrcState::Promoting);
    }

    #[test]
    #[should_panic(expected = "needs a predicted reading time")]
    fn predicted_case_without_predictions_panics() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        let visits = [ProfiledVisit {
            page_idx: 0,
            reading_s: 10.0,
            predicted_s: None,
        }];
        run_profiled_session(&table, &cfg, Case::Predict9, &visits, |_| {});
    }

    /// The fault-tier extension of the bit-identity anchor: replaying a
    /// faulted tier's profiles matches a full browser-pipeline session
    /// whose per-visit fetchers are driven with the same per-key capture
    /// seeds ([`simulate_session_faulted_seeded`]).
    #[test]
    fn tiered_profiled_sessions_match_full_faulted_sessions_to_the_bit() {
        use crate::session::{simulate_session_faulted_seeded, SessionFaults};
        let (corpus, server, cfg) = setup();
        let tiers = [FaultTier::Clean, FaultTier::Lossy10, FaultTier::Jittery10];
        let table = ProfileTable::capture_tiered(&corpus, &server, &cfg, &tiers);
        let plan = [
            ("espn", PageVersion::Full, 2.0),
            ("cnn", PageVersion::Mobile, 6.0),
            ("bbc", PageVersion::Mobile, 30.0),
            ("msn", PageVersion::Mobile, 12.0),
            ("aol", PageVersion::Mobile, 5.0),
            ("ebay", PageVersion::Full, 25.0),
        ];
        let visits: Vec<Visit<'_>> = plan
            .iter()
            .map(|&(key, version, reading_s)| Visit {
                page: corpus.page(key, version).unwrap(),
                reading_s,
                features: None,
            })
            .collect();
        let profiled: Vec<ProfiledVisit> = plan
            .iter()
            .map(|&(key, version, reading_s)| ProfiledVisit {
                page_idx: page_idx(&corpus, key, version),
                reading_s,
                predicted_s: None,
            })
            .collect();

        for tier in [FaultTier::Lossy10, FaultTier::Jittery10] {
            for case in [Case::Original, Case::Accurate9] {
                let opts = ProfiledSessionOpts {
                    tier,
                    ..ProfiledSessionOpts::default()
                };
                let mut click_states = Vec::new();
                let fast = run_profiled_session_with(&table, &cfg, case, opts, &profiled, |v| {
                    click_states.push(v.click_state);
                });
                // The oracle drives each visit's fetcher with the fixed
                // seed of the (page, mode, click-state, tier) key the
                // profiled path replayed.
                let seeds: Vec<u64> = profiled
                    .iter()
                    .zip(&click_states)
                    .map(|(v, &state)| tier.capture_seed(v.page_idx, case.pipeline_mode(), state))
                    .collect();
                let sf = SessionFaults::new(tier.fault_config(), 0);
                let full = simulate_session_faulted_seeded(
                    &server, &visits, case, &cfg, None, &sf, &seeds,
                );
                assert_eq!(
                    fast.total_joules.to_bits(),
                    full.total_joules.to_bits(),
                    "tier {tier}, case {case}: energy must match to the last bit"
                );
                assert_eq!(
                    fast.total_load_time_s.to_bits(),
                    full.total_load_time_s.to_bits(),
                    "tier {tier}, case {case}: load time must match to the last bit"
                );
                assert_eq!(fast.counters, full.counters, "tier {tier}, case {case}");
                assert_eq!(
                    fast.residency,
                    full.radio.residency(),
                    "tier {tier}, case {case}"
                );
                assert_eq!(fast.duration, full.duration, "tier {tier}, case {case}");
            }
        }
    }

    /// A tiered table serves the clean tier unchanged, and a lossy tier
    /// actually changes some loads (otherwise the tier dimension would be
    /// dead weight).
    #[test]
    fn tiered_capture_keeps_the_clean_tier_and_perturbs_the_lossy_one() {
        let (corpus, server, cfg) = setup();
        let clean_only = ProfileTable::capture(&corpus, &server, &cfg);
        let tiered = ProfileTable::capture_tiered(
            &corpus,
            &server,
            &cfg,
            &[FaultTier::Clean, FaultTier::Lossy10],
        );
        assert_eq!(tiered.tiers(), &[FaultTier::Clean, FaultTier::Lossy10]);
        assert!(tiered.has_tier(FaultTier::Lossy10));
        assert!(!tiered.has_tier(FaultTier::Jittery10));

        let mut lossy_differs = false;
        for page_idx in 0..tiered.n_pages() {
            for mode in MODES {
                for state in CLICK_STATES {
                    let a = clean_only.profile(page_idx, mode, state);
                    let b = tiered.profile(page_idx, mode, state);
                    assert_eq!(a.events, b.events, "clean capture must be tier-independent");
                    assert_eq!(a.opened, b.opened);
                    let lossy = tiered.profile_tiered(page_idx, mode, state, FaultTier::Lossy10);
                    lossy_differs |= lossy.events != a.events || lossy.opened != a.opened;
                }
            }
        }
        assert!(
            lossy_differs,
            "a 10% loss tier must change at least one of the 120 loads"
        );
    }

    /// Predictor outage: from the outage visit on, a Predict-N session is
    /// bit-identical to the always-off (intuitive policy) case, and the
    /// degraded visits are counted.
    #[test]
    fn predictor_outage_falls_back_to_the_intuitive_policy() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        let plan = [
            ("espn", PageVersion::Full, 2.0, 15.0),
            ("cnn", PageVersion::Mobile, 12.0, 3.0),
            ("bbc", PageVersion::Mobile, 30.0, 25.0),
            ("msn", PageVersion::Mobile, 6.0, 11.0),
            ("aol", PageVersion::Mobile, 25.0, 14.0),
        ];
        let profiled: Vec<ProfiledVisit> = plan
            .iter()
            .map(|&(key, version, reading_s, predicted_s)| ProfiledVisit {
                page_idx: page_idx(&corpus, key, version),
                reading_s,
                predicted_s: Some(predicted_s),
            })
            .collect();

        // Outage from visit 0 ≡ the intuitive policy for the whole
        // session (same EnergyAware pipeline, release after every load).
        let opts = ProfiledSessionOpts {
            predictor_outage_from: Some(0),
            ..ProfiledSessionOpts::default()
        };
        let degraded =
            run_profiled_session_with(&table, &cfg, Case::Predict9, opts, &profiled, |v| {
                assert!(v.degraded_policy);
                assert_eq!(
                    v.predicted_s, None,
                    "an outage visit consults no prediction"
                );
            });
        let intuitive =
            run_profiled_session(&table, &cfg, Case::EnergyAwareAlwaysOff, &profiled, |v| {
                assert!(!v.degraded_policy, "no outage, no degraded visits");
            });
        assert_eq!(
            degraded.total_joules.to_bits(),
            intuitive.total_joules.to_bits(),
            "full outage must equal the intuitive policy to the last bit"
        );
        assert_eq!(degraded.counters, intuitive.counters);
        assert_eq!(degraded.degraded_policy_visits, plan.len() as u64);
        assert_eq!(intuitive.degraded_policy_visits, 0);

        // Partial outage: only the tail degrades.
        let opts = ProfiledSessionOpts {
            predictor_outage_from: Some(3),
            ..ProfiledSessionOpts::default()
        };
        let mut flags = Vec::new();
        let partial =
            run_profiled_session_with(&table, &cfg, Case::Predict9, opts, &profiled, |v| {
                flags.push(v.degraded_policy);
            });
        assert_eq!(flags, [false, false, false, true, true]);
        assert_eq!(partial.degraded_policy_visits, 2);
    }

    #[test]
    #[should_panic(expected = "was not captured")]
    fn uncaptured_tier_panics() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        table.profile_tiered(0, PipelineMode::Original, RrcState::Idle, FaultTier::Lossy2);
    }

    /// Regression for the plan-capture-key fix: the [`ParallelismPlan`]
    /// is a profile-key dimension. A planned table must (a) serve the
    /// sequential profiles bit-identically to a plain capture, (b) serve
    /// *different* profiles for a parallel plan (the schedule changes
    /// open times and CPU events — a table that ignored the plan would
    /// replay the wrong load), and (c) replay a planned session
    /// bit-identically to the full parallel-pipeline session.
    #[test]
    fn plan_is_part_of_the_profile_key() {
        use crate::session::{simulate_session_planned, Visit};
        let (corpus, server, cfg) = setup();
        let par = ParallelismPlan::new(4, 4, true);
        let plain = ProfileTable::capture(&corpus, &server, &cfg);
        let planned = ProfileTable::capture_planned(
            &corpus,
            &server,
            &cfg,
            &[FaultTier::Clean],
            &[ParallelismPlan::SEQUENTIAL, par],
        );
        assert_eq!(planned.plans(), &[ParallelismPlan::SEQUENTIAL, par]);
        assert!(planned.has_plan(par));
        assert!(!planned.has_plan(ParallelismPlan::new(2, 2, false)));

        let mut parallel_differs = false;
        for page_idx in 0..planned.n_pages() {
            for mode in MODES {
                for state in CLICK_STATES {
                    let a = plain.profile(page_idx, mode, state);
                    let b = planned.profile(page_idx, mode, state);
                    assert_eq!(
                        a.events, b.events,
                        "sequential capture must be plan-independent"
                    );
                    assert_eq!(a.opened, b.opened);
                    let p = planned.profile_planned(page_idx, mode, state, FaultTier::Clean, par);
                    parallel_differs |= p.events != a.events || p.opened != a.opened;
                    assert_eq!(p.bytes, a.bytes, "a plan never changes what is fetched");
                }
            }
        }
        assert!(
            parallel_differs,
            "a 4-thread plan must change at least one of the 120 loads"
        );

        // (c) planned replay ≡ full planned session, to the bit.
        let plan = [
            ("espn", PageVersion::Full, 2.0),
            ("cnn", PageVersion::Mobile, 6.0),
            ("bbc", PageVersion::Mobile, 30.0),
            ("ebay", PageVersion::Full, 12.0),
        ];
        let visits: Vec<Visit<'_>> = plan
            .iter()
            .map(|&(key, version, reading_s)| Visit {
                page: corpus.page(key, version).unwrap(),
                reading_s,
                features: None,
            })
            .collect();
        let profiled: Vec<ProfiledVisit> = plan
            .iter()
            .map(|&(key, version, reading_s)| ProfiledVisit {
                page_idx: page_idx(&corpus, key, version),
                reading_s,
                predicted_s: None,
            })
            .collect();
        for case in [Case::Original, Case::Accurate9] {
            let opts = ProfiledSessionOpts {
                plan: par,
                ..ProfiledSessionOpts::default()
            };
            let fast = run_profiled_session_with(&planned, &cfg, case, opts, &profiled, |_| {});
            let full =
                simulate_session_planned(&server, &visits, case, &cfg, None, None, par, true);
            assert_eq!(
                fast.total_joules.to_bits(),
                full.total_joules.to_bits(),
                "case {case}: planned replay must match the full session to the last bit"
            );
            assert_eq!(fast.counters, full.counters, "case {case}");
            assert_eq!(fast.duration, full.duration, "case {case}");
        }
    }

    #[test]
    #[should_panic(expected = "was not captured")]
    fn uncaptured_plan_panics() {
        let (corpus, server, cfg) = setup();
        let table = ProfileTable::capture(&corpus, &server, &cfg);
        table.profile_planned(
            0,
            PipelineMode::Original,
            RrcState::Idle,
            FaultTier::Clean,
            ParallelismPlan::new(2, 2, false),
        );
    }

    #[test]
    fn planned_capture_seeds_extend_the_legacy_ones() {
        // Sequential plan → the legacy seed, bit for bit.
        for tier in FaultTier::ALL {
            assert_eq!(
                tier.capture_seed_planned(
                    3,
                    PipelineMode::EnergyAware,
                    RrcState::Fach,
                    ParallelismPlan::SEQUENTIAL
                ),
                tier.capture_seed(3, PipelineMode::EnergyAware, RrcState::Fach)
            );
        }
        // Distinct plans → distinct streams.
        let mut seeds = std::collections::HashSet::new();
        for plan in [
            ParallelismPlan::SEQUENTIAL,
            ParallelismPlan::new(2, 2, false),
            ParallelismPlan::new(4, 4, true),
            ParallelismPlan::new(8, 1, false),
        ] {
            assert!(seeds.insert(FaultTier::Lossy10.capture_seed_planned(
                0,
                PipelineMode::Original,
                RrcState::Idle,
                plan
            )));
        }
    }

    #[test]
    fn fault_tier_ids_round_trip() {
        for tier in FaultTier::ALL {
            assert_eq!(FaultTier::from_index(tier.index()), Some(tier));
            assert!(tier.fault_config().validate().is_ok(), "tier {tier}");
        }
        assert_eq!(FaultTier::from_index(200), None);
        // Capture seeds are key-unique (no accidental stream sharing).
        let mut seeds = std::collections::HashSet::new();
        for tier in FaultTier::ALL {
            for page_idx in 0..20 {
                for mode in MODES {
                    for state in CLICK_STATES {
                        assert!(seeds.insert(tier.capture_seed(page_idx, mode, state)));
                    }
                }
            }
        }
    }
}
