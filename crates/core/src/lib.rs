//! # ewb-core — Energy-Aware Web Browsing in 3G Based Smartphones
//!
//! A from-scratch reproduction of Zhao, Zheng & Cao (ICDCS 2013). The
//! paper cuts smartphone web-browsing energy by more than 30 % with two
//! techniques, both implemented here on top of the workspace substrates:
//!
//! 1. **Computation-sequence reorganization** — run every computation
//!    that can generate data transmissions first, batch-fetch everything,
//!    drop the radio, then do the layout work
//!    ([`ewb_browser::pipeline`]).
//! 2. **Reading-time prediction** — a GBRT over ten page features decides
//!    whether the radio should be released to IDLE while the user reads
//!    ([`ewb_traces::ReadingTimePredictor`], applied by Algorithm 2 in
//!    [`session`]).
//!
//! This crate is the integration layer: [`CoreConfig`] bundles the radio,
//! link, CPU-cost, and algorithm parameters; [`cases::Case`] enumerates
//! the paper's Table 6 policies; [`session`] simulates complete browsing
//! sessions (page loads over the 3G radio, reading periods, release
//! decisions, exact energy accounting); and [`experiments`] regenerates
//! every figure and table of the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use ewb_core::cases::Case;
//! use ewb_core::session::{simulate_session, Visit};
//! use ewb_core::CoreConfig;
//! use ewb_webpage::{benchmark_corpus, OriginServer, PageVersion};
//!
//! let corpus = benchmark_corpus(1);
//! let server = OriginServer::from_corpus(&corpus);
//! let espn = corpus.page("espn", PageVersion::Full).unwrap();
//! let cfg = CoreConfig::paper();
//!
//! let visits = vec![Visit { page: espn, reading_s: 25.0, features: None }];
//! let baseline = simulate_session(&server, &visits, Case::Original, &cfg, None);
//! let ours = simulate_session(&server, &visits, Case::Accurate9, &cfg, None);
//! assert!(ours.total_joules < baseline.total_joules);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;

pub mod cases;
pub mod experiments;
pub mod planner;
pub mod profile;
pub mod radio_profile;
pub mod session;

pub use config::{AlgorithmMode, AlgorithmParams, CoreConfig};

// Re-export the substrate crates so downstream users need only ewb-core.
pub use ewb_browser as browser;
pub use ewb_capacity as capacity;
pub use ewb_gbrt as gbrt;
pub use ewb_net as net;
pub use ewb_obs as obs;
pub use ewb_rrc as rrc;
pub use ewb_simcore as simcore;
pub use ewb_traces as traces;
pub use ewb_webpage as webpage;
