//! The paper's Table 6 policy cases.
//!
//! | Case | Description (paper wording) |
//! |---|---|
//! | Original | the stock browser, timers only (the baseline every saving is measured against) |
//! | Original Always-off | "After the webpage is opened by the original web browser" → switch to IDLE |
//! | Energy-aware Always-off | "After the webpage is opened in our approach where the computation sequence is reorganized" |
//! | Accurate-9 | "The reading time in the user trace is longer than Tp = 9 seconds in our approach" |
//! | Predict-9 | "The predicted reading time is longer than Tp = 9 seconds in our approach" |
//! | Accurate-20 | "The reading time in the user trace is longer than Td = 20 seconds in our approach" |
//! | Predict-20 | "The predicted reading time is longer than Td = 20 seconds in our approach" |

use ewb_browser::pipeline::PipelineMode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// When (if ever) the radio is released to IDLE after a page opens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReleasePolicy {
    /// Never release: let T1/T2 do their thing (the original browser).
    Never,
    /// Always release as soon as the page has opened.
    AfterLoad,
    /// Release at `opened + α` if the *actual* reading time exceeds the
    /// threshold (the paper's oracle upper bound, "Accurate-N").
    OracleThreshold {
        /// Release threshold in seconds (Tp or Td).
        threshold_s: f64,
    },
    /// Release at `opened + α` if the *predicted* reading time exceeds
    /// the threshold ("Predict-N").
    PredictedThreshold {
        /// Release threshold in seconds (Tp or Td).
        threshold_s: f64,
    },
}

/// One of the evaluation's seven configurations (the Original baseline
/// plus the six Table 6 cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Case {
    /// Stock browser, no early release — the baseline.
    Original,
    /// Stock browser, release right after every page opens.
    OriginalAlwaysOff,
    /// Reorganized browser, release right after every page opens.
    EnergyAwareAlwaysOff,
    /// Reorganized browser, oracle release at Tp = 9 s (power-driven
    /// upper bound).
    Accurate9,
    /// Reorganized browser, predicted release at Tp = 9 s.
    Predict9,
    /// Reorganized browser, oracle release at Td = 20 s (delay-driven
    /// upper bound).
    Accurate20,
    /// Reorganized browser, predicted release at Td = 20 s.
    Predict20,
}

impl Case {
    /// All six Table 6 cases (excluding the baseline), in figure order.
    pub const TABLE6: [Case; 6] = [
        Case::OriginalAlwaysOff,
        Case::EnergyAwareAlwaysOff,
        Case::Accurate9,
        Case::Predict9,
        Case::Accurate20,
        Case::Predict20,
    ];

    /// The browser pipeline this case runs.
    pub fn pipeline_mode(self) -> PipelineMode {
        match self {
            Case::Original | Case::OriginalAlwaysOff => PipelineMode::Original,
            _ => PipelineMode::EnergyAware,
        }
    }

    /// The release policy this case applies (with the paper's thresholds).
    pub fn release_policy(self) -> ReleasePolicy {
        match self {
            Case::Original => ReleasePolicy::Never,
            Case::OriginalAlwaysOff | Case::EnergyAwareAlwaysOff => ReleasePolicy::AfterLoad,
            Case::Accurate9 => ReleasePolicy::OracleThreshold { threshold_s: 9.0 },
            Case::Predict9 => ReleasePolicy::PredictedThreshold { threshold_s: 9.0 },
            Case::Accurate20 => ReleasePolicy::OracleThreshold { threshold_s: 20.0 },
            Case::Predict20 => ReleasePolicy::PredictedThreshold { threshold_s: 20.0 },
        }
    }

    /// Whether this case consults the trained predictor.
    pub fn needs_predictor(self) -> bool {
        matches!(self, Case::Predict9 | Case::Predict20)
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Case::Original => "Original",
            Case::OriginalAlwaysOff => "Original Always-off",
            Case::EnergyAwareAlwaysOff => "Energy-aware Always-off",
            Case::Accurate9 => "Accurate-9",
            Case::Predict9 => "Predict-9",
            Case::Accurate20 => "Accurate-20",
            Case::Predict20 => "Predict-20",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelines_match_table6() {
        assert_eq!(Case::Original.pipeline_mode(), PipelineMode::Original);
        assert_eq!(
            Case::OriginalAlwaysOff.pipeline_mode(),
            PipelineMode::Original
        );
        for c in [Case::EnergyAwareAlwaysOff, Case::Accurate9, Case::Predict20] {
            assert_eq!(c.pipeline_mode(), PipelineMode::EnergyAware);
        }
    }

    #[test]
    fn policies_carry_the_right_thresholds() {
        assert_eq!(Case::Original.release_policy(), ReleasePolicy::Never);
        assert_eq!(
            Case::Accurate9.release_policy(),
            ReleasePolicy::OracleThreshold { threshold_s: 9.0 }
        );
        assert_eq!(
            Case::Predict20.release_policy(),
            ReleasePolicy::PredictedThreshold { threshold_s: 20.0 }
        );
        assert_eq!(
            Case::EnergyAwareAlwaysOff.release_policy(),
            ReleasePolicy::AfterLoad
        );
    }

    #[test]
    fn predictor_requirement() {
        assert!(Case::Predict9.needs_predictor());
        assert!(Case::Predict20.needs_predictor());
        assert!(!Case::Accurate9.needs_predictor());
        assert!(!Case::Original.needs_predictor());
    }

    #[test]
    fn table6_lists_six_cases_with_names() {
        assert_eq!(Case::TABLE6.len(), 6);
        for c in Case::TABLE6 {
            assert!(!c.to_string().is_empty());
        }
        assert_eq!(Case::Accurate20.to_string(), "Accurate-20");
    }
}
