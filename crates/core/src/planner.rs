//! The learned parallelism controller: a second GBRT (the same
//! [`ewb_gbrt`] trainer the reading-time predictor uses) that picks an
//! intra-page [`ParallelismPlan`] per page from static page features.
//!
//! Parallel pipeline stages finish sooner but burn more cores at once
//! (§`ewb_rrc::MAX_CPU_CORES`), so whether a plan saves energy depends on
//! the page: image-heavy pages amortize the fork overhead across many
//! decode jobs, tiny mobile pages do not. The controller regresses the
//! *energy delta vs the sequential plan* of every candidate plan from
//! [`PlanFeatures`] ⊕ the plan's knobs, then serves
//! `argmin_plan predict(features, plan)` — falling back to the sequential
//! plan unless the predicted saving clears a safety margin. That fallback
//! is what makes the controller **never lose** to always-sequential: it
//! only deviates when the model is confident, and the equivalence tests
//! in `crates/core/tests/golden_parallel.rs` plus the
//! [`experiments::parallel`](crate::experiments::parallel) sweep hold it
//! to that.
//!
//! Training is fully deterministic: [`GbrtParams::default`] uses
//! `subsample = 1.0` (no RNG path) and a fixed seed, candidate plans are
//! enumerated in a fixed order, and ties break toward the earlier
//! candidate — so the learned plan table is a pure function of the corpus
//! and config, pinnable in a golden file.

use crate::cases::Case;
use crate::config::CoreConfig;
use crate::session::{simulate_session_planned, Visit};
use ewb_browser::parallel::ParallelismPlan;
use ewb_browser::{css, html};
use ewb_gbrt::{Dataset, Gbrt, GbrtModel, GbrtParams};
use ewb_webpage::{ObjectKind, OriginServer, Page};
use serde::{Deserialize, Serialize};

/// The candidate plans the controller chooses among: matched decode/style
/// fan-out of 1, 2, 4, or 8 simulated cores, with and without the
/// CSS-scan/HTML-parse overlap. Fixed order — candidate 0 is the
/// sequential plan, and [`PlanChooser::choose`] breaks ties toward lower
/// indices.
pub const CANDIDATE_PLANS: [ParallelismPlan; 8] = [
    ParallelismPlan::SEQUENTIAL,
    ParallelismPlan {
        decode_threads: 1,
        style_threads: 1,
        overlap_css: true,
    },
    ParallelismPlan {
        decode_threads: 2,
        style_threads: 2,
        overlap_css: false,
    },
    ParallelismPlan {
        decode_threads: 2,
        style_threads: 2,
        overlap_css: true,
    },
    ParallelismPlan {
        decode_threads: 4,
        style_threads: 4,
        overlap_css: false,
    },
    ParallelismPlan {
        decode_threads: 4,
        style_threads: 4,
        overlap_css: true,
    },
    ParallelismPlan {
        decode_threads: 8,
        style_threads: 8,
        overlap_css: false,
    },
    ParallelismPlan {
        decode_threads: 8,
        style_threads: 8,
        overlap_css: true,
    },
];

/// Static page features the controller predicts from — everything is
/// computable from the page's objects alone, before any load runs (the
/// browser would know all of these after the transmission phase, in time
/// to schedule the layout phase).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanFeatures {
    /// Total objects on the page.
    pub objects: f64,
    /// Total transfer size, kilobytes.
    pub total_kb: f64,
    /// Image objects — the decode fan-out's job count.
    pub images: f64,
    /// Image bytes, kilobytes — the decode fan-out's work volume.
    pub image_kb: f64,
    /// External CSS objects.
    pub css_objects: f64,
    /// CSS rules across external sheets and inline `<style>` blocks —
    /// the style fan-out's matching workload.
    pub css_rules: f64,
    /// Maximum DOM depth of the root document.
    pub dom_depth: f64,
    /// DOM nodes of the root document — the style fan-out's job count.
    pub dom_nodes: f64,
}

impl PlanFeatures {
    /// Measures a page: parses the root HTML for DOM shape and the CSS
    /// objects (external sheets plus inline `<style>` blocks) for rule
    /// counts, and tallies object counts/bytes by kind.
    ///
    /// # Panics
    ///
    /// Panics if the page has no root object (a corpus generation bug).
    pub fn of_page(page: &Page) -> PlanFeatures {
        let root = page
            .object(page.root_url())
            .unwrap_or_else(|| panic!("page {} has no root object", page.root_url()));
        let parsed = html::parse(&root.body);
        let doc = &parsed.document;
        let dom_depth = doc
            .descendants()
            .iter()
            .map(|&id| doc.ancestors(id).len())
            .max()
            .unwrap_or(0);
        let mut css_rules = 0usize;
        for style in &parsed.inline_styles {
            css_rules += css::parse(style).sheet.rules.len();
        }
        for obj in page.objects() {
            if obj.kind == ObjectKind::Css {
                css_rules += css::parse(&obj.body).sheet.rules.len();
            }
        }
        PlanFeatures {
            objects: page.object_count() as f64,
            total_kb: page.total_bytes() as f64 / 1024.0,
            images: page.count_kind(ObjectKind::Image) as f64,
            image_kb: page.bytes_of_kind(ObjectKind::Image) as f64 / 1024.0,
            css_objects: page.count_kind(ObjectKind::Css) as f64,
            css_rules: css_rules as f64,
            dom_depth: dom_depth as f64,
            dom_nodes: doc.len() as f64,
        }
    }

    /// The regression row of (features, plan): the eight page features
    /// followed by the plan's three knobs.
    pub fn row(&self, plan: ParallelismPlan) -> Vec<f64> {
        vec![
            self.objects,
            self.total_kb,
            self.images,
            self.image_kb,
            self.css_objects,
            self.css_rules,
            self.dom_depth,
            self.dom_nodes,
            plan.decode_threads as f64,
            plan.style_threads as f64,
            f64::from(plan.overlap_css),
        ]
    }
}

/// One training example: a page visited once under one candidate plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanSample {
    /// The page's static features.
    pub features: PlanFeatures,
    /// The plan the visit ran under.
    pub plan: ParallelismPlan,
    /// Session energy of a one-visit session under `plan`, joules.
    pub energy_j: f64,
    /// `energy_j` minus the same visit under the sequential plan — the
    /// regression target. Negative means the plan saves energy.
    pub delta_j: f64,
}

/// Reading time of the one-visit training sessions, seconds. Long enough
/// for the inactivity timers to fully drain, so the delta isolates the
/// load itself.
const TRAIN_READING_S: f64 = 25.0;

/// Default safety margin, joules: the controller only leaves the
/// sequential plan when the predicted saving exceeds this (10 mJ — an
/// order of magnitude above the deltas µs-rounding can fabricate).
pub const DEFAULT_MARGIN_J: f64 = 0.01;

/// The trained per-page plan picker.
#[derive(Debug, Clone)]
pub struct PlanChooser {
    model: GbrtModel,
    margin_j: f64,
}

/// Builds the training set: every corpus page (both versions) × every
/// candidate plan, each as a one-visit session under `case`, with the
/// energy delta vs the sequential plan as the target.
///
/// # Panics
///
/// Panics if the configuration is invalid or `case` needs a predictor.
pub fn training_samples(
    pages: &[&Page],
    server: &OriginServer,
    cfg: &CoreConfig,
    case: Case,
) -> Vec<PlanSample> {
    assert!(
        !case.needs_predictor(),
        "plan training uses predictor-free cases, got {case}"
    );
    let mut samples = Vec::with_capacity(pages.len() * CANDIDATE_PLANS.len());
    for page in pages {
        let features = PlanFeatures::of_page(page);
        let visit = [Visit {
            page,
            reading_s: TRAIN_READING_S,
            features: None,
        }];
        let energy = |plan: ParallelismPlan| {
            simulate_session_planned(server, &visit, case, cfg, None, None, plan, true).total_joules
        };
        let seq_j = energy(ParallelismPlan::SEQUENTIAL);
        for plan in CANDIDATE_PLANS {
            let energy_j = if plan.is_sequential() {
                seq_j
            } else {
                energy(plan)
            };
            samples.push(PlanSample {
                features,
                plan,
                energy_j,
                delta_j: energy_j - seq_j,
            });
        }
    }
    samples
}

impl PlanChooser {
    /// Trains the controller on `samples` with the default margin and the
    /// deterministic [`GbrtParams::default`] (subsample 1.0 — no RNG).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(samples: &[PlanSample]) -> PlanChooser {
        Self::train_with(samples, &GbrtParams::default(), DEFAULT_MARGIN_J)
    }

    /// [`train`](PlanChooser::train) with explicit GBRT parameters and
    /// safety margin.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `margin_j` is negative or
    /// non-finite.
    pub fn train_with(samples: &[PlanSample], params: &GbrtParams, margin_j: f64) -> PlanChooser {
        assert!(
            margin_j.is_finite() && margin_j >= 0.0,
            "margin must be finite and non-negative, got {margin_j}"
        );
        let rows: Vec<Vec<f64>> = samples.iter().map(|s| s.features.row(s.plan)).collect();
        let targets: Vec<f64> = samples.iter().map(|s| s.delta_j).collect();
        let data = Dataset::new(rows, targets)
            .unwrap_or_else(|e| panic!("invalid plan training set: {e:?}"));
        PlanChooser {
            model: Gbrt::fit(&data, params),
            margin_j,
        }
    }

    /// Predicted energy delta (joules, vs sequential) of running a page
    /// with these features under `plan`.
    pub fn predicted_delta_j(&self, features: &PlanFeatures, plan: ParallelismPlan) -> f64 {
        if plan.is_sequential() {
            0.0
        } else {
            self.model.predict(&features.row(plan))
        }
    }

    /// Picks the plan for a page: the candidate with the lowest predicted
    /// energy delta, if that delta beats the sequential plan by more than
    /// the safety margin; the sequential plan otherwise. Ties break
    /// toward the earlier candidate, so the choice is deterministic.
    pub fn choose(&self, features: &PlanFeatures) -> ParallelismPlan {
        let mut best = ParallelismPlan::SEQUENTIAL;
        let mut best_delta = 0.0f64;
        for plan in CANDIDATE_PLANS {
            let delta = self.predicted_delta_j(features, plan);
            if delta < best_delta - f64::EPSILON {
                best = plan;
                best_delta = delta;
            }
        }
        if best_delta < -self.margin_j {
            best
        } else {
            ParallelismPlan::SEQUENTIAL
        }
    }

    /// The safety margin in joules.
    pub fn margin_j(&self) -> f64 {
        self.margin_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewb_webpage::{benchmark_corpus, Corpus, PageVersion};

    fn corpus_pages(corpus: &Corpus) -> Vec<&Page> {
        corpus
            .sites()
            .iter()
            .flat_map(|s| [&s.mobile, &s.full])
            .collect()
    }

    #[test]
    fn candidate_plans_are_valid_unique_and_anchored() {
        assert!(CANDIDATE_PLANS[0].is_sequential());
        for (i, plan) in CANDIDATE_PLANS.iter().enumerate() {
            assert!(plan.validate().is_ok(), "candidate {plan}");
            assert!(
                !CANDIDATE_PLANS[..i].contains(plan),
                "duplicate candidate {plan}"
            );
        }
    }

    #[test]
    fn features_reflect_page_composition() {
        let corpus = benchmark_corpus(1);
        let espn = corpus.page("espn", PageVersion::Full).unwrap();
        let f = PlanFeatures::of_page(espn);
        assert!(f.objects >= 1.0);
        assert!(f.images >= 1.0, "espn full has images");
        assert!(f.dom_depth >= 2.0);
        assert!(f.dom_nodes > f.dom_depth);
        assert_eq!(f.row(ParallelismPlan::SEQUENTIAL).len(), 11);
        // The mobile page is strictly lighter than the full one.
        let m = PlanFeatures::of_page(corpus.page("espn", PageVersion::Mobile).unwrap());
        assert!(m.total_kb < f.total_kb);
    }

    #[test]
    fn trained_controller_never_loses_to_sequential_in_sample() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let pages = corpus_pages(&corpus);
        let samples = training_samples(&pages, &server, &cfg, Case::EnergyAwareAlwaysOff);
        assert_eq!(samples.len(), pages.len() * CANDIDATE_PLANS.len());
        let chooser = PlanChooser::train(&samples);

        let mut parallel_chosen = 0usize;
        for page in &pages {
            let features = PlanFeatures::of_page(page);
            let plan = chooser.choose(&features);
            parallel_chosen += usize::from(!plan.is_sequential());
            // Ground truth: the chosen plan's measured energy never
            // exceeds the sequential plan's on the training corpus.
            let actual = samples
                .iter()
                .find(|s| s.features == features && s.plan == plan)
                .expect("chosen plan is a candidate");
            assert!(
                actual.delta_j <= 0.0,
                "page with {} objects: chosen plan {plan} loses {} J",
                features.objects,
                actual.delta_j
            );
        }
        assert!(
            parallel_chosen > 0,
            "the controller must find at least one page worth parallelizing"
        );
    }

    #[test]
    fn choice_is_deterministic() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let pages = corpus_pages(&corpus);
        let samples = training_samples(&pages, &server, &cfg, Case::EnergyAwareAlwaysOff);
        let a = PlanChooser::train(&samples);
        let b = PlanChooser::train(&samples);
        for page in &pages {
            let f = PlanFeatures::of_page(page);
            assert_eq!(a.choose(&f), b.choose(&f));
            assert_eq!(
                a.predicted_delta_j(&f, CANDIDATE_PLANS[5]).to_bits(),
                b.predicted_delta_j(&f, CANDIDATE_PLANS[5]).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "predictor-free")]
    fn predictor_cases_are_rejected() {
        let corpus = benchmark_corpus(1);
        let server = OriginServer::from_corpus(&corpus);
        let cfg = CoreConfig::paper();
        let pages = corpus_pages(&corpus);
        training_samples(&pages, &server, &cfg, Case::Predict9);
    }
}
