//! Property-based tests for the GBRT implementation.

use ewb_gbrt::{Dataset, Gbrt, GbrtParams, Loss, RegressionTree, TreeParams};
use proptest::prelude::*;

/// Arbitrary small regression problems: 2 features, bounded values.
fn problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    proptest::collection::vec(
        ((-100.0f64..100.0), (-100.0f64..100.0), (-50.0f64..50.0)),
        4..80,
    )
    .prop_map(|triples| {
        let rows = triples.iter().map(|t| vec![t.0, t.1]).collect();
        let ys = triples.iter().map(|t| t.2).collect();
        (rows, ys)
    })
}

proptest! {
    /// A single tree's predictions always lie within the target range
    /// (leaf values are means of target subsets).
    #[test]
    fn tree_predictions_within_target_range((rows, ys) in problem()) {
        let data = Dataset::new(rows.clone(), ys.clone()).unwrap();
        let tree = RegressionTree::fit_dataset(&data, &TreeParams::default());
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for r in &rows {
            let p = tree.predict(r);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    /// Tree training-set SSE never exceeds the constant-mean baseline.
    #[test]
    fn tree_never_worse_than_mean((rows, ys) in problem()) {
        let data = Dataset::new(rows.clone(), ys.clone()).unwrap();
        let tree = RegressionTree::fit_dataset(&data, &TreeParams::default());
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let sse_tree: f64 = rows.iter().zip(&ys).map(|(r, &y)| (tree.predict(r) - y).powi(2)).sum();
        let sse_mean: f64 = ys.iter().map(|&y| (y - mean).powi(2)).sum();
        prop_assert!(sse_tree <= sse_mean + 1e-6);
    }

    /// Trees are binary: node count is exactly 2·leaves − 1.
    #[test]
    fn tree_shape_invariant((rows, ys) in problem(), j in 2usize..16) {
        let data = Dataset::new(rows, ys).unwrap();
        let tree = RegressionTree::fit_dataset(
            &data,
            &TreeParams { max_leaves: j, min_samples_leaf: 1 },
        );
        prop_assert_eq!(tree.n_nodes(), 2 * tree.n_leaves() - 1);
        prop_assert!(tree.n_leaves() <= j);
        prop_assert!(tree.depth() < tree.n_leaves().max(1));
    }

    /// L2 boosting training loss is non-increasing stage over stage for
    /// arbitrary data.
    #[test]
    fn boosting_loss_monotone((rows, ys) in problem()) {
        let data = Dataset::new(rows, ys).unwrap();
        let (_, curve) = Gbrt::fit_traced(
            &data,
            &GbrtParams { n_trees: 15, min_samples_leaf: 1, ..GbrtParams::default() },
        );
        for w in curve.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "{} -> {}", w[0], w[1]);
        }
    }

    /// Model serialization round-trips exactly.
    #[test]
    fn model_roundtrip((rows, ys) in problem(), loss_l1 in any::<bool>()) {
        let data = Dataset::new(rows.clone(), ys).unwrap();
        let loss = if loss_l1 { Loss::AbsoluteError } else { Loss::SquaredError };
        let model = Gbrt::fit(
            &data,
            &GbrtParams { n_trees: 5, loss, min_samples_leaf: 1, ..GbrtParams::default() },
        );
        let restored = ewb_gbrt::GbrtModel::from_json(&model.to_json()).unwrap();
        for r in &rows {
            prop_assert_eq!(model.predict(r), restored.predict(r));
        }
    }

    /// Staged predictions interpolate from F0 to the full model.
    #[test]
    fn staged_prediction_consistency((rows, ys) in problem()) {
        let data = Dataset::new(rows.clone(), ys).unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams { n_trees: 8, min_samples_leaf: 1, ..GbrtParams::default() },
        );
        let x = &rows[0];
        prop_assert_eq!(model.predict_staged(x, 0), model.initial_value());
        prop_assert_eq!(model.predict_staged(x, model.n_trees()), model.predict(x));
    }

    /// The flattened SoA forest predicts bit-identically to the enum
    /// model it was compiled from, for full, staged, and batch paths.
    #[test]
    fn flat_forest_matches_model((rows, ys) in problem(), subsample in prop_oneof![Just(1.0f64), Just(0.7f64)]) {
        let data = Dataset::new(rows.clone(), ys).unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams { n_trees: 12, subsample, min_samples_leaf: 1, ..GbrtParams::default() },
        );
        let flat = ewb_gbrt::FlatForest::from_model(&model);
        for r in &rows {
            prop_assert_eq!(flat.predict(r).to_bits(), model.predict(r).to_bits());
        }
        let m = model.n_trees() / 2;
        prop_assert_eq!(
            flat.predict_staged(&rows[0], m).to_bits(),
            model.predict_staged(&rows[0], m).to_bits()
        );
        let batch = flat.predict_all(&data);
        let reference = model.predict_all(&data);
        for (a, b) in batch.iter().zip(&reference) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Feature importance is a probability vector (or all zeros).
    #[test]
    fn importance_is_normalized((rows, ys) in problem()) {
        let data = Dataset::new(rows, ys).unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams { n_trees: 5, min_samples_leaf: 1, ..GbrtParams::default() },
        );
        let imp = ewb_gbrt::feature_importance(&model);
        prop_assert_eq!(imp.len(), 2);
        prop_assert!(imp.iter().all(|&g| g >= 0.0));
        let total: f64 = imp.iter().sum();
        prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
    }
}
