//! Golden equivalence tests: the pre-sorted fast trainer must reproduce
//! the original (reference) trainer **byte for byte** — same splits,
//! same thresholds, same leaf values, same serialized JSON — across
//! continuous data, tie-heavy discrete data, subsampling, both losses,
//! and min-leaf constraints. Serialized-string comparison is the
//! strictest check available: any ULP drift in a gain computation that
//! flipped a split would change the bytes.

use ewb_gbrt::{Dataset, Gbrt, GbrtParams, Loss, RegressionTree, TreeParams};
use ewb_simcore::Xoshiro256;

/// Continuous features — essentially tie-free.
fn continuous(n: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..5).map(|_| rng.f64()).collect())
        .collect();
    let ys: Vec<f64> = rows
        .iter()
        .map(|x| {
            10.0 * (std::f64::consts::PI * x[0] * x[1]).sin()
                + 20.0 * (x[2] - 0.5).powi(2)
                + 10.0 * x[3]
                + 5.0 * x[4]
        })
        .collect();
    Dataset::new(rows, ys).unwrap()
}

/// Tie-heavy discrete features: few distinct values per column, so every
/// node's scan crosses long runs of equal values — the case where the
/// partitioned arrays' tie order must exactly reproduce the reference
/// trainer's per-node stable re-sort.
fn tie_heavy(n: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            vec![
                (rng.next_u64() % 3) as f64,
                (rng.next_u64() % 5) as f64,
                (rng.next_u64() % 2) as f64,
                (rng.next_u64() % 7) as f64,
            ]
        })
        .collect();
    let ys: Vec<f64> = rows
        .iter()
        .map(|r| r[0] * 3.0 + r[1] * r[2] - r[3] * 0.5 + rng.f64() * 0.3)
        .collect();
    Dataset::new(rows, ys).unwrap()
}

fn assert_models_identical(data: &Dataset, params: &GbrtParams, label: &str) {
    let fast = Gbrt::fit(data, params);
    let reference = Gbrt::fit_reference(data, params);
    assert_eq!(
        fast, reference,
        "{label}: fast and reference models differ structurally"
    );
    assert_eq!(
        fast.to_json(),
        reference.to_json(),
        "{label}: serialized bytes differ"
    );
}

#[test]
fn continuous_data_default_params() {
    let data = continuous(400, 1);
    assert_models_identical(
        &data,
        &GbrtParams {
            n_trees: 40,
            ..GbrtParams::default()
        },
        "continuous/default",
    );
}

#[test]
fn continuous_data_with_subsampling() {
    let data = continuous(300, 2);
    assert_models_identical(
        &data,
        &GbrtParams {
            n_trees: 40,
            subsample: 0.6,
            seed: 17,
            ..GbrtParams::default()
        },
        "continuous/subsample",
    );
}

#[test]
fn tie_heavy_data_default_params() {
    let data = tie_heavy(500, 3);
    assert_models_identical(
        &data,
        &GbrtParams {
            n_trees: 50,
            ..GbrtParams::default()
        },
        "ties/default",
    );
}

#[test]
fn tie_heavy_data_with_subsampling_and_min_leaf() {
    let data = tie_heavy(400, 4);
    assert_models_identical(
        &data,
        &GbrtParams {
            n_trees: 50,
            subsample: 0.55,
            min_samples_leaf: 6,
            seed: 23,
            ..GbrtParams::default()
        },
        "ties/subsample+minleaf",
    );
}

#[test]
fn absolute_loss_matches() {
    let data = continuous(250, 5);
    assert_models_identical(
        &data,
        &GbrtParams {
            n_trees: 30,
            loss: Loss::AbsoluteError,
            ..GbrtParams::default()
        },
        "continuous/l1",
    );
}

#[test]
fn deep_trees_match() {
    let data = tie_heavy(600, 6);
    assert_models_identical(
        &data,
        &GbrtParams {
            n_trees: 20,
            max_leaves: 32,
            ..GbrtParams::default()
        },
        "ties/deep",
    );
}

#[test]
fn single_trees_match_on_shuffled_index_subsets() {
    // Exercises the Some(indices) root path (rank-based filter + tie
    // fix-up) directly at the tree level, with an adversarial incoming
    // order.
    let data = tie_heavy(300, 7);
    let mut rng = Xoshiro256::seed_from_u64(99);
    let mut idx: Vec<usize> = (0..data.len()).collect();
    rng.shuffle(&mut idx);
    idx.truncate(180);
    let params = TreeParams {
        max_leaves: 16,
        min_samples_leaf: 2,
    };
    let residuals: Vec<f64> = data.targets().iter().map(|&y| y - 1.5).collect();
    let fast = RegressionTree::fit(data.rows(), &residuals, &idx, &params);
    let reference = RegressionTree::fit_reference(data.rows(), &residuals, &idx, &params);
    assert_eq!(fast, reference);
    assert_eq!(
        serde_json::to_string(&fast).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
}

/// Regression test for the historical `best_order = order.clone()`
/// hot-loop bug: with strictly increasing targets along one feature,
/// nearly every scan position improves on the last, which used to
/// trigger an `O(n)` clone per position. The fix (record `k`, re-sort
/// once at the end) must leave the chosen partition unchanged.
#[test]
fn monotone_targets_many_improvements_stay_identical() {
    let n = 512;
    let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 4) as f64]).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i as f64).powf(1.3)).collect();
    let data = Dataset::new(rows, ys).unwrap();
    assert_models_identical(
        &data,
        &GbrtParams {
            n_trees: 10,
            max_leaves: 16,
            ..GbrtParams::default()
        },
        "monotone/many-improvements",
    );
    // The first split of a single tree must land at the gain-optimal
    // boundary, not wherever the last improvement happened to be.
    let tree = RegressionTree::fit_dataset(
        &data,
        &TreeParams {
            max_leaves: 2,
            min_samples_leaf: 1,
        },
    );
    assert_eq!(tree.n_leaves(), 2);
    assert_eq!(
        tree.split_gains()[0].0,
        0,
        "must split on the monotone feature"
    );
}
