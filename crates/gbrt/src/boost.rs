//! Gradient boosting (the paper's Algorithm 1, "Regression Tree Boost").
//!
//! ```text
//! F0(x) = median{y}
//! for m in 1..=M:
//!     ỹ_i   = -∂L(y_i, F_{m-1}(x_i)) / ∂F_{m-1}(x_i)       (pseudo-residuals)
//!     {R_jm} = J-terminal-node tree fitted to {ỹ_i, x_i}
//!     γ_jm  = argmin_γ Σ_{x_i ∈ R_jm} L(y_i, F_{m-1}(x_i) + γ)
//!     F_m(x) = F_{m-1}(x) + ν · Σ_j γ_jm · 1(x ∈ R_jm)
//! ```
//!
//! `ν` is the shrinkage (learning rate); the paper's Table 7 measures
//! prediction cost for forests of 1 000–20 000 trees of 8 nodes each.

use crate::data::Dataset;
use crate::flat::FlatForest;
use crate::loss::Loss;
use crate::splitter::{fit_presorted, Presorted};
use crate::tree::{RegressionTree, TreeParams};
use ewb_simcore::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbrtParams {
    /// Number of boosting iterations `M`.
    pub n_trees: usize,
    /// Terminal nodes per tree `J` (paper default: 8).
    pub max_leaves: usize,
    /// Shrinkage `ν` applied to every tree's contribution.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) per iteration;
    /// 1.0 disables subsampling (stochastic gradient boosting otherwise).
    pub subsample: f64,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// The boosting loss.
    pub loss: Loss,
    /// Seed for the subsampling stream.
    pub seed: u64,
}

impl Default for GbrtParams {
    fn default() -> Self {
        GbrtParams {
            n_trees: 200,
            max_leaves: 8,
            learning_rate: 0.1,
            subsample: 1.0,
            min_samples_leaf: 2,
            loss: Loss::SquaredError,
            seed: 0,
        }
    }
}

impl GbrtParams {
    /// Validates the hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_trees == 0 {
            return Err("n_trees must be at least 1".to_string());
        }
        if self.max_leaves < 2 {
            return Err("max_leaves must be at least 2".to_string());
        }
        if !(self.learning_rate.is_finite()
            && self.learning_rate > 0.0
            && self.learning_rate <= 1.0)
        {
            return Err(format!(
                "learning_rate must be in (0,1], got {}",
                self.learning_rate
            ));
        }
        if !(self.subsample.is_finite() && self.subsample > 0.0 && self.subsample <= 1.0) {
            return Err(format!(
                "subsample must be in (0,1], got {}",
                self.subsample
            ));
        }
        Ok(())
    }
}

/// A trained boosted forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbrtModel {
    pub(crate) init: f64,
    pub(crate) trees: Vec<RegressionTree>,
    pub(crate) loss: Loss,
    pub(crate) n_features: usize,
}

/// The trainer. (A unit struct namespace: `Gbrt::fit` mirrors the paper's
/// "Regression Tree Boost" procedure name.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gbrt;

impl Gbrt {
    /// Trains a model on `data` with `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`GbrtParams::validate`].
    pub fn fit(data: &Dataset, params: &GbrtParams) -> GbrtModel {
        Gbrt::fit_traced(data, params).0
    }

    /// Like [`Gbrt::fit`], additionally returning the training loss after
    /// each boosting stage (useful for convergence tests and the ablation
    /// benches).
    ///
    /// Each iteration fits its tree over pre-sorted feature columns
    /// (argsorted once per call, partitioned down each tree), then
    /// resolves every sample's leaf region in a single traversal reused
    /// for both the γ fit and the `F_m` update. Output is bit-identical
    /// to [`Gbrt::fit_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`GbrtParams::validate`].
    pub fn fit_traced(data: &Dataset, params: &GbrtParams) -> (GbrtModel, Vec<f64>) {
        if let Err(e) = params.validate() {
            panic!("invalid GbrtParams: {e}");
        }
        let n = data.len();
        let targets = data.targets();
        let cols = data.columns();
        let pre = Presorted::new(cols, n);
        let init = params.loss.initial_value(targets);
        let mut predictions = vec![init; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut loss_curve = Vec::with_capacity(params.n_trees);
        let mut rng = Xoshiro256::seed_from_u64(params.seed);
        let tree_params = TreeParams {
            max_leaves: params.max_leaves,
            min_samples_leaf: params.min_samples_leaf,
        };

        // Reusable per-iteration buffers: the subsample index list, each
        // sample's leaf region, the region-grouped sample ids (a counting
        // sort over the handful of node ids), and the per-leaf target /
        // prediction scratch handed to the loss.
        let mut indices_buf: Vec<usize> = Vec::with_capacity(n);
        let mut leaf_buf: Vec<u32> = vec![0; n];
        let mut members: Vec<u32> = vec![0; n];
        let mut ys: Vec<f64> = Vec::new();
        let mut fs: Vec<f64> = Vec::new();

        for _ in 0..params.n_trees {
            // Pseudo-residuals under the current model.
            let residuals = params.loss.negative_gradient(targets, &predictions);

            let mut tree = if params.subsample < 1.0 {
                // Stochastic subsample: shuffle the full id list (same RNG
                // stream as ever), keep the first k.
                let k = ((n as f64) * params.subsample).ceil().max(1.0) as usize;
                indices_buf.clear();
                indices_buf.extend(0..n);
                rng.shuffle(&mut indices_buf);
                indices_buf.truncate(k);
                fit_presorted(cols, &pre, &residuals, Some(&indices_buf), &tree_params)
            } else {
                fit_presorted(cols, &pre, &residuals, None, &tree_params)
            };

            // One traversal per sample; the leaf ids drive the γ fit and
            // the prediction update below.
            for (i, leaf) in leaf_buf.iter_mut().enumerate() {
                *leaf = tree.leaf_id(data.row(i)) as u32;
            }

            // Loss-optimal leaf values γ_jm over the *training* samples in
            // each region (all samples, not just the subsample — the
            // regions partition the whole space). Counting sort groups
            // samples by leaf; members stay in sample-id order.
            let n_nodes = tree.n_nodes();
            let mut offsets = vec![0u32; n_nodes + 1];
            for &l in leaf_buf.iter() {
                offsets[l as usize + 1] += 1;
            }
            for i in 0..n_nodes {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets.clone();
            for (i, &l) in leaf_buf.iter().enumerate() {
                members[cursor[l as usize] as usize] = i as u32;
                cursor[l as usize] += 1;
            }
            for leaf in 0..n_nodes {
                let (start, end) = (offsets[leaf] as usize, offsets[leaf + 1] as usize);
                if start == end {
                    continue;
                }
                ys.clear();
                fs.clear();
                for &i in &members[start..end] {
                    ys.push(targets[i as usize]);
                    fs.push(predictions[i as usize]);
                }
                let gamma = params.loss.leaf_value(&ys, &fs);
                tree.set_leaf_value(leaf, gamma * params.learning_rate);
            }

            // F_m = F_{m-1} + ν γ — reusing the cached leaf ids.
            for (i, &l) in leaf_buf.iter().enumerate() {
                predictions[i] += tree.node_leaf_value(l as usize);
            }
            loss_curve.push(params.loss.mean_loss(targets, &predictions));
            trees.push(tree);
        }

        (
            GbrtModel {
                init,
                trees,
                loss: params.loss,
                n_features: data.n_features(),
            },
            loss_curve,
        )
    }

    /// Trains with the original implementation (per-node re-sorting tree
    /// trainer, `HashMap` region map, per-sample tree walks) — see
    /// [`crate::reference`]. Bit-identical to [`Gbrt::fit`] and kept as
    /// the baseline for golden tests and the training benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`GbrtParams::validate`].
    pub fn fit_reference(data: &Dataset, params: &GbrtParams) -> GbrtModel {
        crate::reference::fit_boosted(data, params).0
    }
}

impl GbrtModel {
    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.init + self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Predicts every row of `data`.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// Prediction using only the first `m` trees — the staged model `F_m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the number of trees or `x` has the wrong
    /// width.
    pub fn predict_staged(&self, x: &[f64], m: usize) -> f64 {
        assert!(
            m <= self.trees.len(),
            "stage {m} > {} trees",
            self.trees.len()
        );
        self.init + self.trees[..m].iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// The constant initial model `F0`.
    pub fn initial_value(&self) -> f64 {
        self.init
    }

    /// Number of trees `M`.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The loss the model was trained with.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Read access to the individual trees (for importance analysis).
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Compiles the forest into the flat structure-of-arrays layout for
    /// fast inference (see [`FlatForest`]).
    pub fn flatten(&self) -> FlatForest {
        FlatForest::from_model(self)
    }

    /// Serializes the model to JSON — the paper's "deploy the tree model
    /// to the prediction program" step (§4.3.3).
    ///
    /// # Panics
    ///
    /// Never panics for models produced by [`Gbrt::fit`] (all values are
    /// finite).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("GbrtModel is always serializable")
    }

    /// Deserializes a model from [`GbrtModel::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::rmse;

    /// A nonlinear, interaction-heavy synthetic regression problem.
    fn friedman_like(n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..5).map(|_| rng.f64()).collect();
            let y = 10.0 * (std::f64::consts::PI * x[0] * x[1]).sin()
                + 20.0 * (x[2] - 0.5).powi(2)
                + 10.0 * x[3]
                + 5.0 * x[4];
            rows.push(x);
            ys.push(y);
        }
        Dataset::new(rows, ys).unwrap()
    }

    #[test]
    fn training_loss_is_nonincreasing_for_l2() {
        let data = friedman_like(300, 1);
        let (_, curve) = Gbrt::fit_traced(
            &data,
            &GbrtParams {
                n_trees: 60,
                ..GbrtParams::default()
            },
        );
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss increased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn fits_nonlinear_function_well() {
        let data = friedman_like(500, 2);
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 300,
                learning_rate: 0.1,
                ..GbrtParams::default()
            },
        );
        let err = rmse(&model.predict_all(&data), data.targets());
        let baseline = rmse(&vec![model.initial_value(); data.len()], data.targets());
        assert!(err < baseline * 0.25, "rmse {err} vs baseline {baseline}");
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let data = friedman_like(1200, 3);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let (train, test) = data.split(0.7, &mut rng);
        let model = Gbrt::fit(
            &train,
            &GbrtParams {
                n_trees: 300,
                ..GbrtParams::default()
            },
        );
        let err = rmse(&model.predict_all(&test), test.targets());
        let baseline = rmse(&vec![model.initial_value(); test.len()], test.targets());
        assert!(
            err < baseline * 0.5,
            "test rmse {err} vs baseline {baseline}"
        );
    }

    #[test]
    fn initial_value_is_target_median() {
        let data =
            Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1.0, 100.0, 3.0]).unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 1,
                ..GbrtParams::default()
            },
        );
        assert_eq!(model.initial_value(), 3.0);
    }

    #[test]
    fn staged_prediction_matches_full() {
        let data = friedman_like(200, 4);
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 30,
                ..GbrtParams::default()
            },
        );
        let x = data.row(0);
        assert_eq!(model.predict_staged(x, 30), model.predict(x));
        assert_eq!(model.predict_staged(x, 0), model.initial_value());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = friedman_like(200, 5);
        let p = GbrtParams {
            n_trees: 20,
            subsample: 0.6,
            seed: 11,
            ..GbrtParams::default()
        };
        let a = Gbrt::fit(&data, &p);
        let b = Gbrt::fit(&data, &p);
        assert_eq!(a, b);
        let c = Gbrt::fit(&data, &GbrtParams { seed: 12, ..p });
        assert_ne!(a, c, "different seed should subsample differently");
    }

    #[test]
    fn subsampling_still_converges() {
        let data = friedman_like(400, 6);
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 200,
                subsample: 0.5,
                ..GbrtParams::default()
            },
        );
        let err = rmse(&model.predict_all(&data), data.targets());
        let baseline = rmse(&vec![model.initial_value(); data.len()], data.targets());
        assert!(err < baseline * 0.5, "rmse {err} vs baseline {baseline}");
    }

    #[test]
    fn l1_loss_trains_and_is_robust() {
        let mut data = friedman_like(300, 7);
        // Inject gross outliers.
        let mut rows = data.rows().to_vec();
        let mut ys = data.targets().to_vec();
        for i in 0..10 {
            rows.push(vec![0.5; 5]);
            ys.push(1e4 + i as f64);
        }
        data = Dataset::new(rows, ys).unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 100,
                loss: Loss::AbsoluteError,
                ..GbrtParams::default()
            },
        );
        // Median-based model should stay near the bulk, not the outliers.
        let pred = model.predict(&[0.1, 0.9, 0.3, 0.7, 0.2]);
        assert!(pred < 100.0, "L1 model dragged to outliers: {pred}");
    }

    #[test]
    fn trees_have_at_most_j_leaves() {
        let data = friedman_like(300, 8);
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 10,
                max_leaves: 8,
                ..GbrtParams::default()
            },
        );
        for t in model.trees() {
            assert!(t.n_leaves() <= 8);
        }
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let data = friedman_like(150, 9);
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 15,
                ..GbrtParams::default()
            },
        );
        let restored = GbrtModel::from_json(&model.to_json()).unwrap();
        for i in 0..data.len() {
            assert_eq!(model.predict(data.row(i)), restored.predict(data.row(i)));
        }
        assert!(GbrtModel::from_json("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "invalid GbrtParams")]
    fn rejects_zero_trees() {
        let data = friedman_like(10, 10);
        Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 0,
                ..GbrtParams::default()
            },
        );
    }

    #[test]
    fn params_validation() {
        assert!(GbrtParams::default().validate().is_ok());
        assert!(GbrtParams {
            max_leaves: 1,
            ..GbrtParams::default()
        }
        .validate()
        .is_err());
        assert!(GbrtParams {
            learning_rate: 0.0,
            ..GbrtParams::default()
        }
        .validate()
        .is_err());
        assert!(GbrtParams {
            learning_rate: 2.0,
            ..GbrtParams::default()
        }
        .validate()
        .is_err());
        assert!(GbrtParams {
            subsample: 0.0,
            ..GbrtParams::default()
        }
        .validate()
        .is_err());
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[test]
    fn single_row_dataset_trains_to_a_constant() {
        let data = Dataset::new(vec![vec![1.0, 2.0]], vec![7.0]).unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 5,
                ..GbrtParams::default()
            },
        );
        assert_eq!(model.predict(&[1.0, 2.0]), 7.0);
        assert_eq!(model.predict(&[100.0, -5.0]), 7.0, "no splits possible");
    }

    #[test]
    fn min_samples_leaf_larger_than_data_gives_constant_trees() {
        let data = Dataset::new(
            (0..6).map(|i| vec![i as f64]).collect(),
            (0..6).map(|i| i as f64 * 3.0).collect(),
        )
        .unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 10,
                min_samples_leaf: 10,
                ..GbrtParams::default()
            },
        );
        for t in model.trees() {
            assert_eq!(t.n_leaves(), 1);
        }
        // Prediction = median everywhere.
        assert_eq!(model.predict(&[0.0]), model.predict(&[5.0]));
    }

    #[test]
    fn duplicate_rows_with_conflicting_targets_average_out() {
        let data = Dataset::new(
            vec![vec![1.0]; 10],
            (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect(),
        )
        .unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 50,
                ..GbrtParams::default()
            },
        );
        let p = model.predict(&[1.0]);
        assert!((4.0..6.0).contains(&p), "should settle near the mean: {p}");
    }

    #[test]
    fn extreme_learning_rate_one_still_converges_on_train() {
        let data = Dataset::new(
            (0..50).map(|i| vec![i as f64]).collect(),
            (0..50).map(|i| ((i / 10) * 10) as f64).collect(),
        )
        .unwrap();
        let model = Gbrt::fit(
            &data,
            &GbrtParams {
                n_trees: 30,
                learning_rate: 1.0,
                ..GbrtParams::default()
            },
        );
        let err = crate::eval::rmse(&model.predict_all(&data), data.targets());
        assert!(err < 1.0, "rmse {err}");
    }
}
