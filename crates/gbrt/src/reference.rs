//! The original per-node re-sorting trainer, retained verbatim as the
//! behavioral reference for the pre-sorted fast path
//! ([`crate::splitter`]).
//!
//! [`RegressionTree::fit_reference`](crate::RegressionTree::fit_reference)
//! and [`Gbrt::fit_reference`](crate::Gbrt::fit_reference) run this
//! code; the golden tests assert the fast path serializes to the same
//! bytes, and the training benchmark measures the speedup against it.
//!
//! One change from the original: `best_split` used to clone the full
//! sorted index array on **every** improving candidate (`best_order =
//! order.clone()` inside the scan loop — up to `O(n)` clones of `O(n)`
//! data per feature). It now records only the winning `(feature, k)` and
//! re-sorts once at the end; a stable re-sort by the winning feature
//! reproduces the clone's contents exactly, so the output is unchanged.

use crate::data::Dataset;
use crate::tree::{Node, RegressionTree, TreeParams};
use crate::{GbrtModel, GbrtParams};
use ewb_simcore::Xoshiro256;
use std::collections::BTreeMap;

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    left: Vec<usize>,
    right: Vec<usize>,
}

/// A grown-but-unexpanded leaf awaiting possible splitting.
struct Candidate {
    node: usize,
    split: BestSplit,
}

/// The original tree trainer: per-node, per-feature stable re-sort.
pub(crate) fn fit_tree(
    rows: &[Vec<f64>],
    targets: &[f64],
    indices: &[usize],
    params: &TreeParams,
) -> RegressionTree {
    assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
    assert!(params.max_leaves >= 1, "max_leaves must be at least 1");
    assert_eq!(rows.len(), targets.len(), "rows/targets length mismatch");
    let n_features = rows.first().map_or(0, |r| r.len());

    let root_value = region_mean(targets, indices);
    let mut tree = RegressionTree {
        nodes: vec![Node::Leaf { value: root_value }],
        n_features,
        split_gains: Vec::new(),
    };
    let mut leaves = 1usize;
    let mut candidates: Vec<Candidate> = Vec::new();
    if let Some(split) = best_split(rows, targets, indices, params.min_samples_leaf) {
        candidates.push(Candidate { node: 0, split });
    }

    while leaves < params.max_leaves && !candidates.is_empty() {
        // Deterministic arg-max: largest gain, ties to the earliest
        // node (stable regardless of float noise in unrelated splits).
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate() {
            if c.split.gain > candidates[best].split.gain {
                best = i;
            }
        }
        let Candidate { node, split } = candidates.swap_remove(best);

        let left_value = region_mean(targets, &split.left);
        let right_value = region_mean(targets, &split.right);
        let left_id = tree.nodes.len();
        tree.nodes.push(Node::Leaf { value: left_value });
        let right_id = tree.nodes.len();
        tree.nodes.push(Node::Leaf { value: right_value });
        tree.nodes[node] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: left_id,
            right: right_id,
        };
        tree.split_gains.push((split.feature, split.gain));
        leaves += 1;

        for (child, idx) in [(left_id, split.left), (right_id, split.right)] {
            if let Some(s) = best_split(rows, targets, &idx, params.min_samples_leaf) {
                candidates.push(Candidate {
                    node: child,
                    split: s,
                });
            }
        }
    }
    tree
}

fn region_mean(targets: &[f64], indices: &[usize]) -> f64 {
    indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64
}

/// Finds the squared-error-optimal split of `indices`, or `None` when no
/// split has positive gain (e.g. constant targets or too few samples).
fn best_split(
    rows: &[Vec<f64>],
    targets: &[f64],
    indices: &[usize],
    min_leaf: usize,
) -> Option<BestSplit> {
    let n = indices.len();
    if n < 2 * min_leaf.max(1) {
        return None;
    }
    let n_features = rows[indices[0]].len();
    let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
    let parent_score = total_sum * total_sum / n as f64;

    let mut best: Option<(usize, f64, f64, usize)> = None; // (feature, threshold, gain, sorted_split_pos)

    let mut order: Vec<usize> = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // `feature` is a real feature index, not a rows iterator
    for feature in 0..n_features {
        order.clear();
        order.extend_from_slice(indices);
        order.sort_by(|&a, &b| {
            rows[a][feature]
                .partial_cmp(&rows[b][feature])
                .expect("finite feature values")
        });
        // Scan split positions: left = order[..k], right = order[k..].
        let mut left_sum = 0.0;
        for k in 1..n {
            left_sum += targets[order[k - 1]];
            // Cannot split between equal feature values.
            if rows[order[k - 1]][feature] == rows[order[k]][feature] {
                continue;
            }
            if k < min_leaf || n - k < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let score = left_sum * left_sum / k as f64 + right_sum * right_sum / (n - k) as f64;
            let gain = score - parent_score;
            if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.2) {
                let threshold = 0.5 * (rows[order[k - 1]][feature] + rows[order[k]][feature]);
                best = Some((feature, threshold, gain, k));
            }
        }
    }

    best.map(|(feature, threshold, gain, k)| {
        // One stable re-sort by the winning feature reconstructs the
        // order the scan saw when it recorded this candidate.
        order.clear();
        order.extend_from_slice(indices);
        order.sort_by(|&a, &b| {
            rows[a][feature]
                .partial_cmp(&rows[b][feature])
                .expect("finite feature values")
        });
        BestSplit {
            feature,
            threshold,
            gain,
            left: order[..k].to_vec(),
            right: order[k..].to_vec(),
        }
    })
}

/// The original boosting loop: re-derives every sample's leaf region
/// twice per iteration (once through a `BTreeMap` for the γ fit, once for
/// the prediction update) and clones the full index list each round.
pub(crate) fn fit_boosted(data: &Dataset, params: &GbrtParams) -> (GbrtModel, Vec<f64>) {
    if let Err(e) = params.validate() {
        panic!("invalid GbrtParams: {e}");
    }
    let n = data.len();
    let targets = data.targets();
    let init = params.loss.initial_value(targets);
    let mut predictions = vec![init; n];
    let mut trees = Vec::with_capacity(params.n_trees);
    let mut loss_curve = Vec::with_capacity(params.n_trees);
    let mut rng = Xoshiro256::seed_from_u64(params.seed);
    let tree_params = TreeParams {
        max_leaves: params.max_leaves,
        min_samples_leaf: params.min_samples_leaf,
    };

    let all_indices: Vec<usize> = (0..n).collect();
    for _ in 0..params.n_trees {
        // Pseudo-residuals under the current model.
        let residuals = params.loss.negative_gradient(targets, &predictions);

        // Optional stochastic subsample.
        let indices: Vec<usize> = if params.subsample < 1.0 {
            let k = ((n as f64) * params.subsample).ceil().max(1.0) as usize;
            let mut shuffled = all_indices.clone();
            rng.shuffle(&mut shuffled);
            shuffled.truncate(k);
            shuffled
        } else {
            all_indices.clone()
        };

        let mut tree = fit_tree(data.rows(), &residuals, &indices, &tree_params);

        // Loss-optimal leaf values γ_jm over the *training* samples in
        // each region (all samples, not just the subsample — the
        // regions partition the whole space).
        // Sorted by leaf id: per-leaf γ fits are independent, but the
        // trained model is serialized, so even visit order stays
        // deterministic by construction.
        let mut regions: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &i in &all_indices {
            regions
                .entry(tree.leaf_id(data.row(i)))
                .or_default()
                .push(i);
        }
        for (leaf, members) in &regions {
            let ys: Vec<f64> = members.iter().map(|&i| targets[i]).collect();
            let fs: Vec<f64> = members.iter().map(|&i| predictions[i]).collect();
            let gamma = params.loss.leaf_value(&ys, &fs);
            tree.set_leaf_value(*leaf, gamma * params.learning_rate);
        }

        // F_m = F_{m-1} + ν γ.
        for &i in &all_indices {
            predictions[i] += tree.predict(data.row(i));
        }
        loss_curve.push(params.loss.mean_loss(targets, &predictions));
        trees.push(tree);
    }

    (
        GbrtModel {
            init,
            trees,
            loss: params.loss,
            n_features: data.n_features(),
        },
        loss_curve,
    )
}
