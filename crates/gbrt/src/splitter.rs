//! Pre-sorted exact-greedy training — the fast path behind
//! [`RegressionTree::fit`](crate::RegressionTree::fit).
//!
//! The reference trainer ([`crate::reference`]) re-sorts every feature at
//! every node (`O(F · n log n)` per node) and, historically, cloned the
//! full index array for every improving split candidate. This module
//! instead argsorts each feature **once** per boosting run
//! ([`Presorted`]) and maintains per-node per-feature index arrays by
//! stable partition as the tree grows — `O(F · n)` per split — the
//! "exact greedy" layout popularized by XGBoost. Large nodes fan the
//! per-feature scan over scoped threads with a deterministic reduce.
//!
//! # Bit-identical results
//!
//! The reference scan visits a node's samples sorted by feature value
//! with ties in *incoming order* — the order the node's sample list was
//! passed in: the parent's winning-feature sort order, or the caller's
//! index list at the root. Floating-point accumulation makes that
//! summation order observable (ULP differences in gains can flip
//! splits), so the partitioned arrays must reproduce it exactly. Two
//! invariants guarantee that:
//!
//! 1. a child's incoming order is the winning feature's sorted array
//!    restricted to that side (exactly the slice the reference passes
//!    down), and
//! 2. every other feature array is rebuilt by a counting sort of the
//!    child's incoming order keyed on value runs ([`scatter_by_run`]) —
//!    value-ascending with ties in incoming order, exactly what a stable
//!    per-node re-sort would have produced, in linear time even on
//!    heavily tied (discrete) features.
//!
//! With those invariants every prefix sum, gain, threshold, and leaf
//! mean is computed over the exact float sequence the reference trainer
//! uses, so the grown trees match it bit for bit. The cross-feature
//! reduce keeps the reference's tie-breaking: strictly greater gain
//! wins, so exact ties go to the lowest feature index and, within a
//! feature, the earliest split position.

use crate::tree::{Node, RegressionTree, TreeParams};

/// Work threshold (node samples × features) above which the per-feature
/// scan fans out over scoped threads. Below it, thread spawn overhead
/// outweighs the scan.
const PARALLEL_WORK_THRESHOLD: usize = 1 << 16;

/// Per-feature argsort of a column matrix: `sorted[f]` lists every
/// sample id ascending by `cols[f]`, ties in id order. Computed once and
/// shared across all trees of a boosting run.
pub(crate) struct Presorted {
    sorted: Vec<Vec<u32>>,
    n_samples: usize,
}

impl Presorted {
    /// Argsorts every column. `n_samples` covers the case of a dataset
    /// with zero features, where `cols` is empty.
    pub(crate) fn new(cols: &[Vec<f64>], n_samples: usize) -> Self {
        assert!(
            n_samples < u32::MAX as usize,
            "sample count exceeds u32 index space"
        );
        let sorted = cols
            .iter()
            .map(|col| {
                let mut idx: Vec<u32> = (0..n_samples as u32).collect();
                idx.sort_by(|&a, &b| {
                    col[a as usize]
                        .partial_cmp(&col[b as usize])
                        .expect("finite feature values")
                });
                idx
            })
            .collect();
        Presorted { sorted, n_samples }
    }
}

/// One growable node's training state: its sample list in incoming order
/// plus per-feature sorted views of the same samples.
struct NodeArrays {
    /// Samples in incoming order (the order the reference trainer's
    /// index slice would arrive in): the caller's list at the root, the
    /// parent's winning-feature order restricted to this side below.
    order: Vec<u32>,
    /// `sorted[f]`: this node's samples ascending by feature `f`, ties
    /// in incoming order.
    sorted: Vec<Vec<u32>>,
}

/// A found split: the boundary sits between positions `k-1` and `k` of
/// `sorted[feature]`.
struct Split {
    feature: usize,
    threshold: f64,
    gain: f64,
    k: usize,
}

/// A grown-but-unexpanded leaf awaiting possible splitting.
struct Candidate {
    node: usize,
    arrays: NodeArrays,
    split: Split,
}

/// Reusable whole-dataset scratch, indexed by sample id (`run`) or by
/// value-run id (`counts`). `run` entries are only read for ids labeled
/// in the same step, so it needs no clearing; `counts` is resized and
/// zeroed per use.
struct Scratch {
    run: Vec<u32>,
    counts: Vec<u32>,
}

/// Labels each sample of a sorted-by-value array with its value-run id
/// (consecutive equal values share a run; runs are numbered ascending by
/// value). Returns the run count.
fn label_runs(col: &[f64], sorted: &[u32], run: &mut [u32]) -> usize {
    let mut id = 0u32;
    let mut prev = col[sorted[0] as usize];
    for &s in sorted {
        let v = col[s as usize];
        if v != prev {
            id += 1;
            prev = v;
        }
        run[s as usize] = id;
    }
    id as usize + 1
}

/// Stable counting sort of `order` by run label: the result lists
/// `order`'s samples ascending by feature value with ties in `order`
/// order — exactly the sorted-array invariant a child node needs, in
/// `O(n + runs)` with no comparisons.
fn scatter_by_run(order: &[u32], run: &[u32], counts: &mut Vec<u32>, n_runs: usize) -> Vec<u32> {
    counts.clear();
    counts.resize(n_runs, 0);
    for &id in order {
        counts[run[id as usize] as usize] += 1;
    }
    let mut acc = 0u32;
    for c in counts.iter_mut() {
        let k = *c;
        *c = acc;
        acc += k;
    }
    let mut out = vec![0u32; order.len()];
    for &id in order {
        let r = run[id as usize] as usize;
        out[counts[r] as usize] = id;
        counts[r] += 1;
    }
    out
}

fn mean(targets: &[f64], order: &[u32]) -> f64 {
    order.iter().map(|&i| targets[i as usize]).sum::<f64>() / order.len() as f64
}

/// Scans one feature's sorted array for the best split boundary.
/// Returns `(gain, k)` of the first position achieving the feature's
/// maximum gain, or `None` when no boundary clears the gain floor.
///
/// The prefix-sum sequence is identical to the reference trainer's scan
/// of its per-node re-sorted array (see module docs), so gains match it
/// bit for bit.
fn scan_feature(
    col: &[f64],
    sorted: &[u32],
    targets: &[f64],
    total_sum: f64,
    parent_score: f64,
    min_leaf: usize,
) -> Option<(f64, usize)> {
    let n = sorted.len();
    let mut left_sum = 0.0;
    let mut best: Option<(f64, usize)> = None;
    let mut prev = col[sorted[0] as usize];
    for k in 1..n {
        left_sum += targets[sorted[k - 1] as usize];
        let cur = col[sorted[k] as usize];
        // Cannot split between equal feature values.
        if prev == cur {
            continue;
        }
        prev = cur;
        if k < min_leaf || n - k < min_leaf {
            continue;
        }
        let right_sum = total_sum - left_sum;
        let score = left_sum * left_sum / k as f64 + right_sum * right_sum / (n - k) as f64;
        let gain = score - parent_score;
        if gain > 1e-12 && best.is_none_or(|b| gain > b.0) {
            best = Some((gain, k));
        }
    }
    best
}

/// Finds the squared-error-optimal split of a node, or `None` when no
/// split has positive gain. Fans features over scoped threads when the
/// node is large; the reduce is deterministic (highest gain wins, exact
/// ties to the lowest feature index) so the gate never changes results.
fn best_split(
    cols: &[Vec<f64>],
    targets: &[f64],
    arrays: &NodeArrays,
    min_leaf: usize,
) -> Option<Split> {
    let n = arrays.order.len();
    if n < 2 * min_leaf.max(1) {
        return None;
    }
    let n_features = cols.len();
    let total_sum: f64 = arrays.order.iter().map(|&i| targets[i as usize]).sum();
    let parent_score = total_sum * total_sum / n as f64;

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n_features);
    let per_feature: Vec<Option<(f64, usize)>> =
        if workers > 1 && n * n_features >= PARALLEL_WORK_THRESHOLD {
            let chunk = n_features.div_ceil(workers);
            let sorted = &arrays.sorted;
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = (0..n_features)
                    .step_by(chunk)
                    .map(|start| {
                        let end = (start + chunk).min(n_features);
                        s.spawn(move |_| {
                            (start..end)
                                .map(|f| {
                                    scan_feature(
                                        &cols[f],
                                        &sorted[f],
                                        targets,
                                        total_sum,
                                        parent_score,
                                        min_leaf,
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Join in spawn order: results land in feature order.
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("feature scan worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope")
        } else {
            (0..n_features)
                .map(|f| {
                    scan_feature(
                        &cols[f],
                        &arrays.sorted[f],
                        targets,
                        total_sum,
                        parent_score,
                        min_leaf,
                    )
                })
                .collect()
        };

    let mut best: Option<(usize, f64, usize)> = None;
    for (f, cand) in per_feature.iter().enumerate() {
        if let Some((gain, k)) = *cand {
            if best.is_none_or(|b| gain > b.1) {
                best = Some((f, gain, k));
            }
        }
    }
    best.map(|(feature, gain, k)| {
        let s = &arrays.sorted[feature];
        let threshold = 0.5 * (cols[feature][s[k - 1] as usize] + cols[feature][s[k] as usize]);
        Split {
            feature,
            threshold,
            gain,
            k,
        }
    })
}

/// Splits a node's arrays into its two children. The winning feature's
/// two halves are each child's incoming order; every other feature array
/// is rebuilt by a run-labeled counting sort of that order, which yields
/// value-ascending arrays with ties in incoming order (the invariant the
/// reference trainer's per-node stable re-sort produces) in `O(F · n)`
/// with no comparison sorts.
fn partition(
    arrays: NodeArrays,
    split: &Split,
    cols: &[Vec<f64>],
    scratch: &mut Scratch,
) -> (NodeArrays, NodeArrays) {
    let winner = &arrays.sorted[split.feature];
    let (left_ids, right_ids) = winner.split_at(split.k);
    let left_order = left_ids.to_vec();
    let right_order = right_ids.to_vec();

    let mut left_sorted = Vec::with_capacity(cols.len());
    let mut right_sorted = Vec::with_capacity(cols.len());
    for (f, arr) in arrays.sorted.iter().enumerate() {
        if f == split.feature {
            // The winning feature's partition IS each child's incoming
            // order: already sorted with ties in its own order.
            left_sorted.push(left_order.clone());
            right_sorted.push(right_order.clone());
            continue;
        }
        let n_runs = label_runs(&cols[f], arr, &mut scratch.run);
        left_sorted.push(scatter_by_run(
            &left_order,
            &scratch.run,
            &mut scratch.counts,
            n_runs,
        ));
        right_sorted.push(scatter_by_run(
            &right_order,
            &scratch.run,
            &mut scratch.counts,
            n_runs,
        ));
    }
    (
        NodeArrays {
            order: left_order,
            sorted: left_sorted,
        },
        NodeArrays {
            order: right_order,
            sorted: right_sorted,
        },
    )
}

/// Grows one best-first tree over pre-sorted columns.
///
/// `indices: None` trains on all samples in id order (the common
/// no-subsample case — the root reuses `pre`'s arrays directly).
/// `indices: Some(list)` trains on that subset in that order; the list's
/// entries must be distinct and in bounds.
pub(crate) fn fit_presorted(
    cols: &[Vec<f64>],
    pre: &Presorted,
    targets: &[f64],
    indices: Option<&[usize]>,
    params: &TreeParams,
) -> RegressionTree {
    assert!(params.max_leaves >= 1, "max_leaves must be at least 1");
    let n_samples = pre.n_samples;
    let mut scratch = Scratch {
        run: vec![0; n_samples],
        counts: Vec::new(),
    };
    let root = match indices {
        None => NodeArrays {
            order: (0..n_samples as u32).collect(),
            sorted: pre.sorted.clone(),
        },
        Some(idx) => {
            assert!(!idx.is_empty(), "cannot fit a tree on zero samples");
            let mut seen = vec![false; n_samples];
            let order: Vec<u32> = idx
                .iter()
                .map(|&i| {
                    assert!(i < n_samples, "sample index {i} out of bounds");
                    assert!(!seen[i], "duplicate sample index {i}");
                    seen[i] = true;
                    i as u32
                })
                .collect();
            let sorted = pre
                .sorted
                .iter()
                .enumerate()
                .map(|(f, arr)| {
                    let n_runs = label_runs(&cols[f], arr, &mut scratch.run);
                    scatter_by_run(&order, &scratch.run, &mut scratch.counts, n_runs)
                })
                .collect();
            NodeArrays { order, sorted }
        }
    };
    assert!(!root.order.is_empty(), "cannot fit a tree on zero samples");

    let root_value = mean(targets, &root.order);
    let mut tree = RegressionTree {
        nodes: vec![Node::Leaf { value: root_value }],
        n_features: cols.len(),
        split_gains: Vec::new(),
    };
    let mut leaves = 1usize;
    let mut candidates: Vec<Candidate> = Vec::new();
    if let Some(split) = best_split(cols, targets, &root, params.min_samples_leaf) {
        candidates.push(Candidate {
            node: 0,
            arrays: root,
            split,
        });
    }

    while leaves < params.max_leaves && !candidates.is_empty() {
        // Deterministic arg-max: largest gain, ties to the earliest
        // candidate (same policy as the reference trainer).
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate() {
            if c.split.gain > candidates[best].split.gain {
                best = i;
            }
        }
        let Candidate {
            node,
            arrays,
            split,
        } = candidates.swap_remove(best);
        let (left_arrays, right_arrays) = partition(arrays, &split, cols, &mut scratch);

        let left_value = mean(targets, &left_arrays.order);
        let right_value = mean(targets, &right_arrays.order);
        let left_id = tree.nodes.len();
        tree.nodes.push(Node::Leaf { value: left_value });
        let right_id = tree.nodes.len();
        tree.nodes.push(Node::Leaf { value: right_value });
        tree.nodes[node] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: left_id,
            right: right_id,
        };
        tree.split_gains.push((split.feature, split.gain));
        leaves += 1;

        for (child, arr) in [(left_id, left_arrays), (right_id, right_arrays)] {
            if let Some(s) = best_split(cols, targets, &arr, params.min_samples_leaf) {
                candidates.push(Candidate {
                    node: child,
                    arrays: arr,
                    split: s,
                });
            }
        }
    }
    tree
}
