//! Validated training data.

use ewb_simcore::Xoshiro256;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Errors produced when constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// No rows were supplied.
    Empty,
    /// A row's width differs from the first row's width.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Expected number of features.
        expected: usize,
        /// Actual number of features.
        actual: usize,
    },
    /// The number of targets differs from the number of rows.
    TargetMismatch {
        /// Number of rows.
        rows: usize,
        /// Number of targets.
        targets: usize,
    },
    /// A feature value or target is NaN or infinite.
    NonFinite {
        /// Row index of the offending value.
        row: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset has no rows"),
            DatasetError::RaggedRow {
                row,
                expected,
                actual,
            } => write!(f, "row {row} has {actual} features, expected {expected}"),
            DatasetError::TargetMismatch { rows, targets } => {
                write!(f, "{rows} rows but {targets} targets")
            }
            DatasetError::NonFinite { row } => {
                write!(f, "row {row} contains a non-finite value")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A feature matrix plus regression targets.
///
/// Rows are samples; all rows have the same width. Values must be finite
/// (trees split on comparisons, and NaN comparisons silently send every
/// sample one way).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
    n_features: usize,
    /// Column-major copy of `rows`, built on first use. The trainer scans
    /// one feature at a time; column access through `rows` strides across
    /// every row allocation, while a column copy is a contiguous read.
    #[serde(skip)]
    columns: OnceLock<Vec<Vec<f64>>>,
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        // `columns` is derived data; identity is rows + targets.
        self.rows == other.rows
            && self.targets == other.targets
            && self.n_features == other.n_features
    }
}

impl Dataset {
    /// Builds a dataset, validating shape and finiteness.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] describing the first problem found.
    pub fn new(rows: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != targets.len() {
            return Err(DatasetError::TargetMismatch {
                rows: rows.len(),
                targets: targets.len(),
            });
        }
        let n_features = rows[0].len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_features {
                return Err(DatasetError::RaggedRow {
                    row: i,
                    expected: n_features,
                    actual: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) || !targets[i].is_finite() {
                return Err(DatasetError::NonFinite { row: i });
            }
        }
        Ok(Dataset {
            rows,
            targets,
            n_features,
            columns: OnceLock::new(),
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// All regression targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// The feature matrix in column-major form: `columns()[f][i]` is
    /// feature `f` of sample `i`. Built lazily and cached (also after
    /// deserialization, where the cache starts empty).
    pub fn columns(&self) -> &[Vec<f64>] {
        self.columns.get_or_init(|| {
            (0..self.n_features)
                .map(|f| self.rows.iter().map(|r| r[f]).collect())
                .collect()
        })
    }

    /// Splits into `(train, test)` with `train_fraction` of the rows in
    /// the training set, shuffled by `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)` or either side would
    /// be empty.
    pub fn split(&self, train_fraction: f64, rng: &mut Xoshiro256) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
            "train_fraction must be in (0,1), got {train_fraction}"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut indices);
        let n_train = ((self.len() as f64) * train_fraction).round() as usize;
        assert!(
            n_train >= 1 && n_train < self.len(),
            "split of {} rows at {train_fraction} leaves an empty side",
            self.len()
        );
        let take = |idx: &[usize]| Dataset {
            rows: idx.iter().map(|&i| self.rows[i].clone()).collect(),
            targets: idx.iter().map(|&i| self.targets[i]).collect(),
            n_features: self.n_features,
            columns: OnceLock::new(),
        };
        (take(&indices[..n_train]), take(&indices[n_train..]))
    }

    /// A new dataset containing only the rows where `keep` returns true
    /// for the target, or `None` if nothing survives. Used for the paper's
    /// interest-threshold filtering (§4.3.4: exclude dwell < α from
    /// training).
    pub fn filter_by_target<F: Fn(f64) -> bool>(&self, keep: F) -> Option<Dataset> {
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for (row, &y) in self.rows.iter().zip(&self.targets) {
            if keep(y) {
                rows.push(row.clone());
                targets.push(y);
            }
        }
        if rows.is_empty() {
            None
        } else {
            Some(Dataset {
                rows,
                targets,
                n_features: self.n_features,
                columns: OnceLock::new(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(
            vec![
                vec![1.0, 2.0],
                vec![3.0, 4.0],
                vec![5.0, 6.0],
                vec![7.0, 8.0],
            ],
            vec![10.0, 20.0, 30.0, 40.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = small();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.targets()[2], 30.0);
        assert!(!d.is_empty());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Dataset::new(vec![], vec![]), Err(DatasetError::Empty));
    }

    #[test]
    fn rejects_ragged() {
        let err = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]).unwrap_err();
        assert_eq!(
            err,
            DatasetError::RaggedRow {
                row: 1,
                expected: 1,
                actual: 2
            }
        );
        assert!(err.to_string().contains("row 1"));
    }

    #[test]
    fn rejects_target_mismatch() {
        let err = Dataset::new(vec![vec![1.0]], vec![0.0, 1.0]).unwrap_err();
        assert_eq!(
            err,
            DatasetError::TargetMismatch {
                rows: 1,
                targets: 2
            }
        );
    }

    #[test]
    fn rejects_non_finite() {
        let err = Dataset::new(vec![vec![f64::NAN]], vec![0.0]).unwrap_err();
        assert_eq!(err, DatasetError::NonFinite { row: 0 });
        let err = Dataset::new(vec![vec![1.0]], vec![f64::INFINITY]).unwrap_err();
        assert_eq!(err, DatasetError::NonFinite { row: 0 });
    }

    #[test]
    fn columns_transpose_rows() {
        let d = small();
        assert_eq!(
            d.columns(),
            &[vec![1.0, 3.0, 5.0, 7.0], vec![2.0, 4.0, 6.0, 8.0]]
        );
        // Derived views survive cloning and splitting.
        let (train, _) = d.split(0.5, &mut Xoshiro256::seed_from_u64(3));
        assert_eq!(train.columns().len(), 2);
        assert_eq!(train.columns()[0].len(), train.len());
    }

    #[test]
    fn split_partitions_rows() {
        let d = small();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let (train, test) = d.split(0.5, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.n_features(), 2);
        // Every original target appears exactly once across the split.
        let mut all: Vec<f64> = train
            .targets()
            .iter()
            .chain(test.targets())
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = small();
        let (a, _) = d.split(0.5, &mut Xoshiro256::seed_from_u64(7));
        let (b, _) = d.split(0.5, &mut Xoshiro256::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn filter_by_target() {
        let d = small();
        let kept = d.filter_by_target(|y| y > 15.0).unwrap();
        assert_eq!(kept.len(), 3);
        assert!(d.filter_by_target(|y| y > 100.0).is_none());
    }
}
