//! Model evaluation helpers.
//!
//! [`threshold_accuracy`] implements the paper's §5.6.1 accuracy metric:
//! "If the predicted reading time and the real reading time are both larger
//! or smaller than a given value (Td or Tp), the prediction is correct."

/// Root-mean-squared error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty evaluation");
    let n = predictions.len() as f64;
    (predictions
        .iter()
        .zip(targets)
        .map(|(&p, &y)| (p - y).powi(2))
        .sum::<f64>()
        / n)
        .sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty evaluation");
    let n = predictions.len() as f64;
    predictions
        .iter()
        .zip(targets)
        .map(|(&p, &y)| (p - y).abs())
        .sum::<f64>()
        / n
}

/// The paper's prediction-accuracy metric: the fraction of samples where
/// prediction and truth fall on the *same side* of `threshold`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// use ewb_gbrt::threshold_accuracy;
///
/// let pred = [5.0, 12.0, 30.0, 7.0];
/// let real = [3.0, 25.0, 22.0, 9.1];
/// // Sides vs 9 s: (below, above, above, below) vs (below, above, above, above)
/// assert!((threshold_accuracy(&pred, &real, 9.0) - 0.75).abs() < 1e-12);
/// ```
pub fn threshold_accuracy(predictions: &[f64], targets: &[f64], threshold: f64) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty evaluation");
    let correct = predictions
        .iter()
        .zip(targets)
        .filter(|&(&p, &y)| (p > threshold) == (y > threshold))
        .count();
    correct as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mae_known_value() {
        assert_eq!(mae(&[0.0, 0.0], &[3.0, -4.0]), 3.5);
    }

    #[test]
    fn threshold_accuracy_extremes() {
        assert_eq!(threshold_accuracy(&[1.0, 20.0], &[2.0, 30.0], 9.0), 1.0);
        assert_eq!(threshold_accuracy(&[10.0, 1.0], &[1.0, 10.0], 9.0), 0.0);
    }

    #[test]
    fn threshold_accuracy_boundary_is_exclusive_above() {
        // A value exactly at the threshold counts as "not larger".
        assert_eq!(threshold_accuracy(&[9.0], &[9.0], 9.0), 1.0);
        assert_eq!(threshold_accuracy(&[9.0], &[9.1], 9.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
