//! # ewb-gbrt — Gradient Boosted Regression Trees, from scratch
//!
//! The paper's second technique (§4.3) predicts how long the user will
//! read a page using Gradient Boosted Regression Trees (Friedman 1999),
//! chosen because prediction with a forest of small decision trees is
//! cheap enough for a smartphone. This crate is a complete, dependency-free
//! implementation of the algorithm the paper describes:
//!
//! * [`RegressionTree`] — CART-style regression trees with **J terminal
//!   nodes** (grown best-first by impurity reduction, exactly the
//!   `J-terminalnode tree` of the paper's Algorithm 1);
//! * [`Gbrt`] / [`GbrtModel`] — stagewise gradient boosting with squared
//!   or absolute loss, shrinkage, and optional row subsampling;
//! * [`Dataset`] — a validated feature matrix with train/test splitting;
//! * feature importance, loss curves, and JSON model serialization
//!   (models are "trained offline on a PC ... then deploy the tree model
//!   to the prediction program", §4.3.3 — serialization is that deploy
//!   step).
//!
//! # Example
//!
//! ```
//! use ewb_gbrt::{Dataset, Gbrt, GbrtParams};
//!
//! // y = x0 * 10 + noise-free interaction
//! let rows: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![(i % 20) as f64, (i % 3) as f64])
//!     .collect();
//! let targets: Vec<f64> = rows.iter().map(|r| r[0] * 10.0 + r[1] * r[1]).collect();
//! let data = Dataset::new(rows, targets).unwrap();
//!
//! let params = GbrtParams { n_trees: 50, ..GbrtParams::default() };
//! let model = Gbrt::fit(&data, &params);
//! let err = ewb_gbrt::rmse(&model.predict_all(&data), data.targets());
//! assert!(err < 2.0, "rmse {err}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boost;
mod data;
mod eval;
mod flat;
mod importance;
mod loss;
mod reference;
mod splitter;
mod tree;

pub use boost::{Gbrt, GbrtModel, GbrtParams};
pub use data::{Dataset, DatasetError};
pub use eval::{mae, rmse, threshold_accuracy};
pub use flat::FlatForest;
pub use importance::feature_importance;
pub use loss::Loss;
pub use tree::{RegressionTree, TreeParams};
