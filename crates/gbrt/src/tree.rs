//! CART-style regression trees with J terminal nodes.
//!
//! The paper's Algorithm 1 grows a `J-terminalnode tree` per boosting
//! iteration. We grow trees **best-first**: starting from the root, the
//! leaf whose best split yields the largest squared-error reduction is
//! expanded next, until the tree has `max_leaves` terminal nodes or no
//! split improves the fit. This produces exactly J terminal regions
//! `{R_j}` as in Eq. (7) of the paper.

use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum number of terminal nodes (the paper's `J`). Table 7
    /// evaluates forests of 8-node trees.
    pub max_leaves: usize,
    /// Minimum number of training samples on each side of a split.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_leaves: 8,
            min_samples_leaf: 1,
        }
    }
}

/// A tree node: either a terminal value or a binary split
/// (`x[feature] <= threshold` goes left).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
///
/// # Example
///
/// ```
/// use ewb_gbrt::{Dataset, RegressionTree, TreeParams};
///
/// // A step function of the first feature.
/// let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..10).map(|i| if i < 5 { 1.0 } else { 9.0 }).collect();
/// let data = Dataset::new(rows, y).unwrap();
/// let tree = RegressionTree::fit_dataset(&data, &TreeParams::default());
/// assert_eq!(tree.predict(&[2.0]), 1.0);
/// assert_eq!(tree.predict(&[7.0]), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) n_features: usize,
    /// `(feature, gain)` for every split made — input to feature
    /// importance.
    pub(crate) split_gains: Vec<(usize, f64)>,
}

impl RegressionTree {
    /// Fits a tree to `targets[i]` for the samples `indices` drawn from
    /// `rows`. This is the boosting-internal entry point — each boosting
    /// stage fits a tree to pseudo-residuals over a (possibly subsampled)
    /// index set. Uses the pre-sorted exact-greedy trainer; the result is
    /// bit-identical to [`RegressionTree::fit_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or contains duplicates, any index is
    /// out of bounds, or `params.max_leaves == 0`.
    pub fn fit(rows: &[Vec<f64>], targets: &[f64], indices: &[usize], params: &TreeParams) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        assert_eq!(rows.len(), targets.len(), "rows/targets length mismatch");
        let n_features = rows.first().map_or(0, |r| r.len());
        let cols: Vec<Vec<f64>> = (0..n_features)
            .map(|f| rows.iter().map(|r| r[f]).collect())
            .collect();
        let pre = crate::splitter::Presorted::new(&cols, rows.len());
        crate::splitter::fit_presorted(&cols, &pre, targets, Some(indices), params)
    }

    /// Fits a tree directly to a [`Dataset`]'s targets.
    pub fn fit_dataset(data: &Dataset, params: &TreeParams) -> Self {
        let pre = crate::splitter::Presorted::new(data.columns(), data.len());
        crate::splitter::fit_presorted(data.columns(), &pre, data.targets(), None, params)
    }

    /// Fits a tree with the original per-node re-sorting trainer (see
    /// [`crate::reference`]'s module docs). Slower than
    /// [`RegressionTree::fit`] but produces bit-identical trees — kept as
    /// the baseline for equivalence tests and the training benchmark.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RegressionTree::fit`].
    pub fn fit_reference(
        rows: &[Vec<f64>],
        targets: &[f64],
        indices: &[usize],
        params: &TreeParams,
    ) -> Self {
        crate::reference::fit_tree(rows, targets, indices, params)
    }

    /// Predicts the value for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        match self.nodes[self.leaf_id(x)] {
            Node::Leaf { value } => value,
            Node::Split { .. } => unreachable!("leaf_id returns a leaf"),
        }
    }

    /// The node index of the terminal region `x` falls into.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn leaf_id(&self, x: &[f64]) -> usize {
        assert_eq!(
            x.len(),
            self.n_features,
            "expected {} features, got {}",
            self.n_features,
            x.len()
        );
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Overwrites the value of leaf `node` — used by the booster to install
    /// the loss-optimal `γ_jm` of the paper's Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a leaf or the value is not finite.
    pub fn set_leaf_value(&mut self, node: usize, value: f64) {
        assert!(value.is_finite(), "leaf value must be finite");
        match &mut self.nodes[node] {
            Node::Leaf { value: v } => *v = value,
            Node::Split { .. } => panic!("node {node} is not a leaf"),
        }
    }

    /// Number of terminal nodes.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Total number of nodes (terminal + internal).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of features the tree was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Maximum root-to-leaf depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }

    /// `(feature, impurity_gain)` for each split made while growing.
    pub fn split_gains(&self) -> &[(usize, f64)] {
        &self.split_gains
    }

    /// The stored value of leaf `node` — the booster reads this instead
    /// of re-walking the tree for samples whose region is already known.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a leaf.
    pub(crate) fn node_leaf_value(&self, node: usize) -> f64 {
        match self.nodes[node] {
            Node::Leaf { value } => value,
            Node::Split { .. } => panic!("node {node} is not a leaf"),
        }
    }

    /// Appends this tree's nodes to a flat structure-of-arrays layout
    /// (see [`crate::FlatForest`]): `u16::MAX` in `feature` marks a leaf
    /// whose value sits in the `threshold` slot, and a split's right
    /// child is always `left + 1` (children are allocated consecutively
    /// during growth).
    pub(crate) fn append_flat(
        &self,
        feature: &mut Vec<u16>,
        threshold: &mut Vec<f64>,
        left: &mut Vec<u32>,
    ) {
        let base = feature.len() as u32;
        for node in &self.nodes {
            match node {
                Node::Leaf { value } => {
                    feature.push(u16::MAX);
                    threshold.push(*value);
                    left.push(0);
                }
                Node::Split {
                    feature: f,
                    threshold: t,
                    left: l,
                    right: r,
                } => {
                    assert!(
                        *f < u16::MAX as usize,
                        "feature index {f} exceeds flat layout"
                    );
                    assert_eq!(*r, *l + 1, "children must be consecutive");
                    feature.push(*f as u16);
                    threshold.push(*t);
                    left.push(base + *l as u32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rows: Vec<Vec<f64>>, y: Vec<f64>) -> Dataset {
        Dataset::new(rows, y).unwrap()
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let d = dataset((0..10).map(|i| vec![i as f64]).collect(), vec![5.0; 10]);
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[100.0]), 5.0);
    }

    #[test]
    fn step_function_recovered_exactly() {
        let d = dataset(
            (0..20).map(|i| vec![i as f64]).collect(),
            (0..20).map(|i| if i < 12 { -3.0 } else { 4.0 }).collect(),
        );
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        assert_eq!(t.predict(&[0.0]), -3.0);
        assert_eq!(t.predict(&[11.0]), -3.0);
        assert_eq!(t.predict(&[12.0]), 4.0);
        assert_eq!(t.predict(&[19.0]), 4.0);
    }

    #[test]
    fn respects_max_leaves() {
        let d = dataset(
            (0..100).map(|i| vec![i as f64]).collect(),
            (0..100).map(|i| (i as f64).sin() * 10.0).collect(),
        );
        for j in [1, 2, 4, 8, 16] {
            let t = RegressionTree::fit_dataset(
                &d,
                &TreeParams {
                    max_leaves: j,
                    min_samples_leaf: 1,
                },
            );
            assert!(t.n_leaves() <= j, "J={j} got {}", t.n_leaves());
            if j > 1 {
                assert!(t.n_leaves() >= 2);
            }
        }
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines y.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, ((i * 7919) % 13) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 5.0 { 0.0 } else { 10.0 })
            .collect();
        let t = RegressionTree::fit_dataset(
            &dataset(rows, y),
            &TreeParams {
                max_leaves: 2,
                min_samples_leaf: 1,
            },
        );
        assert_eq!(t.split_gains().len(), 1);
        assert_eq!(t.split_gains()[0].0, 0, "should split on feature 0");
    }

    #[test]
    fn interaction_needs_enough_leaves() {
        // XOR of two binary features (with a tiny marginal hint so the
        // greedy first split has positive gain — pure XOR has zero
        // marginal gain for any single split, a known CART limitation):
        // unlearnable with 2 leaves, essentially exact with 4.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                let xor = if (r[0] as i64) ^ (r[1] as i64) == 1 {
                    1.0
                } else {
                    0.0
                };
                xor + 0.01 * r[0]
            })
            .collect();
        let d = dataset(rows.clone(), y.clone());
        let shallow = RegressionTree::fit_dataset(
            &d,
            &TreeParams {
                max_leaves: 2,
                min_samples_leaf: 1,
            },
        );
        let deep = RegressionTree::fit_dataset(
            &d,
            &TreeParams {
                max_leaves: 4,
                min_samples_leaf: 1,
            },
        );
        let sse = |t: &RegressionTree| -> f64 {
            rows.iter()
                .zip(&y)
                .map(|(r, &v)| (t.predict(r) - v).powi(2))
                .sum()
        };
        assert!(
            sse(&shallow) > 5.0,
            "2 leaves cannot capture XOR: {}",
            sse(&shallow)
        );
        for (r, target) in rows.iter().zip(&y) {
            assert!((deep.predict(r) - target).abs() < 0.02);
        }
    }

    #[test]
    fn min_samples_leaf_limits_splits() {
        let d = dataset(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| i as f64).collect(),
        );
        let t = RegressionTree::fit_dataset(
            &d,
            &TreeParams {
                max_leaves: 16,
                min_samples_leaf: 5,
            },
        );
        // Only the middle split satisfies 5/5.
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn leaf_ids_partition_samples() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).cos()).collect();
        let d = dataset(rows.clone(), y);
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        for r in &rows {
            let id = t.leaf_id(r);
            assert!(matches!(t.nodes[id], Node::Leaf { .. }));
        }
        assert_eq!(t.n_nodes(), 2 * t.n_leaves() - 1);
    }

    #[test]
    fn set_leaf_value_changes_prediction() {
        let d = dataset(vec![vec![0.0], vec![1.0]], vec![0.0, 10.0]);
        let mut t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        let id = t.leaf_id(&[0.0]);
        t.set_leaf_value(id, -99.0);
        assert_eq!(t.predict(&[0.0]), -99.0);
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn set_leaf_value_rejects_internal_nodes() {
        let d = dataset(vec![vec![0.0], vec![1.0]], vec![0.0, 10.0]);
        let mut t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        // Node 0 is the root split for this data.
        t.set_leaf_value(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "expected 1 features")]
    fn predict_rejects_wrong_width() {
        let d = dataset(vec![vec![0.0], vec![1.0]], vec![0.0, 1.0]);
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        t.predict(&[1.0, 2.0]);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 5) as f64 * 2.0).collect();
        let d = dataset(rows.clone(), y);
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        let json = serde_json::to_string(&t).unwrap();
        let t2: RegressionTree = serde_json::from_str(&json).unwrap();
        for r in &rows {
            assert_eq!(t.predict(r), t2.predict(r));
        }
    }
}
