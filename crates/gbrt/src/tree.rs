//! CART-style regression trees with J terminal nodes.
//!
//! The paper's Algorithm 1 grows a `J-terminalnode tree` per boosting
//! iteration. We grow trees **best-first**: starting from the root, the
//! leaf whose best split yields the largest squared-error reduction is
//! expanded next, until the tree has `max_leaves` terminal nodes or no
//! split improves the fit. This produces exactly J terminal regions
//! `{R_j}` as in Eq. (7) of the paper.

use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum number of terminal nodes (the paper's `J`). Table 7
    /// evaluates forests of 8-node trees.
    pub max_leaves: usize,
    /// Minimum number of training samples on each side of a split.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_leaves: 8,
            min_samples_leaf: 1,
        }
    }
}

/// A tree node: either a terminal value or a binary split
/// (`x[feature] <= threshold` goes left).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
///
/// # Example
///
/// ```
/// use ewb_gbrt::{Dataset, RegressionTree, TreeParams};
///
/// // A step function of the first feature.
/// let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..10).map(|i| if i < 5 { 1.0 } else { 9.0 }).collect();
/// let data = Dataset::new(rows, y).unwrap();
/// let tree = RegressionTree::fit_dataset(&data, &TreeParams::default());
/// assert_eq!(tree.predict(&[2.0]), 1.0);
/// assert_eq!(tree.predict(&[7.0]), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// `(feature, gain)` for every split made — input to feature
    /// importance.
    split_gains: Vec<(usize, f64)>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    left: Vec<usize>,
    right: Vec<usize>,
}

/// A grown-but-unexpanded leaf awaiting possible splitting.
struct Candidate {
    node: usize,
    split: BestSplit,
}

impl RegressionTree {
    /// Fits a tree to `targets[i]` for the samples `indices` drawn from
    /// `rows`. This is the boosting-internal entry point — each boosting
    /// stage fits a tree to pseudo-residuals over a (possibly subsampled)
    /// index set.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, any index is out of bounds, or
    /// `params.max_leaves == 0`.
    pub fn fit(
        rows: &[Vec<f64>],
        targets: &[f64],
        indices: &[usize],
        params: &TreeParams,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        assert!(params.max_leaves >= 1, "max_leaves must be at least 1");
        assert_eq!(rows.len(), targets.len(), "rows/targets length mismatch");
        let n_features = rows.first().map_or(0, |r| r.len());

        let root_value = region_mean(targets, indices);
        let mut tree = RegressionTree {
            nodes: vec![Node::Leaf { value: root_value }],
            n_features,
            split_gains: Vec::new(),
        };
        let mut leaves = 1usize;
        let mut candidates: Vec<Candidate> = Vec::new();
        if let Some(split) = best_split(rows, targets, indices, params.min_samples_leaf) {
            candidates.push(Candidate { node: 0, split });
        }

        while leaves < params.max_leaves && !candidates.is_empty() {
            // Deterministic arg-max: largest gain, ties to the earliest
            // node (stable regardless of float noise in unrelated splits).
            let mut best = 0;
            for (i, c) in candidates.iter().enumerate() {
                if c.split.gain > candidates[best].split.gain {
                    best = i;
                }
            }
            let Candidate { node, split } = candidates.swap_remove(best);

            let left_value = region_mean(targets, &split.left);
            let right_value = region_mean(targets, &split.right);
            let left_id = tree.nodes.len();
            tree.nodes.push(Node::Leaf { value: left_value });
            let right_id = tree.nodes.len();
            tree.nodes.push(Node::Leaf { value: right_value });
            tree.nodes[node] = Node::Split {
                feature: split.feature,
                threshold: split.threshold,
                left: left_id,
                right: right_id,
            };
            tree.split_gains.push((split.feature, split.gain));
            leaves += 1;

            for (child, idx) in [(left_id, split.left), (right_id, split.right)] {
                if let Some(s) = best_split(rows, targets, &idx, params.min_samples_leaf) {
                    candidates.push(Candidate { node: child, split: s });
                }
            }
        }
        tree
    }

    /// Fits a tree directly to a [`Dataset`]'s targets.
    pub fn fit_dataset(data: &Dataset, params: &TreeParams) -> Self {
        let indices: Vec<usize> = (0..data.len()).collect();
        RegressionTree::fit(data.rows(), data.targets(), &indices, params)
    }

    /// Predicts the value for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        match self.nodes[self.leaf_id(x)] {
            Node::Leaf { value } => value,
            Node::Split { .. } => unreachable!("leaf_id returns a leaf"),
        }
    }

    /// The node index of the terminal region `x` falls into.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn leaf_id(&self, x: &[f64]) -> usize {
        assert_eq!(
            x.len(),
            self.n_features,
            "expected {} features, got {}",
            self.n_features,
            x.len()
        );
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Overwrites the value of leaf `node` — used by the booster to install
    /// the loss-optimal `γ_jm` of the paper's Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a leaf or the value is not finite.
    pub fn set_leaf_value(&mut self, node: usize, value: f64) {
        assert!(value.is_finite(), "leaf value must be finite");
        match &mut self.nodes[node] {
            Node::Leaf { value: v } => *v = value,
            Node::Split { .. } => panic!("node {node} is not a leaf"),
        }
    }

    /// Number of terminal nodes.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Total number of nodes (terminal + internal).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of features the tree was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Maximum root-to-leaf depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }

    /// `(feature, impurity_gain)` for each split made while growing.
    pub fn split_gains(&self) -> &[(usize, f64)] {
        &self.split_gains
    }
}

fn region_mean(targets: &[f64], indices: &[usize]) -> f64 {
    indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64
}

/// Finds the squared-error-optimal split of `indices`, or `None` when no
/// split has positive gain (e.g. constant targets or too few samples).
fn best_split(
    rows: &[Vec<f64>],
    targets: &[f64],
    indices: &[usize],
    min_leaf: usize,
) -> Option<BestSplit> {
    let n = indices.len();
    if n < 2 * min_leaf.max(1) {
        return None;
    }
    let n_features = rows[indices[0]].len();
    let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
    let parent_score = total_sum * total_sum / n as f64;

    let mut best: Option<(usize, f64, f64, usize)> = None; // (feature, threshold, gain, sorted_split_pos)
    let mut best_order: Vec<usize> = Vec::new();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // `feature` is a real feature index, not a rows iterator
    for feature in 0..n_features {
        order.clear();
        order.extend_from_slice(indices);
        order.sort_by(|&a, &b| {
            rows[a][feature]
                .partial_cmp(&rows[b][feature])
                .expect("finite feature values")
        });
        // Scan split positions: left = order[..k], right = order[k..].
        let mut left_sum = 0.0;
        for k in 1..n {
            left_sum += targets[order[k - 1]];
            // Cannot split between equal feature values.
            if rows[order[k - 1]][feature] == rows[order[k]][feature] {
                continue;
            }
            if k < min_leaf || n - k < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let score = left_sum * left_sum / k as f64
                + right_sum * right_sum / (n - k) as f64;
            let gain = score - parent_score;
            if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.2) {
                let threshold =
                    0.5 * (rows[order[k - 1]][feature] + rows[order[k]][feature]);
                best = Some((feature, threshold, gain, k));
                best_order = order.clone();
            }
        }
    }

    best.map(|(feature, threshold, gain, k)| BestSplit {
        feature,
        threshold,
        gain,
        left: best_order[..k].to_vec(),
        right: best_order[k..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rows: Vec<Vec<f64>>, y: Vec<f64>) -> Dataset {
        Dataset::new(rows, y).unwrap()
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let d = dataset(
            (0..10).map(|i| vec![i as f64]).collect(),
            vec![5.0; 10],
        );
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[100.0]), 5.0);
    }

    #[test]
    fn step_function_recovered_exactly() {
        let d = dataset(
            (0..20).map(|i| vec![i as f64]).collect(),
            (0..20).map(|i| if i < 12 { -3.0 } else { 4.0 }).collect(),
        );
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        assert_eq!(t.predict(&[0.0]), -3.0);
        assert_eq!(t.predict(&[11.0]), -3.0);
        assert_eq!(t.predict(&[12.0]), 4.0);
        assert_eq!(t.predict(&[19.0]), 4.0);
    }

    #[test]
    fn respects_max_leaves() {
        let d = dataset(
            (0..100).map(|i| vec![i as f64]).collect(),
            (0..100).map(|i| (i as f64).sin() * 10.0).collect(),
        );
        for j in [1, 2, 4, 8, 16] {
            let t = RegressionTree::fit_dataset(
                &d,
                &TreeParams { max_leaves: j, min_samples_leaf: 1 },
            );
            assert!(t.n_leaves() <= j, "J={j} got {}", t.n_leaves());
            if j > 1 {
                assert!(t.n_leaves() >= 2);
            }
        }
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines y.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, ((i * 7919) % 13) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| if r[0] < 5.0 { 0.0 } else { 10.0 }).collect();
        let t = RegressionTree::fit_dataset(
            &dataset(rows, y),
            &TreeParams { max_leaves: 2, min_samples_leaf: 1 },
        );
        assert_eq!(t.split_gains().len(), 1);
        assert_eq!(t.split_gains()[0].0, 0, "should split on feature 0");
    }

    #[test]
    fn interaction_needs_enough_leaves() {
        // XOR of two binary features (with a tiny marginal hint so the
        // greedy first split has positive gain — pure XOR has zero
        // marginal gain for any single split, a known CART limitation):
        // unlearnable with 2 leaves, essentially exact with 4.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                let xor = if (r[0] as i64) ^ (r[1] as i64) == 1 { 1.0 } else { 0.0 };
                xor + 0.01 * r[0]
            })
            .collect();
        let d = dataset(rows.clone(), y.clone());
        let shallow = RegressionTree::fit_dataset(
            &d,
            &TreeParams { max_leaves: 2, min_samples_leaf: 1 },
        );
        let deep = RegressionTree::fit_dataset(
            &d,
            &TreeParams { max_leaves: 4, min_samples_leaf: 1 },
        );
        let sse = |t: &RegressionTree| -> f64 {
            rows.iter().zip(&y).map(|(r, &v)| (t.predict(r) - v).powi(2)).sum()
        };
        assert!(sse(&shallow) > 5.0, "2 leaves cannot capture XOR: {}", sse(&shallow));
        for (r, target) in rows.iter().zip(&y) {
            assert!((deep.predict(r) - target).abs() < 0.02);
        }
    }

    #[test]
    fn min_samples_leaf_limits_splits() {
        let d = dataset(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| i as f64).collect(),
        );
        let t = RegressionTree::fit_dataset(
            &d,
            &TreeParams { max_leaves: 16, min_samples_leaf: 5 },
        );
        // Only the middle split satisfies 5/5.
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn leaf_ids_partition_samples() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).cos()).collect();
        let d = dataset(rows.clone(), y);
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        for r in &rows {
            let id = t.leaf_id(r);
            assert!(matches!(t.nodes[id], Node::Leaf { .. }));
        }
        assert_eq!(t.n_nodes(), 2 * t.n_leaves() - 1);
    }

    #[test]
    fn set_leaf_value_changes_prediction() {
        let d = dataset(vec![vec![0.0], vec![1.0]], vec![0.0, 10.0]);
        let mut t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        let id = t.leaf_id(&[0.0]);
        t.set_leaf_value(id, -99.0);
        assert_eq!(t.predict(&[0.0]), -99.0);
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn set_leaf_value_rejects_internal_nodes() {
        let d = dataset(vec![vec![0.0], vec![1.0]], vec![0.0, 10.0]);
        let mut t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        // Node 0 is the root split for this data.
        t.set_leaf_value(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "expected 1 features")]
    fn predict_rejects_wrong_width() {
        let d = dataset(vec![vec![0.0], vec![1.0]], vec![0.0, 1.0]);
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        t.predict(&[1.0, 2.0]);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 5) as f64 * 2.0).collect();
        let d = dataset(rows.clone(), y);
        let t = RegressionTree::fit_dataset(&d, &TreeParams::default());
        let json = serde_json::to_string(&t).unwrap();
        let t2: RegressionTree = serde_json::from_str(&json).unwrap();
        for r in &rows {
            assert_eq!(t.predict(r), t2.predict(r));
        }
    }
}
